// gpufi — command-line front end for the fault-injection framework.
//
// Subcommands:
//   gpufi list                              list built-in workloads
//   gpufi disasm <workload>                 print a kernel's SASS-like listing
//   gpufi golden <workload> [flags]         golden run: profile + timing
//   gpufi campaign <workload> [flags]       run an injection campaign
//   gpufi compare <workload> [flags]        A100-vs-H100 campaign + z-tests
//   gpufi trace <workload> [flags]          trace the first instructions of
//                                           a golden run + opcode histogram
//   gpufi run <workload> [flags]            resilient campaign supervisor:
//                                           forks one shard worker per
//                                           --shard slice into --dir,
//                                           survives worker crashes/hangs
//                                           (lease takeover, backoff retry,
//                                           poison quarantine), auto-merges
//   gpufi merge <journal...> [--csv=]       recombine shard journals into
//                                           the campaign outcome table;
//                                           refuses incomplete/duplicated
//                                           shard sets (exit 2) unless
//                                           --allow-partial
//   gpufi lint [workload] [--json]          static kernel verifier (sa/lint.h)
//                                           over one or all built-in
//                                           workloads; exits 1 on any
//                                           error-severity finding
//   gpufi avf [workload] [--json]           static AVF report: per-group and
//                                           per-bit-position masked-fraction
//                                           lower bounds from bit-liveness
//                                           (sa/bitlive.h), no simulation
//   gpufi status <dir|journal|sidecar>      one-shot progress report over the
//                                           heartbeat sidecars of a running
//                                           (or finished) campaign: per-shard
//                                           %, pooled outcome rates with
//                                           Wilson CIs, ETA. --watch polls.
//
// Flags (campaign/compare/golden):
//   --arch=a100|h100|toy     machine model            (default a100)
//   --mode=iov|ioa|pred|rf|mem                        (default iov)
//   --flip=single|double|random|zero                  (default single)
//   --group=<GROUP>          instruction-group filter (default: all eligible)
//   --injections=<n>                                  (default 1000)
//   --seed=<n>                                        (default 0x5eed)
//   --bit=<n>                fix the flipped bit index
//   --ecc=on|off             force RF+DRAM ECC
//   --csv=<path>             also write the outcome table as CSV
//   --records=<path>         dump one CSV row per injection record
//
// Scale-out flags (campaign):
//   --shard=i/N              run global injection indices i, i+N, i+2N, ...;
//                            N shards partition the campaign bit-exactly
//   --journal=<path>         JSONL journal: one flushed record per completed
//                            injection; rerunning with an existing journal
//                            resumes, skipping completed injections
//   --golden-cache=<dir>     share golden (fault-free) runs across processes
//   --watchdog=<n>           absolute per-injection watchdog budget
//                            (dynamic warp instrs; default 3x golden + 10000)
//   --threads=<n>            worker threads for the injection loop
//                            (0 = hardware concurrency; default 0)
//   --quarantine=<i,j,...>   global injection indices to journal as
//                            Quarantined instead of executing (the
//                            supervisor passes this to relaunched workers)
//
// Adaptive planner flags (campaign/run):
//   --stop-half-width=<f>    sequential early stopping: halt at the first
//                            checkpoint where every tracked outcome rate
//                            (Masked/SDC/DUE) has a Wilson CI half-width
//                            <= f (0 < f < 0.5; absolute rate units, so
//                            0.02 means +/-2 percentage points)
//   --stop-confidence=<f>    CI level for the stopping rule (default 0.95)
//   --stop-min=<n>           min injections before a stop can fire
//                            (default 100)
//   --checkpoint-every=<n>   planner decision period K: decisions happen at
//                            global indices K, 2K, ... (default 100)
//   --stratify=group|none    allocate each checkpoint block across
//                            instruction groups (Neyman reallocation from
//                            observed per-group SDC spread) instead of
//                            frequency-proportional sampling; reported
//                            rates then use the post-stratified estimator
//   --plan=<path>            (campaign; normally set by the supervisor)
//                            follow planner decisions published to this
//                            file instead of deciding locally — required
//                            for sharded workers, which never see the full
//                            record prefix
//
// Supervisor flags (run; campaign flags above pass through to workers):
//   --dir=<path>             campaign directory: shard journals, leases,
//                            supervisor state, worker logs   (required)
//   --shards=<n>             number of shard workers          (default 4)
//   --workers=<n>            max concurrent workers       (default shards)
//   --lease-ttl-ms=<n>       shard lease TTL              (default 15000)
//   --stall-timeout-ms=<n>   SIGKILL a worker whose heartbeat sidecar is
//                            this stale (0 disables; default 30000)
//   --poll-ms=<n>            supervision loop period        (default 200)
//   --max-shard-attempts=<n> abandon a shard after n consecutive
//                            no-progress crashes              (default 6)
//   --poison-threshold=<n>   quarantine an injection after n consecutive
//                            crashes pinned on it             (default 3)
//   --backoff-base-ms=<n>    relaunch backoff base          (default 500)
//   --backoff-cap-ms=<n>     relaunch backoff cap         (default 10000)
//   --worker-failpoints=<s>  GFI_FAILPOINTS spec for workers (chaos tests)
//   --resume                 continue an existing supervisor state file
//   --out=<path>             (run/merge) write the merged journal (atomic)
//   --allow-partial          (merge) merge despite missing/incomplete
//                            shards
//
// Recovery flags (campaign/compare):
//   --recover=retry|abft     trap-and-retry relaunch; `abft` additionally
//                            swaps in the ABFT-hardened "<workload>_abft"
//                            kernel so SDCs become retryable traps
//   --max-retries=<n>        relaunch budget (default 3 when --recover given)
//   --persist=transient|stuck  whether retries see the fault again
//                            (default transient)
//
// Observability flags:
//   --metrics-out=<file>     (campaign) write the full obs::Registry
//                            snapshot (counters/gauges/latency histograms)
//                            as JSON at campaign end — CI artifact material
//   --heartbeat-ms=<n>       (campaign) heartbeat sidecar flush interval
//                            (default 2000; 0 = after every injection)
//   --watch                  (status) re-render every --interval seconds
//                            until every reporting shard is done
//   --interval=<s>           (status) --watch poll period (default 2)
//
// Static-analysis flags:
//   --prune=dead|dead-bits|none
//                            (campaign/compare) skip simulating IOV/PRED
//                            sites whose destination is statically dead;
//                            `dead-bits` additionally credits single/double
//                            flips landing only on statically dead *bits*
//                            of partially-dead sites (sa/bitlive.h).
//                            Records are credited analytically and outcome
//                            tables stay bit-identical (default none)
//   --json                   (lint/avf) machine-readable findings
//   --sarif=<file>           (lint) additionally write findings as SARIF
//                            2.1.0 (GitHub code-scanning ingestible)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compare.h"
#include "analysis/report.h"
#include "arch/arch.h"
#include "cli_args.h"
#include "common/simd.h"
#include "common/table.h"
#include "fi/campaign.h"
#include "fi/golden_cache.h"
#include "fi/journal.h"
#include "fi/planner.h"
#include "fi/supervisor.h"
#include "obs/registry.h"
#include "obs/status.h"
#include "harden/swift.h"
#include "recover/abft.h"
#include "analysis/static_bound.h"
#include "sa/lint.h"
#include "sassim/exec_threaded.h"
#include "sassim/simulator.h"
#include "sassim/tracer.h"
#include "workloads/workload.h"

namespace {

using namespace gfi;

/// Bumped per stacked PR; `gpufi version` pairs it with the compiled SIMD
/// and dispatch backends so bug reports pin down which execution path
/// produced a journal.
constexpr const char* kVersion = "0.10.0";

struct Options {
  std::string command;
  std::string workload;
  std::vector<std::string> positionals;  ///< extra non-flag args (merge)
  std::string arch = "a100";
  std::string mode = "iov";
  std::string flip = "single";
  std::optional<std::string> group;
  std::size_t injections = 1000;
  u64 seed = 0x5eed;
  std::optional<u32> bit;
  std::optional<bool> ecc_on;
  std::optional<std::string> csv;
  std::optional<std::string> records;
  u32 shard_index = 0;
  u32 shard_count = 1;
  std::optional<std::string> journal;
  std::optional<std::string> golden_cache;
  std::optional<u64> watchdog;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::optional<std::string> recover;  ///< "retry" or "abft"
  std::optional<u32> max_retries;
  std::string persist = "transient";
  std::string prune = "none";
  std::string engine = "auto";  ///< --engine dispatch-tier pin (campaign)
  bool json = false;
  std::optional<std::string> sarif;  ///< --sarif=<file> (lint)
  std::optional<std::string> metrics_out;
  u64 heartbeat_ms = 2000;
  bool watch = false;
  u64 interval_s = 2;  ///< --watch poll period
  std::vector<u64> quarantine;  ///< --quarantine=i,j,... (campaign)
  // Adaptive planner knobs (campaign/run); defaults mirror fi::PlannerConfig.
  std::optional<f64> stop_half_width;
  std::optional<f64> stop_confidence;
  std::optional<u64> stop_min;
  std::optional<u64> checkpoint_every;
  std::string stratify = "none";
  std::optional<std::string> plan;  ///< --plan= follow-mode file (campaign)
  bool allow_partial = false;   ///< --allow-partial (merge)
  std::optional<std::string> out;  ///< --out merged-journal path (run/merge)
  // `run` supervisor knobs (defaults mirror fi::SupervisorConfig).
  std::string dir;
  u32 shards = 4;
  u32 workers = 0;  ///< 0 = one worker per shard
  u64 lease_ttl_ms = 15000;
  u64 stall_timeout_ms = 30000;
  u64 poll_ms = 200;
  u32 max_shard_attempts = 6;
  u32 poison_threshold = 3;
  u64 backoff_base_ms = 500;
  u64 backoff_cap_ms = 10000;
  std::string worker_failpoints;
  bool resume = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: gpufi "
               "<list|disasm|golden|campaign|run|compare|merge|lint|avf|"
               "status|version> "
               "[workload|journal|dir...] [--flags]\n(see the header of "
               "tools/gpufi_cli.cc for the flag reference)\n");
  return 2;
}

int cmd_version() {
  std::printf("gpufi %s (simd=%s, dispatch=%s)\n", kVersion, simd::backend(),
              sim::exec::dispatch_backend());
  return 0;
}

sim::EngineTier engine_for(const std::string& name) {
  if (name == "instrumented") return sim::EngineTier::kInstrumented;
  if (name == "clean") return sim::EngineTier::kClean;
  if (name == "threaded") return sim::EngineTier::kThreaded;
  return sim::EngineTier::kAuto;  // parse() already validated the string
}

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

std::optional<Options> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Options options;
  options.command = argv[1];
  int position = 2;
  while (position < argc && argv[position][0] != '-') {
    if (options.workload.empty()) {
      options.workload = argv[position];
    } else {
      options.positionals.emplace_back(argv[position]);
    }
    ++position;
  }
  for (; position < argc; ++position) {
    const std::string arg = argv[position];
    std::string value;
    if (parse_flag(arg, "arch", &options.arch)) continue;
    if (parse_flag(arg, "mode", &options.mode)) continue;
    if (parse_flag(arg, "flip", &options.flip)) continue;
    if (parse_flag(arg, "group", &value)) {
      options.group = value;
      continue;
    }
    if (parse_flag(arg, "injections", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "bad --injections '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.injections = static_cast<std::size_t>(*parsed);
      continue;
    }
    if (parse_flag(arg, "seed", &value)) {
      auto parsed = cli::parse_u64(value, /*base=*/0);
      if (!parsed) {
        std::fprintf(stderr, "bad --seed '%s' (want an integer, 0x hex ok)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.seed = *parsed;
      continue;
    }
    if (parse_flag(arg, "bit", &value)) {
      auto parsed = cli::parse_u32(value);
      if (!parsed) {
        std::fprintf(stderr, "bad --bit '%s' (want a non-negative integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.bit = *parsed;
      continue;
    }
    if (parse_flag(arg, "ecc", &value)) {
      if (value != "on" && value != "off") {
        std::fprintf(stderr, "bad --ecc '%s' (want on|off)\n", value.c_str());
        return std::nullopt;
      }
      options.ecc_on = value == "on";
      continue;
    }
    if (parse_flag(arg, "csv", &value)) {
      options.csv = value;
      continue;
    }
    if (parse_flag(arg, "records", &value)) {
      options.records = value;
      continue;
    }
    if (parse_flag(arg, "shard", &value)) {
      auto shard = cli::parse_shard(value);
      if (!shard) {
        std::fprintf(stderr,
                     "bad --shard '%s' (want i/N with 0 <= i < N)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.shard_index = shard->index;
      options.shard_count = shard->count;
      continue;
    }
    if (parse_flag(arg, "journal", &value)) {
      options.journal = value;
      continue;
    }
    if (parse_flag(arg, "golden-cache", &value)) {
      options.golden_cache = value;
      continue;
    }
    if (parse_flag(arg, "watchdog", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed) {
        std::fprintf(stderr, "bad --watchdog '%s' (want an integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.watchdog = *parsed;
      continue;
    }
    if (parse_flag(arg, "threads", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --threads '%s' (want a non-negative integer, "
                     "0 = hardware concurrency)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.threads = static_cast<std::size_t>(*parsed);
      continue;
    }
    if (parse_flag(arg, "recover", &value)) {
      if (value != "retry" && value != "abft") {
        std::fprintf(stderr, "bad --recover '%s' (want retry|abft)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.recover = value;
      continue;
    }
    if (parse_flag(arg, "max-retries", &value)) {
      auto parsed = cli::parse_u32(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --max-retries '%s' (want a non-negative integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.max_retries = *parsed;
      continue;
    }
    if (parse_flag(arg, "persist", &value)) {
      if (value != "transient" && value != "stuck") {
        std::fprintf(stderr, "bad --persist '%s' (want transient|stuck)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.persist = value;
      continue;
    }
    if (parse_flag(arg, "prune", &value)) {
      if (value != "dead" && value != "dead-bits" && value != "none") {
        std::fprintf(stderr, "bad --prune '%s' (want dead|dead-bits|none)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.prune = value;
      continue;
    }
    if (parse_flag(arg, "engine", &value)) {
      if (value != "auto" && value != "instrumented" && value != "clean" &&
          value != "threaded") {
        std::fprintf(stderr,
                     "bad --engine '%s' (want instrumented|clean|threaded)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.engine = value;
      continue;
    }
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    if (parse_flag(arg, "sarif", &value)) {
      options.sarif = value;
      continue;
    }
    if (parse_flag(arg, "metrics-out", &value)) {
      options.metrics_out = value;
      continue;
    }
    if (parse_flag(arg, "heartbeat-ms", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --heartbeat-ms '%s' (want a non-negative integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.heartbeat_ms = *parsed;
      continue;
    }
    if (arg == "--watch") {
      options.watch = true;
      continue;
    }
    if (parse_flag(arg, "interval", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "bad --interval '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.interval_s = *parsed;
      continue;
    }
    if (parse_flag(arg, "quarantine", &value)) {
      auto parsed = cli::parse_u64_list(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --quarantine '%s' (want comma-separated indices)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.quarantine = std::move(*parsed);
      continue;
    }
    if (arg == "--allow-partial") {
      options.allow_partial = true;
      continue;
    }
    if (parse_flag(arg, "out", &value)) {
      options.out = value;
      continue;
    }
    if (parse_flag(arg, "dir", &value)) {
      options.dir = value;
      continue;
    }
    if (parse_flag(arg, "shards", &value)) {
      auto parsed = cli::parse_u32(value);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "bad --shards '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.shards = *parsed;
      continue;
    }
    if (parse_flag(arg, "workers", &value)) {
      auto parsed = cli::parse_u32(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --workers '%s' (want a non-negative integer, "
                     "0 = one per shard)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.workers = *parsed;
      continue;
    }
    // The supervisor's millisecond knobs share one strict-u64 shape.
    const struct {
      const char* name;
      u64* slot;
      bool positive;
    } u64_knobs[] = {
        {"lease-ttl-ms", &options.lease_ttl_ms, true},
        {"stall-timeout-ms", &options.stall_timeout_ms, false},
        {"poll-ms", &options.poll_ms, true},
        {"backoff-base-ms", &options.backoff_base_ms, false},
        {"backoff-cap-ms", &options.backoff_cap_ms, false},
    };
    bool matched = false;
    bool bad = false;
    for (const auto& knob : u64_knobs) {
      if (!parse_flag(arg, knob.name, &value)) continue;
      matched = true;
      auto parsed = cli::parse_u64(value);
      if (!parsed || (knob.positive && *parsed == 0)) {
        std::fprintf(stderr, "bad --%s '%s' (want a%s integer)\n", knob.name,
                     value.c_str(),
                     knob.positive ? " positive" : " non-negative");
        bad = true;
        break;
      }
      *knob.slot = *parsed;
      break;
    }
    if (bad) return std::nullopt;
    if (matched) continue;
    const struct {
      const char* name;
      u32* slot;
    } u32_knobs[] = {
        {"max-shard-attempts", &options.max_shard_attempts},
        {"poison-threshold", &options.poison_threshold},
    };
    for (const auto& knob : u32_knobs) {
      if (!parse_flag(arg, knob.name, &value)) continue;
      matched = true;
      auto parsed = cli::parse_u32(value);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "bad --%s '%s' (want a positive integer)\n",
                     knob.name, value.c_str());
        bad = true;
        break;
      }
      *knob.slot = *parsed;
      break;
    }
    if (bad) return std::nullopt;
    if (matched) continue;
    if (parse_flag(arg, "worker-failpoints", &options.worker_failpoints)) {
      continue;
    }
    if (arg == "--resume") {
      options.resume = true;
      continue;
    }
    if (parse_flag(arg, "stop-half-width", &value)) {
      auto parsed = cli::parse_f64(value);
      if (!parsed || *parsed <= 0.0 || *parsed >= 0.5) {
        std::fprintf(stderr,
                     "bad --stop-half-width '%s' (want a rate in (0, 0.5), "
                     "e.g. 0.02 for +/-2 percentage points)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.stop_half_width = *parsed;
      continue;
    }
    if (parse_flag(arg, "stop-confidence", &value)) {
      auto parsed = cli::parse_f64(value);
      if (!parsed || *parsed <= 0.0 || *parsed >= 1.0) {
        std::fprintf(stderr,
                     "bad --stop-confidence '%s' (want a level in (0, 1))\n",
                     value.c_str());
        return std::nullopt;
      }
      options.stop_confidence = *parsed;
      continue;
    }
    if (parse_flag(arg, "stop-min", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --stop-min '%s' (want a non-negative integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.stop_min = *parsed;
      continue;
    }
    if (parse_flag(arg, "checkpoint-every", &value)) {
      auto parsed = cli::parse_u64(value);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr,
                     "bad --checkpoint-every '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.checkpoint_every = *parsed;
      continue;
    }
    if (parse_flag(arg, "stratify", &value)) {
      if (value != "group" && value != "none") {
        std::fprintf(stderr, "bad --stratify '%s' (want group|none)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.stratify = value;
      continue;
    }
    if (parse_flag(arg, "plan", &value)) {
      options.plan = value;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return std::nullopt;
  }
  return options;
}

std::optional<sim::MachineConfig> machine_for(const Options& options) {
  sim::MachineConfig config;
  if (options.arch == "a100") config = arch::a100();
  else if (options.arch == "h100") config = arch::h100();
  else if (options.arch == "toy") config = arch::toy();
  else {
    std::fprintf(stderr, "unknown arch '%s'\n", options.arch.c_str());
    return std::nullopt;
  }
  if (options.ecc_on) {
    const auto mode =
        *options.ecc_on ? ecc::EccMode::kSecded : ecc::EccMode::kDisabled;
    config.rf_ecc = mode;
    config.dram_ecc = mode;
  }
  return config;
}

std::optional<fi::InjectionMode> mode_for(const std::string& name) {
  if (name == "iov") return fi::InjectionMode::kIov;
  if (name == "ioa") return fi::InjectionMode::kIoa;
  if (name == "pred") return fi::InjectionMode::kPred;
  if (name == "rf") return fi::InjectionMode::kRf;
  if (name == "mem") return fi::InjectionMode::kMemory;
  std::fprintf(stderr, "unknown mode '%s'\n", name.c_str());
  return std::nullopt;
}

std::optional<fi::BitFlipModel> flip_for(const std::string& name) {
  if (name == "single") return fi::BitFlipModel::kSingle;
  if (name == "double") return fi::BitFlipModel::kDouble;
  if (name == "random") return fi::BitFlipModel::kRandomValue;
  if (name == "zero") return fi::BitFlipModel::kZeroValue;
  std::fprintf(stderr, "unknown flip model '%s'\n", name.c_str());
  return std::nullopt;
}

std::optional<sim::InstrGroup> group_for(const std::string& name) {
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    if (name == sim::group_name(group)) return group;
  }
  std::fprintf(stderr, "unknown group '%s' (use names from R-T2, e.g. FP32)\n",
               name.c_str());
  return std::nullopt;
}

std::optional<fi::CampaignConfig> campaign_config(const Options& options) {
  auto machine = machine_for(options);
  auto mode = mode_for(options.mode);
  auto flip = flip_for(options.flip);
  if (!machine || !mode || !flip) return std::nullopt;
  const fi::FaultPersistence persistence =
      options.persist == "stuck" ? fi::FaultPersistence::kStuckAt
                                 : fi::FaultPersistence::kTransient;
  fi::CampaignConfig config;
  config.workload = options.workload;
  config.engine = engine_for(options.engine);
  config.machine = *machine;
  config.model = {*mode, *flip, persistence};
  if (options.recover) {
    // Both strategies relaunch from checkpoint; `abft` additionally swaps in
    // the checksum-carrying kernel so SDCs surface as retryable traps.
    config.max_retries = options.max_retries.value_or(3);
    if (*options.recover == "abft" &&
        config.workload.rfind("_abft") == std::string::npos) {
      config.workload += "_abft";
    }
  } else if (options.max_retries) {
    config.max_retries = *options.max_retries;
  }
  config.num_injections = options.injections;
  config.seed = options.seed;
  config.fixed_bit = options.bit;
  config.shard_index = options.shard_index;
  config.shard_count = options.shard_count;
  config.journal_path = options.journal;
  config.watchdog_instrs = options.watchdog;
  config.threads = options.threads;
  config.heartbeat_interval_ms = options.heartbeat_ms;
  config.prune_dead_sites = options.prune == "dead" ||
                            options.prune == "dead-bits";
  config.prune_dead_bits = options.prune == "dead-bits";
  config.quarantine = options.quarantine;
  if (options.stop_half_width) {
    config.planner.stop.target_half_width = *options.stop_half_width;
  }
  if (options.stop_confidence) {
    config.planner.stop.confidence = *options.stop_confidence;
  }
  if (options.stop_min) {
    config.planner.stop.min_samples =
        static_cast<std::size_t>(*options.stop_min);
  }
  if (options.checkpoint_every) {
    config.planner.checkpoint_every = *options.checkpoint_every;
  }
  config.planner.stratify = options.stratify == "group";
  config.planner.plan_path = options.plan;
  if (options.golden_cache) {
    fi::GoldenCache::instance().set_directory(*options.golden_cache);
  }
  if (options.group) {
    auto group = group_for(*options.group);
    if (!group) return std::nullopt;
    config.group = group;
  }
  return config;
}

int cmd_list() {
  for (const std::string& name : wl::workload_names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_disasm(const Options& options) {
  auto workload = wl::make_workload(options.workload);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", options.workload.c_str());
    return 1;
  }
  std::printf("%s", workload->program().disassemble().c_str());
  return 0;
}

int cmd_golden(const Options& options) {
  auto config = campaign_config(options);
  if (!config) return 2;
  auto golden = fi::Campaign::golden_run(*config);
  if (!golden.is_ok()) {
    std::fprintf(stderr, "%s\n", golden.status().to_string().c_str());
    return 1;
  }
  sim::LaunchResult timing;
  timing.cycles = golden.value().cycles;
  std::printf("%s on %s: %llu warp instrs, %llu cycles, %.2f us\n",
              options.workload.c_str(), config->machine.name.c_str(),
              static_cast<unsigned long long>(golden.value().dyn_instrs),
              static_cast<unsigned long long>(golden.value().cycles),
              timing.time_us(config->machine));
  Table table("Dynamic instruction mix");
  table.set_header(analysis::profile_header());
  table.add_row(analysis::profile_row(options.workload,
                                      golden.value().profile));
  table.print();
  return 0;
}

int cmd_campaign(const Options& options) {
  auto config = campaign_config(options);
  if (!config) return 2;
  // A per-invocation registry keeps the --metrics-out snapshot scoped to
  // exactly this campaign (the process-global registry would accumulate
  // across compare's two runs).
  obs::Registry metrics;
  // Stamp the compiled execution backend into the snapshot so archived
  // --metrics-out artifacts say which SIMD path produced the campaign.
  metrics.counter(std::string("engine.simd.") + simd::backend()).inc();
  config->metrics = &metrics;
  auto result = fi::Campaign::run(*config);
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  std::string title = "Campaign: " + options.workload + " on " +
                      config->machine.name + ", " +
                      std::string(fi::to_string(config->model.mode)) + "/" +
                      fi::to_string(config->model.flip);
  if (config->shard_count > 1) {
    title += " [shard " + std::to_string(config->shard_index) + "/" +
             std::to_string(config->shard_count) + "]";
  }
  if (result.value().resumed > 0) {
    std::printf("resumed %zu of %zu injections from %s\n",
                result.value().resumed, result.value().records.size(),
                config->journal_path->c_str());
  }
  if (result.value().pruned > 0) {
    std::printf("pruned %llu of %zu injections (statically dead sites/bits, "
                "credited analytically)\n",
                static_cast<unsigned long long>(result.value().pruned),
                result.value().records.size());
  }
  Table table(title);
  table.set_header(analysis::outcome_header());
  table.add_row(analysis::outcome_row(options.workload, result.value()));
  table.print();
  std::printf("uncorrected failure rate (SDC+DUE+Hang): %s\n",
              Table::pct(analysis::uncorrected_failure_rate(result.value()))
                  .c_str());
  if (config->planner.active()) {
    if (config->planner.stopping()) {
      if (result.value().effective_injections < config->num_injections) {
        std::printf(
            "planner: stopped at %llu of %zu injections — every tracked "
            "outcome CI inside the ±%.2f%% target\n",
            static_cast<unsigned long long>(
                result.value().effective_injections),
            config->num_injections,
            config->planner.stop.target_half_width * 100.0);
      } else {
        std::printf(
            "planner: budget exhausted at %zu injections before the ±%.2f%% "
            "target was met everywhere\n",
            config->num_injections,
            config->planner.stop.target_half_width * 100.0);
      }
    }
    if (config->planner.stratify) {
      Table strat("Post-stratified rates (Neyman group allocation)");
      strat.set_header({"outcome", "pooled", "post-stratified"});
      for (fi::Outcome outcome : fi::planner_tracked_outcomes()) {
        strat.add_row({fi::to_string(outcome),
                       analysis::rate_cell(result.value(), outcome),
                       analysis::poststratified_cell(
                           result.value(), outcome,
                           config->planner.stop.confidence)});
      }
      strat.print();
    }
  }
  if (config->max_retries > 0) {
    Table recovery(std::string("Recovery (max ") +
                   std::to_string(config->max_retries) + " retries, " +
                   fi::to_string(config->model.persistence) + " faults)");
    recovery.set_header(analysis::recovery_header());
    recovery.add_row(analysis::recovery_row(config->workload, result.value()));
    recovery.print();
  }
  if (options.csv) (void)table.write_csv(*options.csv);
  if (options.records) {
    (void)analysis::write_records_csv(result.value(), *options.records);
  }
  if (options.metrics_out) {
    // Temp file + rename: a crash mid-write must never leave a torn JSON
    // snapshot for downstream tooling to choke on.
    const std::string tmp =
        *options.metrics_out + ".tmp-" + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) out << metrics.snapshot().to_json();
      out.flush();
      if (!out) {
        std::fprintf(stderr, "cannot write metrics snapshot to %s\n",
                     options.metrics_out->c_str());
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return 1;
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, *options.metrics_out, ec);
    if (ec) {
      std::fprintf(stderr, "cannot write metrics snapshot to %s: %s\n",
                   options.metrics_out->c_str(), ec.message().c_str());
      std::filesystem::remove(tmp, ec);
      return 1;
    }
    std::printf("metrics snapshot written to %s\n",
                options.metrics_out->c_str());
  }
  return 0;
}

/// Outcome display names in fi::Outcome index order, for the status report.
std::vector<std::string> outcome_names() {
  std::vector<std::string> names;
  names.reserve(fi::kOutcomeCount);
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    names.emplace_back(fi::to_string(static_cast<fi::Outcome>(o)));
  }
  return names;
}

/// Renders CI convergence toward the planner's stop target, pooled over the
/// reporting shards. Silent for planner-off campaigns (no sidecar carries a
/// stop target). The sidecar does not record the stop confidence, so the
/// display uses the 95% default; `gpufi campaign` prints the exact verdict.
void print_planner_status(const std::vector<obs::ShardStatus>& shards) {
  f64 target = 0.0;
  u64 done = 0;
  std::vector<u64> counts;
  for (const obs::ShardStatus& shard : shards) {
    target = std::max(target, shard.state.stop_half_width);
    done += shard.state.done;
    if (counts.size() < shard.state.outcome_counts.size()) {
      counts.resize(shard.state.outcome_counts.size(), 0);
    }
    for (std::size_t i = 0; i < shard.state.outcome_counts.size(); ++i) {
      counts[i] += shard.state.outcome_counts[i];
    }
  }
  if (target <= 0.0) return;
  std::string line = "planner: target ±";
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "%.2f%%", target * 100.0);
  line += buffer;
  bool converged = done > 0;
  for (fi::Outcome outcome : fi::planner_tracked_outcomes()) {
    const auto index = static_cast<std::size_t>(outcome);
    const u64 successes = index < counts.size() ? counts[index] : 0;
    const auto ci = stats::wilson_interval(successes, done, 0.95);
    const f64 half_width = done > 0 ? ci.half_width() : 1.0;
    converged = converged && half_width <= target;
    std::snprintf(buffer, sizeof(buffer), " | %s %.2f%% ±%.2f",
                  fi::to_string(outcome),
                  done > 0 ? 100.0 * static_cast<f64>(successes) /
                                 static_cast<f64>(done)
                           : 0.0,
                  half_width * 100.0);
    line += buffer;
  }
  std::snprintf(buffer, sizeof(buffer), " (n=%llu, %s)\n",
                static_cast<unsigned long long>(done),
                converged ? "converged" : "converging");
  line += buffer;
  std::printf("%s", line.c_str());
}

int cmd_status(const Options& options) {
  const std::vector<std::string> names = outcome_names();
  // One line of engine provenance above the shard table (not repeated per
  // --watch refresh).
  std::printf("engine: gpufi %s simd=%s dispatch=%s\n", kVersion,
              simd::backend(), sim::exec::dispatch_backend());
  while (true) {
    auto shards = obs::load_status(options.workload);
    if (!shards.is_ok()) {
      std::fprintf(stderr, "%s\n", shards.status().to_string().c_str());
      return 1;
    }
    std::printf("%s", obs::render_status(shards.value(), names).c_str());
    print_planner_status(shards.value());
    if (!options.watch) return 0;
    bool all_done = true;
    for (const obs::ShardStatus& shard : shards.value()) {
      all_done = all_done && shard.state.finished;
    }
    if (all_done) return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(options.interval_s));
  }
}

int cmd_compare(Options options) {
  options.arch = "a100";
  auto a_config = campaign_config(options);
  options.arch = "h100";
  auto h_config = campaign_config(options);
  if (!a_config || !h_config) return 2;
  auto a = fi::Campaign::run(*a_config);
  auto h = fi::Campaign::run(*h_config);
  if (!a.is_ok() || !h.is_ok()) {
    std::fprintf(stderr, "%s\n",
                 (!a.is_ok() ? a.status() : h.status()).to_string().c_str());
    return 1;
  }
  Table table("A100 vs H100: " + options.workload);
  auto header = analysis::outcome_header();
  header[0] = "arch";
  table.set_header(header);
  table.add_row(analysis::outcome_row("A100", a.value()));
  table.add_row(analysis::outcome_row("H100", h.value()));
  table.print();

  Table tests("Two-proportion z-tests (A100 vs H100)");
  tests.set_header({"outcome", "A100", "H100", "z", "p-value", "verdict"});
  for (fi::Outcome outcome :
       {fi::Outcome::kSdc, fi::Outcome::kDue, fi::Outcome::kMasked}) {
    const auto test =
        analysis::compare_outcome(a.value(), h.value(), outcome);
    tests.add_row({fi::to_string(outcome), Table::pct(test.p1),
                   Table::pct(test.p2), Table::fmt(test.z, 2),
                   Table::fmt(test.p_value, 4),
                   test.significant() ? "DIFFERENT" : "within noise"});
  }
  tests.print();
  return 0;
}

/// Prints the standard campaign outcome table for a merged journal and
/// handles --csv/--records/--out. Shared by `merge` and `run`.
int report_merged(const fi::MergedCampaign& merged, const Options& options) {
  if (merged.missing > 0) {
    std::printf("partial merge: %llu of %llu injections missing\n",
                static_cast<unsigned long long>(merged.missing),
                static_cast<unsigned long long>(merged.header.num_injections));
  }
  // Shell result so the standard reporting helpers apply; the merged table
  // is bit-identical to the one an unsharded campaign would print.
  fi::CampaignResult result;
  result.config.workload = merged.header.workload;
  result.records = merged.records;
  result.outcome_counts = merged.outcome_counts;
  Table table("Campaign: " + merged.header.workload + " on " +
              merged.header.arch + ", " + merged.header.mode + "/" +
              merged.header.flip);
  table.set_header(analysis::outcome_header());
  table.add_row(analysis::outcome_row(merged.header.workload, result));
  table.print();
  std::printf("uncorrected failure rate (SDC+DUE+Hang): %s\n",
              Table::pct(analysis::uncorrected_failure_rate(result)).c_str());
  if (options.csv) (void)table.write_csv(*options.csv);
  if (options.records) {
    (void)analysis::write_records_csv(result, *options.records);
  }
  if (options.out) {
    if (Status written = fi::write_merged_journal(*options.out, merged);
        !written.is_ok()) {
      std::fprintf(stderr, "%s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("merged journal written to %s\n", options.out->c_str());
  }
  return 0;
}

int cmd_merge(const Options& options) {
  // The first journal path lands in the workload slot of the parser.
  std::vector<std::string> paths;
  if (!options.workload.empty()) paths.push_back(options.workload);
  paths.insert(paths.end(), options.positionals.begin(),
               options.positionals.end());
  if (paths.empty()) return usage();
  fi::MergeOptions merge_options;
  merge_options.allow_partial = options.allow_partial;
  auto merged = fi::merge_journals(paths, merge_options);
  if (!merged.is_ok()) {
    std::fprintf(stderr, "%s\n", merged.status().to_string().c_str());
    // Incomplete/duplicated shard sets are a distinct, scriptable failure:
    // exit 2 so campaign drivers can tell "re-run some shards" apart from
    // "these journals are corrupt" (exit 1).
    return merged.status().code() == StatusCode::kFailedPrecondition ? 2 : 1;
  }
  return report_merged(merged.value(), options);
}

/// Resolves the running gpufi binary for `run` worker re-exec. /proc is
/// Linux-specific; argv[0] is the portable fallback.
std::string self_exe(const char* argv0) {
  char buffer[4096];
  const ssize_t length =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (length > 0) {
    buffer[length] = '\0';
    return std::string(buffer);
  }
  return argv0 != nullptr ? std::string(argv0) : std::string("gpufi");
}

int cmd_run(const Options& options, const char* argv0) {
  if (options.dir.empty()) {
    std::fprintf(stderr,
                 "gpufi run requires --dir=<campaign directory> (shard "
                 "journals, leases, and supervisor state live there)\n");
    return 2;
  }
  fi::SupervisorConfig config;
  config.exe = self_exe(argv0);
  config.workload = options.workload;
  config.dir = options.dir;
  config.shards = options.shards;
  config.max_workers = options.workers;
  config.num_injections = options.injections;
  config.seed = options.seed;
  config.lease_ttl_ms = options.lease_ttl_ms;
  config.poll_ms = options.poll_ms;
  config.stall_timeout_ms = options.stall_timeout_ms;
  config.worker_heartbeat_ms = options.heartbeat_ms;
  config.max_shard_attempts = options.max_shard_attempts;
  config.poison_threshold = options.poison_threshold;
  config.backoff_base_ms = options.backoff_base_ms;
  config.backoff_cap_ms = options.backoff_cap_ms;
  config.worker_failpoints = options.worker_failpoints;
  config.resume = options.resume;
  // Campaign flags forwarded verbatim to every worker. Defaults are passed
  // explicitly so the worker command line fully determines the campaign —
  // a shard journal is replayable from its flags alone.
  config.worker_flags.push_back("--arch=" + options.arch);
  config.worker_flags.push_back("--mode=" + options.mode);
  config.worker_flags.push_back("--flip=" + options.flip);
  config.worker_flags.push_back("--injections=" +
                                std::to_string(options.injections));
  config.worker_flags.push_back("--seed=" + std::to_string(options.seed));
  config.worker_flags.push_back("--persist=" + options.persist);
  if (options.group) config.worker_flags.push_back("--group=" + *options.group);
  if (options.bit) {
    config.worker_flags.push_back("--bit=" + std::to_string(*options.bit));
  }
  if (options.ecc_on) {
    config.worker_flags.push_back(std::string("--ecc=") +
                                  (*options.ecc_on ? "on" : "off"));
  }
  if (options.recover) {
    config.worker_flags.push_back("--recover=" + *options.recover);
  }
  if (options.max_retries) {
    config.worker_flags.push_back("--max-retries=" +
                                  std::to_string(*options.max_retries));
  }
  if (options.prune != "none") {
    config.worker_flags.push_back("--prune=" + options.prune);
  }
  if (options.engine != "auto") {
    config.worker_flags.push_back("--engine=" + options.engine);
  }
  if (options.watchdog) {
    config.worker_flags.push_back("--watchdog=" +
                                  std::to_string(*options.watchdog));
  }
  if (options.golden_cache) {
    config.worker_flags.push_back("--golden-cache=" + *options.golden_cache);
  }
  // Planner flags are forwarded so worker journal headers match the
  // unsharded adaptive campaign's byte-for-byte; the supervisor itself
  // appends the --plan= flag that puts workers in follow mode.
  if (options.plan) {
    std::fprintf(stderr,
                 "gpufi run: --plan is supervisor-owned (workers are pointed "
                 "at <dir>/plan.jsonl automatically)\n");
    return 2;
  }
  char fbuf[32];
  if (options.stop_half_width) {
    std::snprintf(fbuf, sizeof(fbuf), "%.17g", *options.stop_half_width);
    config.worker_flags.push_back(std::string("--stop-half-width=") + fbuf);
  }
  if (options.stop_confidence) {
    std::snprintf(fbuf, sizeof(fbuf), "%.17g", *options.stop_confidence);
    config.worker_flags.push_back(std::string("--stop-confidence=") + fbuf);
  }
  if (options.stop_min) {
    config.worker_flags.push_back("--stop-min=" +
                                  std::to_string(*options.stop_min));
  }
  if (options.checkpoint_every) {
    config.worker_flags.push_back("--checkpoint-every=" +
                                  std::to_string(*options.checkpoint_every));
  }
  if (options.stratify != "none") {
    config.worker_flags.push_back("--stratify=" + options.stratify);
  }
  if (options.stop_half_width || options.stratify != "none") {
    // The supervisor needs the unsharded campaign mirror to compute planner
    // decisions itself (it is the only party seeing the full prefix).
    auto mirror = campaign_config(options);
    if (!mirror) return 2;
    mirror->journal_path.reset();
    config.campaign = *mirror;
  }

  auto ran = fi::Supervisor::run(config);
  if (!ran.is_ok()) {
    std::fprintf(stderr, "%s\n", ran.status().to_string().c_str());
    return 1;
  }
  const fi::SupervisorResult& result = ran.value();
  std::printf(
      "supervisor: %llu worker launch(es), %llu crash(es), %llu stall "
      "kill(s), %llu lease takeover(s)\n",
      static_cast<unsigned long long>(result.worker_launches),
      static_cast<unsigned long long>(result.crashes),
      static_cast<unsigned long long>(result.stall_kills),
      static_cast<unsigned long long>(result.takeovers));
  if (result.plan_stop > 0) {
    std::printf("planner: stopped at %llu of %zu injections\n",
                static_cast<unsigned long long>(result.plan_stop),
                options.injections);
  }
  if (!result.quarantined.empty()) {
    std::string list;
    for (u64 index : result.quarantined) {
      if (!list.empty()) list += ",";
      list += std::to_string(index);
    }
    std::printf("quarantined injection(s): %s\n", list.c_str());
  }
  if (result.shards_failed > 0) {
    std::fprintf(stderr,
                 "%u shard(s) abandoned after repeated no-progress crashes; "
                 "see %s and the shard-*.log files\n",
                 result.shards_failed,
                 fi::Supervisor::state_path(options.dir).c_str());
    return 1;
  }
  return report_merged(result.merged, options);
}

int cmd_lint(const Options& options) {
  std::vector<std::string> names;
  if (!options.workload.empty()) {
    names.push_back(options.workload);
  } else {
    names = wl::workload_names();
  }
  bool any_errors = false;
  std::string json = "[";
  std::vector<sa::LintReport> reports;
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto workload = wl::make_workload(names[i]);
    if (!workload) {
      std::fprintf(stderr, "unknown workload '%s'\n", names[i].c_str());
      return 2;
    }
    const sa::LintReport report = sa::lint(workload->program());
    any_errors = any_errors || report.has_errors();
    if (options.sarif) reports.push_back(report);
    if (options.json) {
      if (i > 0) json += ",\n ";
      json += sa::to_json(report);
      continue;
    }
    std::printf("%s: %d error(s), %d warning(s), %d info\n",
                report.program.c_str(), report.count(sa::Severity::kError),
                report.count(sa::Severity::kWarning),
                report.count(sa::Severity::kInfo));
    for (const sa::LintFinding& finding : report.findings) {
      std::printf("  [%s] pc %u %s: %s\n",
                  sa::severity_name(finding.severity), finding.pc,
                  sa::check_name(finding.check), finding.message.c_str());
    }
  }
  if (options.json) std::printf("%s]\n", json.c_str());
  if (options.sarif) {
    std::ofstream out(*options.sarif, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write SARIF to '%s'\n",
                   options.sarif->c_str());
      return 2;
    }
    out << sa::to_sarif(reports) << "\n";
  }
  return any_errors ? 1 : 0;
}

int cmd_avf(const Options& options) {
  std::vector<std::string> names;
  if (!options.workload.empty()) {
    names.push_back(options.workload);
  } else {
    names = wl::workload_names();
  }
  std::string json = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    Options local = options;
    local.workload = names[i];
    auto config = campaign_config(local);
    if (!config) return 2;
    auto map = fi::Campaign::build_prune_map(*config);
    if (!map.is_ok()) {
      std::fprintf(stderr, "%s\n", map.status().to_string().c_str());
      return 1;
    }
    const analysis::AvfReport report =
        analysis::avf_report(map.value(), config->model.mode);
    if (options.json) {
      if (i > 0) json += ",\n ";
      json += analysis::to_json(report, names[i], config->machine.name);
      continue;
    }
    Table table("Static AVF bounds: " + names[i] + " on " +
                config->machine.name + ", " +
                std::string(fi::to_string(config->model.mode)));
    table.set_header({"group", "eligible", "dead", "partial", "inert",
                      "masked_lb", "bit_masked_lb"});
    auto add_bound_row = [&](const std::string& label,
                             const analysis::StaticBound& bound) {
      table.add_row({label, std::to_string(bound.eligible),
                     std::to_string(bound.dead),
                     std::to_string(bound.partial),
                     std::to_string(bound.inert),
                     Table::pct(bound.masked_lower_bound()),
                     Table::pct(bound.bit_masked_lower_bound())});
    };
    for (const analysis::AvfReport::GroupRow& row : report.groups) {
      add_bound_row(sim::group_name(row.group), row.bound);
    }
    add_bound_row("TOTAL", report.total);
    table.print();
    std::printf(
        "per-bit-position masked lower bound (single-bit flip at fixed "
        "footprint bit b):\n");
    for (u32 bit = 0; bit < 32; ++bit) {
      std::printf("  b%-2u %6.2f%%%s", bit, report.bit_bounds[bit] * 100.0,
                  bit % 8 == 7 ? "\n" : "");
    }
  }
  if (options.json) std::printf("%s]\n", json.c_str());
  return 0;
}

int cmd_trace(const Options& options) {
  auto machine = machine_for(options);
  if (!machine) return 2;
  auto workload = wl::make_workload(options.workload);
  if (!workload) {
    std::fprintf(stderr, "unknown workload '%s'\n", options.workload.c_str());
    return 1;
  }
  sim::Device device(*machine);
  auto spec = workload->setup(device);
  if (!spec.is_ok()) {
    std::fprintf(stderr, "%s\n", spec.status().to_string().c_str());
    return 1;
  }
  sim::TracerHook tracer(/*max_entries=*/64);
  sim::LaunchOptions launch_options;
  launch_options.hooks.push_back(&tracer);
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params,
                              launch_options);
  if (!launch.is_ok()) {
    std::fprintf(stderr, "%s\n", launch.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", tracer.to_string().c_str());
  std::printf("\n%llu dynamic warp instructions total\n",
              static_cast<unsigned long long>(tracer.seen()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gfi::harden::register_hardened_workloads();
  gfi::recover::register_abft_workloads();
  auto options = parse(argc, argv);
  if (!options) return usage();
  if (options->command == "version" || options->command == "--version") {
    return cmd_version();
  }
  if (options->command == "list") return cmd_list();
  // `lint`/`avf` with no workload cover every registered kernel.
  if (options->command == "lint") return cmd_lint(*options);
  if (options->command == "avf") return cmd_avf(*options);
  if (options->workload.empty()) return usage();
  if (options->command == "merge") return cmd_merge(*options);
  // `status` takes a directory / journal / sidecar path in the workload slot.
  if (options->command == "status") return cmd_status(*options);
  if (options->command == "disasm") return cmd_disasm(*options);
  if (options->command == "golden") return cmd_golden(*options);
  if (options->command == "campaign") return cmd_campaign(*options);
  if (options->command == "run") return cmd_run(*options, argv[0]);
  if (options->command == "compare") return cmd_compare(*options);
  if (options->command == "trace") return cmd_trace(*options);
  return usage();
}
