// Strict command-line value parsers for the gpufi tools.
//
// The bare strtoull idiom silently accepts garbage ("--injections=10k" runs
// 10 injections, "--seed=abc" becomes 0), which is poison for campaigns that
// are supposed to be replayable from their flag line. These helpers accept a
// value only if the ENTIRE string parses; anything else is a parse failure
// the caller turns into a one-line error and a non-zero exit.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace gfi::cli {

/// Parses an unsigned integer, requiring the whole string to be consumed.
/// `base` follows strtoull: 10 for decimal flags, 0 to also accept 0x hex
/// (seeds). Rejects empty strings, leading '-', trailing garbage, and
/// out-of-range values.
inline std::optional<u64> parse_u64(const std::string& text, int base = 10) {
  // strtoull skips leading whitespace and accepts sign prefixes; neither
  // belongs in a flag value.
  if (text.empty() || text[0] == '-' || text[0] == '+' ||
      std::isspace(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, base);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    return std::nullopt;
  }
  return static_cast<u64>(value);
}

/// parse_u64 restricted to the u32 range.
inline std::optional<u32> parse_u32(const std::string& text, int base = 10) {
  auto value = parse_u64(text, base);
  if (!value || *value > 0xffffffffULL) return std::nullopt;
  return static_cast<u32>(*value);
}

/// Parses a comma-separated list of unsigned integers ("3,17,133"). The
/// empty string is an empty list; any unparsable element fails the whole
/// list. Used for --quarantine.
inline std::optional<std::vector<u64>> parse_u64_list(const std::string& text,
                                                      int base = 10) {
  std::vector<u64> values;
  if (text.empty()) return values;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = text.find(',', start);
    const std::string piece = comma == std::string::npos
                                  ? text.substr(start)
                                  : text.substr(start, comma - start);
    auto value = parse_u64(piece, base);
    if (!value) return std::nullopt;
    values.push_back(*value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

/// Parses a finite floating-point value, requiring the whole string to be
/// consumed. Rejects empty strings, whitespace, inf/nan spellings (a
/// half-width of "inf" is never a sane campaign parameter), and trailing
/// garbage ("0.05x").
inline std::optional<f64> parse_f64(const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

/// A validated "--shard=i/N" value: 0 <= index < count.
struct Shard {
  u32 index = 0;
  u32 count = 1;
};

/// Parses "i/N". Rejects a missing slash, non-numeric pieces, N == 0, and
/// i >= N.
inline std::optional<Shard> parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto index = parse_u32(text.substr(0, slash));
  auto count = parse_u32(text.substr(slash + 1));
  if (!index || !count || *count == 0 || *index >= *count) {
    return std::nullopt;
  }
  return Shard{*index, *count};
}

}  // namespace gfi::cli
