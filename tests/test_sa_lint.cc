// Kernel linter: per-check unit kernels plus the golden sweep over every
// built-in workload (the suite must stay lint-clean at warning level; the
// SWIFT variants' intentional dead detector values are info-only).
#include <gtest/gtest.h>

#include "harden/swift.h"
#include "sa/lint.h"
#include "sassim/kernel_builder.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using sim::CmpOp;
using sim::Instr;
using sim::KernelBuilder;
using sim::Opcode;
using sim::Operand;
using sim::Program;

Program must_build(KernelBuilder& b) {
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  return std::move(program).take();
}

// ------------------------------------------------------------ unit checks --

TEST(SaLint, CleanKernelHasNoFindings) {
  KernelBuilder b("clean");
  b.ldc_u64(2, 0);
  b.s2r(4, sim::SpecialReg::kLaneId);
  b.imad_wide(6, Operand::reg(4), Operand::imm_u(4), Operand::reg(2));
  b.ldg(8, 6);
  b.iadd_u32(8, Operand::reg(8), Operand::imm_u(1));
  b.stg(6, 8);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_FALSE(report.has_errors());
}

TEST(SaLint, FlagsUninitRegisterRead) {
  KernelBuilder b("uninit_reg");
  b.ldc_u64(2, 0);
  b.stg(2, 9);  // R9 never defined
  b.exit_();
  const auto report = sa::lint(must_build(b));
  ASSERT_GE(report.count(sa::LintCheck::kUninitRegRead), 1);
  for (const auto& finding : report.findings) {
    if (finding.check != sa::LintCheck::kUninitRegRead) continue;
    EXPECT_EQ(finding.pc, 1u);
    EXPECT_EQ(finding.severity, sa::Severity::kWarning);
    EXPECT_NE(finding.message.find("R9"), std::string::npos);
  }
}

TEST(SaLint, FlagsUninitPredicateRead) {
  KernelBuilder b("uninit_pred");
  b.mov_u32(2, Operand::imm_u(1));
  b.guard_last(3);  // @P3 never set
  b.ldc_u64(4, 0);
  b.stg(4, 2);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_GE(report.count(sa::LintCheck::kUninitPredRead), 1);
}

TEST(SaLint, FlagsWritesToRZAndPT) {
  // The builder refuses these, so link the program by hand.
  Instr mov_rz;
  mov_rz.op = Opcode::kMov;
  mov_rz.dst = Operand::reg(sim::kRegZ);
  mov_rz.src[0] = Operand::imm_u(1);
  Instr setp_pt;
  setp_pt.op = Opcode::kISetp;
  setp_pt.dst = Operand::pred(sim::kPredT);
  setp_pt.src[0] = Operand::imm_u(0);
  setp_pt.src[1] = Operand::imm_u(1);
  Instr exit_i;
  exit_i.op = Opcode::kExit;
  const Program program("rz_pt", {mov_rz, setp_pt, exit_i}, 0, 0, 0);

  const auto report = sa::lint(program);
  EXPECT_EQ(report.count(sa::LintCheck::kWriteToRZ), 1);
  EXPECT_EQ(report.count(sa::LintCheck::kWriteToPT), 1);
  EXPECT_TRUE(report.has_errors());  // the PT write is an error
}

TEST(SaLint, FlagsSyncUnderflow) {
  Instr sync;
  sync.op = Opcode::kSync;
  Instr exit_i;
  exit_i.op = Opcode::kExit;
  const Program program("bad_sync", {sync, exit_i}, 0, 0, 0);

  const auto report = sa::lint(program);
  EXPECT_EQ(report.count(sa::LintCheck::kSyncUnderflow), 1);
  EXPECT_TRUE(report.has_errors());
}

TEST(SaLint, FlagsDivergentBarrier) {
  KernelBuilder b("div_bar");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
  b.if_then(0, false, [&] { b.bar(); });
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_GE(report.count(sa::LintCheck::kDivergentBarrier), 1);
}

TEST(SaLint, FlagsConstantSharedOutOfBounds) {
  KernelBuilder b("smem_oob");
  b.set_shared_bytes(16);
  b.mov_u32(2, Operand::imm_u(64));  // provably constant address
  b.mov_u32(4, Operand::imm_u(1));
  b.sts(2, 4);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_EQ(report.count(sa::LintCheck::kSharedOutOfBounds), 1);
  EXPECT_TRUE(report.has_errors());

  // Same store inside the declared window: clean.
  KernelBuilder ok("smem_ok");
  ok.set_shared_bytes(16);
  ok.mov_u32(2, Operand::imm_u(8));
  ok.mov_u32(4, Operand::imm_u(1));
  ok.sts(2, 4);
  ok.exit_();
  EXPECT_EQ(sa::lint(must_build(ok)).count(sa::LintCheck::kSharedOutOfBounds),
            0);
}

TEST(SaLint, FlagsUnreachableCodeAndDeadValues) {
  KernelBuilder b("dead");
  const auto end = b.new_label();
  b.mov_u32(2, Operand::imm_u(5));  // never read: dead value
  b.bra(end);
  b.mov_u32(4, Operand::imm_u(6));  // unreachable
  b.bind(end);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_GE(report.count(sa::LintCheck::kUnreachableCode), 1);
  EXPECT_GE(report.count(sa::LintCheck::kDeadValue), 1);
  EXPECT_EQ(report.count(sa::Severity::kError), 0);
}

TEST(SaLint, FlagsPartialUninitRead) {
  // R2 is never written: the SHF read of it is a whole-register uninit read
  // (flagged by uninit-reg-read, suppressed here), but R3 is fully *defined*
  // by the SHF — only its top byte traces back to launch state. The store
  // consumes all 32 bits, so the taint/demand intersection fires at the STG.
  KernelBuilder b("partial_uninit");
  b.ldc_u64(8, 0);
  b.shf(sim::ShiftKind::kLeft, 3, Operand::reg(2), Operand::imm_u(24));
  b.stg(8, 3);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  ASSERT_GE(report.count(sa::LintCheck::kPartialUninitRead), 1);
  ASSERT_GE(report.count(sa::LintCheck::kUninitRegRead), 1);
  for (const auto& finding : report.findings) {
    if (finding.check != sa::LintCheck::kPartialUninitRead) continue;
    EXPECT_EQ(finding.pc, 2u);
    EXPECT_EQ(finding.severity, sa::Severity::kWarning);
    EXPECT_NE(finding.message.find("R3"), std::string::npos);
    EXPECT_NE(finding.message.find("0xff000000"), std::string::npos);
  }
}

TEST(SaLint, MaskedTaintIsNotPartialUninit) {
  // Same tainted R3, but an AND pins the uninitialised top byte to zero
  // before the consumer; only the fully-written low bits reach the store.
  KernelBuilder b("masked_taint");
  b.ldc_u64(8, 0);
  b.shf(sim::ShiftKind::kLeft, 3, Operand::reg(2), Operand::imm_u(24));
  b.lop(sim::LopKind::kAnd, 4, Operand::reg(3), Operand::imm_u(0x00ffffff));
  b.stg(8, 4);
  b.exit_();
  const auto report = sa::lint(must_build(b));
  EXPECT_EQ(report.count(sa::LintCheck::kPartialUninitRead), 0);
  // The whole-register uninit read on R2 is still reported once, at the SHF.
  EXPECT_GE(report.count(sa::LintCheck::kUninitRegRead), 1);
}

TEST(SaLint, SarifOutputWellFormed) {
  KernelBuilder b("sarif_kernel");
  b.ldc_u64(2, 0);
  b.stg(2, 9);  // uninit R9 -> one warning finding
  b.exit_();
  const auto report = sa::lint(must_build(b));
  const std::string sarif = sa::to_sarif({report});
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  // Rule metadata covers every check, including ones with no findings here.
  EXPECT_NE(sarif.find("\"id\": \"uninit-reg-read\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"partial-uninit-read\""), std::string::npos);
  // The finding itself: ruleId, GitHub severity level, and a location
  // pointing at the synthetic .sass artifact for this program.
  EXPECT_NE(sarif.find("\"ruleId\": \"uninit-reg-read\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif_kernel.sass"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
}

TEST(SaLint, FindingsSortedAndJsonWellFormed) {
  KernelBuilder b("sorted");
  b.ldc_u64(2, 0);
  b.stg(2, 9);   // uninit R9
  b.stg(2, 11);  // uninit R11
  b.exit_();
  auto report = sa::lint(must_build(b));
  ASSERT_GE(report.findings.size(), 2u);
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_LE(report.findings[i - 1].pc, report.findings[i].pc);
  }

  report.findings[0].message = "quote \" backslash \\ newline \n done";
  const std::string json = sa::to_json(report);
  EXPECT_NE(json.find("\"program\": \"sorted\""), std::string::npos);
  EXPECT_NE(json.find("\\\" backslash \\\\ newline \\n"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line per report
}

TEST(SaLint, CheckAndSeverityNamesAreStable) {
  EXPECT_STREQ(sa::check_name(sa::LintCheck::kUninitRegRead),
               "uninit-reg-read");
  EXPECT_STREQ(sa::check_name(sa::LintCheck::kSharedOutOfBounds),
               "shared-out-of-bounds");
  EXPECT_STREQ(sa::severity_name(sa::Severity::kError), "error");
  EXPECT_STREQ(sa::severity_name(sa::Severity::kInfo), "info");
}

// ---------------------------------------------------------- golden sweep --

// Every built-in workload (including the SWIFT-hardened variants) must lint
// clean at warning level and above. Dead-value infos are allowed: SWIFT's
// duplicated computation intentionally produces detector values the checker
// never consumes, and those are exactly the sites the pruning pass skips.
TEST(SaLint, AllBuiltinWorkloadsLintClean) {
  harden::register_hardened_workloads();
  const auto names = wl::workload_names();
  ASSERT_GE(names.size(), 17u);
  for (const auto& name : names) {
    const auto workload = wl::make_workload(name);
    ASSERT_NE(workload, nullptr) << name;
    const auto report = sa::lint(workload->program());
    EXPECT_EQ(report.count(sa::Severity::kError), 0) << name;
    EXPECT_EQ(report.count(sa::Severity::kWarning), 0) << name;
    for (const auto& finding : report.findings) {
      EXPECT_EQ(finding.check, sa::LintCheck::kDeadValue)
          << name << ": unexpected info " << sa::check_name(finding.check)
          << " at pc " << finding.pc << ": " << finding.message;
    }
  }
}

}  // namespace
}  // namespace gfi
