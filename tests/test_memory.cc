// GlobalMemory unit tests: allocator, copies, fault map, ECC semantics.
#include <gtest/gtest.h>

#include "sassim/memory.h"

namespace gfi::sim {
namespace {

constexpr u64 kCap = 1u << 20;

TEST(Memory, AllocatorAlignsAndAdvances) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  auto a = memory.allocate(100);
  auto b = memory.allocate(100);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GE(a.value(), GlobalMemory::kBaseAddress);
  EXPECT_EQ(a.value() % 256, 0u);
  EXPECT_EQ(b.value() % 256, 0u);
  EXPECT_GE(b.value(), a.value() + 100);
}

TEST(Memory, AllocatorRejectsBadArguments) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  EXPECT_FALSE(memory.allocate(0).is_ok());
  EXPECT_FALSE(memory.allocate(16, 3).is_ok());
  EXPECT_FALSE(memory.allocate(kCap + 1).is_ok());
}

TEST(Memory, ExhaustionReported) {
  GlobalMemory memory(4096, ecc::EccMode::kSecded);
  ASSERT_TRUE(memory.allocate(4096).is_ok());
  EXPECT_FALSE(memory.allocate(1).is_ok());
}

TEST(Memory, ReadWriteRoundTrip) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  const u32 value = 0xCAFEBABE;
  EXPECT_EQ(memory.write(addr, &value, 4), TrapKind::kNone);
  u32 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kNone);
  EXPECT_EQ(got, value);
}

TEST(Memory, OutOfBoundsTraps) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  u32 word = 0;
  EXPECT_EQ(memory.read(0, &word, 4), TrapKind::kIllegalGlobalAddress);
  EXPECT_EQ(memory.read(addr + 64, &word, 4),
            TrapKind::kIllegalGlobalAddress);
  EXPECT_EQ(memory.write(addr - 8, &word, 4),
            TrapKind::kIllegalGlobalAddress);
}

TEST(Memory, SingleBitFaultCorrectedUnderEcc) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  const u32 value = 0x12345678;
  ASSERT_EQ(memory.write(addr, &value, 4), TrapKind::kNone);
  memory.inject_fault(addr, 1u << 7);

  u32 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kNone);
  EXPECT_EQ(got, value);  // corrected
  EXPECT_EQ(memory.counters().corrected_sbe, 1u);

  // No scrubbing: the next read corrects (and counts) again.
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kNone);
  EXPECT_EQ(memory.counters().corrected_sbe, 2u);
}

TEST(Memory, DoubleBitFaultTrapsUnderEcc) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr, 0b11);
  u32 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kEccDoubleBit);
  EXPECT_EQ(memory.counters().detected_dbe, 1u);
}

TEST(Memory, EccOffReturnsCorruptedBits) {
  GlobalMemory memory(kCap, ecc::EccMode::kDisabled);
  const u64 addr = memory.allocate(64).value();
  const u32 value = 0xF0F0F0F0;
  ASSERT_EQ(memory.write(addr, &value, 4), TrapKind::kNone);
  memory.inject_fault(addr, 0x0000000F);
  u32 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kNone);
  EXPECT_EQ(got, value ^ 0x0000000Fu);
  EXPECT_EQ(memory.counters().silent_corrupted, 1u);
}

TEST(Memory, CorruptionAppliesOnlyToOverlappingBytes) {
  GlobalMemory memory(kCap, ecc::EccMode::kDisabled);
  const u64 addr = memory.allocate(64).value();
  const u64 value = 0x1111111122222222ULL;
  ASSERT_EQ(memory.write(addr, &value, 8), TrapKind::kNone);
  memory.inject_fault(addr + 4, 0xFF);  // second word, lowest byte

  u8 byte = 0;
  EXPECT_EQ(memory.read(addr + 4, &byte, 1), TrapKind::kNone);
  EXPECT_EQ(byte, 0x11u ^ 0xFFu);
  EXPECT_EQ(memory.read(addr + 5, &byte, 1), TrapKind::kNone);
  EXPECT_EQ(byte, 0x11u);  // unaffected byte of the faulted word
}

TEST(Memory, FullWordOverwriteClearsFault) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr, 0b11);
  EXPECT_EQ(memory.fault_count(), 1u);
  const u32 value = 7;
  ASSERT_EQ(memory.write(addr, &value, 4), TrapKind::kNone);
  EXPECT_EQ(memory.fault_count(), 0u);
  u32 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 4), TrapKind::kNone);
  EXPECT_EQ(got, 7u);
}

TEST(Memory, PartialWriteLeavesFault) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr, 0b11);
  const u8 byte = 1;
  ASSERT_EQ(memory.write(addr, &byte, 1), TrapKind::kNone);
  EXPECT_EQ(memory.fault_count(), 1u);  // word not fully re-encoded
}

TEST(Memory, InjectTwiceSameBitCancels) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr, 1u << 3);
  memory.inject_fault(addr, 1u << 3);
  EXPECT_EQ(memory.fault_count(), 0u);
}

TEST(Memory, CopyToHostSurfacesDbe) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(1024).value();
  memory.inject_fault(addr + 512, 0b101);
  std::vector<u8> host(1024);
  EXPECT_EQ(memory.copy_to_host(host.data(), addr, host.size()),
            TrapKind::kEccDoubleBit);
}

TEST(Memory, FillWrites) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(256).value();
  EXPECT_EQ(memory.fill(addr, 0xAB, 256), TrapKind::kNone);
  std::vector<u8> host(256);
  EXPECT_EQ(memory.copy_to_host(host.data(), addr, 256), TrapKind::kNone);
  for (u8 byte : host) EXPECT_EQ(byte, 0xAB);
}

TEST(Memory, ResetClearsEverything) {
  GlobalMemory memory(kCap, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr, 1);
  memory.reset();
  EXPECT_EQ(memory.fault_count(), 0u);
  EXPECT_EQ(memory.bytes_allocated(), 0u);
  u32 word = 0;
  EXPECT_EQ(memory.read(addr, &word, 4), TrapKind::kIllegalGlobalAddress);
}

}  // namespace
}  // namespace gfi::sim
