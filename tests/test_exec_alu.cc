// Instruction-semantics tests: integer ALU, floating point, conversions,
// selects, special registers — each op verified per-lane against C++
// semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

using sim::CmpOp;
using sim::DType;
using sim::KernelBuilder;
using sim::LopKind;
using sim::MinMax;
using sim::MufuKind;
using sim::Operand;
using sim::ShiftKind;
using sim_test::run_lane_kernel;
using sim_test::run_lane_kernel64;

TEST(ExecAlu, IAddRegImm) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.iadd_u32(10, Operand::reg(0), Operand::imm_u(100));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], lane + 100);
}

TEST(ExecAlu, IAddWraps) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0xFFFFFFFFu));
    b.iadd_u32(10, Operand::reg(10), Operand::reg(0));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], static_cast<u32>(0xFFFFFFFFu + lane));
  }
}

TEST(ExecAlu, IMulLow32) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.imul_u32(10, Operand::reg(0), Operand::imm_u(0x10001));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], lane * 0x10001u);
}

TEST(ExecAlu, IMadFused) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.imad_u32(10, Operand::reg(0), Operand::imm_u(7), Operand::imm_u(3));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], lane * 7 + 3);
}

TEST(ExecAlu, IMadWideProduces64BitProduct) {
  auto out = run_lane_kernel64([](KernelBuilder& b) {
    b.mov_u32(4, Operand::imm_u(0x10000000u));  // 2^28
    b.mov_u64(6, 0x100000000ULL);               // 2^32 accumulator
    b.imad_wide(10, Operand::reg(0), Operand::reg(4), Operand::reg(6));
  });
  for (u64 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane * 0x10000000ULL + 0x100000000ULL);
  }
}

TEST(ExecAlu, IAdd64UsesPairs) {
  auto out = run_lane_kernel64([](KernelBuilder& b) {
    b.mov_u64(4, 0xFFFFFFFFFFFFFFF0ULL);
    b.mov_u64(6, 0x20ULL);
    b.iadd_u64(10, Operand::reg(4), Operand::reg(6));
  });
  for (u64 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 0x10ULL);
}

TEST(ExecAlu, MinMaxSignedVsUnsigned) {
  // signed: min(-1, 1) = -1; unsigned: min(0xFFFFFFFF, 1) = 1.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(4, Operand::imm_u(0xFFFFFFFFu));
    b.imnmx_s32(5, Operand::reg(4), Operand::imm_u(1), MinMax::kMin);
    b.imnmx_u32(6, Operand::reg(4), Operand::imm_u(1), MinMax::kMin);
    // pack: signed-min == -1 ? 0xS : 0, plus unsigned-min
    b.iadd_u32(10, Operand::reg(5), Operand::reg(6));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], 0xFFFFFFFFu + 1u);  // (-1) + 1
  }
}

TEST(ExecAlu, MaxVariants) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.imnmx_s32(10, Operand::reg(0), Operand::imm_u(16), MinMax::kMax);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], std::max(lane, 16u));
  }
}

TEST(ExecAlu, LogicOps) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.lop(LopKind::kAnd, 4, Operand::reg(0), Operand::imm_u(0x6));
    b.lop(LopKind::kOr, 5, Operand::reg(0), Operand::imm_u(0x100));
    b.lop(LopKind::kXor, 6, Operand::reg(4), Operand::reg(5));
    b.lop(LopKind::kNot, 7, Operand::reg(6), Operand::none());
    b.lop(LopKind::kNot, 10, Operand::reg(7), Operand::none());
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], (lane & 0x6u) ^ (lane | 0x100u));
  }
}

TEST(ExecAlu, Shifts) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.shf(ShiftKind::kLeft, 10, Operand::reg(0), Operand::imm_u(4));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], lane << 4);
}

TEST(ExecAlu, ArithmeticShiftPreservesSign) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(4, Operand::imm_u(0x80000000u));
    b.lop(LopKind::kOr, 4, Operand::reg(4), Operand::reg(0));
    b.shf(ShiftKind::kRightArith, 10, Operand::reg(4), Operand::imm_u(4),
          DType::kS32);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane],
              static_cast<u32>(static_cast<i32>(0x80000000u | lane) >> 4));
  }
}

TEST(ExecAlu, LogicalShiftZeroFills) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(4, Operand::imm_u(0xF0000000u));
    b.shf(ShiftKind::kRightLogical, 10, Operand::reg(4), Operand::imm_u(28));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 0xFu);
}

TEST(ExecAlu, Popcount) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.popc(10, Operand::reg(0));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], static_cast<u32>(std::popcount(lane)));
  }
}

TEST(ExecAlu, SelPicksByPredicate) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.sel(10, Operand::imm_u(111), Operand::imm_u(222), 0);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane < 16 ? 111u : 222u);
  }
}

TEST(ExecAlu, IsetpAllComparators) {
  struct Case {
    CmpOp cmp;
    std::function<bool(u32)> expect;
  };
  const Case cases[] = {
      {CmpOp::kLt, [](u32 l) { return l < 7; }},
      {CmpOp::kLe, [](u32 l) { return l <= 7; }},
      {CmpOp::kGt, [](u32 l) { return l > 7; }},
      {CmpOp::kGe, [](u32 l) { return l >= 7; }},
      {CmpOp::kEq, [](u32 l) { return l == 7; }},
      {CmpOp::kNe, [](u32 l) { return l != 7; }},
  };
  for (const Case& c : cases) {
    auto out = run_lane_kernel([&](KernelBuilder& b) {
      b.isetp(c.cmp, 0, Operand::reg(0), Operand::imm_u(7));
      b.sel(10, Operand::imm_u(1), Operand::imm_u(0), 0);
    });
    for (u32 lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(out[lane], c.expect(lane) ? 1u : 0u)
          << "cmp=" << static_cast<int>(c.cmp) << " lane=" << lane;
    }
  }
}

TEST(ExecAlu, SignedCompare) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(4, Operand::imm_u(0xFFFFFFFFu));  // -1 signed
    b.isetp(CmpOp::kLt, 0, Operand::reg(4), Operand::imm_u(0), DType::kS32);
    b.sel(10, Operand::imm_u(1), Operand::imm_u(0), 0);
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 1u);
}

// ------------------------------------------------------ floating point --

TEST(ExecFp, FAddFMul) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0));
    b.fadd_f32(5, Operand::reg(4), Operand::imm_f32(0.5f));
    b.fmul_f32(10, Operand::reg(5), Operand::imm_f32(2.0f));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(bits_f32(out[lane]), (static_cast<f32>(lane) + 0.5f) * 2.0f);
  }
}

TEST(ExecFp, FfmaIsFused) {
  // Pick values where fma(a,b,c) != a*b+c in f32.
  const f32 a = 1.0f + 0x1.0p-12f;
  const f32 c = -1.0f;
  auto out = run_lane_kernel([&](KernelBuilder& b) {
    b.mov_f32(4, a);
    b.ffma_f32(10, Operand::reg(4), Operand::reg(4), Operand::imm_f32(c));
  });
  const f32 want = std::fmaf(a, a, c);
  EXPECT_NE(want, a * a + c);  // the case actually distinguishes fusion
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(bits_f32(out[lane]), want);
}

TEST(ExecFp, FMinMaxF32) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0));
    b.fmnmx_f32(10, Operand::reg(4), Operand::imm_f32(15.5f), MinMax::kMin);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(bits_f32(out[lane]), std::fmin(static_cast<f32>(lane), 15.5f));
  }
}

TEST(ExecFp, F64ArithmeticOnPairs) {
  auto out = run_lane_kernel64([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0), DType::kF64);  // lane as double in R4:5
    b.mov_u64(6, f64_bits(2.5));
    b.ffma_f64(8, Operand::reg(4), Operand::reg(6), Operand::reg(6));
    b.fmul_f64(10, Operand::reg(8), Operand::reg(6));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    const f64 want = std::fma(static_cast<f64>(lane), 2.5, 2.5) * 2.5;
    EXPECT_EQ(bits_f64(out[lane]), want);
  }
}

TEST(ExecFp, FsetpF32) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0));
    b.fsetp(CmpOp::kGt, 0, Operand::reg(4), Operand::imm_f32(15.0f));
    b.sel(10, Operand::imm_u(1), Operand::imm_u(0), 0);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane > 15 ? 1u : 0u);
  }
}

TEST(ExecFp, MufuFunctions) {
  struct Case {
    MufuKind kind;
    std::function<f32(f32)> expect;
  };
  const Case cases[] = {
      {MufuKind::kRcp, [](f32 x) { return 1.0f / x; }},
      {MufuKind::kSqrt, [](f32 x) { return std::sqrt(x); }},
      {MufuKind::kRsq, [](f32 x) { return 1.0f / std::sqrt(x); }},
      {MufuKind::kExp2, [](f32 x) { return std::exp2(x); }},
      {MufuKind::kLog2, [](f32 x) { return std::log2(x); }},
      {MufuKind::kSin, [](f32 x) { return std::sin(x); }},
      {MufuKind::kCos, [](f32 x) { return std::cos(x); }},
  };
  for (const Case& c : cases) {
    auto out = run_lane_kernel([&](KernelBuilder& b) {
      b.iadd_u32(4, Operand::reg(0), Operand::imm_u(1));  // avoid 0
      b.i2f(4, Operand::reg(4));
      b.mufu(c.kind, 10, Operand::reg(4));
    });
    for (u32 lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(bits_f32(out[lane]), c.expect(static_cast<f32>(lane + 1)))
          << "kind=" << static_cast<int>(c.kind) << " lane=" << lane;
    }
  }
}

TEST(ExecFp, F2IConversionsSaturateAndTruncate) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0));
    b.fmul_f32(4, Operand::reg(4), Operand::imm_f32(1.75f));
    b.f2i(10, Operand::reg(4));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane],
              static_cast<u32>(static_cast<i32>(static_cast<f32>(lane) * 1.75f)));
  }
}

TEST(ExecFp, F2ISaturatesAtIntMax) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_f32(4, 1e20f);
    b.f2i(10, Operand::reg(4));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(static_cast<i32>(out[lane]), std::numeric_limits<i32>::max());
  }
}

TEST(ExecFp, F2FWidenNarrowRoundTrip) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.i2f(4, Operand::reg(0));
    b.fmul_f32(4, Operand::reg(4), Operand::imm_f32(0.1f));
    b.f2f_widen(6, Operand::reg(4));   // F32 -> F64 in R6:7
    b.f2f_narrow(10, Operand::reg(6)); // back to F32
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(bits_f32(out[lane]), static_cast<f32>(lane) * 0.1f);
  }
}

// ------------------------------------------------- special registers --

TEST(ExecSpecial, ThreadAndBlockCoordinates) {
  using sim::SpecialReg;
  // 2x2 grid of 4x8-thread blocks; store flattened coordinates.
  KernelBuilder b("coords");
  b.s2r(2, SpecialReg::kTidX);
  b.s2r(3, SpecialReg::kTidY);
  b.s2r(4, SpecialReg::kCtaidX);
  b.s2r(5, SpecialReg::kCtaidY);
  b.s2r(6, SpecialReg::kNtidX);
  b.s2r(7, SpecialReg::kNtidY);
  // gx = ctaid.x*ntid.x+tid.x ; gy = ctaid.y*ntid.y+tid.y
  b.imad_u32(8, Operand::reg(4), Operand::reg(6), Operand::reg(2));
  b.imad_u32(9, Operand::reg(5), Operand::reg(7), Operand::reg(3));
  // linear = gy * (2*4) + gx ; out[linear] = linear
  b.imad_u32(12, Operand::reg(9), Operand::imm_u(8), Operand::reg(8));
  b.ldc_u64(14, 0);
  b.imad_wide(16, Operand::reg(12), Operand::imm_u(4), Operand::reg(14));
  b.stg(16, 12);
  b.exit_();
  auto program = sim_test::must(b);

  sim::Device device(arch::toy());
  auto out = device.malloc_n<u32>(8 * 16);
  ASSERT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  auto launch =
      device.launch(program, Dim3(2, 2), Dim3(4, 8), params);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();

  std::vector<u32> host(8 * 16);
  ASSERT_EQ(device.to_host(std::span<u32>(host), out.value()),
            sim::TrapKind::kNone);
  for (u32 i = 0; i < host.size(); ++i) EXPECT_EQ(host[i], i);
}

TEST(ExecSpecial, GridDimensionRegisters) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.s2r(4, sim::SpecialReg::kNctaidX);
    b.s2r(5, sim::SpecialReg::kNtidX);
    b.s2r(6, sim::SpecialReg::kWarpId);
    b.imad_u32(10, Operand::reg(4), Operand::reg(5), Operand::reg(6));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 1u * 32u);
}

}  // namespace
}  // namespace gfi
