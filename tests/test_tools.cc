// Tests for the tooling layer: instruction tracer, XID mapping, the
// statistical comparison helpers, and the strict CLI value parsers.
#include <gtest/gtest.h>

#include "analysis/compare.h"
#include "arch/arch.h"
#include "sassim/tracer.h"
#include "sassim/xid.h"
#include "sim_test_util.h"
#include "tools/cli_args.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using gfi::Dim3;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::TracerHook;
using sim_test::must;

sim::Program tiny_kernel() {
  KernelBuilder b("tiny");
  b.mov_u32(2, Operand::imm_u(1));
  b.iadd_u32(2, Operand::reg(2), Operand::imm_u(2));
  b.exit_();
  return must(b);
}

TEST(Tracer, RecordsEveryInstructionInOrder) {
  Device device(arch::toy());
  TracerHook tracer;
  sim::LaunchOptions options;
  options.hooks.push_back(&tracer);
  auto launch = device.launch(tiny_kernel(), Dim3(1), Dim3(32), {}, options);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_EQ(tracer.entries().size(), 3u);
  EXPECT_EQ(tracer.entries()[0].op, sim::Opcode::kMov);
  EXPECT_EQ(tracer.entries()[1].op, sim::Opcode::kIAdd);
  EXPECT_EQ(tracer.entries()[2].op, sim::Opcode::kExit);
  for (u64 i = 0; i < 3; ++i) EXPECT_EQ(tracer.entries()[i].dyn_index, i);
  EXPECT_EQ(tracer.seen(), 3u);
  EXPECT_FALSE(tracer.truncated());
}

TEST(Tracer, FiltersByGroupAndWarp) {
  Device device(arch::toy());
  TracerHook tracer;
  tracer.set_filter(TracerHook::only_group(sim::InstrGroup::kControl));
  sim::LaunchOptions options;
  options.hooks.push_back(&tracer);
  auto launch = device.launch(tiny_kernel(), Dim3(1), Dim3(64), {}, options);
  ASSERT_TRUE(launch.is_ok());
  // Only the two warps' EXITs survive the filter.
  EXPECT_EQ(tracer.entries().size(), 2u);
  EXPECT_EQ(tracer.seen(), 6u);

  tracer.clear();
  tracer.set_filter(TracerHook::only_warp(0, 1));
  (void)device.launch(tiny_kernel(), Dim3(1), Dim3(64), {}, options);
  EXPECT_EQ(tracer.entries().size(), 3u);
  for (const auto& entry : tracer.entries()) EXPECT_EQ(entry.warp, 1u);
}

TEST(Tracer, WindowFilterAndTruncation) {
  Device device(arch::toy());
  TracerHook tracer(/*max_entries=*/2);
  tracer.set_filter(TracerHook::window(0, 5));
  sim::LaunchOptions options;
  options.hooks.push_back(&tracer);
  (void)device.launch(tiny_kernel(), Dim3(4), Dim3(32), {}, options);
  EXPECT_EQ(tracer.entries().size(), 2u);
  EXPECT_TRUE(tracer.truncated());
  EXPECT_NE(tracer.to_string().find("truncated"), std::string::npos);
}

TEST(Xid, TrapMapping) {
  EXPECT_EQ(sim::xid_for_trap(sim::TrapKind::kEccDoubleBit), 48);
  EXPECT_EQ(sim::xid_for_trap(sim::TrapKind::kIllegalGlobalAddress), 31);
  EXPECT_EQ(sim::xid_for_trap(sim::TrapKind::kIllegalSharedAddress), 31);
  EXPECT_EQ(sim::xid_for_trap(sim::TrapKind::kWatchdogTimeout), 8);
  EXPECT_EQ(sim::xid_for_trap(sim::TrapKind::kNone), 0);
}

TEST(Xid, LogLineLooksLikeDmesg) {
  sim::Trap trap;
  trap.kind = sim::TrapKind::kEccDoubleBit;
  trap.address = 0x1234;
  const std::string line = sim::xid_log_line(trap);
  EXPECT_NE(line.find("NVRM: Xid"), std::string::npos);
  EXPECT_NE(line.find("48"), std::string::npos);
  EXPECT_NE(line.find("Double Bit ECC"), std::string::npos);
  EXPECT_TRUE(sim::xid_log_line(sim::Trap{}).empty());
}

// -------------------------------------------------------------- compare --

TEST(Compare, IdenticalProportionsNotSignificant) {
  const auto test = analysis::two_proportion_z(50, 100, 50, 100);
  EXPECT_DOUBLE_EQ(test.p1, 0.5);
  EXPECT_DOUBLE_EQ(test.p2, 0.5);
  EXPECT_NEAR(test.z, 0.0, 1e-12);
  EXPECT_FALSE(test.significant());
}

TEST(Compare, LargeDifferenceSignificant) {
  const auto test = analysis::two_proportion_z(80, 100, 20, 100);
  EXPECT_TRUE(test.significant(0.01));
  EXPECT_GT(test.z, 5.0);
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(Compare, SmallSampleSameDifferenceNotSignificant) {
  const auto test = analysis::two_proportion_z(3, 10, 1, 10);
  EXPECT_FALSE(test.significant());
}

TEST(Compare, DegenerateInputs) {
  EXPECT_FALSE(analysis::two_proportion_z(0, 0, 5, 10).significant());
  EXPECT_FALSE(analysis::two_proportion_z(0, 10, 0, 10).significant());
  EXPECT_FALSE(analysis::two_proportion_z(10, 10, 10, 10).significant());
}

TEST(Compare, ComposedRateWeightsByMix) {
  sim::Profile profile;
  profile.total_warp_instrs = 100;
  profile.warp_instrs_by_group[static_cast<int>(sim::InstrGroup::kFp32)] = 75;
  profile.warp_instrs_by_group[static_cast<int>(sim::InstrGroup::kInt)] = 25;

  analysis::GroupRates rates;
  rates.set(sim::InstrGroup::kFp32, 0.4);
  rates.set(sim::InstrGroup::kInt, 0.8);
  EXPECT_NEAR(analysis::composed_rate(profile, rates), 0.5, 1e-12);

  // Unknown groups are excluded from the covered population.
  analysis::GroupRates partial;
  partial.set(sim::InstrGroup::kFp32, 0.4);
  EXPECT_NEAR(analysis::composed_rate(profile, partial), 0.4, 1e-12);
}

TEST(Compare, ComposedRateEmptyProfile) {
  sim::Profile profile;
  analysis::GroupRates rates;
  EXPECT_EQ(analysis::composed_rate(profile, rates), 0.0);
}

// ------------------------------------------------------------ cli_args --
//
// Campaign flag lines must be replayable verbatim, so a value either parses
// completely or the flag is rejected — no strtoull "10k means 10" leniency.

TEST(CliArgs, ParseU64AcceptsWholeStringsOnly) {
  EXPECT_EQ(cli::parse_u64("0"), 0u);
  EXPECT_EQ(cli::parse_u64("42"), 42u);
  EXPECT_EQ(cli::parse_u64("18446744073709551615"), ~0ULL);
  EXPECT_EQ(cli::parse_u64("0x1f", 0), 0x1fu);  // base 0: hex seeds

  EXPECT_FALSE(cli::parse_u64(""));
  EXPECT_FALSE(cli::parse_u64("10k"));
  EXPECT_FALSE(cli::parse_u64("abc"));
  EXPECT_FALSE(cli::parse_u64("-1"));
  EXPECT_FALSE(cli::parse_u64("+5"));
  EXPECT_FALSE(cli::parse_u64(" 7"));
  EXPECT_FALSE(cli::parse_u64("18446744073709551616"));  // 2^64: ERANGE
  EXPECT_FALSE(cli::parse_u64("0x1f"));  // hex needs base 0
}

TEST(CliArgs, ParseU32EnforcesRange) {
  EXPECT_EQ(cli::parse_u32("4294967295"), 0xffffffffu);
  EXPECT_FALSE(cli::parse_u32("4294967296"));
  EXPECT_FALSE(cli::parse_u32("99999999999999"));
  EXPECT_FALSE(cli::parse_u32("12x"));
}

TEST(CliArgs, ParseShardValidatesIndexAgainstCount) {
  auto shard = cli::parse_shard("2/8");
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->index, 2u);
  EXPECT_EQ(shard->count, 8u);
  EXPECT_TRUE(cli::parse_shard("0/1").has_value());

  EXPECT_FALSE(cli::parse_shard("3/2"));   // index >= count
  EXPECT_FALSE(cli::parse_shard("2/2"));   // index == count
  EXPECT_FALSE(cli::parse_shard("0/0"));   // zero shards
  EXPECT_FALSE(cli::parse_shard("abc/2"));
  EXPECT_FALSE(cli::parse_shard("1/x"));
  EXPECT_FALSE(cli::parse_shard("12"));    // no slash
  EXPECT_FALSE(cli::parse_shard("/4"));
  EXPECT_FALSE(cli::parse_shard("1/"));
  EXPECT_FALSE(cli::parse_shard("-1/4"));
  EXPECT_FALSE(cli::parse_shard("1/4/2"));  // trailing garbage
}

}  // namespace
}  // namespace gfi
