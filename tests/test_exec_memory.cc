// Memory-system instruction tests: global/shared loads and stores at all
// widths, atomics, parameter loads, and the address traps.
#include <gtest/gtest.h>

#include "sim_test_util.h"

namespace gfi {
namespace {

using sim::AtomKind;
using sim::CmpOp;
using sim::Device;
using gfi::Dim3;
using sim::DType;
using sim::KernelBuilder;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;
using sim_test::run_lane_kernel;

/// Launches `program` with the given params and returns the result.
sim::LaunchResult launch_or_die(Device& device, const sim::Program& program,
                                Dim3 grid, Dim3 block,
                                std::span<const u64> params) {
  auto launch = device.launch(program, grid, block, params);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();
  return launch.value();
}

TEST(ExecMemory, GlobalLoadStoreRoundTrip) {
  Device device(arch::toy());
  auto in = device.malloc_n<u32>(32);
  auto out = device.malloc_n<u32>(32);
  ASSERT_TRUE(in.is_ok());
  ASSERT_TRUE(out.is_ok());
  std::vector<u32> data(32);
  for (u32 i = 0; i < 32; ++i) data[i] = i * 1000 + 7;
  ASSERT_TRUE(device.to_device<u32>(in.value(), data).is_ok());

  KernelBuilder b("copy");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.ldc_u64(2, 0);
  b.ldc_u64(4, 1);
  b.imad_wide(6, Operand::reg(0), Operand::imm_u(4), Operand::reg(2));
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
  b.ldg(12, 6);
  b.stg(8, 12);
  b.exit_();
  auto program = must(b);

  const u64 params[] = {in.value(), out.value()};
  auto result = launch_or_die(device, program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(result.ok()) << result.trap.to_string();

  std::vector<u32> host(32);
  ASSERT_EQ(device.to_host(std::span<u32>(host), out.value()), TrapKind::kNone);
  EXPECT_EQ(host, data);
}

TEST(ExecMemory, NarrowWidthsZeroExtend) {
  Device device(arch::toy());
  auto in = device.malloc_n<u32>(32);
  auto out = device.malloc_n<u32>(32);
  ASSERT_TRUE(in.is_ok());
  ASSERT_TRUE(out.is_ok());
  std::vector<u32> data(32, 0xAABBCCDDu);
  ASSERT_TRUE(device.to_device<u32>(in.value(), data).is_ok());

  for (u8 width : {u8{1}, u8{2}}) {
    KernelBuilder b("narrow");
    b.s2r(0, sim::SpecialReg::kLaneId);
    b.ldc_u64(2, 0);
    b.ldc_u64(4, 1);
    b.imad_wide(6, Operand::reg(0), Operand::imm_u(4), Operand::reg(2));
    b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.ldg(12, 6, 0, width);
    b.stg(8, 12);
    b.exit_();
    auto program = must(b);
    const u64 params[] = {in.value(), out.value()};
    auto result = launch_or_die(device, program, Dim3(1), Dim3(32), params);
    ASSERT_TRUE(result.ok());
    std::vector<u32> host(32);
    ASSERT_EQ(device.to_host(std::span<u32>(host), out.value()),
              TrapKind::kNone);
    const u32 want = width == 1 ? 0xDDu : 0xCCDDu;
    for (u32 v : host) EXPECT_EQ(v, want);
  }
}

TEST(ExecMemory, SharedMemoryRoundTripAndRotation) {
  // Each lane writes lane*3 to shared[lane], reads shared[(lane+1)%32].
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.set_shared_bytes(32 * 4);
    b.imul_u32(4, Operand::reg(0), Operand::imm_u(3));
    b.shf(sim::ShiftKind::kLeft, 5, Operand::reg(0), Operand::imm_u(2));
    b.sts(5, 4);
    b.bar();
    b.iadd_u32(6, Operand::reg(0), Operand::imm_u(1));
    b.lop(sim::LopKind::kAnd, 6, Operand::reg(6), Operand::imm_u(31));
    b.shf(sim::ShiftKind::kLeft, 6, Operand::reg(6), Operand::imm_u(2));
    b.lds(10, 6);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], ((lane + 1) % 32) * 3);
  }
}

TEST(ExecMemory, GlobalAtomicsAllKinds) {
  // 32 lanes atomically add lane id into one word: sum = 496.
  Device device(arch::toy());
  auto cell = device.malloc_n<u32>(4);
  ASSERT_TRUE(cell.is_ok());
  const std::vector<u32> init = {0, 100, 5, 42};
  ASSERT_TRUE(device.to_device<u32>(cell.value(), init).is_ok());

  KernelBuilder b("atomics");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.ldc_u64(2, 0);
  b.atomg(AtomKind::kAdd, sim::kRegZ, 2, Operand::reg(0));
  // min into cell[1]: lanes write min(100, lane) -> 0
  b.iadd_u64(4, Operand::reg(2), Operand::imm_u(4));
  b.atomg(AtomKind::kMin, sim::kRegZ, 4, Operand::reg(0));
  // max into cell[2]: -> 31
  b.iadd_u64(6, Operand::reg(2), Operand::imm_u(8));
  b.atomg(AtomKind::kMax, sim::kRegZ, 6, Operand::reg(0));
  // cas on cell[3]: only the lane seeing 42 swaps to 7.
  b.iadd_u64(8, Operand::reg(2), Operand::imm_u(12));
  b.atomg(AtomKind::kCas, 12, 8, Operand::imm_u(42), Operand::imm_u(7));
  b.exit_();
  auto program = must(b);
  const u64 params[] = {cell.value()};
  auto result = launch_or_die(device, program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(result.ok()) << result.trap.to_string();

  std::vector<u32> host(4);
  ASSERT_EQ(device.to_host(std::span<u32>(host), cell.value()),
            TrapKind::kNone);
  EXPECT_EQ(host[0], 496u);  // sum 0..31
  EXPECT_EQ(host[1], 0u);
  EXPECT_EQ(host[2], 31u);  // max(5, lanes 0..31)
  EXPECT_EQ(host[3], 7u);    // CAS succeeded exactly once
}

TEST(ExecMemory, SharedAtomicsAndExchange) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.set_shared_bytes(8);
    b.mov_u32(4, Operand::imm_u(0));
    b.isetp(CmpOp::kEq, 0, Operand::reg(0), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.mov_u32(5, Operand::imm_u(0));
      b.sts(4, 5);
    });
    b.bar();
    b.atoms(AtomKind::kAdd, 6, 4, Operand::imm_u(1));  // R6 = old ticket
    b.mov_u32(10, Operand::reg(6));
  });
  // Tickets are 0..31 in some order; each exactly once.
  std::vector<bool> seen(32, false);
  for (u32 lane = 0; lane < 32; ++lane) {
    ASSERT_LT(out[lane], 32u);
    EXPECT_FALSE(seen[out[lane]]);
    seen[out[lane]] = true;
  }
}

TEST(ExecMemory, FloatAtomicAdd) {
  Device device(arch::toy());
  auto cell = device.malloc_n<f32>(1);
  ASSERT_TRUE(cell.is_ok());
  const f32 zero = 0.0f;
  ASSERT_TRUE(
      device.to_device<f32>(cell.value(), std::span<const f32>(&zero, 1))
          .is_ok());

  KernelBuilder b("fatomic");
  b.ldc_u64(2, 0);
  b.mov_f32(4, 1.5f);
  b.atomg(AtomKind::kAdd, sim::kRegZ, 2, Operand::reg(4), Operand::none(),
          DType::kF32);
  b.exit_();
  auto program = must(b);
  const u64 params[] = {cell.value()};
  auto result = launch_or_die(device, program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(result.ok());

  f32 host = 0;
  ASSERT_EQ(device.to_host(std::span<f32>(&host, 1), cell.value()),
            TrapKind::kNone);
  EXPECT_EQ(host, 48.0f);  // 32 * 1.5, exact in f32
}

TEST(ExecMemory, ParamLoadBoundsChecked) {
  KernelBuilder b("bad_param");
  b.ldc_u32(2, 3);  // requires 4 params
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  const u64 params[] = {1, 2};  // too few
  auto launch = device.launch(program, Dim3(1), Dim3(32), params);
  EXPECT_FALSE(launch.is_ok());  // rejected before execution
}

// ------------------------------------------------------------- traps --

TEST(ExecMemoryTrap, OutOfBoundsGlobalLoad) {
  KernelBuilder b("oob");
  b.mov_u64(2, 0x10ULL);  // below the device arena base
  b.ldg(4, 2);
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalGlobalAddress);
}

TEST(ExecMemoryTrap, MisalignedAccess) {
  Device device(arch::toy());
  auto buf = device.malloc_n<u32>(64);
  ASSERT_TRUE(buf.is_ok());
  KernelBuilder b("misaligned");
  b.ldc_u64(2, 0);
  b.iadd_u64(2, Operand::reg(2), Operand::imm_u(2));  // 2-byte offset
  b.ldg(4, 2);  // 4-byte load at 2-byte alignment
  b.exit_();
  auto program = must(b);
  const u64 params[] = {buf.value()};
  auto launch = device.launch(program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kMisalignedAddress);
}

TEST(ExecMemoryTrap, SharedOutOfBounds) {
  KernelBuilder b("shared_oob");
  b.set_shared_bytes(64);
  b.mov_u32(2, Operand::imm_u(128));
  b.mov_u32(3, Operand::imm_u(1));
  b.sts(2, 3);
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalSharedAddress);
  EXPECT_GT(launch.value().trap.pc, 0u);
}

TEST(ExecMemoryTrap, TrapReportsFaultingAddress) {
  KernelBuilder b("addr_report");
  b.mov_u64(2, 0xDEAD0000ULL);
  b.stg(2, 4);
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalGlobalAddress);
  EXPECT_EQ(launch.value().trap.address, 0xDEAD0000ULL);
}

}  // namespace
}  // namespace gfi
