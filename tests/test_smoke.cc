// End-to-end smoke: every registered workload must run fault-free on every
// machine preset and pass its own golden check bitwise.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "sassim/device.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

class WorkloadGolden
    : public ::testing::TestWithParam<std::tuple<std::string, arch::GpuModel>> {
};

TEST_P(WorkloadGolden, RunsCleanAndMatchesReference) {
  const auto& [name, model] = GetParam();
  auto workload = wl::make_workload(name);
  ASSERT_NE(workload, nullptr) << name;

  sim::Device device(arch::config_for(model));
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();

  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(launch.is_ok()) << launch.status().to_string();
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();
  EXPECT_GT(launch.value().dyn_warp_instrs, 0u);
  EXPECT_GT(launch.value().cycles, 0u);

  auto checked = workload->check(device);
  ASSERT_TRUE(checked.is_ok()) << checked.status().to_string();
  EXPECT_EQ(checked.value().trap, sim::TrapKind::kNone);
  EXPECT_TRUE(checked.value().result.passed())
      << name << " max rel err = " << checked.value().result.max_rel_err;
  if (workload->tolerance() < 1e-3) {
    // All references except the atomic-order-dependent ones (dotprod)
    // replicate the device arithmetic bit-for-bit.
    EXPECT_TRUE(checked.value().result.bitwise_equal)
        << name << " max rel err = " << checked.value().result.max_rel_err;
  }
}

std::vector<std::tuple<std::string, arch::GpuModel>> all_cases() {
  std::vector<std::tuple<std::string, arch::GpuModel>> cases;
  for (const auto& name : wl::workload_names()) {
    for (arch::GpuModel model :
         {arch::GpuModel::kToy, arch::GpuModel::kA100, arch::GpuModel::kH100}) {
      cases.emplace_back(name, model);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadGolden, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<WorkloadGolden::ParamType>& info) {
      return std::get<0>(info.param) + "_" +
             arch::model_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gfi
