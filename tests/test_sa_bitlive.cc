// Bit-liveness (sa/bitlive.h): per-opcode transfer edge cases, the
// strict-refinement contract over register-level liveness, and the
// completeness guard pairing every opcode with an enumerated bit-semantics
// category.
#include <gtest/gtest.h>

#include "harden/swift.h"
#include "sa/ace.h"
#include "sa/bitlive.h"
#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/defuse.h"
#include "sassim/kernel_builder.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using sim::BitSemantics;
using sim::CmpOp;
using sim::DType;
using sim::KernelBuilder;
using sim::Opcode;
using sim::Operand;
using sim::ShiftKind;

constexpr u32 kAll = 0xffffffffu;

sim::Program must_build(KernelBuilder& b) {
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  return std::move(program).take();
}

// ---------------------------------------------------------------------------
// Completeness guard: every opcode carries an explicitly enumerated
// bit-semantics category — conservative fallbacks are allowed but must be
// spelled out here, so a new opcode cannot slip through on a silent default
// (sim::bit_semantics itself is a no-default switch, so -Wswitch guards the
// implementation side).
// ---------------------------------------------------------------------------
struct SemanticsEntry {
  Opcode op;
  BitSemantics sem;
};
constexpr SemanticsEntry kExpectedSemantics[] = {
    {Opcode::kNop, BitSemantics::kNone},
    {Opcode::kExit, BitSemantics::kNone},
    {Opcode::kBra, BitSemantics::kNone},
    {Opcode::kSsy, BitSemantics::kNone},
    {Opcode::kSync, BitSemantics::kNone},
    {Opcode::kBar, BitSemantics::kNone},
    {Opcode::kMov, BitSemantics::kPassThrough},
    {Opcode::kSel, BitSemantics::kPassThrough},
    {Opcode::kS2r, BitSemantics::kNone},
    {Opcode::kLdc, BitSemantics::kNone},
    {Opcode::kIAdd, BitSemantics::kCarry},
    {Opcode::kIMul, BitSemantics::kCarry},
    {Opcode::kIMad, BitSemantics::kCarry},
    {Opcode::kIMnmx, BitSemantics::kAllOrNothing},
    {Opcode::kISetp, BitSemantics::kCompare},
    {Opcode::kLop, BitSemantics::kBitwise},
    {Opcode::kShf, BitSemantics::kShift},
    {Opcode::kPopc, BitSemantics::kAllOrNothing},
    {Opcode::kFAdd, BitSemantics::kAllOrNothing},
    {Opcode::kFMul, BitSemantics::kAllOrNothing},
    {Opcode::kFFma, BitSemantics::kAllOrNothing},
    {Opcode::kFMnmx, BitSemantics::kAllOrNothing},
    {Opcode::kFSetp, BitSemantics::kCompare},
    {Opcode::kMufu, BitSemantics::kAllOrNothing},
    {Opcode::kF2I, BitSemantics::kAllOrNothing},
    {Opcode::kI2F, BitSemantics::kAllOrNothing},
    {Opcode::kF2F, BitSemantics::kAllOrNothing},
    {Opcode::kLdg, BitSemantics::kMemory},
    {Opcode::kStg, BitSemantics::kMemory},
    {Opcode::kLds, BitSemantics::kMemory},
    {Opcode::kSts, BitSemantics::kMemory},
    {Opcode::kAtomG, BitSemantics::kMemory},
    {Opcode::kAtomS, BitSemantics::kMemory},
    {Opcode::kShfl, BitSemantics::kCrossLane},
    {Opcode::kVote, BitSemantics::kCrossLane},
    {Opcode::kHmma, BitSemantics::kCrossLane},
};
static_assert(std::size(kExpectedSemantics) == sim::kOpcodeCount,
              "enumerate a BitSemantics category for every opcode");

TEST(SaBitlive, EveryOpcodeHasEnumeratedBitSemantics) {
  bool seen[sim::kOpcodeCount] = {};
  for (const SemanticsEntry& entry : kExpectedSemantics) {
    EXPECT_EQ(sim::bit_semantics(entry.op), entry.sem)
        << sim::opcode_name(entry.op);
    seen[static_cast<int>(entry.op)] = true;
  }
  for (int i = 0; i < sim::kOpcodeCount; ++i) {
    EXPECT_TRUE(seen[i]) << "opcode " << i << " missing from the table";
  }
}

// Cross-audit over the whole built-in suite: the category each instruction
// claims must be consistent with its def_use footprint, so bit_semantics and
// sim::def_use cannot drift apart silently.
TEST(SaBitlive, BitSemanticsConsistentWithDefUseFootprints) {
  harden::register_hardened_workloads();
  for (const std::string& name : wl::workload_names()) {
    auto workload = wl::make_workload(name);
    ASSERT_NE(workload, nullptr) << name;
    const sim::Program& program = workload->program();
    const sim::DecodedProgram& dec = program.decoded();
    for (u32 pc = 0; pc < program.size(); ++pc) {
      const sim::Instr& instr = program.at(pc);
      const sim::DefUse& du = dec.def_use(pc);
      switch (sim::bit_semantics(instr.op)) {
        case BitSemantics::kNone:
          EXPECT_TRUE(du.src_regs.empty())
              << name << " pc " << pc << ": kNone opcode with data sources";
          break;
        case BitSemantics::kMemory:
          EXPECT_TRUE(instr.is_memory()) << name << " pc " << pc;
          break;
        case BitSemantics::kCompare:
          EXPECT_NE(du.dst_preds, 0) << name << " pc " << pc;
          break;
        case BitSemantics::kPassThrough:
        case BitSemantics::kBitwise:
        case BitSemantics::kShift:
        case BitSemantics::kCarry:
          EXPECT_TRUE(instr.writes_reg()) << name << " pc " << pc;
          break;
        case BitSemantics::kAllOrNothing:
        case BitSemantics::kCrossLane:
          break;  // conservative categories carry no footprint invariant
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transfer-function edge cases, asserted through the strike-footprint masks
// StaticSiteAnalysis records (the consumer the campaign pruning relies on).
// ---------------------------------------------------------------------------

// The executor masks shift amounts (& 31; & 63 wide): SHF.L by 32 wraps to a
// shift by 0, so every source bit stays live — a naive ">= width means the
// value is gone" transfer would misclassify the producer as dead.
TEST(SaBitlive, ShiftByThirtyTwoWrapsToZero) {
  KernelBuilder b("shf_wrap");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(0xdeadbeef));            // pc 1
  b.shf(ShiftKind::kLeft, 3, Operand::reg(2), Operand::imm_u(32));
  b.stg(8, 3);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kLive);
  EXPECT_EQ(sites.strike_live_mask(1, 0), kAll);
  EXPECT_EQ(sites.num_dead_bits(1), 0u);
}

// A left shift by k kills the top k source bits (they fall off the end);
// a logical right shift kills the bottom k.
TEST(SaBitlive, ShiftTranslatesLiveMasks) {
  KernelBuilder b("shf_masks");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(1));                     // pc 1: << 8 source
  b.shf(ShiftKind::kLeft, 3, Operand::reg(2), Operand::imm_u(8));
  b.mov_u32(4, Operand::imm_u(2));                     // pc 3: >> 12 source
  b.shf(ShiftKind::kRightLogical, 5, Operand::reg(4), Operand::imm_u(12));
  b.stg(8, 3);
  b.stg(8, 5, 4);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(1, 0), 0x00ffffffu);
  EXPECT_EQ(sites.num_dead_bits(1), 8u);
  EXPECT_EQ(sites.site_class(3), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(3, 0), 0xfffff000u);
  EXPECT_EQ(sites.num_dead_bits(3), 12u);
}

// A variable shift amount is consulted only in its low log2(width) bits:
// flipping bit 5+ of a 32-bit shift amount cannot change the result.
TEST(SaBitlive, VariableShiftDemandsOnlyAmountLowBits) {
  KernelBuilder b("shf_var");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(77));   // pc 1: data (fully live: punt)
  b.mov_u32(4, Operand::imm_u(3));    // pc 2: amount (low 5 bits live)
  b.shf(ShiftKind::kLeft, 3, Operand::reg(2), Operand::reg(4));
  b.stg(8, 3);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(2, 0), 31u);
  EXPECT_EQ(sites.num_dead_bits(2), 27u);
}

// 64-bit shifts mask the amount with 63 instead.
TEST(SaBitlive, WideShiftDemandsSixAmountBits) {
  KernelBuilder b("shf_var_wide");
  b.ldc_u64(8, 0);
  b.mov_u64(2, 0x123456789abcdef0ull);  // pc 1: pair R2:R3
  b.mov_u32(6, Operand::imm_u(7));      // pc 2: amount (low 6 bits live)
  b.shf(ShiftKind::kLeft, 4, Operand::reg(2), Operand::reg(6), DType::kU64);
  b.stg(8, 4, 0, 8);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(2, 0), 63u);
}

// IMAD.WIDE: when only the low word of the 64-bit product is consumed, the
// accumulator's high word is dead (it only feeds the high result word), but
// the factors and the low accumulator word stay fully live.
TEST(SaBitlive, ImadWideAccumulatorHighWordDies) {
  KernelBuilder b("imad_wide");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(3));    // pc 1: factor
  b.mov_u32(3, Operand::imm_u(5));    // pc 2: factor
  b.mov_u32(4, Operand::imm_u(7));    // pc 3: acc lo
  b.mov_u32(5, Operand::imm_u(9));    // pc 4: acc hi
  b.imad_wide(6, Operand::reg(2), Operand::reg(3), Operand::reg(4));  // pc 5
  b.stg(8, 6);  // only the low product word reaches memory
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(3), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(4), sa::SiteClass::kDead);
  // The IMAD.WIDE site itself: pair footprint, high word dead.
  EXPECT_EQ(sites.site_class(5), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_span(5), 2u);
  EXPECT_EQ(sites.strike_live_mask(5, 0), kAll);
  EXPECT_EQ(sites.strike_live_mask(5, 1), 0u);
  EXPECT_EQ(sites.num_dead_bits(5), 32u);
}

// A guarded redefinition cannot kill liveness: the fall-through value of the
// masked lanes still reaches the store.
TEST(SaBitlive, GuardedWriteDoesNotKillBits) {
  KernelBuilder b("guarded_def");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(1));                                // pc 1
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(5));     // pc 2
  b.mov_u32(2, Operand::imm_u(42));                               // pc 3
  b.guard_last(0);
  b.stg(8, 2);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kLive);
  EXPECT_EQ(sites.strike_live_mask(1, 0), kAll);
  EXPECT_EQ(sites.site_class(3), sa::SiteClass::kLive);
}

// Demand-driven predicate liveness: a predicate consumed only by a dead SEL
// is itself dead — register-level liveness alone (which sees the SEL read)
// would keep the ISETP site live, so this asserts the strict refinement.
TEST(SaBitlive, PredicateFeedingDeadSelectIsDead) {
  KernelBuilder b("dead_pred");
  b.mov_u32(2, Operand::imm_u(1));                                // pc 0
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(5));     // pc 1
  b.sel(3, Operand::imm_u(1), Operand::imm_u(0), 0);              // pc 2: dead
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kDead);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kDead);
  // And the compare's own source chain dies transitively.
  EXPECT_EQ(sites.site_class(0), sa::SiteClass::kDead);

  // Register-level liveness alone keeps P0 (and R2) live: the refinement is
  // strict, not a restatement.
  const sa::Cfg cfg = sa::Cfg::build(program);
  const sa::Liveness reg_live = sa::Liveness::compute(program, cfg);
  EXPECT_TRUE(reg_live.pred_live_out(1, 0));
  const sa::BitLiveness bits = sa::BitLiveness::compute(program, cfg, reg_live);
  EXPECT_FALSE(bits.pred_live_out(1, 0));
}

// Transitive dead chains: a value consumed only by computation that is
// itself dead is dead. Register-level liveness marks the producer live (it
// IS read); the demand-driven bit transfer zeroes the demand instead.
TEST(SaBitlive, TransitiveDeadChainsAreDead) {
  KernelBuilder b("dead_chain");
  b.mov_u32(2, Operand::imm_u(5));     // pc 0: read only by the dead mov
  b.mov_u32(3, Operand::reg(2));       // pc 1: R3 never read
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(0), sa::SiteClass::kDead);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kDead);

  const sa::Cfg cfg = sa::Cfg::build(program);
  const sa::Liveness reg_live = sa::Liveness::compute(program, cfg);
  EXPECT_TRUE(reg_live.reg_live_out(0, 2));  // register level: live
  const sa::BitLiveness bits = sa::BitLiveness::compute(program, cfg, reg_live);
  EXPECT_EQ(bits.reg_live_out_mask(0, 2), 0u);  // bit level: dead
}

// Narrow stores copy only mem_width bytes: a byte store demands just the low
// 8 bits of its data register.
TEST(SaBitlive, NarrowStoreDemandsLowBytes) {
  KernelBuilder b("narrow_store");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(0xab));  // pc 1
  b.stg(8, 2, 0, 1);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(1, 0), 0xffu);
  EXPECT_EQ(sites.num_dead_bits(1), 24u);
}

// LOP with a known immediate kills the masked-off source bits.
TEST(SaBitlive, LopImmediateKillsMaskedBits) {
  KernelBuilder b("lop_imm");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(0x1234));  // pc 1
  b.lop(sim::LopKind::kAnd, 3, Operand::reg(2), Operand::imm_u(0xff00));
  b.stg(8, 3);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kPartialDead);
  EXPECT_EQ(sites.strike_live_mask(1, 0), 0xff00u);
  EXPECT_EQ(sites.num_dead_bits(1), 24u);
}

// Loop back-edges: a value carried around a loop and consumed after it must
// stay live through the fixed point (one backward pass over the blocks in
// layout order would miss the back-edge contribution).
TEST(SaBitlive, LoopBackEdgeReachesFixedPoint) {
  KernelBuilder b("loop_live");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(0));     // pc 1: counter
  b.mov_u32(3, Operand::imm_u(1));     // pc 2: accumulator
  b.uniform_loop(2, Operand::imm_u(4), 6, [&] {
    b.iadd_u32(3, Operand::reg(3), Operand::imm_u(1));
  });
  b.stg(8, 3);
  b.exit_();
  const auto program = must_build(b);
  const auto sites = sa::StaticSiteAnalysis::analyze(program);

  u32 body_iadd = 0;
  for (u32 pc = 0; pc < program.size(); ++pc) {
    const sim::Instr& instr = program.at(pc);
    if (instr.op == Opcode::kIAdd && instr.dst.is_reg() &&
        instr.dst.index == 3) {
      body_iadd = pc;
    }
  }
  ASSERT_GT(body_iadd, 0u);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kLive);         // pre-loop def
  EXPECT_EQ(sites.site_class(body_iadd), sa::SiteClass::kLive);
  EXPECT_EQ(sites.strike_live_mask(body_iadd, 0), kAll);
}

// src_demand_mask is the forward face of the recorded state: the store's
// demand on a narrow data register matches the mask its producer carries.
TEST(SaBitlive, SrcDemandMatchesRecordedState) {
  KernelBuilder b("demand");
  b.ldc_u64(8, 0);
  b.mov_u32(2, Operand::imm_u(0xab));  // pc 1
  b.stg(8, 2, 0, 2);                   // pc 2: halfword store
  b.exit_();
  const auto program = must_build(b);
  const sa::Cfg cfg = sa::Cfg::build(program);
  const sa::Liveness reg_live = sa::Liveness::compute(program, cfg);
  const sa::BitLiveness bits = sa::BitLiveness::compute(program, cfg, reg_live);
  EXPECT_EQ(bits.src_demand_mask(2, 2), 0xffffu);
  EXPECT_EQ(bits.reg_live_out_mask(1, 2), 0xffffu);
  // The address register pair is always fully demanded (flips can trap).
  EXPECT_EQ(bits.src_demand_mask(2, 8), kAll);
  EXPECT_EQ(bits.src_demand_mask(2, 9), kAll);
}

}  // namespace
}  // namespace gfi
