// Tests for the adaptive campaign planner: the sequential stopping rule,
// stratified allocation, plan-event journaling, and the bit-identity
// contract — a stopped/stratified campaign that is killed, resumed,
// sharded, or merged must reproduce the exact bytes of an uninterrupted
// unsharded run deciding locally.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "arch/arch.h"
#include "common/stats.h"
#include "fi/campaign.h"
#include "fi/golden_cache.h"
#include "fi/journal.h"
#include "fi/planner.h"
#include "fi/supervisor.h"

namespace gfi {
namespace {

namespace fs = std::filesystem;

using fi::Campaign;
using fi::CampaignConfig;
using fi::Outcome;
using fi::PlanEvent;
using fi::Planner;
using fi::Supervisor;
using fi::SupervisorConfig;

constexpr u64 kSeed = 7;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gfi_plan_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// vecadd on toy with the planner knobs the whole file uses: K=50 blocks,
/// stop once every tracked CI is inside ±7% (reached around n=200 for this
/// workload's ~56% SDC rate), budget 600.
CampaignConfig adaptive_config(const std::string& journal) {
  CampaignConfig config;
  config.workload = "vecadd";
  config.machine = arch::toy();
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = 600;
  config.seed = kSeed;
  config.threads = 1;  // journal lines in index order
  config.journal_path = journal;
  config.planner.checkpoint_every = 50;
  config.planner.stop.target_half_width = 0.07;
  config.planner.stop.min_samples = 100;
  return config;
}

// ------------------------------------------------------- stopping rule ----

TEST(StoppingRule, DisabledByDefaultAndBelowFloor) {
  stats::StoppingRule off;
  EXPECT_FALSE(off.enabled());

  stats::StoppingRule rule;
  rule.target_half_width = 0.05;
  rule.min_samples = 100;
  EXPECT_TRUE(rule.enabled());
  // 0/50 has a sliver of a Wilson CI, but the floor holds the rule open
  // until the estimate has had a chance to move.
  EXPECT_FALSE(rule.satisfied(0, 50));
  EXPECT_TRUE(rule.satisfied(0, 400));
}

TEST(StoppingRule, FiresExactlyWhenTheWilsonCiFits) {
  stats::StoppingRule rule;
  rule.target_half_width = 0.05;
  rule.min_samples = 100;
  // p = 0.5 (worst case): half-width ~0.056 at n=300, ~0.049 at n=400.
  EXPECT_FALSE(rule.satisfied(150, 300));
  EXPECT_TRUE(rule.satisfied(200, 400));
}

// --------------------------------------------------- planner decisions ----

TEST(Planner, TracksThePaperHeadlineOutcomes) {
  const auto& tracked = fi::planner_tracked_outcomes();
  ASSERT_EQ(tracked.size(), 3u);
  EXPECT_EQ(tracked[0], Outcome::kMasked);
  EXPECT_EQ(tracked[1], Outcome::kSdc);
  EXPECT_EQ(tracked[2], Outcome::kDue);
}

TEST(Planner, PlanEventLinesRoundTrip) {
  PlanEvent alloc;
  alloc.kind = PlanEvent::Kind::kAlloc;
  alloc.checkpoint = 3;
  alloc.alloc[0] = 17;
  alloc.alloc[5] = 33;
  const std::string alloc_line = fi::plan_event_line(alloc);
  EXPECT_TRUE(fi::is_plan_line(alloc_line));
  auto alloc_parsed = fi::parse_plan_event(alloc_line);
  ASSERT_TRUE(alloc_parsed.is_ok()) << alloc_parsed.status().to_string();
  EXPECT_EQ(alloc_parsed.value(), alloc);

  PlanEvent stop;
  stop.kind = PlanEvent::Kind::kStop;
  stop.stop_at = 250;
  auto stop_parsed = fi::parse_plan_event(fi::plan_event_line(stop));
  ASSERT_TRUE(stop_parsed.is_ok()) << stop_parsed.status().to_string();
  EXPECT_EQ(stop_parsed.value(), stop);

  EXPECT_FALSE(fi::is_plan_line("{\"i\":3,\"outcome\":\"SDC\"}"));
  EXPECT_FALSE(fi::parse_plan_event("{\"plan\":\"nonsense\"}").is_ok());
}

TEST(Planner, PlanFileToleratesTornTailAndBindsToCampaign) {
  const fs::path dir = scratch_dir("plan_file");
  const std::string path = (dir / "plan.jsonl").string();
  CampaignConfig config = adaptive_config((dir / "unused.jsonl").string());

  PlanEvent stop;
  stop.kind = PlanEvent::Kind::kStop;
  stop.stop_at = 200;
  {
    std::ofstream out(path, std::ios::binary);
    out << fi::plan_file_header(config) << "\n"
        << fi::plan_event_line(stop) << "\n"
        << "{\"plan\":\"alloc\",\"ck";  // torn mid-append
  }
  auto loaded = fi::load_plan_file(path, config);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_TRUE(loaded.value().stop_at.has_value());
  EXPECT_EQ(*loaded.value().stop_at, 200u);
  EXPECT_TRUE(loaded.value().allocs.empty());

  // A plan file written for a different campaign is refused.
  CampaignConfig other = config;
  other.seed = kSeed + 1;
  EXPECT_FALSE(fi::load_plan_file(path, other).is_ok());
  // kNotFound (not an error) when the file does not exist yet.
  auto missing = fi::load_plan_file((dir / "nope.jsonl").string(), config);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------- sequential stopping ------

TEST(Planner, AdaptiveStopIsAPrefixOfTheFixedBudgetRun) {
  const fs::path dir = scratch_dir("stop_prefix");

  CampaignConfig fixed = adaptive_config((dir / "fixed.jsonl").string());
  fixed.planner = {};  // classic fixed budget
  auto fixed_run = Campaign::run(fixed);
  ASSERT_TRUE(fixed_run.is_ok()) << fixed_run.status().to_string();

  CampaignConfig adaptive = adaptive_config((dir / "adaptive.jsonl").string());
  auto adaptive_run = Campaign::run(adaptive);
  ASSERT_TRUE(adaptive_run.is_ok()) << adaptive_run.status().to_string();

  const u64 stopped_at = adaptive_run.value().effective_injections;
  ASSERT_LT(stopped_at, 600u);  // the rule fired inside the budget
  EXPECT_EQ(stopped_at % 50, 0u);  // only at checkpoint boundaries
  EXPECT_GE(stopped_at, 100u);     // never below the min-sample floor
  EXPECT_EQ(adaptive_run.value().records.size(), stopped_at);

  // Record i of the stopped campaign is the record i of the fixed one: the
  // stopping rule truncates the sequence, it never changes its content.
  const std::string fixed_bytes = read_file(*fixed.journal_path);
  const std::string adaptive_bytes = read_file(*adaptive.journal_path);
  std::istringstream lines(adaptive_bytes);
  std::string line;
  std::getline(lines, line);  // headers differ (planner fields) by design
  while (std::getline(lines, line)) {
    if (fi::is_plan_line(line)) continue;
    EXPECT_NE(fixed_bytes.find(line), std::string::npos)
        << "adaptive record not present in the fixed run: " << line;
  }
  // The decision itself is journaled, once.
  ASSERT_EQ(adaptive_run.value().plan.size(), 1u);
  EXPECT_EQ(adaptive_run.value().plan[0].kind, PlanEvent::Kind::kStop);
  EXPECT_EQ(adaptive_run.value().plan[0].stop_at, stopped_at);
}

TEST(Planner, KilledAndResumedAdaptiveCampaignIsByteIdentical) {
  const fs::path dir = scratch_dir("kill_resume");
  CampaignConfig config = adaptive_config((dir / "j.jsonl").string());
  config.planner.stratify = true;  // exercise alloc + stop replay together
  auto uninterrupted = Campaign::run(config);
  ASSERT_TRUE(uninterrupted.is_ok()) << uninterrupted.status().to_string();
  const std::string reference = read_file(*config.journal_path);

  // Kill the campaign mid-block: keep the header, the first two alloc
  // lines, and 130 records, plus a torn half-line the resume must discard.
  std::istringstream lines(reference);
  std::string line;
  std::string truncated;
  int records = 0;
  while (std::getline(lines, line) && records < 130) {
    truncated += line + "\n";
    if (!fi::is_plan_line(line) && line.find("\"i\":") != std::string::npos) {
      ++records;
    }
  }
  truncated += "{\"i\":130,\"outco";  // torn append
  {
    std::ofstream out(*config.journal_path, std::ios::binary);
    out << truncated;
  }

  auto resumed = Campaign::run(config);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_GT(resumed.value().resumed, 0u);
  EXPECT_EQ(read_file(*config.journal_path), reference);
}

// ------------------------------------------------------- stratification ---

TEST(Planner, StratifiedRunsJournalAllocationsDeterministically) {
  const fs::path dir = scratch_dir("stratified");
  CampaignConfig config = adaptive_config((dir / "a.jsonl").string());
  config.planner.stop = {};  // stratify-only: all 600 run
  config.planner.stratify = true;
  auto first = Campaign::run(config);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(first.value().effective_injections, 600u);
  // One allocation per block, journaled in schedule order.
  ASSERT_EQ(first.value().plan.size(), 12u);
  for (u64 c = 0; c < 12; ++c) {
    EXPECT_EQ(first.value().plan[c].kind, PlanEvent::Kind::kAlloc);
    EXPECT_EQ(first.value().plan[c].checkpoint, c);
    u64 total = 0;
    for (u64 n : first.value().plan[c].alloc) total += n;
    EXPECT_EQ(total, 50u);  // every block fully allocated
  }

  // A second fresh run reproduces the journal byte-for-byte.
  const std::string first_bytes = read_file(*config.journal_path);
  config.journal_path = (dir / "b.jsonl").string();
  auto second = Campaign::run(config);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  std::string second_bytes = read_file(*config.journal_path);
  EXPECT_EQ(first_bytes, second_bytes);
}

TEST(Planner, StratifiedRecordsHonorTheJournaledAllocation) {
  const fs::path dir = scratch_dir("strat_honor");
  CampaignConfig config = adaptive_config((dir / "j.jsonl").string());
  config.planner.stop = {};
  config.planner.stratify = true;
  config.num_injections = 100;
  auto run = Campaign::run(config);
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  // Per block, the realized per-group strike counts match the journaled
  // allocation exactly (group pinning consumes no sampling randomness).
  for (const PlanEvent& alloc : run.value().plan) {
    std::array<u64, sim::kInstrGroupCount> realized{};
    const u64 b0 = alloc.checkpoint * 50;
    for (u64 i = b0; i < b0 + 50; ++i) {
      const auto& site = run.value().records[i].site;
      ASSERT_TRUE(site.group.has_value());
      ++realized[static_cast<int>(*site.group)];
    }
    for (int g = 0; g < sim::kInstrGroupCount; ++g) {
      EXPECT_EQ(realized[g], alloc.alloc[g]) << "group " << g;
    }
  }
  // The post-stratified estimator is well-formed over these strata.
  const auto strata = analysis::group_strata(run.value(), Outcome::kSdc);
  EXPECT_FALSE(strata.empty());
  const f64 rate = stats::poststratified_rate(strata);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1.0);
}

TEST(Planner, ShardedCampaignRefusesToDecideLocally) {
  const fs::path dir = scratch_dir("shard_refuse");
  CampaignConfig config = adaptive_config((dir / "j.jsonl").string());
  config.shard_index = 0;
  config.shard_count = 2;
  auto run = Campaign::run(config);
  ASSERT_FALSE(run.is_ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- quarantine -----

TEST(Campaign, QuarantineOrderAndDuplicatesDoNotChangeRecords) {
  CampaignConfig config;
  config.workload = "vecadd";
  config.machine = arch::toy();
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = 40;
  config.seed = kSeed;
  config.threads = 1;
  config.quarantine = {3, 7, 11};
  auto sorted = Campaign::run(config);
  ASSERT_TRUE(sorted.is_ok()) << sorted.status().to_string();
  // The binary-search membership test sees a normalized copy, so unsorted
  // and duplicated inputs classify identically.
  config.quarantine = {11, 3, 7, 3, 11};
  auto unsorted = Campaign::run(config);
  ASSERT_TRUE(unsorted.is_ok()) << unsorted.status().to_string();
  ASSERT_EQ(sorted.value().records.size(), unsorted.value().records.size());
  for (std::size_t i = 0; i < sorted.value().records.size(); ++i) {
    EXPECT_EQ(sorted.value().records[i].outcome,
              unsorted.value().records[i].outcome);
    const bool quarantined =
        sorted.value().records[i].outcome == Outcome::kQuarantined;
    EXPECT_EQ(quarantined, i == 3 || i == 7 || i == 11);
  }
}

// ------------------------------------------------- supervisor + merge -----

SupervisorConfig planner_sup_config(const fs::path& dir,
                                    const CampaignConfig& mirror,
                                    u32 shards) {
  SupervisorConfig config;
  config.exe = GFI_GPUFI_BIN;
  config.workload = mirror.workload;
  config.dir = dir.string();
  config.shards = shards;
  config.num_injections = mirror.num_injections;
  config.seed = mirror.seed;
  config.lease_ttl_ms = 3000;
  config.poll_ms = 25;
  config.stall_timeout_ms = 0;
  config.worker_heartbeat_ms = 50;
  config.max_shard_attempts = 12;
  config.poison_threshold = 3;
  config.backoff_base_ms = 5;
  config.backoff_cap_ms = 20;
  config.campaign = mirror;
  config.campaign.journal_path.reset();
  config.worker_flags = {
      "--arch=toy",
      "--mode=iov",
      "--flip=single",
      "--injections=" + std::to_string(mirror.num_injections),
      "--seed=" + std::to_string(mirror.seed),
      "--golden-cache=" + (dir / "golden").string(),
      "--checkpoint-every=50",
  };
  if (mirror.planner.stopping()) {
    config.worker_flags.push_back("--stop-half-width=0.07");
    config.worker_flags.push_back("--stop-min=100");
  }
  if (mirror.planner.stratify) {
    config.worker_flags.push_back("--stratify=group");
  }
  return config;
}

TEST(Supervisor, AdaptiveRunMergesBitIdenticalToUnshardedAdaptive) {
  const fs::path dir = scratch_dir("sup_adaptive");
  CampaignConfig reference = adaptive_config((dir / "ref.jsonl").string());
  reference.planner.stratify = true;
  auto unsharded = Campaign::run(reference);
  ASSERT_TRUE(unsharded.is_ok()) << unsharded.status().to_string();
  const u64 stopped_at = unsharded.value().effective_injections;
  ASSERT_LT(stopped_at, 600u);

  auto config = planner_sup_config(dir / "run", reference, 3);
  auto ran = Supervisor::run(config);
  ASSERT_TRUE(ran.is_ok()) << ran.status().to_string();
  ASSERT_EQ(ran.value().shards_failed, 0u);
  EXPECT_EQ(ran.value().plan_stop, stopped_at);
  EXPECT_EQ(ran.value().merged.effective_injections, stopped_at);

  const std::string merged_path = (dir / "merged.jsonl").string();
  ASSERT_TRUE(
      fi::write_merged_journal(merged_path, ran.value().merged).is_ok());
  EXPECT_EQ(read_file(merged_path), read_file(*reference.journal_path));
}

TEST(Supervisor, AdaptiveRunSurvivesWorkerKillsBitIdentically) {
  const fs::path dir = scratch_dir("sup_chaos");
  CampaignConfig reference = adaptive_config((dir / "ref.jsonl").string());
  reference.planner.stratify = true;
  auto unsharded = Campaign::run(reference);
  ASSERT_TRUE(unsharded.is_ok()) << unsharded.status().to_string();

  auto config = planner_sup_config(dir / "run", reference, 3);
  // Every worker dies before its 31st injection: each shard needs several
  // relaunches, each resuming an adaptive journal mid-plan.
  config.worker_failpoints = "campaign.injection=kill@hit=31";
  auto ran = Supervisor::run(config);
  ASSERT_TRUE(ran.is_ok()) << ran.status().to_string();
  ASSERT_EQ(ran.value().shards_failed, 0u);
  EXPECT_GT(ran.value().crashes, 0u);
  EXPECT_EQ(ran.value().plan_stop,
            unsharded.value().effective_injections);

  const std::string merged_path = (dir / "merged.jsonl").string();
  ASSERT_TRUE(
      fi::write_merged_journal(merged_path, ran.value().merged).is_ok());
  EXPECT_EQ(read_file(merged_path), read_file(*reference.journal_path));
}

}  // namespace
}  // namespace gfi
