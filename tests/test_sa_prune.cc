// ACE-style dead-site pruning: static classification, the PruneMap's
// injector-coordinate lookup, and the soundness contract — a pruned campaign
// must reproduce the unpruned campaign's records bit-for-bit on the same
// seeds.
#include <gtest/gtest.h>

#include "analysis/static_bound.h"
#include "arch/arch.h"
#include "fi/campaign.h"
#include "harden/swift.h"
#include "sa/ace.h"
#include "sassim/kernel_builder.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using sim::CmpOp;
using sim::KernelBuilder;
using sim::Operand;

// The static notion of "value site" must match what the value-injection
// modes target, or the PruneMap would index sites the injector never
// samples (and vice versa).
TEST(SaPrune, ValueSiteGroupsMatchInjectorModes) {
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    const bool value_mode_target =
        fi::mode_targets_group(fi::InjectionMode::kIov, group) ||
        fi::mode_targets_group(fi::InjectionMode::kPred, group);
    EXPECT_EQ(sa::is_value_site_group(group), value_mode_target)
        << "group " << g;
  }
  // Stores belong to the address mode, not the value modes.
  EXPECT_FALSE(sa::is_value_site_group(sim::InstrGroup::kStore));
  EXPECT_TRUE(
      fi::mode_targets_group(fi::InjectionMode::kIoa, sim::InstrGroup::kStore));
}

TEST(SaPrune, ClassifiesDeadLiveAndPredicateSites) {
  KernelBuilder b("classes");
  b.mov_u32(2, Operand::imm_u(5));                             // pc 0: live
  b.mov_u32(9, Operand::imm_u(8));                             // pc 1: dead
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(9));  // pc 2: live P0
  b.isetp(CmpOp::kGe, 1, Operand::reg(2), Operand::imm_u(9));  // pc 3: dead P1
  b.sel(4, Operand::imm_u(1), Operand::imm_u(0), 0);           // pc 4
  b.ldc_u64(6, 0);                                             // pc 5
  b.stg(6, 4);                                                 // pc 6
  b.exit_();                                                   // pc 7
  auto program = b.build();
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();

  const auto sites = sa::StaticSiteAnalysis::analyze(program.value());
  EXPECT_EQ(sites.site_class(0), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(1), sa::SiteClass::kDead);
  EXPECT_EQ(sites.site_class(2), sa::SiteClass::kLive);
  EXPECT_EQ(sites.site_class(3), sa::SiteClass::kDead);
  EXPECT_EQ(sites.num_dead_pcs(), 2u);
}

fi::CampaignConfig base_config(const std::string& workload, u64 seed,
                               std::size_t injections) {
  fi::CampaignConfig config;
  config.workload = workload;
  config.machine = arch::toy();
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = injections;
  config.seed = seed;
  config.threads = 4;
  return config;
}

TEST(SaPrune, PruneMapFindUsesInjectorCoordinates) {
  const auto map = fi::Campaign::build_prune_map(base_config("histogram", 1, 1));
  ASSERT_TRUE(map.is_ok()) << map.status().to_string();
  EXPECT_GT(map.value().num_prunable(), 0u);

  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    const auto& entries = map.value().entries[g];
    for (const auto& entry : entries) {
      const auto* found = map.value().find(group, entry.occurrence);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(found->pc, entry.pc);
      EXPECT_EQ(found->dyn_index, entry.dyn_index);
    }
    // One past the last dynamic occurrence is never prunable.
    EXPECT_EQ(map.value().find(group, map.value().occurrences[g]), nullptr);
    if (!sa::is_value_site_group(group)) {
      EXPECT_TRUE(entries.empty());
    }
  }

  // The static bound is internally consistent with the map it came from.
  const auto bound = analysis::static_masked_bound(
      map.value(), fi::InjectionMode::kIov, std::nullopt);
  EXPECT_GT(bound.eligible, 0u);
  EXPECT_LE(bound.dead + bound.inert, bound.eligible);
  EXPECT_DOUBLE_EQ(bound.masked_lower_bound(),
                   static_cast<f64>(bound.dead) /
                       static_cast<f64>(bound.eligible));
}

void expect_records_identical(const fi::CampaignResult& a,
                              const fi::CampaignResult& b) {
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& x = a.records[i];
    const auto& y = b.records[i];
    EXPECT_EQ(x.outcome, y.outcome) << "record " << i;
    EXPECT_EQ(x.pre_recovery, y.pre_recovery) << "record " << i;
    EXPECT_EQ(x.attempts, y.attempts) << "record " << i;
    EXPECT_EQ(x.trap, y.trap) << "record " << i;
    EXPECT_EQ(x.error_magnitude, y.error_magnitude) << "record " << i;
    EXPECT_EQ(x.dyn_instrs, y.dyn_instrs) << "record " << i;
    EXPECT_EQ(x.site.group, y.site.group) << "record " << i;
    EXPECT_EQ(x.site.target_occurrence, y.site.target_occurrence)
        << "record " << i;
    EXPECT_EQ(x.site.lane_sel, y.site.lane_sel) << "record " << i;
    EXPECT_EQ(x.site.bit_sel, y.site.bit_sel) << "record " << i;
    EXPECT_EQ(x.effect.activated, y.effect.activated) << "record " << i;
    EXPECT_EQ(x.effect.corrected_by_ecc, y.effect.corrected_by_ecc)
        << "record " << i;
    EXPECT_EQ(x.effect.struck_dyn_index, y.effect.struck_dyn_index)
        << "record " << i;
    EXPECT_EQ(x.effect.struck_opcode, y.effect.struck_opcode) << "record " << i;
    EXPECT_EQ(x.effect.struck_group, y.effect.struck_group) << "record " << i;
    EXPECT_EQ(x.effect.struck_lane, y.effect.struck_lane) << "record " << i;
  }
}

// The acceptance property: same seeds, pruning on vs off, identical outcome
// tables and identical per-record fields. histogram covers the inert path
// (RZ-destination atomics, predicated-off sites); the SWIFT variant covers
// the dead-register path (unread detector values).
TEST(SaPrune, PairedCampaignsAreBitIdentical) {
  harden::register_hardened_workloads();
  for (const char* workload : {"histogram", "vecadd_swift"}) {
    auto config = base_config(workload, 0xBEEF, 200);
    auto unpruned = fi::Campaign::run(config);
    ASSERT_TRUE(unpruned.is_ok()) << unpruned.status().to_string();
    EXPECT_EQ(unpruned.value().pruned, 0u);

    config.prune_dead_sites = true;
    auto pruned = fi::Campaign::run(config);
    ASSERT_TRUE(pruned.is_ok()) << pruned.status().to_string();
    EXPECT_GT(pruned.value().pruned, 0u) << workload;
    EXPECT_LT(pruned.value().pruned, config.num_injections) << workload;

    expect_records_identical(unpruned.value(), pruned.value());
  }
}

// Dead-*bit* pruning (the bit-liveness refinement): same seeds, same
// records, strictly more injections credited than dead-site pruning on
// workloads with partially-dead footprints. histogram_swift carries both
// narrow-load partial sites and SWIFT detector chains.
TEST(SaPrune, DeadBitPairedCampaignsAreBitIdentical) {
  harden::register_hardened_workloads();
  for (const char* workload : {"histogram", "histogram_swift"}) {
    auto config = base_config(workload, 0xBEEF, 200);
    auto unpruned = fi::Campaign::run(config);
    ASSERT_TRUE(unpruned.is_ok()) << unpruned.status().to_string();

    config.prune_dead_sites = true;
    auto dead = fi::Campaign::run(config);
    ASSERT_TRUE(dead.is_ok()) << dead.status().to_string();

    config.prune_dead_bits = true;
    auto bits = fi::Campaign::run(config);
    ASSERT_TRUE(bits.is_ok()) << bits.status().to_string();

    expect_records_identical(unpruned.value(), dead.value());
    expect_records_identical(unpruned.value(), bits.value());
    // The bit refinement can only credit more, never less — and on these
    // workloads (fixed seed) it provably credits strictly more.
    EXPECT_GT(bits.value().pruned, dead.value().pruned) << workload;
    EXPECT_LT(bits.value().pruned, config.num_injections) << workload;
  }
}

// Double-bit flips are creditable only when *both* struck bits are dead;
// the records must stay identical to the unpruned double-flip campaign.
TEST(SaPrune, DeadBitPruningHandlesDoubleFlips) {
  harden::register_hardened_workloads();
  auto config = base_config("histogram_swift", 0xF00D, 200);
  config.model.flip = fi::BitFlipModel::kDouble;
  auto unpruned = fi::Campaign::run(config);
  ASSERT_TRUE(unpruned.is_ok()) << unpruned.status().to_string();

  config.prune_dead_sites = true;
  config.prune_dead_bits = true;
  auto pruned = fi::Campaign::run(config);
  ASSERT_TRUE(pruned.is_ok()) << pruned.status().to_string();
  expect_records_identical(unpruned.value(), pruned.value());
}

// Value-replacement flips at partial sites touch every footprint bit, so
// only fully-dead sites are creditable — but the records must still match.
TEST(SaPrune, DeadBitPruningFallsBackForRandomValueFlips) {
  harden::register_hardened_workloads();
  auto config = base_config("histogram_swift", 0xCAFE, 100);
  config.model.flip = fi::BitFlipModel::kRandomValue;
  auto unpruned = fi::Campaign::run(config);
  ASSERT_TRUE(unpruned.is_ok()) << unpruned.status().to_string();

  config.prune_dead_sites = true;
  config.prune_dead_bits = true;
  auto pruned = fi::Campaign::run(config);
  ASSERT_TRUE(pruned.is_ok()) << pruned.status().to_string();
  expect_records_identical(unpruned.value(), pruned.value());
}

// Partially-dead sites surface in the static bound and the per-bit AVF
// report, and the bit-level bound dominates the register-level one.
TEST(SaPrune, AvfReportTracksPartialSites) {
  const auto map =
      fi::Campaign::build_prune_map(base_config("histogram", 1, 1));
  ASSERT_TRUE(map.is_ok()) << map.status().to_string();

  const auto bound = analysis::static_masked_bound(
      map.value(), fi::InjectionMode::kIov, std::nullopt);
  EXPECT_GT(bound.partial, 0u);
  EXPECT_GT(bound.partial_dead_weight, 0.0);
  EXPECT_GE(bound.bit_masked_lower_bound(), bound.masked_lower_bound());

  const auto report =
      analysis::avf_report(map.value(), fi::InjectionMode::kIov);
  EXPECT_EQ(report.total.eligible, bound.eligible);
  f64 expected_weight = 0.0;
  for (u32 bit = 0; bit < 32; ++bit) {
    // Every per-bit bound dominates the register-level (dead-only) bound...
    EXPECT_GE(report.bit_bounds[bit] + 1e-12, bound.masked_lower_bound())
        << "bit " << bit;
    expected_weight += report.bit_bounds[bit];
  }
  // ...and for single-register footprints their average recovers the
  // expected random-bit bound.
  EXPECT_NEAR(expected_weight / 32.0, bound.bit_masked_lower_bound(), 1e-9);

  const std::string json =
      analysis::to_json(report, "histogram", "toy");
  EXPECT_NE(json.find("\"bit_bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"partial\""), std::string::npos);
}

// Pruning is defined for the value modes only; other modes must ignore the
// flag entirely (same results, nothing credited).
TEST(SaPrune, NonValueModesIgnorePruneFlag) {
  auto config = base_config("vecadd", 7, 40);
  config.model.mode = fi::InjectionMode::kIoa;
  auto off = fi::Campaign::run(config);
  ASSERT_TRUE(off.is_ok()) << off.status().to_string();

  config.prune_dead_sites = true;
  auto on = fi::Campaign::run(config);
  ASSERT_TRUE(on.is_ok()) << on.status().to_string();
  EXPECT_EQ(on.value().pruned, 0u);
  expect_records_identical(off.value(), on.value());
}

}  // namespace
}  // namespace gfi
