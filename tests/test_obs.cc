// Tests for the observability layer (src/obs): registry semantics under
// worker-thread concurrency, heartbeat sidecar round-trip and crash
// tolerance, the `gpufi status` renderer, and the end-to-end guarantees the
// campaign instrumentation makes — snapshot merges across shards equal the
// unsharded totals, metric counts match the journal, and telemetry never
// perturbs campaign results.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/thread_pool.h"
#include "fi/campaign.h"
#include "fi/journal.h"
#include "obs/heartbeat.h"
#include "obs/registry.h"
#include "obs/status.h"

namespace gfi {
namespace {

namespace fs = std::filesystem;

using fi::BitFlipModel;
using fi::Campaign;
using fi::CampaignConfig;
using fi::InjectionMode;
using fi::Outcome;
using obs::HeartbeatState;
using obs::HeartbeatWriter;
using obs::Registry;
using obs::ShardStatus;
using obs::Snapshot;

CampaignConfig base_config(const std::string& workload) {
  CampaignConfig config;
  config.workload = workload;
  config.machine = arch::toy();
  config.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  config.num_injections = 60;
  config.seed = 7;
  config.threads = 4;
  return config;
}

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gfi_obs_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::string> outcome_names() {
  std::vector<std::string> names;
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    names.emplace_back(fi::to_string(static_cast<Outcome>(o)));
  }
  return names;
}

// ------------------------------------------------------------- registry --

TEST(ObsRegistry, CountersGaugesHistogramsBasics) {
  Registry registry;
  registry.counter("hits").inc();
  registry.counter("hits").inc(4);
  registry.gauge("depth").set(2.5);
  registry.histogram("lat", 0.0, 10.0, 10).observe(3.0);
  registry.histogram("lat", 0.0, 10.0, 10).observe(7.0);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("depth"), 2.5);
  const auto& hist = snap.histograms.at("lat");
  EXPECT_DOUBLE_EQ(hist.stats.mean(), 5.0);
  EXPECT_EQ(hist.stats.count(), 2u);
  f64 binned = 0.0;
  for (const f64 c : hist.bin_counts) binned += c;
  EXPECT_DOUBLE_EQ(binned, 2.0);
}

TEST(ObsRegistry, HandlesAreStableAndNamed) {
  Registry registry;
  obs::Counter& a = registry.counter("same");
  obs::Counter& b = registry.counter("same");
  EXPECT_EQ(&a, &b);  // one instrument per name, cacheable handle
  a.inc();
  b.inc();
  EXPECT_EQ(registry.snapshot().counters.at("same"), 2u);
}

TEST(ObsRegistry, ConcurrentUpdatesFromWorkerThreadsAreLossless) {
  // Mirrors the campaign's usage: handles acquired up front, then hammered
  // from the injection thread pool. Run under GFI_SANITIZE this is also the
  // data-race check for the relaxed-atomic hot path.
  Registry registry;
  obs::Counter& counter = registry.counter("events");
  obs::LatencyHistogram& histogram = registry.histogram("lat", 0.0, 1.0, 8);
  constexpr std::size_t kJobs = 8000;
  ThreadPool pool(8);
  pool.parallel_for(kJobs, [&](std::size_t i) {
    counter.inc();
    registry.counter("events_via_lookup").inc();
    histogram.observe(static_cast<f64>(i % 10) / 10.0);
    registry.gauge("last").set(static_cast<f64>(i));
  });

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("events"), kJobs);
  EXPECT_EQ(snap.counters.at("events_via_lookup"), kJobs);
  const auto& hist = snap.histograms.at("lat");
  EXPECT_EQ(hist.stats.count(), kJobs);
  f64 binned = hist.dropped;
  for (const f64 c : hist.bin_counts) binned += c;
  EXPECT_DOUBLE_EQ(binned, static_cast<f64>(kJobs));
}

TEST(ObsSnapshot, MergeAddsCountersAndFoldsHistograms) {
  Registry a;
  Registry b;
  a.counter("n").inc(3);
  b.counter("n").inc(4);
  b.counter("only_b").inc(1);
  a.histogram("lat", 0.0, 10.0, 10).observe(2.0);
  b.histogram("lat", 0.0, 10.0, 10).observe(4.0);
  b.histogram("lat", 0.0, 10.0, 10).observe(6.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("n"), 7u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  const auto& hist = merged.histograms.at("lat");
  EXPECT_EQ(hist.stats.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.stats.mean(), 4.0);  // Chan-style moment merge
}

TEST(ObsSnapshot, MergeWithMismatchedBoundsConservesTotals) {
  Registry a;
  Registry b;
  a.histogram("lat", 0.0, 10.0, 10).observe(5.0);
  b.histogram("lat", 0.0, 100.0, 10).observe(50.0);  // different bounds
  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const auto& hist = merged.histograms.at("lat");
  f64 total = hist.dropped;
  for (const f64 c : hist.bin_counts) total += c;
  EXPECT_DOUBLE_EQ(total, 2.0);  // incompatible bins fold into dropped
  EXPECT_EQ(hist.stats.count(), 2u);
}

TEST(ObsSnapshot, ToJsonIsWellFormedAndHandlesNonFinite) {
  Registry registry;
  registry.counter("c").inc(2);
  registry.gauge("g").set(std::numeric_limits<f64>::quiet_NaN());
  registry.histogram("h", 0.0, 1.0, 2);  // empty: min/max are non-finite
  const std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"c\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

// ------------------------------------------------------------ heartbeat --

HeartbeatState sample_state() {
  HeartbeatState state;
  state.workload = "gemm";
  state.arch = "A100";
  state.shard_index = 2;
  state.shard_count = 4;
  state.done = 120;
  state.total = 250;
  state.outcome_counts.assign(fi::kOutcomeCount, 0);
  state.outcome_counts[static_cast<int>(Outcome::kSdc)] = 30;
  state.outcome_counts[static_cast<int>(Outcome::kMasked)] = 90;
  state.elapsed_s = 9.75;
  state.rate = 12.5;
  state.eta_s = 10.4;
  return state;
}

TEST(ObsHeartbeat, LineRoundTrips) {
  const HeartbeatState state = sample_state();
  auto parsed = obs::parse_heartbeat(obs::heartbeat_line(state));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().workload, "gemm");
  EXPECT_EQ(parsed.value().arch, "A100");
  EXPECT_EQ(parsed.value().shard_index, 2u);
  EXPECT_EQ(parsed.value().shard_count, 4u);
  EXPECT_EQ(parsed.value().done, 120u);
  EXPECT_EQ(parsed.value().total, 250u);
  EXPECT_EQ(parsed.value().outcome_counts, state.outcome_counts);
  EXPECT_DOUBLE_EQ(parsed.value().rate, 12.5);
  EXPECT_DOUBLE_EQ(parsed.value().eta_s, 10.4);
  EXPECT_FALSE(parsed.value().finished);
}

TEST(ObsHeartbeat, NanEtaSerializesAsNullAndParsesBackAsNan) {
  // An idle shard has rate 0 and ETA NaN; the line must stay valid JSON.
  HeartbeatState state = sample_state();
  state.rate = 0.0;
  state.eta_s = std::numeric_limits<f64>::quiet_NaN();
  const std::string line = obs::heartbeat_line(state);
  EXPECT_NE(line.find("\"eta_s\":null"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  auto parsed = obs::parse_heartbeat(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(std::isnan(parsed.value().eta_s));
}

TEST(ObsHeartbeat, LoadStatusFileKeepsLastParseableRecord) {
  const fs::path dir = scratch_dir("torn_tail");
  const std::string path = (dir / "x.status.jsonl").string();
  HeartbeatState early = sample_state();
  early.done = 10;
  HeartbeatState late = sample_state();
  late.done = 200;
  {
    std::ofstream out(path);
    out << obs::heartbeat_line(early) << "\n";
    out << obs::heartbeat_line(late) << "\n";
    // A crash mid-write leaves a torn line; it must not hide `late`.
    out << obs::heartbeat_line(sample_state()).substr(0, 35);
  }
  auto loaded = obs::load_status_file(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().done, 200u);
}

TEST(ObsHeartbeat, WriterEmitsInitialPerRecordAndDoneLines) {
  const fs::path dir = scratch_dir("writer");
  const std::string path = (dir / "w.status.jsonl").string();
  HeartbeatState initial = sample_state();
  initial.done = 0;
  initial.total = 3;
  initial.outcome_counts.assign(fi::kOutcomeCount, 0);
  auto writer = HeartbeatWriter::create(path, initial, /*interval_ms=*/0);
  ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
  writer.value()->record(static_cast<int>(Outcome::kSdc));
  writer.value()->record(static_cast<int>(Outcome::kMasked));
  writer.value()->record(static_cast<int>(Outcome::kSdc));
  writer.value()->finish();
  writer.value().reset();

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_TRUE(obs::parse_heartbeat(line).is_ok()) << line;
  }
  EXPECT_EQ(lines, 5u);  // initial + 3 records (interval 0) + done
  auto last = obs::load_status_file(path);
  ASSERT_TRUE(last.is_ok());
  EXPECT_TRUE(last.value().finished);
  EXPECT_EQ(last.value().done, 3u);
  EXPECT_EQ(last.value().outcome_counts[static_cast<int>(Outcome::kSdc)], 2u);
}

TEST(ObsHeartbeat, SidecarPathDerivesFromJournal) {
  EXPECT_EQ(obs::status_path_for_journal("/tmp/c.jsonl"),
            "/tmp/c.jsonl.status.jsonl");
}

// --------------------------------------------------------------- status --

std::vector<ShardStatus> four_shard_fixture() {
  std::vector<ShardStatus> shards;
  for (u32 s = 0; s < 4; ++s) {
    HeartbeatState state = sample_state();
    state.shard_index = s;
    state.shard_count = 4;
    state.total = 250;
    state.done = s == 3 ? 250 : 100 + 25 * s;
    state.rate = 10.0;
    state.eta_s = static_cast<f64>(state.total - state.done) / state.rate;
    state.finished = s == 3;
    state.outcome_counts.assign(fi::kOutcomeCount, 0);
    state.outcome_counts[static_cast<int>(Outcome::kSdc)] = state.done / 4;
    state.outcome_counts[static_cast<int>(Outcome::kMasked)] =
        state.done - state.done / 4;
    shards.push_back({"shard" + std::to_string(s) + ".status.jsonl", state});
  }
  return shards;
}

TEST(ObsStatus, RendersFourShardFixture) {
  const std::string report =
      obs::render_status(four_shard_fixture(), outcome_names());
  EXPECT_NE(report.find("4 of 4 shard(s) reporting"), std::string::npos)
      << report;
  EXPECT_NE(report.find("0/4"), std::string::npos) << report;
  EXPECT_NE(report.find("3/4"), std::string::npos) << report;
  EXPECT_NE(report.find("done"), std::string::npos) << report;
  EXPECT_NE(report.find("SDC"), std::string::npos) << report;
  EXPECT_NE(report.find("Wilson 95% CI"), std::string::npos) << report;
  // 100+125+150+250 of 1000 total.
  EXPECT_NE(report.find("625/1000"), std::string::npos) << report;
}

TEST(ObsStatus, LoadStatusScansDirectoryAndOrdersShards) {
  const fs::path dir = scratch_dir("scan");
  auto shards = four_shard_fixture();
  // Write them out of order; the loader sorts by shard index.
  for (int s : {2, 0, 3, 1}) {
    std::ofstream out(dir / ("c.shard" + std::to_string(s) +
                             ".jsonl.status.jsonl"));
    out << obs::heartbeat_line(shards[static_cast<std::size_t>(s)].state)
        << "\n";
  }
  // An unparseable sidecar in the same directory is skipped, not fatal.
  std::ofstream(dir / "junk.status.jsonl") << "not json\n";

  auto loaded = obs::load_status(dir.string());
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), 4u);
  for (u32 s = 0; s < 4; ++s) {
    EXPECT_EQ(loaded.value()[s].state.shard_index, s);
  }
}

TEST(ObsStatus, LoadStatusAcceptsJournalPath) {
  const fs::path dir = scratch_dir("by_journal");
  const std::string journal = (dir / "c.jsonl").string();
  std::ofstream(obs::status_path_for_journal(journal))
      << obs::heartbeat_line(sample_state()) << "\n";
  auto loaded = obs::load_status(journal);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].state.done, 120u);
}

TEST(ObsStatus, LoadStatusFailsCleanlyOnEmptyDirectory) {
  const fs::path dir = scratch_dir("empty");
  EXPECT_FALSE(obs::load_status(dir.string()).is_ok());
}

// ------------------------------------------------- campaign integration --

TEST(ObsCampaign, MetricsMatchResultAndJournalCounts) {
  const fs::path dir = scratch_dir("counts");
  Registry registry;
  auto config = base_config("vecadd");
  config.journal_path = (dir / "c.jsonl").string();
  config.metrics = &registry;
  config.heartbeat_interval_ms = 0;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("campaign.injections.completed"),
            config.num_injections);
  EXPECT_EQ(snap.counters.at("campaign.injections.attempted"),
            config.num_injections);
  u64 outcome_total = 0;
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    const std::string name =
        std::string("campaign.outcome.") +
        fi::to_string(static_cast<Outcome>(o));
    EXPECT_EQ(snap.counters.at(name),
              result.value().outcome_counts[static_cast<std::size_t>(o)])
        << name;
    outcome_total += snap.counters.at(name);
  }
  EXPECT_EQ(outcome_total, config.num_injections);
  EXPECT_EQ(snap.histograms.at("campaign.injection.latency_ms").stats.count(),
            config.num_injections);

  // The journal's outcome counts are the same totals the metrics report.
  auto journal = fi::Journal::load(*config.journal_path);
  ASSERT_TRUE(journal.is_ok());
  std::array<u64, fi::kOutcomeCount> journal_counts{};
  for (const auto& [index, record] : journal.value().records) {
    ++journal_counts[static_cast<std::size_t>(record.outcome)];
  }
  EXPECT_EQ(journal_counts, result.value().outcome_counts);

  // The sidecar's final record agrees too.
  auto beat = obs::load_status_file(
      obs::status_path_for_journal(*config.journal_path));
  ASSERT_TRUE(beat.is_ok()) << beat.status().to_string();
  EXPECT_TRUE(beat.value().finished);
  EXPECT_EQ(beat.value().done, config.num_injections);
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    EXPECT_EQ(beat.value().outcome_counts[static_cast<std::size_t>(o)],
              result.value().outcome_counts[static_cast<std::size_t>(o)]);
  }
}

TEST(ObsCampaign, ShardedSnapshotsMergeToUnshardedTotals) {
  Registry whole;
  auto config = base_config("vecadd");
  config.metrics = &whole;
  auto unsharded = Campaign::run(config);
  ASSERT_TRUE(unsharded.is_ok()) << unsharded.status().to_string();

  Registry parts[2];
  Snapshot merged;
  for (u32 s = 0; s < 2; ++s) {
    auto shard_config = base_config("vecadd");
    shard_config.shard_index = s;
    shard_config.shard_count = 2;
    shard_config.metrics = &parts[s];
    auto shard = Campaign::run(shard_config);
    ASSERT_TRUE(shard.is_ok()) << shard.status().to_string();
    merged.merge(parts[s].snapshot());
  }

  const Snapshot want = whole.snapshot();
  for (const auto& [name, value] : want.counters) {
    if (name.rfind("campaign.golden_cache.", 0) == 0) continue;  // per-process
    EXPECT_EQ(merged.counters.at(name), value) << name;
  }
  EXPECT_EQ(
      merged.histograms.at("campaign.injection.latency_ms").stats.count(),
      want.histograms.at("campaign.injection.latency_ms").stats.count());
}

TEST(ObsCampaign, TelemetryDoesNotPerturbResults) {
  // The headline guarantee: outcome tables are bit-identical with
  // observability fully enabled (registry + heartbeats) and fully absent.
  const fs::path dir = scratch_dir("bit_identical");
  auto bare_config = base_config("saxpy");
  auto bare = Campaign::run(bare_config);
  ASSERT_TRUE(bare.is_ok()) << bare.status().to_string();

  Registry registry;
  auto instrumented_config = base_config("saxpy");
  instrumented_config.metrics = &registry;
  instrumented_config.journal_path = (dir / "c.jsonl").string();
  instrumented_config.heartbeat_interval_ms = 0;
  auto instrumented = Campaign::run(instrumented_config);
  ASSERT_TRUE(instrumented.is_ok()) << instrumented.status().to_string();

  EXPECT_EQ(bare.value().outcome_counts, instrumented.value().outcome_counts);
  ASSERT_EQ(bare.value().records.size(), instrumented.value().records.size());
  for (std::size_t i = 0; i < bare.value().records.size(); ++i) {
    EXPECT_EQ(bare.value().records[i].outcome,
              instrumented.value().records[i].outcome);
    EXPECT_EQ(bare.value().records[i].site.bit_sel,
              instrumented.value().records[i].site.bit_sel);
    EXPECT_EQ(bare.value().records[i].dyn_instrs,
              instrumented.value().records[i].dyn_instrs);
  }
}

TEST(ObsCampaign, ResumedRecordsCountTowardMetricsAndHeartbeat) {
  const fs::path dir = scratch_dir("resume");
  auto config = base_config("vecadd");
  config.journal_path = (dir / "c.jsonl").string();
  config.heartbeat_interval_ms = 0;
  {
    Registry first_registry;
    auto first_config = config;
    first_config.num_injections = 60;
    first_config.metrics = &first_registry;
    auto first = Campaign::run(first_config);
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  }
  // Truncate the journal to 20 records to simulate a killed shard.
  std::vector<std::string> lines;
  {
    std::ifstream in(*config.journal_path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 21u);  // header + 60 records
  {
    std::ofstream out(*config.journal_path, std::ios::trunc);
    for (std::size_t i = 0; i < 21; ++i) out << lines[i] << "\n";
  }

  Registry registry;
  config.metrics = &registry;
  auto resumed = Campaign::run(config);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed, 20u);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("campaign.injections.resumed"), 20u);
  // attempted/completed cover only this session's work...
  EXPECT_EQ(snap.counters.at("campaign.injections.attempted"), 40u);
  // ...but outcome counters cover the whole campaign, so the snapshot's
  // totals stay consistent with the merged journal.
  u64 outcome_total = 0;
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    outcome_total += snap.counters.at(
        std::string("campaign.outcome.") +
        fi::to_string(static_cast<Outcome>(o)));
  }
  EXPECT_EQ(outcome_total, 60u);

  auto beat = obs::load_status_file(
      obs::status_path_for_journal(*config.journal_path));
  ASSERT_TRUE(beat.is_ok());
  EXPECT_EQ(beat.value().done, 60u);
  EXPECT_TRUE(beat.value().finished);
}

}  // namespace
}  // namespace gfi
