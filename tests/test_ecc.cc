// Tests for the SECDED codec and the observable-equivalent protection
// model, including the cross-validation between the two.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecc/protection.h"
#include "ecc/secded.h"

namespace gfi::ecc {
namespace {

TEST(Secded, CleanRoundTrip) {
  for (u64 data : {0ULL, ~0ULL, 0x0123456789ABCDEFULL, 1ULL, 1ULL << 63}) {
    const Codeword word = encode(data);
    const DecodeResult result = decode(word);
    EXPECT_EQ(result.status, DecodeStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Secded, EverySingleDataBitFlipIsCorrected) {
  const u64 data = 0xDEADBEEFCAFEF00DULL;
  const Codeword word = encode(data);
  for (u32 bit = 0; bit < 64; ++bit) {
    const DecodeResult result = decode(flip_codeword_bit(word, bit));
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedSingle) << "bit " << bit;
    EXPECT_EQ(result.data, data) << "bit " << bit;
  }
}

TEST(Secded, EverySingleCheckBitFlipIsCorrected) {
  const u64 data = 0x1122334455667788ULL;
  const Codeword word = encode(data);
  for (u32 bit = 64; bit < 72; ++bit) {
    const DecodeResult result = decode(flip_codeword_bit(word, bit));
    EXPECT_EQ(result.status, DecodeStatus::kCorrectedSingle) << "bit " << bit;
    EXPECT_EQ(result.data, data) << "bit " << bit;
  }
}

TEST(Secded, EveryDoubleBitFlipIsDetected) {
  // Exhaustive over all C(72,2) = 2556 pairs for one data word.
  const Codeword word = encode(0xA5A5A5A5A5A5A5A5ULL);
  for (u32 b1 = 0; b1 < 72; ++b1) {
    for (u32 b2 = b1 + 1; b2 < 72; ++b2) {
      const DecodeResult result =
          decode(flip_codeword_bit(flip_codeword_bit(word, b1), b2));
      EXPECT_EQ(result.status, DecodeStatus::kDetectedDouble)
          << "bits " << b1 << "," << b2;
    }
  }
}

TEST(Secded, PropertyRandomWordsSingleFlip) {
  Rng rng(0xECC);
  for (int trial = 0; trial < 500; ++trial) {
    const u64 data = rng.next();
    const u32 bit = static_cast<u32>(rng.next_below(72));
    const DecodeResult result = decode(flip_codeword_bit(encode(data), bit));
    ASSERT_EQ(result.status, DecodeStatus::kCorrectedSingle);
    ASSERT_EQ(result.data, data);
  }
}

TEST(Secded, PropertyRandomWordsDoubleFlip) {
  Rng rng(0xECC2);
  for (int trial = 0; trial < 500; ++trial) {
    const u64 data = rng.next();
    const u32 b1 = static_cast<u32>(rng.next_below(72));
    u32 b2 = static_cast<u32>(rng.next_below(72));
    if (b2 == b1) b2 = (b2 + 1) % 72;
    const DecodeResult result =
        decode(flip_codeword_bit(flip_codeword_bit(encode(data), b1), b2));
    ASSERT_EQ(result.status, DecodeStatus::kDetectedDouble);
  }
}

// ---------------------------------------------------------- protection --

TEST(Protection, ClassifyMatrix) {
  EXPECT_EQ(classify_read(EccMode::kSecded, 0), ReadEffect::kClean);
  EXPECT_EQ(classify_read(EccMode::kSecded, 0b100), ReadEffect::kCorrected);
  EXPECT_EQ(classify_read(EccMode::kSecded, 0b101),
            ReadEffect::kDoubleBitTrap);
  EXPECT_EQ(classify_read(EccMode::kSecded, 0xFFFF),
            ReadEffect::kDoubleBitTrap);
  EXPECT_EQ(classify_read(EccMode::kDisabled, 0), ReadEffect::kClean);
  EXPECT_EQ(classify_read(EccMode::kDisabled, 0b1),
            ReadEffect::kRawCorrupted);
}

/// Cross-validation: the fault-map policy must agree with the real codec
/// for every single- and double-bit data upset.
TEST(Protection, AgreesWithSecdedCodec) {
  Rng rng(0xC0DE);
  for (int trial = 0; trial < 300; ++trial) {
    const u64 data = rng.next();
    const u32 b1 = static_cast<u32>(rng.next_below(64));

    // Single-bit: codec corrects <=> policy says corrected.
    const auto single = decode(flip_codeword_bit(encode(data), b1));
    EXPECT_EQ(single.status == DecodeStatus::kCorrectedSingle,
              classify_read(EccMode::kSecded, 1ULL << b1) ==
                  ReadEffect::kCorrected);

    // Double-bit: codec detects <=> policy traps.
    u32 b2 = static_cast<u32>(rng.next_below(64));
    if (b2 == b1) b2 = (b2 + 1) % 64;
    const auto dbl =
        decode(flip_codeword_bit(flip_codeword_bit(encode(data), b1), b2));
    EXPECT_EQ(dbl.status == DecodeStatus::kDetectedDouble,
              classify_read(EccMode::kSecded, (1ULL << b1) | (1ULL << b2)) ==
                  ReadEffect::kDoubleBitTrap);
  }
}

TEST(Protection, CountersMerge) {
  EccCounters a{1, 2, 3};
  const EccCounters b{10, 20, 30};
  a.merge(b);
  EXPECT_EQ(a.corrected_sbe, 11u);
  EXPECT_EQ(a.detected_dbe, 22u);
  EXPECT_EQ(a.silent_corrupted, 33u);
}

TEST(Protection, Names) {
  EXPECT_STREQ(to_string(EccMode::kSecded), "secded");
  EXPECT_STREQ(to_string(ReadEffect::kDoubleBitTrap), "double-bit-trap");
}

}  // namespace
}  // namespace gfi::ecc
