// Arch presets and analysis/report helpers.
#include <gtest/gtest.h>

#include <fstream>

#include "analysis/report.h"
#include "arch/arch.h"
#include "fi/campaign.h"

namespace gfi {
namespace {

TEST(Arch, PresetsMatchPublicSpecs) {
  const auto a100 = arch::a100();
  EXPECT_EQ(a100.num_sms, 108u);
  EXPECT_NEAR(a100.sm_clock_ghz, 1.41, 1e-9);
  EXPECT_EQ(a100.l2_bytes, 40u << 20);
  EXPECT_EQ(a100.rf_ecc, ecc::EccMode::kSecded);

  const auto h100 = arch::h100();
  EXPECT_EQ(h100.num_sms, 132u);
  EXPECT_NEAR(h100.sm_clock_ghz, 1.98, 1e-9);
  EXPECT_EQ(h100.l2_bytes, 50u << 20);
  EXPECT_GT(h100.shared_bytes_per_sm, a100.shared_bytes_per_sm);
  EXPECT_LT(h100.mem_latency_cycles, a100.mem_latency_cycles);
}

TEST(Arch, ConfigForAndNames) {
  EXPECT_EQ(arch::config_for(arch::GpuModel::kA100).name, "A100");
  EXPECT_EQ(arch::config_for(arch::GpuModel::kH100).name, "H100");
  EXPECT_STREQ(arch::model_name(arch::GpuModel::kToy), "toy");
  EXPECT_EQ(arch::study_models().size(), 2u);
}

TEST(Arch, LatencyTableDefaultsSane) {
  const auto latencies = sim::default_latencies();
  EXPECT_GT(latencies.of(sim::Opcode::kMufu), latencies.of(sim::Opcode::kIAdd));
  EXPECT_GT(latencies.of(sim::Opcode::kLdg), latencies.of(sim::Opcode::kLds));
}

// ------------------------------------------------------------- analysis --

fi::CampaignResult tiny_campaign() {
  fi::CampaignConfig config;
  config.workload = "vecadd";
  config.machine = arch::toy();
  config.num_injections = 25;
  config.threads = 4;
  auto result = fi::Campaign::run(config);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).take();
}

TEST(Analysis, OutcomeRowShapeMatchesHeader) {
  const auto campaign = tiny_campaign();
  const auto header = analysis::outcome_header();
  const auto row = analysis::outcome_row("vecadd", campaign);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(row.front(), "vecadd");
  EXPECT_EQ(row.back(), "25");
}

TEST(Analysis, RateCellFormatsPercent) {
  const auto campaign = tiny_campaign();
  const std::string cell =
      analysis::rate_cell(campaign, fi::Outcome::kMasked);
  EXPECT_NE(cell.find('%'), std::string::npos);
  EXPECT_NE(cell.find("±"), std::string::npos);
}

TEST(Analysis, ProfileRowSumsToRoughlyHundredPercent) {
  const auto campaign = tiny_campaign();
  const auto row = analysis::profile_row("vecadd", campaign.profile);
  ASSERT_EQ(row.size(), analysis::profile_header().size());
  f64 total = 0;
  for (std::size_t i = 2; i < row.size(); ++i) {
    total += std::stod(row[i]);  // strips at '%'
  }
  EXPECT_NEAR(total, 100.0, 1.0);
}

TEST(Analysis, RecordsCsvRoundTrips) {
  const auto campaign = tiny_campaign();
  const std::string path = ::testing::TempDir() + "/records.csv";
  ASSERT_TRUE(analysis::write_records_csv(campaign, path).is_ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string header;
  std::getline(file, header);
  EXPECT_NE(header.find("outcome"), std::string::npos);
  EXPECT_NE(header.find("xid"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(file, line);) ++rows;
  EXPECT_EQ(rows, campaign.records.size());
}

TEST(Analysis, FailureRateIsSumOfBadOutcomes) {
  const auto campaign = tiny_campaign();
  const f64 rate = analysis::uncorrected_failure_rate(campaign);
  EXPECT_DOUBLE_EQ(rate, campaign.rate(fi::Outcome::kSdc) +
                             campaign.rate(fi::Outcome::kDue) +
                             campaign.rate(fi::Outcome::kHang));
}

}  // namespace
}  // namespace gfi
