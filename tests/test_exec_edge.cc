// Edge cases: wide memory ops interacting with the ECC fault map, deep
// divergence nesting, nested loops, negated predicates, SYNC underflow,
// exits inside divergent regions, and injection replay determinism.
#include <gtest/gtest.h>

#include "fi/injector.h"
#include "sassim/warp.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

using gfi::Dim3;
using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;
using sim_test::run_lane_kernel;
using sim_test::run_lane_kernel64;

TEST(ExecEdge, Wide64LoadStoreRoundTrip) {
  Device device(arch::toy());
  auto in = device.malloc_n<u64>(32);
  auto out = device.malloc_n<u64>(32);
  std::vector<u64> data(32);
  for (u32 i = 0; i < 32; ++i) data[i] = 0x1111111100000000ULL * i + i;
  ASSERT_TRUE(device.to_device<u64>(in.value(), data).is_ok());

  KernelBuilder b("copy64");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.ldc_u64(2, 0);
  b.ldc_u64(4, 1);
  b.imad_wide(6, Operand::reg(0), Operand::imm_u(8), Operand::reg(2));
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(8), Operand::reg(4));
  b.ldg(12, 6, 0, 8);
  b.stg(8, 12, 0, 8);
  b.exit_();
  auto program = must(b);
  const u64 params[] = {in.value(), out.value()};
  auto launch = device.launch(program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(launch.value().ok());
  std::vector<u64> host(32);
  ASSERT_EQ(device.to_host(std::span<u64>(host), out.value()), TrapKind::kNone);
  EXPECT_EQ(host, data);
}

TEST(ExecEdge, EightByteLoadSeesFaultsInBothWords) {
  sim::GlobalMemory memory(1u << 20, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  const u64 value = 0xAABBCCDD11223344ULL;
  ASSERT_EQ(memory.write(addr, &value, 8), TrapKind::kNone);
  memory.inject_fault(addr, 1u << 0);      // low word
  memory.inject_fault(addr + 4, 1u << 9);  // high word
  u64 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 8), TrapKind::kNone);
  EXPECT_EQ(got, value);                            // both corrected
  EXPECT_EQ(memory.counters().corrected_sbe, 2u);   // counted per word
}

TEST(ExecEdge, EightByteLoadTrapsIfEitherWordHasDbe) {
  sim::GlobalMemory memory(1u << 20, ecc::EccMode::kSecded);
  const u64 addr = memory.allocate(64).value();
  memory.inject_fault(addr + 4, 0b11);
  u64 got = 0;
  EXPECT_EQ(memory.read(addr, &got, 8), TrapKind::kEccDoubleBit);
}

TEST(ExecEdge, NestedUniformLoops) {
  // result = sum over i<4, j<3 of 1 = 12 per lane.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0));
    b.mov_u32(4, Operand::imm_u(0));
    b.uniform_loop(4, Operand::imm_u(4), 1, [&] {
      b.mov_u32(5, Operand::imm_u(0));
      b.uniform_loop(5, Operand::imm_u(3), 2, [&] {
        b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1));
      });
    });
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 12u);
}

TEST(ExecEdge, FourLevelNestedDivergence) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0));
    // level 1: lane < 16
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.if_then(0, false, [&] {
      b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1));
      // level 2: lane < 8
      b.isetp(CmpOp::kLt, 1, Operand::reg(0), Operand::imm_u(8));
      b.if_then(1, false, [&] {
        b.iadd_u32(10, Operand::reg(10), Operand::imm_u(10));
        // level 3: lane < 4
        b.isetp(CmpOp::kLt, 2, Operand::reg(0), Operand::imm_u(4));
        b.if_then(2, false, [&] {
          b.iadd_u32(10, Operand::reg(10), Operand::imm_u(100));
          // level 4: lane < 2
          b.isetp(CmpOp::kLt, 3, Operand::reg(0), Operand::imm_u(2));
          b.if_then(3, false, [&] {
            b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1000));
          });
        });
      });
    });
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    u32 want = 0;
    if (lane < 16) want += 1;
    if (lane < 8) want += 10;
    if (lane < 4) want += 100;
    if (lane < 2) want += 1000;
    EXPECT_EQ(out[lane], want) << lane;
  }
}

TEST(ExecEdge, ExitInsideDivergentRegion) {
  // Lanes < 8 exit inside the if; the rest reconverge and keep computing.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(1));
    // Pre-store sentinel for exiting lanes through the normal path: store
    // now, then conditionally exit, survivors overwrite via the harness.
    b.ldc_u64(30, 0);
    b.s2r(34, sim::SpecialReg::kLaneId);
    b.imad_wide(32, Operand::reg(34), Operand::imm_u(4), Operand::reg(30));
    b.stg(32, 10);
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.if_then(0, false, [&] {
      b.isetp(CmpOp::kLt, 1, Operand::reg(0), Operand::imm_u(8));
      b.exit_if(1);
      b.mov_u32(10, Operand::imm_u(2));  // lanes 8..15
    });
    b.iadd_u32(10, Operand::reg(10), Operand::imm_u(100));  // survivors
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    const u32 want = lane < 8 ? 1u : lane < 16 ? 102u : 101u;
    EXPECT_EQ(out[lane], want) << lane;
  }
}

TEST(ExecEdge, NegatedGuardAndNegatedPredSource) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    // SEL with negated predicate source.
    b.sel(4, Operand::imm_u(7), Operand::imm_u(9), 0, /*negated=*/true);
    // Guarded move with @!P0.
    b.mov_u32(10, Operand::reg(4));
    b.mov_u32(10, Operand::imm_u(42));
    b.guard_last(0, /*negated=*/true);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    // lanes < 16: P0 true -> sel(!P0) = 9; guard @!P0 false -> keeps 9.
    // lanes >= 16: sel = 7 then overwritten by 42.
    EXPECT_EQ(out[lane], lane < 16 ? 9u : 42u);
  }
}

TEST(ExecEdge, SyncWithoutSsyTraps) {
  KernelBuilder b("bad_sync");
  b.sync_();
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalInstruction);
}

TEST(ExecEdge, LdcU64LoadsFullPair) {
  Device device(arch::toy());
  auto out = device.malloc_n<u64>(32);
  KernelBuilder b("ldc_pair");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.ldc_u64(10, 1);  // the 64-bit sentinel parameter into R10:R11
  b.ldc_u64(4, 0);
  b.imad_wide(6, Operand::reg(0), Operand::imm_u(8), Operand::reg(4));
  b.stg(6, 10, 0, 8);
  b.exit_();
  auto program = must(b);
  const u64 params[] = {out.value(), 0xFEEDFACE12345678ULL};
  auto launch = device.launch(program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(launch.value().ok());
  std::vector<u64> host(32);
  ASSERT_EQ(device.to_host(std::span<u64>(host), out.value()), TrapKind::kNone);
  for (u64 v : host) EXPECT_EQ(v, 0xFEEDFACE12345678ULL);
}

TEST(ExecEdge, InjectionReplayIsDeterministic) {
  fi::FaultSite site;
  site.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kInt;
  site.target_occurrence = 3;
  site.lane_sel = 9;
  site.bit_sel = 17;

  auto run = [&site] {
    Device device(arch::toy());
    auto out = device.malloc_n<u32>(32);
    KernelBuilder b("replay");
    b.s2r(0, sim::SpecialReg::kLaneId);
    for (int i = 0; i < 6; ++i) {
      b.iadd_u32(4, Operand::reg(0), Operand::imm_u(static_cast<u64>(i)));
    }
    b.ldc_u64(6, 0);
    b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
    b.stg(8, 4);
    b.exit_();
    auto program = must(b);
    fi::InjectorHook injector(site, device.config());
    sim::LaunchOptions options;
    options.hooks.push_back(&injector);
    const u64 params[] = {out.value()};
    auto launch = device.launch(program, Dim3(1), Dim3(32), params, options);
    EXPECT_TRUE(launch.value().ok());
    std::vector<u32> host(32);
    EXPECT_EQ(device.to_host(std::span<u32>(host), out.value()),
              TrapKind::kNone);
    return host;
  };
  EXPECT_EQ(run(), run());
}

TEST(ExecEdge, RegZWritesAreDiscarded) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.iadd_u32(sim::kRegZ, Operand::reg(0), Operand::imm_u(1));
    b.mov_u32(10, Operand::reg(sim::kRegZ));  // RZ always reads 0
    b.iadd_u32(10, Operand::reg(10), Operand::imm_u(5));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], 5u);
}

TEST(ExecEdge, StackedDivergenceWithLoopInside) {
  // if (lane < 16) { for j<lane%4+1: ++acc }  — divergent loop nested in a
  // divergent if.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    using sim::LopKind;
    b.mov_u32(10, Operand::imm_u(0));
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.if_then(0, false, [&] {
      b.lop(LopKind::kAnd, 4, Operand::reg(0), Operand::imm_u(3));
      b.iadd_u32(4, Operand::reg(4), Operand::imm_u(1));  // bound
      b.mov_u32(5, Operand::imm_u(0));
      b.uniform_loop(5, Operand::reg(4), 1, [&] {
        b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1));
      });
    });
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane < 16 ? (lane & 3) + 1 : 0u) << lane;
  }
}

// RZ as a 64-bit pair base must not touch the register file at all: the
// upper half would alias register kRegZ + 1, one past the file's end.
TEST(ExecEdge, RegisterZeroPairAccessesAreInert) {
  sim::WarpState warp(0, 4, 0xFFFFFFFFu);
  warp.set_reg(0, 3, 0x1234u);
  warp.set_reg64(0, sim::kRegZ, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(warp.reg64(0, sim::kRegZ), 0u);
  warp.set_reg(0, sim::kRegZ, 7u);
  EXPECT_EQ(warp.reg(0, sim::kRegZ), 0u);
  // Neighbouring architected state is untouched.
  EXPECT_EQ(warp.reg(0, 3), 0x1234u);
}

}  // namespace
}  // namespace gfi
