// Unit tests for the failpoint layer (common/failpoint.h): spec parsing,
// trigger semantics, and the deterministic backoff helper that the campaign
// supervisor builds on. The kill/torn/stall actions that terminate or block
// the process are exercised end-to-end in test_supervisor.cc, where they
// fire inside forked worker processes.
#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/failpoint.h"

namespace gfi {
namespace {

/// Every test must leave the process with no spec installed: other suites
/// in this binary (campaign, journal) run the same instrumented sites.
struct SpecGuard {
  ~SpecGuard() { (void)fp::set_spec(""); }
};

TEST(Failpoint, DisabledByDefaultAndAfterClearing) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("").is_ok());
  EXPECT_FALSE(fp::enabled());
  EXPECT_EQ(fp::spec(), "");
  EXPECT_FALSE(fp::hit("journal.append"));

  ASSERT_TRUE(fp::set_spec("journal.append=err").is_ok());
  EXPECT_TRUE(fp::enabled());
  ASSERT_TRUE(fp::set_spec("").is_ok());
  EXPECT_FALSE(fp::enabled());
  EXPECT_FALSE(fp::hit("journal.append"));
}

TEST(Failpoint, UnconditionalErrFiresEveryTimeOnItsSiteOnly) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("journal.append=err").is_ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fp::hit("journal.append").action, fp::Action::kErr);
  }
  EXPECT_FALSE(fp::hit("journal.flush"));
  EXPECT_FALSE(fp::hit("golden_cache.persist"));
}

TEST(Failpoint, HitTriggerFiresExactlyOnce) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("site=err@hit=3").is_ok());
  EXPECT_FALSE(fp::hit("site"));
  EXPECT_FALSE(fp::hit("site"));
  EXPECT_EQ(fp::hit("site").action, fp::Action::kErr);  // 3rd evaluation
  EXPECT_FALSE(fp::hit("site"));
  EXPECT_FALSE(fp::hit("site"));
}

TEST(Failpoint, EveryTriggerFiresPeriodically) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("site=err@every=3").is_ok());
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (fp::hit("site")) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired on evaluation " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST(Failpoint, KeyTriggerMatchesTheCoordinateNotTheCount) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("inject.execute=err@key=7").is_ok());
  EXPECT_FALSE(fp::hit("inject.execute", 5));
  EXPECT_EQ(fp::hit("inject.execute", 7).action, fp::Action::kErr);
  // key= keeps matching (a poison injection is poisonous on every attempt).
  EXPECT_EQ(fp::hit("inject.execute", 7).action, fp::Action::kErr);
  // A site evaluated without a coordinate can never match key=.
  EXPECT_FALSE(fp::hit("inject.execute"));
  EXPECT_FALSE(fp::hit("inject.execute", fp::kAnyKey));
}

TEST(Failpoint, MultipleClausesAndArgumentsParse) {
  SpecGuard guard;
  ASSERT_TRUE(
      fp::set_spec("journal.append=err@every=50;heartbeat.write=err;"
                   "campaign.injection=kill:9@hit=100")
          .is_ok());
  EXPECT_TRUE(fp::enabled());
  EXPECT_EQ(fp::hit("heartbeat.write").action, fp::Action::kErr);
  EXPECT_FALSE(fp::hit("journal.append"));  // every=50: not the 50th yet
  EXPECT_FALSE(fp::hit("campaign.injection"));  // hit=100: not yet
  EXPECT_NE(fp::spec().find("kill:9"), std::string::npos);
}

TEST(Failpoint, OffClausesAreInertAndSetSpecReplacesThePrevious) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("journal.append=off").is_ok());
  EXPECT_FALSE(fp::enabled());
  EXPECT_FALSE(fp::hit("journal.append"));

  ASSERT_TRUE(fp::set_spec("journal.append=err").is_ok());
  EXPECT_EQ(fp::hit("journal.append").action, fp::Action::kErr);
  // Replacing the spec drops the old clause entirely.
  ASSERT_TRUE(fp::set_spec("journal.flush=err").is_ok());
  EXPECT_FALSE(fp::hit("journal.append"));
  EXPECT_EQ(fp::hit("journal.flush").action, fp::Action::kErr);
}

TEST(Failpoint, SetSpecResetsTriggerCounters) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("site=err@hit=2").is_ok());
  EXPECT_FALSE(fp::hit("site"));
  EXPECT_TRUE(fp::hit("site"));
  // Reinstalling the identical spec restarts the count — the property that
  // makes a relaunched worker replay the same failure schedule.
  ASSERT_TRUE(fp::set_spec("site=err@hit=2").is_ok());
  EXPECT_FALSE(fp::hit("site"));
  EXPECT_TRUE(fp::hit("site"));
}

TEST(Failpoint, MalformedSpecsAreRejectedAndLeaveTheOldSpecInstalled) {
  SpecGuard guard;
  ASSERT_TRUE(fp::set_spec("journal.append=err").is_ok());
  for (const char* bad : {
           "journal.append",           // no action
           "journal.append=",          // empty action
           "=err",                     // no site
           "journal.append=bogus",     // unknown action
           "journal.append=err@hit=0",    // hit is 1-based
           "journal.append=err@every=0",  // every must be positive
           "journal.append=err@hit=abc",  // non-numeric trigger
           "journal.append=err@when=3",   // unknown trigger
           "journal.append=stall",        // stall requires :ms
           "journal.append=err:junk",     // err takes no argument
       }) {
    EXPECT_FALSE(fp::set_spec(bad).is_ok()) << bad;
    // The previous good spec is still live.
    EXPECT_EQ(fp::spec(), "journal.append=err") << bad;
  }
  EXPECT_EQ(fp::hit("journal.append").action, fp::Action::kErr);
}

// ------------------------------------------------------------ backoff ----

TEST(Backoff, AttemptZeroAndZeroBaseAreImmediate) {
  EXPECT_EQ(backoff_delay_ms(0, 500, 10000, 42, 0), 0u);
  EXPECT_EQ(backoff_delay_ms(3, 0, 10000, 42, 0), 0u);
}

TEST(Backoff, DelaysAreDeterministicPerSeedAndStream) {
  for (u32 attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(backoff_delay_ms(attempt, 500, 10000, 42, 3),
              backoff_delay_ms(attempt, 500, 10000, 42, 3));
  }
  // Different streams (shards) decorrelate: at least one attempt differs.
  bool any_differ = false;
  for (u32 attempt = 1; attempt <= 8; ++attempt) {
    any_differ = any_differ || backoff_delay_ms(attempt, 500, 10000, 42, 0) !=
                                   backoff_delay_ms(attempt, 500, 10000, 42, 1);
  }
  EXPECT_TRUE(any_differ);
}

TEST(Backoff, EqualJitterStaysInsideTheExponentialWindow) {
  const u64 base = 100, cap = 5000;
  for (u32 attempt = 1; attempt <= 20; ++attempt) {
    for (u64 stream = 0; stream < 4; ++stream) {
      const u64 delay = backoff_delay_ms(attempt, base, cap, 7, stream);
      u64 window = cap;
      if (attempt - 1 < 63 && base <= (cap >> (attempt - 1))) {
        window = base << (attempt - 1);
      }
      EXPECT_GE(delay, window - window / 2) << attempt << "/" << stream;
      EXPECT_LE(delay, window) << attempt << "/" << stream;
      EXPECT_LE(delay, cap);
    }
  }
}

TEST(Backoff, HugeAttemptCountsSaturateAtTheCapWithoutOverflow) {
  for (const u32 attempt : {40u, 63u, 64u, 1000u, ~0u}) {
    const u64 delay = backoff_delay_ms(attempt, 500, 10000, 42, 0);
    EXPECT_GE(delay, 5000u);   // cap/2: jitter window floor
    EXPECT_LE(delay, 10000u);  // never above the cap
  }
}

}  // namespace
}  // namespace gfi
