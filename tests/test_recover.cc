// Recovery subsystem tests: device checkpoint/restore bit-identity, the
// trap-and-retry executor, campaign-level recovery classification under
// transient vs stuck-at faults, ABFT goldens and detection, the journal
// round-trip of the recovery fields, and the trap taxonomy (every TrapKind
// raisable from a minimal kernel and classified as a detected error).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/arch.h"
#include "fi/campaign.h"
#include "fi/journal.h"
#include "recover/abft.h"
#include "recover/retry.h"
#include "sim_test_util.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using fi::BitFlipModel;
using fi::Campaign;
using fi::CampaignConfig;
using fi::FaultPersistence;
using fi::InjectionMode;
using fi::Journal;
using fi::Outcome;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

CampaignConfig base_config(const std::string& workload) {
  CampaignConfig config;
  config.workload = workload;
  config.machine = arch::toy();
  config.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  config.num_injections = 60;
  config.seed = 7;
  config.threads = 4;
  return config;
}

/// IOA strikes on vecadd's store displace addresses out of the arena, so a
/// healthy fraction of injections land as DUEs — the retry executor's food.
CampaignConfig due_heavy_config() {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kIoa;
  config.group = sim::InstrGroup::kStore;
  return config;
}

// ------------------------------------------------ checkpoint / restore ----

TEST(Snapshot, RestoreIsBitIdentical) {
  Device device(arch::toy());
  auto buf = device.malloc_n<u32>(256);
  ASSERT_TRUE(buf.is_ok());
  std::vector<u32> original(256);
  for (u32 i = 0; i < 256; ++i) original[i] = i * 0x9E3779B9u;
  ASSERT_TRUE(device.to_device(buf.value(),
                               std::span<const u32>(original)).is_ok());

  const auto snap = device.snapshot();

  // Scribble over the buffer, grow the heap, and plant a latent fault.
  std::vector<u32> garbage(256, 0xFFFFFFFFu);
  ASSERT_TRUE(device.to_device(buf.value(),
                               std::span<const u32>(garbage)).is_ok());
  auto extra = device.malloc_n<u32>(1024);
  ASSERT_TRUE(extra.is_ok());
  device.memory().inject_fault(buf.value(), 0b11);

  device.restore(snap);
  std::vector<u32> host(256);
  ASSERT_EQ(device.to_host(std::span<u32>(host), buf.value()), TrapKind::kNone);
  EXPECT_EQ(host, original);  // data back, fault gone (no DBE on the read)

  // The allocator is part of the checkpoint: the next allocation lands at
  // the same address it would have immediately after the snapshot.
  auto after_restore = device.malloc_n<u32>(1024);
  ASSERT_TRUE(after_restore.is_ok());
  EXPECT_EQ(after_restore.value(), extra.value());
}

TEST(Snapshot, RelaunchAfterRestoreReplaysBitIdentically) {
  auto workload = wl::make_workload("saxpy");
  ASSERT_NE(workload, nullptr);
  Device device(arch::toy());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();

  const auto snap = device.snapshot();
  auto first = device.launch(workload->program(), spec.value().grid,
                             spec.value().block, spec.value().params);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value().ok());
  auto checked = workload->check(device);
  ASSERT_TRUE(checked.is_ok());
  EXPECT_TRUE(checked.value().result.bitwise_equal);

  device.restore(snap);
  auto second = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(second.value().ok());
  EXPECT_EQ(first.value().dyn_warp_instrs, second.value().dyn_warp_instrs);
  auto rechecked = workload->check(device);
  ASSERT_TRUE(rechecked.is_ok());
  EXPECT_TRUE(rechecked.value().result.bitwise_equal);
}

// ------------------------------------------------------ retry executor ----

sim::Trap fake_trap(TrapKind kind) {
  sim::Trap trap;
  trap.kind = kind;
  return trap;
}

TEST(Retry, CleanFirstAttemptRunsOnce) {
  Device device(arch::toy());
  u32 calls = 0;
  auto result = recover::run_with_retry(
      device, {.max_retries = 3}, [&](u32) -> Result<recover::Attempt> {
        ++calls;
        return recover::Attempt{.trap = {}, .dyn_instrs = 100};
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(result.value().attempts, 1u);
  EXPECT_EQ(result.value().total_dyn_instrs, 100u);
  EXPECT_FALSE(result.value().recovered());
  EXPECT_FALSE(result.value().gave_up());
}

TEST(Retry, TransientTrapRecoversOnSecondAttempt) {
  Device device(arch::toy());
  auto result = recover::run_with_retry(
      device, {.max_retries = 3}, [&](u32 attempt) -> Result<recover::Attempt> {
        return recover::Attempt{
            .trap = attempt == 0 ? fake_trap(TrapKind::kEccDoubleBit)
                                 : sim::Trap{},
            .dyn_instrs = 50};
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().attempts, 2u);
  EXPECT_EQ(result.value().total_dyn_instrs, 100u);
  EXPECT_TRUE(result.value().recovered());
  EXPECT_EQ(result.value().first_trap.kind, TrapKind::kEccDoubleBit);
  EXPECT_EQ(result.value().last_trap.kind, TrapKind::kNone);
}

TEST(Retry, PersistentTrapExhaustsBudget) {
  Device device(arch::toy());
  auto result = recover::run_with_retry(
      device, {.max_retries = 3}, [&](u32) -> Result<recover::Attempt> {
        return recover::Attempt{.trap = fake_trap(TrapKind::kWatchdogTimeout),
                                .dyn_instrs = 10};
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().attempts, 4u);  // original + 3 retries
  EXPECT_EQ(result.value().total_dyn_instrs, 40u);
  EXPECT_TRUE(result.value().gave_up());
  EXPECT_FALSE(result.value().recovered());
}

TEST(Retry, ZeroBudgetDisablesRecovery) {
  Device device(arch::toy());
  u32 calls = 0;
  auto result = recover::run_with_retry(
      device, {.max_retries = 0}, [&](u32) -> Result<recover::Attempt> {
        ++calls;
        return recover::Attempt{.trap = fake_trap(TrapKind::kEccDoubleBit)};
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(result.value().attempts, 1u);
  EXPECT_TRUE(result.value().gave_up());
}

TEST(Retry, EveryAttemptStartsFromCheckpointState) {
  Device device(arch::toy());
  auto flag = device.malloc_n<u32>(1);
  ASSERT_TRUE(flag.is_ok());
  const std::vector<u32> zero = {0};
  ASSERT_TRUE(device.to_device(flag.value(),
                               std::span<const u32>(zero)).is_ok());

  auto result = recover::run_with_retry(
      device, {.max_retries = 2}, [&](u32 attempt) -> Result<recover::Attempt> {
        // A pristine checkpoint means every attempt reads back 0 even
        // though every attempt also dirties the word.
        std::vector<u32> host(1);
        EXPECT_EQ(device.to_host(std::span<u32>(host), flag.value()),
                  TrapKind::kNone);
        EXPECT_EQ(host[0], 0u) << "attempt " << attempt;
        const std::vector<u32> dirty = {attempt + 1};
        EXPECT_TRUE(device.to_device(flag.value(),
                                     std::span<const u32>(dirty)).is_ok());
        return recover::Attempt{
            .trap = attempt < 2 ? fake_trap(TrapKind::kIllegalGlobalAddress)
                                : sim::Trap{}};
      });
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().attempts, 3u);
  EXPECT_TRUE(result.value().recovered());
}

TEST(Retry, TrapRuleClassifiesWatchdogAsHang) {
  EXPECT_EQ(fi::outcome_for_trap(TrapKind::kWatchdogTimeout), Outcome::kHang);
  EXPECT_EQ(fi::outcome_for_trap(TrapKind::kEccDoubleBit), Outcome::kDue);
  EXPECT_EQ(fi::outcome_for_trap(TrapKind::kIllegalGlobalAddress),
            Outcome::kDue);
}

// -------------------------------------------------- campaign semantics ----

TEST(CampaignRecovery, TransientFaultsConvertEveryDetectedError) {
  auto config = due_heavy_config();
  auto baseline = Campaign::run(config);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().to_string();
  const u64 detected = baseline.value().count(Outcome::kDue) +
                       baseline.value().count(Outcome::kHang);
  ASSERT_GT(detected, 0u);  // the config must actually produce DUEs

  config.max_retries = 3;
  auto retried = Campaign::run(config);
  ASSERT_TRUE(retried.is_ok()) << retried.status().to_string();
  EXPECT_EQ(retried.value().count(Outcome::kDue), 0u);
  EXPECT_EQ(retried.value().count(Outcome::kHang), 0u);
  EXPECT_EQ(retried.value().count(Outcome::kUnrecoverableDue), 0u);
  EXPECT_EQ(retried.value().count(Outcome::kRecoveredRetry), detected);

  // Per record: detected errors become RecoveredRetry on the second
  // attempt; everything else is untouched by the executor (same sites,
  // same classification, one attempt).
  ASSERT_EQ(retried.value().records.size(), baseline.value().records.size());
  for (std::size_t i = 0; i < baseline.value().records.size(); ++i) {
    const auto& before = baseline.value().records[i];
    const auto& after = retried.value().records[i];
    EXPECT_EQ(after.pre_recovery, before.outcome) << i;
    if (before.outcome == Outcome::kDue || before.outcome == Outcome::kHang) {
      EXPECT_EQ(after.outcome, Outcome::kRecoveredRetry) << i;
      EXPECT_EQ(after.attempts, 2u) << i;
      EXPECT_EQ(after.trap, before.trap) << i;  // the original detector
    } else {
      EXPECT_EQ(after.outcome, before.outcome) << i;
      EXPECT_EQ(after.attempts, 1u) << i;
    }
  }
}

TEST(CampaignRecovery, StuckAtFaultsNeverRecover) {
  auto config = due_heavy_config();
  config.max_retries = 3;
  config.model.persistence = FaultPersistence::kStuckAt;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().count(Outcome::kRecoveredRetry), 0u);
  EXPECT_GT(result.value().count(Outcome::kUnrecoverableDue), 0u);
  for (const auto& record : result.value().records) {
    if (record.outcome == Outcome::kUnrecoverableDue) {
      // The fault re-arms on every relaunch: the full budget is burned.
      EXPECT_EQ(record.attempts, 1u + config.max_retries);
    } else {
      EXPECT_EQ(record.attempts, 1u);
    }
  }
}

TEST(CampaignRecovery, ZeroRetriesKeepsLegacyLabels) {
  auto config = due_heavy_config();
  config.model.persistence = FaultPersistence::kStuckAt;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  // Without a retry budget the persistence axis is inert and outcomes keep
  // their plain DUE/Hang labels.
  EXPECT_EQ(result.value().count(Outcome::kRecoveredRetry), 0u);
  EXPECT_EQ(result.value().count(Outcome::kUnrecoverableDue), 0u);
}

// ----------------------------------------------------------------- ABFT ----

TEST(Abft, GoldenRunsPassOnFaultFreeHardware) {
  recover::register_abft_workloads();
  for (const std::string name : {"gemm_abft", "reduce_abft", "spmv_abft"}) {
    auto golden = Campaign::golden_run(base_config(name));
    ASSERT_TRUE(golden.is_ok()) << name << ": " << golden.status().to_string();
    EXPECT_GT(golden.value().dyn_instrs, 0u) << name;
  }
}

TEST(Abft, ChecksumsConvertSdcsIntoRecoverableTraps) {
  recover::register_abft_workloads();
  auto plain = Campaign::run(base_config("gemm"));
  ASSERT_TRUE(plain.is_ok()) << plain.status().to_string();

  auto abft_config = base_config("gemm_abft");
  abft_config.max_retries = 3;
  auto abft = Campaign::run(abft_config);
  ASSERT_TRUE(abft.is_ok()) << abft.status().to_string();

  // The checksum trap fires where the plain kernel would go silently wrong,
  // and the retry executor then recovers those runs.
  EXPECT_GT(abft.value().count(Outcome::kRecoveredRetry), 0u);
  EXPECT_LT(abft.value().rate(Outcome::kSdc), plain.value().rate(Outcome::kSdc));
}

// -------------------------------------------------- journal round-trip ----

TEST(JournalRecovery, RecordLinePreservesRecoveryFields) {
  fi::InjectionRecord record;
  record.outcome = Outcome::kRecoveredRetry;
  record.pre_recovery = Outcome::kHang;
  record.attempts = 3;
  record.trap = sim::TrapKind::kWatchdogTimeout;
  const std::string line = Journal::record_line(5, record);
  auto parsed = Journal::parse_record(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().second.outcome, Outcome::kRecoveredRetry);
  EXPECT_EQ(parsed.value().second.pre_recovery, Outcome::kHang);
  EXPECT_EQ(parsed.value().second.attempts, 3u);
}

TEST(JournalRecovery, PreRecoveryFieldLineParsesWithDefaults) {
  // A journal written before the recovery fields existed has no "pre"/"att"
  // keys; parsing must fall back to outcome itself and a single attempt.
  fi::InjectionRecord record;
  record.outcome = Outcome::kDue;
  record.pre_recovery = Outcome::kHang;  // deliberately different
  record.attempts = 4;
  std::string line = Journal::record_line(0, record);
  const auto pre = line.find(",\"pre\"");
  const auto trap = line.find(",\"trap\"");
  ASSERT_NE(pre, std::string::npos);
  ASSERT_NE(trap, std::string::npos);
  line.erase(pre, trap - pre);  // back to the legacy wire format

  auto parsed = Journal::parse_record(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().second.outcome, Outcome::kDue);
  EXPECT_EQ(parsed.value().second.pre_recovery, Outcome::kDue);
  EXPECT_EQ(parsed.value().second.attempts, 1u);
}

TEST(JournalRecovery, HeaderCarriesPersistenceAndBudget) {
  auto config = due_heavy_config();
  config.model.persistence = FaultPersistence::kStuckAt;
  config.max_retries = 2;
  auto golden = Campaign::golden_run(config);
  ASSERT_TRUE(golden.is_ok());
  const auto header = fi::make_journal_header(config, golden.value());
  EXPECT_EQ(header.persist, "stuck-at");
  EXPECT_EQ(header.max_retries, 2u);

  std::string line = Journal::header_line(header);
  auto parsed = Journal::parse_header(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().persist, "stuck-at");
  EXPECT_EQ(parsed.value().max_retries, 2u);

  // Legacy headers (no persist/max_retries keys) default to the old
  // behaviour: transient faults, no recovery.
  const auto persist = line.find(",\"persist\"");
  const auto seed = line.find(",\"seed\"");
  ASSERT_NE(persist, std::string::npos);
  ASSERT_NE(seed, std::string::npos);
  line.erase(persist, seed - persist);
  auto legacy = Journal::parse_header(line);
  ASSERT_TRUE(legacy.is_ok()) << legacy.status().to_string();
  EXPECT_EQ(legacy.value().persist, "transient");
  EXPECT_EQ(legacy.value().max_retries, 0u);
}

// -------------------------------------------------------- trap taxonomy ----
//
// Satellite: every TrapKind the simulator can raise must be reachable from
// a minimal kernel and must classify as a detected error (DUE or Hang) —
// i.e. as fodder for the retry executor, never as silent corruption.

void expect_trap(const sim::Program& program, TrapKind want,
                 const sim::LaunchOptions& options = {},
                 Device* device_in = nullptr, Dim3 block = Dim3(32)) {
  Device local(arch::toy());
  Device& device = device_in ? *device_in : local;
  auto launch = device.launch(program, Dim3(1), block, {}, options);
  ASSERT_TRUE(launch.is_ok()) << launch.status().to_string();
  EXPECT_EQ(launch.value().trap.kind, want);
  const Outcome outcome = fi::outcome_for_trap(want);
  EXPECT_TRUE(outcome == Outcome::kDue || outcome == Outcome::kHang);
  EXPECT_EQ(outcome, want == TrapKind::kWatchdogTimeout ? Outcome::kHang
                                                        : Outcome::kDue);
}

TEST(TrapTaxonomy, IllegalGlobalAddress) {
  KernelBuilder b("oob_global");
  b.mov_u64(2, 0x10ULL);  // below the arena base
  b.ldg(4, 2);
  b.exit_();
  expect_trap(must(b), TrapKind::kIllegalGlobalAddress);
}

TEST(TrapTaxonomy, MisalignedAddress) {
  Device device(arch::toy());
  auto buf = device.malloc_n<u32>(16);
  ASSERT_TRUE(buf.is_ok());
  KernelBuilder b("misaligned");
  b.mov_u64(2, buf.value() + 2);  // 4-byte load at 2-byte alignment
  b.ldg(4, 2);
  b.exit_();
  expect_trap(must(b), TrapKind::kMisalignedAddress, {}, &device);
}

TEST(TrapTaxonomy, IllegalSharedAddress) {
  KernelBuilder b("oob_shared");
  b.set_shared_bytes(64);
  b.mov_u32(2, Operand::imm_u(128));  // past the CTA's 64 bytes
  b.mov_u32(3, Operand::imm_u(1));
  b.sts(2, 3);
  b.exit_();
  expect_trap(must(b), TrapKind::kIllegalSharedAddress);
}

TEST(TrapTaxonomy, EccDoubleBit) {
  Device device(arch::toy());  // toy DRAM runs SECDED
  auto buf = device.malloc_n<u32>(16);
  ASSERT_TRUE(buf.is_ok());
  device.memory().inject_fault(buf.value(), 0b11);  // uncorrectable
  KernelBuilder b("consume_dbe");
  b.mov_u64(2, buf.value());
  b.ldg(4, 2);
  b.exit_();
  expect_trap(must(b), TrapKind::kEccDoubleBit, {}, &device);
}

TEST(TrapTaxonomy, WatchdogTimeout) {
  KernelBuilder b("spin");
  auto top = b.new_label();
  b.bind(top);
  b.bra(top);
  b.exit_();
  sim::LaunchOptions options;
  options.watchdog_instrs = 500;
  expect_trap(must(b), TrapKind::kWatchdogTimeout, options);
}

TEST(TrapTaxonomy, IllegalInstruction) {
  KernelBuilder b("orphan_sync");
  b.sync_();  // SYNC with an empty divergence stack
  b.exit_();
  expect_trap(must(b), TrapKind::kIllegalInstruction);
}

/// Requests `kind` on the Nth dynamic instruction — the same mechanism the
/// injector uses when a strike corrupts state into a trapping condition.
class RaiseTrapHook final : public sim::InstrumentHook {
 public:
  explicit RaiseTrapHook(TrapKind kind) : kind_(kind) {}
  void on_before_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index == 2) ctx.requested_trap = kind_;
  }

 private:
  TrapKind kind_;
};

TEST(TrapTaxonomy, BarrierDivergence) {
  // A warp that skips or outlives its barrier cannot deadlock a healthy
  // CTA: the scheduler releases parked siblings both when the last live
  // warp arrives and when a warp retires (exited threads do not block a
  // barrier, matching CUDA). First pin down that behaviour...
  KernelBuilder mismatch("half_barrier");
  const auto l_busy = mismatch.new_label();
  mismatch.s2r(0, sim::SpecialReg::kTidX);
  mismatch.isetp(sim::CmpOp::kGe, 0, Operand::reg(0), Operand::imm_u(32));
  mismatch.bra(l_busy, 0);  // warp 1: warp-uniform branch, no divergence
  mismatch.bar();           // warp 0 arrives first and parks
  mismatch.exit_();
  mismatch.bind(l_busy);
  mismatch.uniform_loop(2, Operand::imm_u(64), 1, [&] {});
  mismatch.exit_();
  Device device(arch::toy());
  auto launch = device.launch(must(mismatch), Dim3(1), Dim3(64), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kNone);

  // ...so the deadlock detector only fires under corrupted control flow.
  // Drive it through the instrumentation layer (the injector's trap path)
  // and check the classifier treats it as a DUE like any other trap.
  KernelBuilder b("plain");
  b.mov_u32(2, Operand::imm_u(1));
  b.iadd_u32(2, Operand::reg(2), Operand::imm_u(1));
  b.exit_();
  RaiseTrapHook hook(TrapKind::kBarrierDivergence);
  sim::LaunchOptions options;
  options.hooks.push_back(&hook);
  auto trapped = device.launch(must(b), Dim3(1), Dim3(32), {}, options);
  ASSERT_TRUE(trapped.is_ok());
  EXPECT_EQ(trapped.value().trap.kind, TrapKind::kBarrierDivergence);
  EXPECT_EQ(fi::outcome_for_trap(TrapKind::kBarrierDivergence), Outcome::kDue);
}

}  // namespace
}  // namespace gfi
