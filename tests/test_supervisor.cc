// End-to-end tests for the resilient campaign supervisor (`gpufi run`):
// shard leases, crash/retry with resume, poison quarantine, stall kills,
// supervisor death + --resume — all driven by failpoints injected into
// forked workers (the real gpufi binary, path baked in as GFI_GPUFI_BIN).
//
// The load-bearing assertion, repeated across scenarios: whatever the
// supervisor survived, the merged journal it produces is byte-identical to
// the journal an uninterrupted unsharded single-threaded campaign writes
// (modulo records the supervisor deliberately quarantined).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "arch/arch.h"
#include "common/failpoint.h"
#include "fi/campaign.h"
#include "fi/golden_cache.h"
#include "fi/journal.h"
#include "fi/lease.h"
#include "fi/supervisor.h"

namespace gfi {
namespace {

namespace fs = std::filesystem;

using fi::Campaign;
using fi::CampaignConfig;
using fi::Lease;
using fi::Outcome;
using fi::Supervisor;
using fi::SupervisorConfig;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gfi_sup_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The campaign every scenario runs: vecadd on the toy machine. Small
/// enough that a worker attempt is fast, big enough that mid-shard crashes
/// leave real resume state behind.
constexpr u64 kSeed = 7;

SupervisorConfig sup_config(const fs::path& dir, u64 injections, u32 shards) {
  SupervisorConfig config;
  config.exe = GFI_GPUFI_BIN;
  config.workload = "vecadd";
  config.dir = dir.string();
  config.shards = shards;
  config.num_injections = injections;
  config.seed = kSeed;
  config.lease_ttl_ms = 3000;
  config.poll_ms = 25;
  config.stall_timeout_ms = 0;  // hang detection: only the stall test
  config.worker_heartbeat_ms = 50;
  config.max_shard_attempts = 12;
  config.poison_threshold = 3;
  config.backoff_base_ms = 5;
  config.backoff_cap_ms = 20;
  config.worker_flags = {
      "--arch=toy",
      "--mode=iov",
      "--flip=single",
      "--injections=" + std::to_string(injections),
      "--seed=" + std::to_string(kSeed),
      // Workers of one campaign share golden runs through the disk cache.
      "--golden-cache=" + (dir / "golden").string(),
  };
  return config;
}

/// The uninterrupted unsharded single-threaded reference journal the
/// supervisor's merge must reproduce byte-for-byte.
std::string write_reference_journal(const fs::path& dir, u64 injections) {
  CampaignConfig config;
  config.workload = "vecadd";
  config.machine = arch::toy();
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = injections;
  config.seed = kSeed;
  config.threads = 1;  // journal lines in index order
  config.journal_path = (dir / "reference.jsonl").string();
  auto result = Campaign::run(config);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return *config.journal_path;
}

/// Journal lines keyed by global record index ("" key = the header line).
std::map<std::string, std::string> lines_by_index(const std::string& path) {
  std::map<std::string, std::string> lines;
  std::ifstream in(path, std::ios::binary);
  std::string line;
  while (std::getline(in, line)) {
    const auto i = line.find("\"i\":");
    if (i == std::string::npos) {
      lines[""] = line;
      continue;
    }
    const auto end = line.find_first_of(",}", i + 4);
    lines[line.substr(i + 4, end - i - 4)] = line;
  }
  return lines;
}

/// Runs the supervisor, writes its merged journal, and returns the merged
/// journal's bytes (asserting the run itself succeeded).
std::string merged_bytes(const SupervisorConfig& config,
                         fi::SupervisorResult* out = nullptr) {
  auto ran = Supervisor::run(config);
  EXPECT_TRUE(ran.is_ok()) << ran.status().to_string();
  if (!ran.is_ok()) return "";
  EXPECT_EQ(ran.value().shards_failed, 0u);
  const std::string path = config.dir + "/merged.jsonl";
  Status written = fi::write_merged_journal(path, ran.value().merged);
  EXPECT_TRUE(written.is_ok()) << written.to_string();
  if (out != nullptr) *out = ran.value();
  return read_file(path);
}

// -------------------------------------------------------------- leases ----

TEST(Lease, LineRoundTripsAndRejectsGarbage) {
  Lease lease;
  lease.owner = "host:4242";
  lease.pid = 4242;
  lease.shard = 3;
  lease.expires_ms = 1234567890123ULL;
  auto parsed = fi::parse_lease(fi::lease_line(lease));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().owner, lease.owner);
  EXPECT_EQ(parsed.value().pid, lease.pid);
  EXPECT_EQ(parsed.value().shard, lease.shard);
  EXPECT_EQ(parsed.value().expires_ms, lease.expires_ms);

  EXPECT_FALSE(fi::parse_lease("not json").is_ok());
  EXPECT_FALSE(fi::parse_lease("{\"lease\":\"wrong-magic\"}").is_ok());
}

TEST(Lease, AcquireRespectsLivenessExpiryAndOwnership) {
  const fs::path dir = scratch_dir("lease");
  const std::string path =
      fi::lease_path_for_journal((dir / "shard-0.jsonl").string());
  const u64 now = fi::unix_now_ms();

  Lease mine;
  mine.owner = "me:1";
  mine.shard = 0;
  mine.expires_ms = now + 60000;
  // Absent: acquirable.
  ASSERT_TRUE(fi::acquire_lease(path, mine, now).is_ok());
  // Live and mine: refresh succeeds.
  mine.expires_ms = now + 90000;
  ASSERT_TRUE(fi::acquire_lease(path, mine, now).is_ok());

  // Live and foreign: refused, error names the holder.
  Lease theirs = mine;
  theirs.owner = "them:2";
  Status refused = fi::acquire_lease(path, theirs, now);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.message().find("me:1"), std::string::npos);

  // Expired: anyone may take it over.
  ASSERT_TRUE(fi::acquire_lease(path, theirs, mine.expires_ms + 1).is_ok());
  auto held = fi::read_lease(path);
  ASSERT_TRUE(held.is_ok());
  EXPECT_EQ(held.value().owner, "them:2");
}

TEST(Lease, ReleaseIsIdempotentAndOwnerChecked) {
  const fs::path dir = scratch_dir("lease_release");
  const std::string path = (dir / "a.lease").string();
  // Releasing a lease that never existed is fine (crash cleanup paths).
  EXPECT_TRUE(fi::release_lease(path, "me:1").is_ok());

  Lease lease;
  lease.owner = "me:1";
  lease.expires_ms = fi::unix_now_ms() + 60000;
  ASSERT_TRUE(fi::acquire_lease(path, lease, fi::unix_now_ms()).is_ok());
  // A live lease cannot be released by someone else...
  EXPECT_FALSE(fi::release_lease(path, "them:2").is_ok());
  // ...but the owner can, after which the file is gone.
  EXPECT_TRUE(fi::release_lease(path, "me:1").is_ok());
  EXPECT_FALSE(fi::read_lease(path).is_ok());
}

// ---------------------------------------------------------- supervisor ----

TEST(Supervisor, FaultFreeRunMergesBitIdenticalToUnshardedReference) {
  const fs::path dir = scratch_dir("fault_free");
  const std::string reference = write_reference_journal(dir, 36);
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(sup_config(dir / "run", 36, 3),
                                          &result);
  EXPECT_EQ(result.crashes, 0u);
  EXPECT_EQ(result.stall_kills, 0u);
  EXPECT_EQ(result.takeovers, 0u);
  EXPECT_EQ(result.worker_launches, 3u);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, RepeatedWorkerKillsAreRetriedToBitIdenticalCompletion) {
  const fs::path dir = scratch_dir("worker_kills");
  const std::string reference = write_reference_journal(dir, 36);
  auto config = sup_config(dir / "run", 36, 3);
  // Every worker process dies before its 4th fresh injection: each shard
  // (12 injections) needs several relaunches, each resuming mid-shard.
  config.worker_failpoints = "campaign.injection=kill@hit=4";
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_GE(result.crashes, 3u);  // >= 1 kill per shard (expected: 9)
  EXPECT_GT(result.worker_launches, 3u);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, TornJournalWritesAreDiscardedOnResume) {
  const fs::path dir = scratch_dir("torn_journal");
  const std::string reference = write_reference_journal(dir, 24);
  auto config = sup_config(dir / "run", 24, 2);
  // Each worker writes half a record line on its 3rd append, then dies —
  // resume must truncate the torn tail and re-run that injection.
  config.worker_failpoints = "journal.append=torn@hit=3";
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_GE(result.crashes, 2u);
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, EnospcOnAppendFailsTheWorkerButNotTheCampaign) {
  const fs::path dir = scratch_dir("enospc");
  const std::string reference = write_reference_journal(dir, 24);
  auto config = sup_config(dir / "run", 24, 2);
  // The 5th append in each worker process reports ENOSPC: the worker exits
  // nonzero with its slice incomplete (a "clean" crash), and the relaunch
  // journals the one missing record.
  config.worker_failpoints = "journal.append=err@hit=5";
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_GE(result.crashes, 2u);
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, PoisonInjectionIsQuarantinedDeterministically) {
  const fs::path dir = scratch_dir("poison");
  const std::string reference = write_reference_journal(dir, 36);
  auto config = sup_config(dir / "run", 36, 3);
  // Global injection 19 kills whichever worker executes it, every time.
  config.worker_failpoints = "inject.execute=kill@key=19";
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  // Quarantined after exactly poison_threshold consecutive pinned crashes.
  EXPECT_EQ(result.crashes, 3u);
  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0], 19u);

  // Every record except the quarantined one is byte-identical to the
  // reference; record 19 is journaled as Quarantined instead of wedging
  // shard 1 forever.
  auto merged_lines = lines_by_index(config.dir + "/merged.jsonl");
  auto reference_lines = lines_by_index(reference);
  ASSERT_EQ(merged_lines.size(), reference_lines.size());
  for (const auto& [index, line] : reference_lines) {
    if (index == "19") {
      EXPECT_NE(merged_lines.at(index).find("\"outcome\":\"Quarantined\""),
                std::string::npos)
          << merged_lines.at(index);
      continue;
    }
    EXPECT_EQ(merged_lines.at(index), line) << "record " << index;
  }
  (void)merged;
}

TEST(Supervisor, StaleHeartbeatGetsTheWorkerKilledAndRetried) {
  const fs::path dir = scratch_dir("stall");
  const std::string reference = write_reference_journal(dir, 8);
  auto config = sup_config(dir / "run", 8, 2);
  // The worker wedges (20s sleep) at its 3rd injection while all heartbeat
  // writes are dropped, so the sidecar goes stale and the supervisor's
  // hang detector must SIGKILL and relaunch it.
  config.worker_failpoints =
      "campaign.injection=stall:20000@hit=3;heartbeat.write=err";
  config.stall_timeout_ms = 1500;
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_GE(result.stall_kills, 1u);
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, ExpiredForeignLeaseIsTakenOver) {
  const fs::path dir = scratch_dir("takeover");
  const std::string reference = write_reference_journal(dir, 24);
  auto config = sup_config(dir / "run", 24, 2);
  fs::create_directories(config.dir);
  // A dead supervisor left an expired lease on shard 0: work-stealing must
  // take it over rather than waiting forever.
  Lease stale;
  stale.owner = "dead-host:1";
  stale.pid = 1;
  stale.shard = 0;
  stale.expires_ms = fi::unix_now_ms() - 10000;
  ASSERT_TRUE(fi::acquire_lease(
                  fi::lease_path_for_journal(
                      Supervisor::shard_journal_path(config.dir, 0)),
                  stale, stale.expires_ms - 1)
                  .is_ok());
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_EQ(result.takeovers, 1u);
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, DiesMidCampaignThenResumeIsBitIdentical) {
  const fs::path dir = scratch_dir("resume");
  const std::string reference = write_reference_journal(dir, 48);
  auto config = sup_config(dir / "run", 48, 3);
  // Workers crash-loop (die before their 4th injection) so the campaign is
  // still in flight when the supervisor itself is aborted by a failpoint
  // on its 3rd supervision tick.
  config.worker_failpoints = "campaign.injection=kill@hit=4";
  ASSERT_TRUE(fp::set_spec("supervisor.tick=err@hit=3").is_ok());
  auto first = Supervisor::run(config);
  (void)fp::set_spec("");
  ASSERT_FALSE(first.is_ok());
  EXPECT_NE(first.status().message().find("supervisor aborted"),
            std::string::npos);

  // A second supervisor must refuse the directory without --resume...
  auto refused = Supervisor::run(config);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("--resume"), std::string::npos);

  // ...and with it, reconstruct state and finish to the identical bytes.
  config.resume = true;
  fi::SupervisorResult result;
  const std::string merged = merged_bytes(config, &result);
  EXPECT_EQ(merged, read_file(reference));
}

TEST(Supervisor, AbandonsAShardAfterMaxNoProgressAttempts) {
  const fs::path dir = scratch_dir("abandon");
  auto config = sup_config(dir / "run", 24, 2);
  // Workers die before journaling anything, and the poison threshold is out
  // of reach: the supervisor must give up after max_shard_attempts per
  // shard instead of relaunching forever.
  config.worker_failpoints = "campaign.injection=kill@hit=1";
  config.max_shard_attempts = 3;
  config.poison_threshold = 100;
  auto ran = Supervisor::run(config);
  ASSERT_TRUE(ran.is_ok()) << ran.status().to_string();
  EXPECT_EQ(ran.value().shards_failed, 2u);
  EXPECT_EQ(ran.value().crashes, 6u);  // max_shard_attempts per shard
  EXPECT_EQ(ran.value().merged.records.size(), 0u);  // no merge attempted
}

TEST(Supervisor, ValidatesConfigAndPlatformPrerequisites) {
  auto config = sup_config(scratch_dir("validate"), 24, 2);
  config.shards = 0;
  EXPECT_EQ(Supervisor::run(config).status().code(),
            StatusCode::kInvalidArgument);
  config.shards = 2;
  config.exe = "";
  EXPECT_EQ(Supervisor::run(config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gfi
