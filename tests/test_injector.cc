// Injector unit tests: each injection mode strikes the sampled site with
// the intended corruption, including the register-file ECC interaction.
#include <gtest/gtest.h>

#include "fi/injector.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

using fi::BitFlipModel;
using fi::FaultSite;
using fi::InjectionMode;
using fi::InjectorHook;
using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::LaunchOptions;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

/// Kernel: out[lane] = lane + 1000 (one IADD, one store).
sim::Program make_add_kernel() {
  KernelBuilder b("add1000");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.iadd_u32(4, Operand::reg(0), Operand::imm_u(1000));
  b.ldc_u64(6, 0);
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
  b.stg(8, 4);
  b.exit_();
  return must(b);
}

struct RunOutput {
  sim::LaunchResult launch;
  std::vector<u32> out;
  fi::InjectionEffect effect;
};

RunOutput run_with_injection(const FaultSite& site,
                             sim::MachineConfig machine) {
  Device device(machine);
  auto program = make_add_kernel();
  auto out = device.malloc_n<u32>(32);
  EXPECT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  InjectorHook injector(site, device.config());
  LaunchOptions options;
  options.hooks.push_back(&injector);
  options.watchdog_instrs = 100000;
  auto launch = device.launch(program, Dim3(1), Dim3(32), params, options);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();

  RunOutput result;
  result.launch = launch.value();
  result.effect = injector.effect();
  result.out.resize(32);
  if (result.launch.ok()) {
    EXPECT_EQ(device.to_host(std::span<u32>(result.out), out.value()),
              TrapKind::kNone);
  }
  return result;
}

TEST(Injector, IovSingleBitFlipsExactlyOneLaneBit) {
  FaultSite site;
  site.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kInt;
  site.target_occurrence = 1;  // 0: S2R, 1: the IADD (both kInt)
  site.lane_sel = 5;
  site.bit_sel = 3;

  auto result = run_with_injection(site, arch::toy());
  ASSERT_TRUE(result.launch.ok());
  EXPECT_TRUE(result.effect.activated);
  EXPECT_EQ(result.effect.struck_opcode, sim::Opcode::kIAdd);
  for (u32 lane = 0; lane < 32; ++lane) {
    const u32 want = lane + 1000;
    if (lane == 5) {
      EXPECT_EQ(result.out[lane], want ^ (1u << 3));
    } else {
      EXPECT_EQ(result.out[lane], want);
    }
  }
}

TEST(Injector, IovZeroValueZeroesDestination) {
  FaultSite site;
  site.model = {InjectionMode::kIov, BitFlipModel::kZeroValue};
  site.group = sim::InstrGroup::kInt;
  site.target_occurrence = 1;
  site.lane_sel = 31;

  auto result = run_with_injection(site, arch::toy());
  ASSERT_TRUE(result.launch.ok());
  EXPECT_EQ(result.out[31], 0u);
  EXPECT_EQ(result.out[30], 1030u);
}

TEST(Injector, IovDoubleBitFlipsTwoDistinctBits) {
  FaultSite site;
  site.model = {InjectionMode::kIov, BitFlipModel::kDouble};
  site.group = sim::InstrGroup::kInt;
  site.target_occurrence = 1;
  site.lane_sel = 0;
  site.bit_sel = 4;
  site.bit_sel2 = 4;  // collides; injector must pick a different second bit

  auto result = run_with_injection(site, arch::toy());
  ASSERT_TRUE(result.launch.ok());
  const u32 diff = result.out[0] ^ 1000u;
  EXPECT_EQ(std::popcount(diff), 2);
}

TEST(Injector, IovOnLoadGroupStrikesLoadedValue) {
  FaultSite site;
  site.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kIntMad;  // the IMAD.WIDE address compute
  site.target_occurrence = 0;
  site.lane_sel = 2;
  site.bit_sel = 2;  // low address bit -> likely misaligned or shifted store

  auto result = run_with_injection(site, arch::toy());
  // Either a trap (address corruption detected) or a displaced store; both
  // are acceptable outcomes, but the strike must have registered.
  EXPECT_TRUE(result.effect.activated);
  EXPECT_EQ(result.effect.struck_opcode, sim::Opcode::kIMad);
}

TEST(Injector, PredFlipChangesCompareOutcome) {
  // Kernel with a SETP + SEL: flipping the predicate flips the select.
  KernelBuilder b("predsel");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.isetp(sim::CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(100));  // true
  b.sel(4, Operand::imm_u(1), Operand::imm_u(2), 0);
  b.ldc_u64(6, 0);
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
  b.stg(8, 4);
  b.exit_();
  auto program = must(b);

  Device device(arch::toy());
  auto out = device.malloc_n<u32>(32);
  ASSERT_TRUE(out.is_ok());
  FaultSite site;
  site.model = {InjectionMode::kPred, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kSetp;
  site.target_occurrence = 0;
  site.lane_sel = 7;
  InjectorHook injector(site, device.config());
  LaunchOptions options;
  options.hooks.push_back(&injector);
  const u64 params[] = {out.value()};
  auto launch = device.launch(program, Dim3(1), Dim3(32), params, options);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok());

  std::vector<u32> host(32);
  ASSERT_EQ(device.to_host(std::span<u32>(host), out.value()),
            TrapKind::kNone);
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(host[lane], lane == 7 ? 2u : 1u);
  }
}

TEST(Injector, IoaRedirectsOneLanesStore) {
  FaultSite site;
  site.model = {InjectionMode::kIoa, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kStore;
  site.target_occurrence = 0;
  site.lane_sel = 4;
  site.bit_sel = 3;  // flip bit 3: lane 4's store lands on lane 6's slot

  auto result = run_with_injection(site, arch::toy());
  ASSERT_TRUE(result.launch.ok()) << result.launch.trap.to_string();
  EXPECT_TRUE(result.effect.activated);
  // lane 4's slot keeps its initial value (0), lane 6's slot was
  // overwritten by lane 4's data then by its own store (lane order).
  EXPECT_EQ(result.out[4], 0u);
}

TEST(Injector, IoaHighBitCausesAddressTrap) {
  FaultSite site;
  site.model = {InjectionMode::kIoa, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kStore;
  site.target_occurrence = 0;
  site.lane_sel = 0;
  site.bit_sel = 30;  // far outside the arena

  auto result = run_with_injection(site, arch::toy());
  EXPECT_FALSE(result.launch.ok());
  EXPECT_EQ(result.launch.trap.kind, TrapKind::kIllegalGlobalAddress);
}

TEST(Injector, RfSingleBitCorrectedWhenEccOn) {
  FaultSite site;
  site.model = {InjectionMode::kRf, BitFlipModel::kSingle};
  site.target_occurrence = 2;
  site.reg_sel = 4;
  site.bit_sel = 9;

  sim::MachineConfig machine = arch::toy();
  machine.rf_ecc = ecc::EccMode::kSecded;
  auto result = run_with_injection(site, machine);
  ASSERT_TRUE(result.launch.ok());
  EXPECT_TRUE(result.effect.corrected_by_ecc);
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(result.out[lane], lane + 1000);  // no corruption reached state
  }
}

TEST(Injector, RfDoubleBitTrapsWhenEccOn) {
  FaultSite site;
  site.model = {InjectionMode::kRf, BitFlipModel::kDouble};
  site.target_occurrence = 2;

  sim::MachineConfig machine = arch::toy();
  machine.rf_ecc = ecc::EccMode::kSecded;
  auto result = run_with_injection(site, machine);
  EXPECT_FALSE(result.launch.ok());
  EXPECT_EQ(result.launch.trap.kind, TrapKind::kEccDoubleBit);
}

TEST(Injector, RfSingleBitCorruptsWhenEccOff) {
  FaultSite site;
  site.model = {InjectionMode::kRf, BitFlipModel::kSingle};
  site.target_occurrence = 2;  // strike before the IADD consumes R0/R4
  site.reg_sel = 4;            // the destination value register
  site.bit_sel = 7;
  site.lane_sel = 3;

  sim::MachineConfig machine = arch::toy();
  machine.rf_ecc = ecc::EccMode::kDisabled;
  auto result = run_with_injection(site, machine);
  ASSERT_TRUE(result.launch.ok());
  EXPECT_TRUE(result.effect.activated);
  EXPECT_FALSE(result.effect.corrected_by_ecc);
  // The flip landed in a live register of lane 3 before the store.
  EXPECT_EQ(result.out[3], (3u + 1000u) ^ (1u << 7));
}

TEST(Injector, SiteToStringMentionsModeAndGroup) {
  FaultSite site;
  site.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kFp32Fma;
  const std::string text = site.to_string();
  EXPECT_NE(text.find("IOV"), std::string::npos);
  EXPECT_NE(text.find("FP32-FMA"), std::string::npos);
}

}  // namespace
}  // namespace gfi
