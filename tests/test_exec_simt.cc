// SIMT semantics: divergence/reconvergence, guarded execution and exits,
// barriers, warp shuffles/votes, and the tensor-core MMA.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitutil.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

using sim::CmpOp;
using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::Operand;
using sim::ShflKind;
using sim::TrapKind;
using sim::VoteKind;
using sim_test::must;
using sim_test::run_lane_kernel;

TEST(ExecSimt, IfThenDiverges) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0));
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(10));
    b.if_then(0, false, [&] {
      b.mov_u32(10, Operand::imm_u(1));
    });
    b.iadd_u32(10, Operand::reg(10), Operand::imm_u(100));  // post-reconverge
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane < 10 ? 101u : 100u);
  }
}

TEST(ExecSimt, IfThenElseBothPathsRun) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.if_then_else(
        0, false,
        [&] { b.imul_u32(10, Operand::reg(0), Operand::imm_u(2)); },
        [&] { b.imul_u32(10, Operand::reg(0), Operand::imm_u(3)); });
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane < 16 ? lane * 2 : lane * 3);
  }
}

TEST(ExecSimt, NestedDivergence) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0));
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.if_then(0, false, [&] {
      b.isetp(CmpOp::kLt, 1, Operand::reg(0), Operand::imm_u(8));
      b.if_then_else(
          1, false,
          [&] { b.mov_u32(10, Operand::imm_u(1)); },
          [&] { b.mov_u32(10, Operand::imm_u(2)); });
    });
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    const u32 want = lane < 8 ? 1u : lane < 16 ? 2u : 0u;
    EXPECT_EQ(out[lane], want);
  }
}

TEST(ExecSimt, GuardedInstructionWithoutBranch) {
  // @P IADD executes only on guard-true lanes, no divergence machinery.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(7));
    b.isetp(CmpOp::kGe, 0, Operand::reg(0), Operand::imm_u(16));
    b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1));
    b.guard_last(0);
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane >= 16 ? 8u : 7u);
  }
}

TEST(ExecSimt, PartialWarpExitLeavesOthersRunning) {
  // Half the warp exits early; survivors keep computing and storing.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(5));
    // Pre-store a sentinel for the exiting lanes via all lanes first.
    b.ldc_u64(30, 0);
    b.s2r(34, sim::SpecialReg::kLaneId);
    b.imad_wide(32, Operand::reg(34), Operand::imm_u(4), Operand::reg(30));
    b.stg(32, 10);
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
    b.exit_if(0);
    b.mov_u32(10, Operand::imm_u(9));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], lane < 16 ? 5u : 9u);
  }
}

TEST(ExecSimt, DivergentLoopTripCounts) {
  // Lane i iterates i+1 times: result = sum of 1s = i+1.
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::imm_u(0));
    b.iadd_u32(4, Operand::reg(0), Operand::imm_u(1));  // bound = lane + 1
    b.mov_u32(5, Operand::imm_u(0));                    // counter
    b.uniform_loop(5, Operand::reg(4), 1, [&] {
      b.iadd_u32(10, Operand::reg(10), Operand::imm_u(1));
    });
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(out[lane], lane + 1);
}

TEST(ExecSimt, BarrierOrdersProducersBeforeConsumers) {
  // Two warps: warp 0 writes shared, warp 1 reads after BAR.
  KernelBuilder b("barrier");
  b.set_shared_bytes(32 * 4);
  b.s2r(0, sim::SpecialReg::kTidX);     // 0..63
  b.s2r(1, sim::SpecialReg::kWarpId);   // 0 or 1
  b.lop(sim::LopKind::kAnd, 2, Operand::reg(0), Operand::imm_u(31));  // lane
  b.isetp(CmpOp::kEq, 0, Operand::reg(1), Operand::imm_u(0));
  b.if_then(0, false, [&] {
    b.imul_u32(4, Operand::reg(2), Operand::imm_u(11));
    b.shf(sim::ShiftKind::kLeft, 5, Operand::reg(2), Operand::imm_u(2));
    b.sts(5, 4);
  });
  b.bar();
  b.isetp(CmpOp::kEq, 0, Operand::reg(1), Operand::imm_u(1));
  b.if_then(0, false, [&] {
    b.shf(sim::ShiftKind::kLeft, 5, Operand::reg(2), Operand::imm_u(2));
    b.lds(6, 5);
    b.ldc_u64(8, 0);
    b.imad_wide(10, Operand::reg(2), Operand::imm_u(4), Operand::reg(8));
    b.stg(10, 6);
  });
  b.exit_();
  auto program = must(b);

  Device device(arch::toy());
  auto out = device.malloc_n<u32>(32);
  ASSERT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  auto launch = device.launch(program, Dim3(1), Dim3(64), params);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();

  std::vector<u32> host(32);
  ASSERT_EQ(device.to_host(std::span<u32>(host), out.value()),
            TrapKind::kNone);
  for (u32 i = 0; i < 32; ++i) EXPECT_EQ(host[i], i * 11);
}

TEST(ExecSimt, ShuffleVariants) {
  // idx: broadcast lane 3.
  auto idx = run_lane_kernel([](KernelBuilder& b) {
    b.imul_u32(4, Operand::reg(0), Operand::imm_u(10));
    b.shfl(ShflKind::kIdx, 10, 4, Operand::imm_u(3));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(idx[lane], 30u);

  // down by 1: lane i gets lane i+1's value; lane 31 keeps its own.
  auto down = run_lane_kernel([](KernelBuilder& b) {
    b.imul_u32(4, Operand::reg(0), Operand::imm_u(10));
    b.shfl(ShflKind::kDown, 10, 4, Operand::imm_u(1));
  });
  for (u32 lane = 0; lane < 31; ++lane) EXPECT_EQ(down[lane], (lane + 1) * 10);
  EXPECT_EQ(down[31], 310u);

  // up by 2: lane i gets lane i-2; lanes 0,1 keep their own.
  auto up = run_lane_kernel([](KernelBuilder& b) {
    b.imul_u32(4, Operand::reg(0), Operand::imm_u(10));
    b.shfl(ShflKind::kUp, 10, 4, Operand::imm_u(2));
  });
  EXPECT_EQ(up[0], 0u);
  EXPECT_EQ(up[1], 10u);
  for (u32 lane = 2; lane < 32; ++lane) EXPECT_EQ(up[lane], (lane - 2) * 10);

  // bfly by 1: pairs swap.
  auto bfly = run_lane_kernel([](KernelBuilder& b) {
    b.imul_u32(4, Operand::reg(0), Operand::imm_u(10));
    b.shfl(ShflKind::kBfly, 10, 4, Operand::imm_u(1));
  });
  for (u32 lane = 0; lane < 32; ++lane) EXPECT_EQ(bfly[lane], (lane ^ 1u) * 10);
}

TEST(ExecSimt, WarpShuffleReductionSumsLanes) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.mov_u32(10, Operand::reg(0));
    for (u32 delta = 16; delta > 0; delta >>= 1) {
      b.shfl(ShflKind::kDown, 4, 10, Operand::imm_u(delta));
      b.iadd_u32(10, Operand::reg(10), Operand::reg(4));
    }
  });
  EXPECT_EQ(out[0], 496u);  // sum 0..31 lands in lane 0
}

TEST(ExecSimt, VoteAllAnyBallot) {
  auto out = run_lane_kernel([](KernelBuilder& b) {
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(32));  // all true
    b.vote(VoteKind::kAll, Operand::pred(1), 0);
    b.sel(4, Operand::imm_u(1), Operand::imm_u(0), 1);
    b.isetp(CmpOp::kEq, 0, Operand::reg(0), Operand::imm_u(5));  // one lane
    b.vote(VoteKind::kAny, Operand::pred(1), 0);
    b.sel(5, Operand::imm_u(2), Operand::imm_u(0), 1);
    b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(4));
    b.vote(VoteKind::kBallot, Operand::reg(6), 0);
    b.iadd_u32(10, Operand::reg(4), Operand::reg(5));
    b.iadd_u32(10, Operand::reg(10), Operand::reg(6));
  });
  for (u32 lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(out[lane], 1u + 2u + 0xFu);
  }
}

TEST(ExecSimt, HmmaComputesTf32TileProduct) {
  // Full-warp 16x8x8 MMA with identity-like fragments: A[i][k] = (i==k),
  // B[k][j] = k*8+j, C = 0 -> D[i][j] = B[i][j] for i < 8, else 0.
  KernelBuilder b("hmma_test");
  b.s2r(0, sim::SpecialReg::kLaneId);
  // Build fragments in registers: element e = slot*32 + lane.
  for (u16 slot = 0; slot < 4; ++slot) {
    // A: e = i*8 + k; value = (i == k) ? 1.0 : 0.0
    b.iadd_u32(2, Operand::reg(0), Operand::imm_u(slot * 32u));
    b.shf(sim::ShiftKind::kRightLogical, 3, Operand::reg(2), Operand::imm_u(3));
    b.lop(sim::LopKind::kAnd, 4, Operand::reg(2), Operand::imm_u(7));
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::reg(4));
    b.sel(5, Operand::imm_f32(1.0f), Operand::imm_f32(0.0f), 0);
    b.mov_u32(static_cast<u16>(16 + slot), Operand::reg(5));
    b.mov_f32(static_cast<u16>(24 + slot), 0.0f);  // C fragment = 0
  }
  for (u16 slot = 0; slot < 2; ++slot) {
    // B: value = e as float
    b.iadd_u32(2, Operand::reg(0), Operand::imm_u(slot * 32u));
    b.i2f(static_cast<u16>(20 + slot), Operand::reg(2));
  }
  b.hmma(28, 16, 20, 24);
  // Store D (4 regs per lane).
  b.ldc_u64(34, 0);
  for (u16 slot = 0; slot < 4; ++slot) {
    b.iadd_u32(2, Operand::reg(0), Operand::imm_u(slot * 32u));
    b.imad_wide(36, Operand::reg(2), Operand::imm_u(4), Operand::reg(34));
    b.stg(36, static_cast<u16>(28 + slot));
  }
  b.exit_();
  auto program = must(b);

  Device device(arch::toy());
  auto out = device.malloc_n<f32>(128);
  ASSERT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  auto launch = device.launch(program, Dim3(1), Dim3(32), params);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();

  std::vector<f32> host(128);
  ASSERT_EQ(device.to_host(std::span<f32>(host), out.value()),
            TrapKind::kNone);
  for (u32 i = 0; i < 16; ++i) {
    for (u32 j = 0; j < 8; ++j) {
      const f32 want = i < 8 ? to_tf32(static_cast<f32>(i * 8 + j)) : 0.0f;
      EXPECT_EQ(host[i * 8 + j], want) << "i=" << i << " j=" << j;
    }
  }
}

TEST(ExecSimt, HmmaPartialWarpTraps) {
  KernelBuilder b("hmma_partial");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
  b.exit_if(0);
  for (u16 r = 16; r < 28; ++r) b.mov_f32(r, 0.0f);
  b.hmma(28, 16, 20, 24);
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalInstruction);
}

TEST(ExecSimt, WatchdogCatchesInfiniteLoop) {
  KernelBuilder b("spin");
  auto top = b.new_label();
  b.bind(top);
  b.bra(top);
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  sim::LaunchOptions options;
  options.watchdog_instrs = 1000;
  auto launch = device.launch(program, Dim3(1), Dim3(32), {}, options);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kWatchdogTimeout);
  EXPECT_GE(launch.value().dyn_warp_instrs, 1000u);
}

}  // namespace
}  // namespace gfi
