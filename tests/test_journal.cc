// Resilience tests for the campaign engine: journal round-trip, crash/kill
// resume (record-boundary and mid-record truncation), shard partitioning +
// merge, the per-injection watchdog, and the golden-run cache.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "arch/arch.h"
#include "fi/campaign.h"
#include "fi/golden_cache.h"
#include "fi/journal.h"
#include "sassim/kernel_builder.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

namespace fs = std::filesystem;

using fi::BitFlipModel;
using fi::Campaign;
using fi::CampaignConfig;
using fi::CampaignResult;
using fi::InjectionMode;
using fi::InjectionRecord;
using fi::Journal;
using fi::Outcome;

CampaignConfig base_config(const std::string& workload) {
  CampaignConfig config;
  config.workload = workload;
  config.machine = arch::toy();
  config.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  config.num_injections = 60;
  config.seed = 7;
  config.threads = 4;
  return config;
}

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("gfi_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void expect_records_equal(const InjectionRecord& a, const InjectionRecord& b,
                          const std::string& context) {
  EXPECT_EQ(a.outcome, b.outcome) << context;
  EXPECT_EQ(a.trap, b.trap) << context;
  EXPECT_EQ(a.error_magnitude, b.error_magnitude) << context;  // bit-exact
  EXPECT_EQ(a.dyn_instrs, b.dyn_instrs) << context;
  EXPECT_EQ(a.site.group, b.site.group) << context;
  EXPECT_EQ(a.site.target_occurrence, b.site.target_occurrence) << context;
  EXPECT_EQ(a.site.lane_sel, b.site.lane_sel) << context;
  EXPECT_EQ(a.site.bit_sel, b.site.bit_sel) << context;
  EXPECT_EQ(a.site.bit_sel2, b.site.bit_sel2) << context;
  EXPECT_EQ(a.site.reg_sel, b.site.reg_sel) << context;
  EXPECT_EQ(a.site.random_value, b.site.random_value) << context;
  EXPECT_EQ(a.effect.activated, b.effect.activated) << context;
  EXPECT_EQ(a.effect.corrected_by_ecc, b.effect.corrected_by_ecc) << context;
  EXPECT_EQ(a.effect.struck_dyn_index, b.effect.struck_dyn_index) << context;
  EXPECT_EQ(a.effect.struck_opcode, b.effect.struck_opcode) << context;
  EXPECT_EQ(a.effect.struck_group, b.effect.struck_group) << context;
  EXPECT_EQ(a.effect.struck_lane, b.effect.struck_lane) << context;
}

void expect_results_equal(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    expect_records_equal(a.records[i], b.records[i],
                         "record " + std::to_string(i));
  }
}

// ------------------------------------------------------------ journal ----

TEST(Journal, RecordLineRoundTrips) {
  InjectionRecord record;
  record.outcome = Outcome::kSdc;
  record.trap = sim::TrapKind::kEccDoubleBit;
  record.error_magnitude = 0.1234567890123456789;  // needs %.17g fidelity
  record.dyn_instrs = 987654321;
  record.site.group = sim::InstrGroup::kFp32;
  record.site.target_occurrence = 123456789012345ULL;
  record.site.lane_sel = 0xdeadbeef;
  record.site.bit_sel = 31;
  record.site.bit_sel2 = 7;
  record.site.reg_sel = 300;
  record.site.random_value = ~0ULL;
  record.effect.activated = true;
  record.effect.struck_dyn_index = 42;
  record.effect.struck_opcode = sim::Opcode::kFAdd;
  record.effect.struck_group = sim::InstrGroup::kFp32;
  record.effect.struck_lane = 17;

  const std::string line = Journal::record_line(99, record);
  auto parsed = Journal::parse_record(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().first, 99u);
  expect_records_equal(parsed.value().second, record, "roundtrip");
}

TEST(Journal, NonFiniteErrorMagnitudeStaysValidJsonl) {
  // %.17g prints the bare `inf`/`nan` tokens, which are not JSON; the shared
  // jsonl helpers serialize NaN as null (parsed back as NaN) and ±inf as the
  // overflowing JSON number ±1e999 (parsed back as ±inf, so a record whose
  // relative error is genuinely infinite still resumes bit-exactly).
  for (const f64 magnitude : {std::numeric_limits<f64>::quiet_NaN(),
                              std::numeric_limits<f64>::infinity(),
                              -std::numeric_limits<f64>::infinity()}) {
    InjectionRecord record;
    record.outcome = Outcome::kSdc;
    record.error_magnitude = magnitude;
    const std::string line = Journal::record_line(7, record);
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
    auto parsed = Journal::parse_record(line);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    if (std::isnan(magnitude)) {
      EXPECT_NE(line.find("\"err\":null"), std::string::npos) << line;
      EXPECT_TRUE(std::isnan(parsed.value().second.error_magnitude)) << line;
    } else {
      EXPECT_NE(line.find("1e999"), std::string::npos) << line;
      EXPECT_EQ(parsed.value().second.error_magnitude, magnitude) << line;
    }
    EXPECT_EQ(parsed.value().second.outcome, Outcome::kSdc);
  }
}

TEST(Journal, WrittenJournalMatchesInMemoryResult) {
  const fs::path dir = scratch_dir("roundtrip");
  auto config = base_config("vecadd");
  config.journal_path = (dir / "campaign.jsonl").string();
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().resumed, 0u);

  auto loaded = Journal::load(*config.journal_path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().header.workload, "vecadd");
  EXPECT_EQ(loaded.value().header.num_injections, config.num_injections);
  ASSERT_EQ(loaded.value().records.size(), config.num_injections);
  for (const auto& [index, record] : loaded.value().records) {
    ASSERT_LT(index, result.value().records.size());
    expect_records_equal(record, result.value().records[index],
                         "journaled record " + std::to_string(index));
  }
}

TEST(Journal, ResumeAfterRecordBoundaryTruncation) {
  const fs::path dir = scratch_dir("resume_boundary");
  const std::string path = (dir / "campaign.jsonl").string();

  auto config = base_config("saxpy");
  auto uninterrupted = Campaign::run(config);
  ASSERT_TRUE(uninterrupted.is_ok());

  config.journal_path = path;
  ASSERT_TRUE(Campaign::run(config).is_ok());

  // Simulate a kill: keep the header plus the first 25 complete records.
  std::ifstream in(path);
  std::string line, kept;
  for (int i = 0; i < 26 && std::getline(in, line); ++i) kept += line + "\n";
  in.close();
  std::ofstream(path, std::ios::trunc) << kept;

  auto resumed = Campaign::run(config);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value().resumed, 25u);
  expect_results_equal(resumed.value(), uninterrupted.value());
}

TEST(Journal, ResumeAfterMidRecordTruncation) {
  const fs::path dir = scratch_dir("resume_midrecord");
  const std::string path = (dir / "campaign.jsonl").string();

  auto config = base_config("saxpy");
  auto uninterrupted = Campaign::run(config);
  ASSERT_TRUE(uninterrupted.is_ok());

  config.journal_path = path;
  ASSERT_TRUE(Campaign::run(config).is_ok());

  // Tear the file mid-record at several offsets; resume must always
  // reproduce the uninterrupted campaign bit-exactly.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string full = buffer.str();
  in.close();
  for (const double fraction : {0.999, 0.61, 0.30}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(full.size()) * fraction);
    std::ofstream(path, std::ios::trunc | std::ios::binary)
        << full.substr(0, cut);
    auto resumed = Campaign::run(config);
    ASSERT_TRUE(resumed.is_ok())
        << "cut at " << cut << ": " << resumed.status().to_string();
    expect_results_equal(resumed.value(), uninterrupted.value());
  }
}

TEST(Journal, ResumeWithTornHeaderRecreates) {
  const fs::path dir = scratch_dir("torn_header");
  const std::string path = (dir / "campaign.jsonl").string();
  std::ofstream(path) << R"({"journal":"gpufi-journal-v1","workl)";  // no \n

  auto config = base_config("vecadd");
  config.journal_path = path;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().resumed, 0u);
  auto loaded = Journal::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().records.size(), config.num_injections);
}

TEST(Journal, ResumeRejectsDifferentCampaign) {
  const fs::path dir = scratch_dir("mismatch");
  const std::string path = (dir / "campaign.jsonl").string();
  auto config = base_config("vecadd");
  config.journal_path = path;
  ASSERT_TRUE(Campaign::run(config).is_ok());

  auto reseeded = config;
  reseeded.seed = config.seed + 1;
  auto result = Campaign::run(reseeded);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);

  auto resharded = config;
  resharded.shard_count = 2;
  EXPECT_FALSE(Campaign::run(resharded).is_ok());
}

// ----------------------------------------------------------- sharding ----

TEST(Journal, ShardsPartitionAndMergeToUnshardedCampaign) {
  const fs::path dir = scratch_dir("shards");
  auto config = base_config("vecadd");
  auto unsharded = Campaign::run(config);
  ASSERT_TRUE(unsharded.is_ok());

  std::vector<std::string> journals;
  for (u32 shard = 0; shard < 3; ++shard) {
    auto shard_config = config;
    shard_config.shard_index = shard;
    shard_config.shard_count = 3;
    shard_config.journal_path =
        (dir / ("shard" + std::to_string(shard) + ".jsonl")).string();
    journals.push_back(*shard_config.journal_path);
    auto result = Campaign::run(shard_config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    // The shard's records are the strided slice of the unsharded campaign.
    ASSERT_EQ(result.value().run_indices.size(),
              result.value().records.size());
    for (std::size_t k = 0; k < result.value().records.size(); ++k) {
      const u64 global = result.value().run_indices[k];
      EXPECT_EQ(global % 3, shard);
      expect_records_equal(result.value().records[k],
                           unsharded.value().records[global],
                           "shard record " + std::to_string(global));
    }
  }

  auto merged = fi::merge_journals(journals);
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value().outcome_counts, unsharded.value().outcome_counts);
  ASSERT_EQ(merged.value().records.size(), unsharded.value().records.size());
  for (std::size_t i = 0; i < merged.value().records.size(); ++i) {
    expect_records_equal(merged.value().records[i],
                         unsharded.value().records[i],
                         "merged record " + std::to_string(i));
  }
}

TEST(Journal, MergeRejectsIncompleteOrOverlappingShards) {
  const fs::path dir = scratch_dir("merge_errors");
  auto config = base_config("vecadd");
  config.shard_count = 2;
  config.shard_index = 0;
  config.journal_path = (dir / "shard0.jsonl").string();
  ASSERT_TRUE(Campaign::run(config).is_ok());

  // Missing shard 1: refused, and the error names the missing shard and the
  // escape hatch.
  auto incomplete = fi::merge_journals({*config.journal_path});
  ASSERT_FALSE(incomplete.is_ok());
  EXPECT_EQ(incomplete.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(incomplete.status().message().find("missing shard(s) [1] of 2"),
            std::string::npos)
      << incomplete.status().to_string();
  EXPECT_NE(incomplete.status().message().find("--allow-partial"),
            std::string::npos);

  // The same shard twice is a duplicate, named with both paths.
  auto overlap =
      fi::merge_journals({*config.journal_path, *config.journal_path});
  ASSERT_FALSE(overlap.is_ok());
  EXPECT_EQ(overlap.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(overlap.status().message().find("duplicate shard 0/2"),
            std::string::npos)
      << overlap.status().to_string();
}

TEST(Journal, MergeRejectsUnfinishedShardUnlessAllowPartial) {
  const fs::path dir = scratch_dir("merge_unfinished");
  auto config = base_config("vecadd");
  config.shard_count = 2;
  std::vector<std::string> journals;
  for (u32 shard = 0; shard < 2; ++shard) {
    config.shard_index = shard;
    config.journal_path =
        (dir / ("shard" + std::to_string(shard) + ".jsonl")).string();
    journals.push_back(*config.journal_path);
    ASSERT_TRUE(Campaign::run(config).is_ok());
  }
  // Truncate shard 1 to the header plus 10 of its 30 records: an unfinished
  // (crashed, not-yet-resumed) shard.
  std::ifstream in(journals[1]);
  std::string line, kept;
  for (int i = 0; i < 11 && std::getline(in, line); ++i) kept += line + "\n";
  in.close();
  std::ofstream(journals[1], std::ios::trunc) << kept;

  auto strict = fi::merge_journals(journals);
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(strict.status().message().find("incomplete shard(s)"),
            std::string::npos)
      << strict.status().to_string();
  EXPECT_NE(strict.status().message().find("10 of 30 records"),
            std::string::npos)
      << strict.status().to_string();

  fi::MergeOptions allow;
  allow.allow_partial = true;
  auto partial = fi::merge_journals(journals, allow);
  ASSERT_TRUE(partial.is_ok()) << partial.status().to_string();
  EXPECT_EQ(partial.value().missing, 20u);
  ASSERT_EQ(partial.value().records.size(), 40u);
  ASSERT_EQ(partial.value().indices.size(), 40u);
  // The surviving records keep their global indices, in order: all 30 of
  // shard 0 (even) plus the first 10 of shard 1 (odd).
  u64 odd_seen = 0;
  for (std::size_t k = 1; k < partial.value().indices.size(); ++k) {
    EXPECT_LT(partial.value().indices[k - 1], partial.value().indices[k]);
  }
  for (u64 index : partial.value().indices) {
    if (index % 2 == 1) ++odd_seen;
  }
  EXPECT_EQ(odd_seen, 10u);
}

TEST(Journal, WriteMergedJournalIsByteIdenticalToUnshardedRun) {
  const fs::path dir = scratch_dir("merge_bytes");
  auto config = base_config("vecadd");
  config.threads = 1;  // index-ordered journal lines
  config.journal_path = (dir / "reference.jsonl").string();
  ASSERT_TRUE(Campaign::run(config).is_ok());

  std::vector<std::string> journals;
  for (u32 shard = 0; shard < 3; ++shard) {
    auto shard_config = config;
    shard_config.shard_index = shard;
    shard_config.shard_count = 3;
    shard_config.journal_path =
        (dir / ("shard" + std::to_string(shard) + ".jsonl")).string();
    journals.push_back(*shard_config.journal_path);
    ASSERT_TRUE(Campaign::run(shard_config).is_ok());
  }
  auto merged = fi::merge_journals(journals);
  ASSERT_TRUE(merged.is_ok()) << merged.status().to_string();
  const std::string out = (dir / "merged.jsonl").string();
  ASSERT_TRUE(fi::write_merged_journal(out, merged.value()).is_ok());

  auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(read_all(out), read_all(*config.journal_path));
}

TEST(Journal, QuarantinedRecordRoundTrips) {
  InjectionRecord record;
  record.outcome = Outcome::kQuarantined;
  record.pre_recovery = Outcome::kQuarantined;
  record.attempts = 0;  // never launched
  record.site.bit_sel = 13;
  const std::string line = Journal::record_line(133, record);
  auto parsed = Journal::parse_record(line);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().first, 133u);
  EXPECT_EQ(parsed.value().second.outcome, Outcome::kQuarantined);
  EXPECT_EQ(parsed.value().second.pre_recovery, Outcome::kQuarantined);
  EXPECT_EQ(parsed.value().second.attempts, 0u);
}

TEST(Journal, ShardValidationRejectsBadIndices) {
  auto config = base_config("vecadd");
  config.shard_count = 0;
  EXPECT_FALSE(Campaign::run(config).is_ok());
  config.shard_count = 2;
  config.shard_index = 2;
  EXPECT_FALSE(Campaign::run(config).is_ok());
}

// ----------------------------------------------------------- watchdog ----

TEST(Watchdog, InfiniteLoopKernelIsTrappedNotWedged) {
  sim::KernelBuilder b("infloop");
  auto top = b.new_label();
  b.bind(top);
  b.mov_u32(2, sim::Operand::imm_u(1));
  b.bra(top);  // unconditional back-edge: loops forever
  b.exit_();
  auto program = b.build();
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();

  sim::Device device(arch::toy());
  sim::LaunchOptions options;
  options.watchdog_instrs = 1000;
  auto launch =
      device.launch(program.value(), Dim3(1), Dim3(32), {}, options);
  ASSERT_TRUE(launch.is_ok()) << launch.status().to_string();
  EXPECT_TRUE(launch.value().trap.fired());
  EXPECT_EQ(launch.value().trap.kind, sim::TrapKind::kWatchdogTimeout);
  EXPECT_LE(launch.value().dyn_warp_instrs, 1001u);
}

TEST(Watchdog, TinyBudgetClassifiesEveryInjectionAsHang) {
  auto config = base_config("vecadd");
  config.num_injections = 10;
  config.watchdog_instrs = 5;  // nothing finishes in 5 warp instructions
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().count(Outcome::kHang),
            result.value().records.size());
  for (const auto& record : result.value().records) {
    EXPECT_EQ(record.trap, sim::TrapKind::kWatchdogTimeout);
  }
}

TEST(Watchdog, MultiplierBudgetLeavesHealthyRunsAlone) {
  auto config = base_config("vecadd");
  config.num_injections = 20;
  config.watchdog_multiplier = 3;
  config.watchdog_floor = 10000;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  // IOV strikes on vecadd cannot extend control flow by 3x.
  EXPECT_EQ(result.value().count(Outcome::kHang), 0u);
}

// ------------------------------------------------------- golden cache ----

TEST(GoldenCache, MemoizesPerConfigAndDistinguishesMachines) {
  auto& cache = fi::GoldenCache::instance();
  cache.clear();
  auto config = base_config("vecadd");
  const std::size_t misses_before = cache.misses();
  auto first = cache.get_or_run(config);
  auto second = cache.get_or_run(config);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_EQ(first.value().dyn_instrs, second.value().dyn_instrs);

  // Same arch name, different ECC setting: must not alias.
  auto ecc_off = config;
  ecc_off.machine.rf_ecc = ecc::EccMode::kDisabled;
  EXPECT_NE(fi::GoldenCache::key_for(config),
            fi::GoldenCache::key_for(ecc_off));
}

TEST(GoldenCache, DiskLayerRoundTripsGoldenRun) {
  const fs::path dir = scratch_dir("golden_cache");
  auto config = base_config("saxpy");
  auto& cache = fi::GoldenCache::instance();
  cache.clear();
  cache.set_directory(dir.string());
  auto first = cache.get_or_run(config);
  ASSERT_TRUE(first.is_ok());

  // A fresh in-memory cache must be served from disk (no new golden run).
  cache.clear();
  auto second = cache.get_or_run(config);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(first.value().dyn_instrs, second.value().dyn_instrs);
  EXPECT_EQ(first.value().cycles, second.value().cycles);
  EXPECT_EQ(first.value().profile.total_warp_instrs,
            second.value().profile.total_warp_instrs);
  cache.set_directory("");
  cache.clear();
}

TEST(GoldenCache, CorruptDiskEntryIsDiscardedAndRecomputed) {
  const fs::path dir = scratch_dir("golden_corrupt");
  auto config = base_config("saxpy");
  auto& cache = fi::GoldenCache::instance();
  cache.clear();
  cache.set_directory(dir.string());
  auto first = cache.get_or_run(config);
  ASSERT_TRUE(first.is_ok());

  // Truncate the cached entry mid-file: a crashed writer or a bad disk.
  fs::path entry;
  for (const auto& file : fs::directory_iterator(dir)) entry = file.path();
  ASSERT_FALSE(entry.empty());
  const auto full_size = fs::file_size(entry);
  fs::resize_file(entry, full_size / 2);

  // A fresh lookup must not error and must not serve the mangled entry:
  // the golden run is recomputed (a miss) and the result is unchanged.
  cache.clear();
  auto second = cache.get_or_run(config);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(first.value().dyn_instrs, second.value().dyn_instrs);
  EXPECT_EQ(first.value().cycles, second.value().cycles);

  // The recompute rewrites the entry, so the next cold lookup hits disk.
  EXPECT_GT(fs::file_size(entry), full_size / 2);
  cache.clear();
  ASSERT_TRUE(cache.get_or_run(config).is_ok());
  EXPECT_EQ(cache.hits(), 1u);
  cache.set_directory("");
  cache.clear();
}

TEST(GoldenCache, CampaignResumeReusesJournaledGolden) {
  // Campaign::run goes through the golden cache, so a shard pair in one
  // process profiles the workload exactly once.
  auto& cache = fi::GoldenCache::instance();
  cache.clear();
  auto config = base_config("vecadd");
  config.num_injections = 12;
  config.shard_count = 2;
  config.shard_index = 0;
  ASSERT_TRUE(Campaign::run(config).is_ok());
  config.shard_index = 1;
  ASSERT_TRUE(Campaign::run(config).is_ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GE(cache.hits(), 1u);
}

}  // namespace
}  // namespace gfi
