// Test helpers: run tiny one-warp kernels on the toy machine and collect
// per-lane results.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "arch/arch.h"
#include "sassim/device.h"
#include "sassim/kernel_builder.h"

namespace gfi::sim_test {

using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::LaunchOptions;
using sim::LaunchResult;
using sim::Operand;

/// Runs `body` (which computes a per-lane u32 into R10; R0 = lane id on
/// entry) on one warp of the toy machine and returns out[lane] for all 32
/// lanes. Registers R40+ are reserved for the harness epilogue.
inline std::vector<u32> run_lane_kernel(
    const std::function<void(KernelBuilder&)>& body,
    const LaunchOptions& options = {},
    std::optional<sim::MachineConfig> machine = std::nullopt) {
  KernelBuilder b("lane_test");
  b.s2r(0, sim::SpecialReg::kLaneId);
  body(b);
  b.ldc_u64(40, 0);
  b.s2r(44, sim::SpecialReg::kLaneId);
  b.imad_wide(42, Operand::reg(44), Operand::imm_u(4), Operand::reg(40));
  b.stg(42, 10);
  b.exit_();
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();

  Device device(machine ? *machine : arch::toy());
  auto out = device.malloc_n<u32>(32);
  EXPECT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  auto launch = device.launch(program.value(), Dim3(1), Dim3(32), params,
                              options);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();
  EXPECT_TRUE(launch.value().ok()) << launch.value().trap.to_string();

  std::vector<u32> host(32);
  EXPECT_EQ(device.to_host(std::span<u32>(host), out.value()),
            sim::TrapKind::kNone);
  return host;
}

/// 64-bit variant: body computes into the R10:R11 pair; returns u64[lane].
inline std::vector<u64> run_lane_kernel64(
    const std::function<void(KernelBuilder&)>& body) {
  KernelBuilder b("lane_test64");
  b.s2r(0, sim::SpecialReg::kLaneId);
  body(b);
  b.ldc_u64(40, 0);
  b.s2r(44, sim::SpecialReg::kLaneId);
  b.imad_wide(42, Operand::reg(44), Operand::imm_u(8), Operand::reg(40));
  b.stg(42, 10, 0, 8);
  b.exit_();
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();

  Device device(arch::toy());
  auto out = device.malloc_n<u64>(32);
  EXPECT_TRUE(out.is_ok());
  const u64 params[] = {out.value()};
  auto launch = device.launch(program.value(), Dim3(1), Dim3(32), params);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();
  EXPECT_TRUE(launch.value().ok()) << launch.value().trap.to_string();

  std::vector<u64> host(32);
  EXPECT_EQ(device.to_host(std::span<u64>(host), out.value()),
            sim::TrapKind::kNone);
  return host;
}

/// Builds a program expecting success (test aborts otherwise).
inline sim::Program must(KernelBuilder& b) {
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  return std::move(program).take();
}

}  // namespace gfi::sim_test
