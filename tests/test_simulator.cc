// Simulator-level tests: launch validation, scheduling across CTAs/SMs,
// determinism, timing model, instrumentation hook contract, occupancy.
#include <gtest/gtest.h>

#include "sassim/profiler.h"
#include "sim_test_util.h"

namespace gfi {
namespace {

using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::LaunchOptions;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

/// counter[0] += 1 from every thread of every CTA (global atomic).
sim::Program make_count_kernel() {
  KernelBuilder b("count");
  b.ldc_u64(2, 0);
  b.atomg(sim::AtomKind::kAdd, sim::kRegZ, 2, Operand::imm_u(1));
  b.exit_();
  return must(b);
}

TEST(Simulator, RejectsBadLaunches) {
  Device device(arch::toy());
  auto program = make_count_kernel();
  EXPECT_FALSE(device.launch(program, Dim3(0), Dim3(32), {{0}}).is_ok());
  EXPECT_FALSE(device.launch(program, Dim3(1), Dim3(2048), {{0}}).is_ok());
  EXPECT_FALSE(device.launch(program, Dim3(1), Dim3(32), {}).is_ok());
}

TEST(Simulator, AllCtasOfLargeGridExecute) {
  Device device(arch::toy());
  auto counter = device.malloc_n<u32>(1);
  ASSERT_TRUE(counter.is_ok());
  const u32 zero = 0;
  ASSERT_TRUE(
      device.to_device<u32>(counter.value(), std::span<const u32>(&zero, 1))
          .is_ok());
  auto program = make_count_kernel();
  const u64 params[] = {counter.value()};
  // 64 CTAs x 64 threads on a 2-SM toy machine: waves of residency.
  auto launch = device.launch(program, Dim3(64), Dim3(64), params);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok());
  u32 total = 0;
  ASSERT_EQ(device.to_host(std::span<u32>(&total, 1), counter.value()),
            TrapKind::kNone);
  EXPECT_EQ(total, 64u * 64u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Device device(arch::toy());
    auto counter = device.malloc_n<u32>(1);
    const u32 zero = 0;
    (void)device.to_device<u32>(counter.value(),
                                std::span<const u32>(&zero, 1));
    auto program = make_count_kernel();
    const u64 params[] = {counter.value()};
    auto launch = device.launch(program, Dim3(16), Dim3(64), params);
    EXPECT_TRUE(launch.value().ok());
    return std::make_pair(launch.value().cycles,
                          launch.value().dyn_warp_instrs);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Simulator, CyclesScaleWithWork) {
  Device device(arch::toy());
  auto counter = device.malloc_n<u32>(1);
  const u32 zero = 0;
  ASSERT_TRUE(
      device.to_device<u32>(counter.value(), std::span<const u32>(&zero, 1))
          .is_ok());
  auto program = make_count_kernel();
  const u64 params[] = {counter.value()};
  auto small = device.launch(program, Dim3(2), Dim3(32), params);
  auto large = device.launch(program, Dim3(32), Dim3(32), params);
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  EXPECT_GT(large.value().cycles, small.value().cycles);
  EXPECT_EQ(large.value().dyn_warp_instrs,
            16 * small.value().dyn_warp_instrs);
}

TEST(Simulator, MoreSmsFinishFaster) {
  auto cycles_with = [](u32 sms) {
    sim::MachineConfig config = arch::toy();
    config.num_sms = sms;
    Device device(config);
    auto counter = device.malloc_n<u32>(1);
    const u32 zero = 0;
    (void)device.to_device<u32>(counter.value(),
                                std::span<const u32>(&zero, 1));
    auto program = make_count_kernel();
    const u64 params[] = {counter.value()};
    auto launch = device.launch(program, Dim3(64), Dim3(64), params);
    EXPECT_TRUE(launch.value().ok());
    return launch.value().cycles;
  };
  EXPECT_LT(cycles_with(8), cycles_with(1));
}

TEST(Simulator, OccupancyLimitsRespected) {
  const sim::MachineConfig config = arch::toy();
  // Toy: 16 warp slots -> at most 2 CTAs of 256 threads (8 warps each).
  EXPECT_EQ(config.ctas_per_sm(256, 8, 0), 2u);
  // Shared memory limits: 32 KiB per SM, 16 KiB per CTA -> 2.
  EXPECT_EQ(config.ctas_per_sm(32, 8, 16384), 2u);
  // Register file: 16384 words; 256 threads x 32 regs = 8192 -> 2.
  EXPECT_EQ(config.ctas_per_sm(256, 32, 0), 2u);
  // A CTA that does not fit at all.
  EXPECT_EQ(config.ctas_per_sm(1024, 64, 0), 0u);
}

TEST(Simulator, CtaTooLargeIsRejected) {
  sim::MachineConfig config = arch::toy();
  config.shared_bytes_per_sm = 128;
  Device device(config);
  KernelBuilder b("fat");
  b.set_shared_bytes(4096);
  b.exit_();
  auto program = must(b);
  auto launch = device.launch(program, Dim3(1), Dim3(32), {});
  EXPECT_FALSE(launch.is_ok());
}

TEST(Simulator, TimeUsReflectsClock) {
  sim::LaunchResult result;
  result.cycles = 1980;
  sim::MachineConfig h100 = arch::h100();
  sim::MachineConfig a100 = arch::a100();
  EXPECT_LT(result.time_us(h100), result.time_us(a100));
  EXPECT_NEAR(result.time_us(h100), 1.0, 1e-9);  // 1980 cycles @ 1.98 GHz
}

// --------------------------------------------------------------- hooks --

class CountingHook final : public sim::InstrumentHook {
 public:
  int launches = 0;
  int ends = 0;
  u64 before = 0;
  u64 after = 0;
  u64 last_dyn_index = 0;

  void on_launch_begin(const sim::Program&) override { ++launches; }
  void on_launch_end() override { ++ends; }
  void on_before_instr(sim::InstrContext& ctx) override {
    ++before;
    last_dyn_index = ctx.dyn_index;
  }
  void on_after_instr(sim::InstrContext&) override { ++after; }
};

TEST(Simulator, HooksSeeEveryInstruction) {
  Device device(arch::toy());
  auto counter = device.malloc_n<u32>(1);
  const u32 zero = 0;
  ASSERT_TRUE(
      device.to_device<u32>(counter.value(), std::span<const u32>(&zero, 1))
          .is_ok());
  auto program = make_count_kernel();
  CountingHook hook;
  LaunchOptions options;
  options.hooks.push_back(&hook);
  const u64 params[] = {counter.value()};
  auto launch = device.launch(program, Dim3(4), Dim3(64), params, options);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(hook.launches, 1);
  EXPECT_EQ(hook.ends, 1);
  EXPECT_EQ(hook.before, launch.value().dyn_warp_instrs);
  EXPECT_EQ(hook.after, launch.value().dyn_warp_instrs);
  EXPECT_EQ(hook.last_dyn_index + 1, launch.value().dyn_warp_instrs);
}

class TrapRequestingHook final : public sim::InstrumentHook {
 public:
  void on_before_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index == 5) ctx.requested_trap = TrapKind::kEccDoubleBit;
  }
};

TEST(Simulator, HookRequestedTrapAbortsLaunch) {
  Device device(arch::toy());
  auto counter = device.malloc_n<u32>(1);
  const u32 zero = 0;
  ASSERT_TRUE(
      device.to_device<u32>(counter.value(), std::span<const u32>(&zero, 1))
          .is_ok());
  auto program = make_count_kernel();
  TrapRequestingHook hook;
  LaunchOptions options;
  options.hooks.push_back(&hook);
  const u64 params[] = {counter.value()};
  auto launch = device.launch(program, Dim3(4), Dim3(64), params, options);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kEccDoubleBit);
  EXPECT_EQ(launch.value().dyn_warp_instrs, 6u);
}

// ------------------------------------------------------------- profiler --

TEST(Profiler, CountsMatchLaunchTotals) {
  Device device(arch::toy());
  auto counter = device.malloc_n<u32>(1);
  const u32 zero = 0;
  ASSERT_TRUE(
      device.to_device<u32>(counter.value(), std::span<const u32>(&zero, 1))
          .is_ok());
  auto program = make_count_kernel();
  sim::ProfilerHook profiler;
  LaunchOptions options;
  options.hooks.push_back(&profiler);
  const u64 params[] = {counter.value()};
  auto launch = device.launch(program, Dim3(2), Dim3(64), params, options);
  ASSERT_TRUE(launch.is_ok());

  const sim::Profile& profile = profiler.profile();
  EXPECT_EQ(profile.total_warp_instrs, launch.value().dyn_warp_instrs);
  EXPECT_EQ(profile.total_thread_instrs, launch.value().dyn_thread_instrs);
  // Kernel: LDC + ATOMG + EXIT per warp, 4 warps total.
  EXPECT_EQ(profile.warp_instrs_by_opcode[static_cast<int>(sim::Opcode::kAtomG)],
            4u);
  EXPECT_EQ(profile.group_warp_count(sim::InstrGroup::kAtomic), 4u);
  EXPECT_EQ(profile.group_thread_count(sim::InstrGroup::kAtomic), 4u * 32u);
}

TEST(Profiler, MergeAddsCounts) {
  sim::Profile a, b;
  a.total_warp_instrs = 5;
  a.warp_instrs_by_group[0] = 5;
  b.total_warp_instrs = 7;
  b.warp_instrs_by_group[0] = 7;
  a.merge(b);
  EXPECT_EQ(a.total_warp_instrs, 12u);
  EXPECT_EQ(a.warp_instrs_by_group[0], 12u);
}

}  // namespace
}  // namespace gfi
