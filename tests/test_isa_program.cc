// ISA metadata, program validation, and kernel-builder unit tests.
#include <gtest/gtest.h>

#include "sassim/isa.h"
#include "sassim/kernel_builder.h"
#include "sassim/program.h"

namespace gfi::sim {
namespace {

TEST(Isa, OperandFactories) {
  EXPECT_TRUE(Operand::reg(5).is_reg());
  EXPECT_EQ(Operand::reg(5).index, 5);
  EXPECT_TRUE(Operand::imm_u(42).is_imm());
  EXPECT_EQ(Operand::imm_u(42).imm, 42u);
  EXPECT_EQ(Operand::imm_s(-1).imm, ~0ULL);
  EXPECT_TRUE(Operand::pred(2, true).negated);
  EXPECT_TRUE(Operand::none().is_none());
}

TEST(Isa, FloatImmediatesBitCast) {
  const Operand f = Operand::imm_f32(1.5f);
  EXPECT_EQ(f.imm, 0x3FC00000u);
  const Operand d = Operand::imm_f64(1.0);
  EXPECT_EQ(d.imm, 0x3FF0000000000000ULL);
}

TEST(Isa, GroupsCoverEveryOpcode) {
  for (int op = 0; op < kOpcodeCount; ++op) {
    Instr instr;
    instr.op = static_cast<Opcode>(op);
    const InstrGroup group = instr_group(instr);
    EXPECT_GE(static_cast<int>(group), 0);
    EXPECT_LT(static_cast<int>(group), kInstrGroupCount);
    EXPECT_STRNE(opcode_name(instr.op), "???");
  }
}

TEST(Isa, Fp64GroupSplitsByDtype) {
  Instr instr;
  instr.op = Opcode::kFAdd;
  instr.dtype = DType::kF32;
  EXPECT_EQ(instr_group(instr), InstrGroup::kFp32);
  instr.dtype = DType::kF64;
  EXPECT_EQ(instr_group(instr), InstrGroup::kFp64);
  instr.op = Opcode::kFFma;
  instr.dtype = DType::kF32;
  EXPECT_EQ(instr_group(instr), InstrGroup::kFp32Fma);
}

TEST(Isa, WritesRegAndPredClassification) {
  Instr setp;
  setp.op = Opcode::kISetp;
  setp.dst = Operand::pred(0);
  EXPECT_TRUE(setp.writes_pred());
  EXPECT_FALSE(setp.writes_reg());

  Instr add;
  add.op = Opcode::kIAdd;
  add.dst = Operand::reg(3);
  EXPECT_TRUE(add.writes_reg());

  Instr store;
  store.op = Opcode::kStg;
  EXPECT_FALSE(store.writes_reg());
  EXPECT_TRUE(store.is_store());
  EXPECT_TRUE(store.is_memory());

  Instr bra;
  bra.op = Opcode::kBra;
  EXPECT_TRUE(bra.is_control());
}

TEST(Isa, DstSpans) {
  Instr wide;
  wide.op = Opcode::kIAdd;
  wide.dtype = DType::kU64;
  EXPECT_EQ(wide.dst_reg_span(), 2);
  Instr hmma;
  hmma.op = Opcode::kHmma;
  EXPECT_EQ(hmma.dst_reg_span(), 4);
  Instr load;
  load.op = Opcode::kLdg;
  load.mem_width = 8;
  EXPECT_EQ(load.dst_reg_span(), 2);
}

TEST(Isa, Disassembly) {
  Instr instr;
  instr.op = Opcode::kIAdd;
  instr.dtype = DType::kU32;
  instr.dst = Operand::reg(3);
  instr.src[0] = Operand::reg(1);
  instr.src[1] = Operand::imm_u(16);
  instr.guard_pred = 0;
  const std::string text = to_string(instr);
  EXPECT_NE(text.find("@P0"), std::string::npos);
  EXPECT_NE(text.find("IADD.U32"), std::string::npos);
  EXPECT_NE(text.find("R3"), std::string::npos);
  EXPECT_NE(text.find("0x10"), std::string::npos);
}

// ------------------------------------------------------------- builder --

TEST(Builder, TracksRegisterBudget) {
  KernelBuilder b("regs");
  b.mov_u32(7, Operand::imm_u(1));
  b.iadd_u64(10, Operand::reg(4), Operand::reg(6));  // pair writes R10:R11
  b.exit_();
  auto program = b.build();
  ASSERT_TRUE(program.is_ok());
  EXPECT_EQ(program.value().num_regs(), 12);  // R11 is the highest touched
}

TEST(Builder, TracksParamCount) {
  KernelBuilder b("params");
  b.ldc_u32(2, 0);
  b.ldc_u64(4, 3);
  b.exit_();
  auto program = b.build();
  ASSERT_TRUE(program.is_ok());
  EXPECT_EQ(program.value().num_params(), 4u);
}

TEST(Builder, UnboundLabelFailsBuild) {
  KernelBuilder b("dangling");
  auto label = b.new_label();
  b.bra(label);
  b.exit_();
  auto program = b.build();
  EXPECT_FALSE(program.is_ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(Builder, IfThenEmitsSsySyncPair) {
  KernelBuilder b("structured");
  b.isetp(CmpOp::kEq, 0, Operand::reg(0), Operand::imm_u(0));
  b.if_then(0, false, [&] { b.nop(); });
  b.exit_();
  auto program = b.build();
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  int ssy = 0, sync = 0;
  for (const Instr& instr : program.value().code()) {
    if (instr.op == Opcode::kSsy) ++ssy;
    if (instr.op == Opcode::kSync) ++sync;
  }
  EXPECT_EQ(ssy, 1);
  EXPECT_EQ(sync, 1);
}

TEST(Builder, DisassemblesWholeProgram) {
  KernelBuilder b("listing");
  b.mov_u32(2, Operand::imm_u(0));
  b.exit_();
  auto program = b.build();
  ASSERT_TRUE(program.is_ok());
  const std::string text = program.value().disassemble();
  EXPECT_NE(text.find(".kernel listing"), std::string::npos);
  EXPECT_NE(text.find("MOV"), std::string::npos);
  EXPECT_NE(text.find("EXIT"), std::string::npos);
}

// ---------------------------------------------------------- validation --

TEST(ProgramValidate, RejectsEmpty) {
  Program empty;
  EXPECT_FALSE(empty.validate().is_ok());
}

TEST(ProgramValidate, RejectsMissingExit) {
  std::vector<Instr> code(1);
  code[0].op = Opcode::kNop;
  Program program("no_exit", std::move(code), 4, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

TEST(ProgramValidate, RejectsOutOfRangeBranch) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kBra;
  code[0].target = 99;
  code[1].op = Opcode::kExit;
  Program program("bad_target", std::move(code), 4, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

TEST(ProgramValidate, RejectsSsyNotPointingAtSync) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kSsy;
  code[0].target = 1;
  code[1].op = Opcode::kExit;
  Program program("bad_ssy", std::move(code), 4, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

TEST(ProgramValidate, RejectsRegisterOverBudget) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kIAdd;
  code[0].dst = Operand::reg(10);
  code[0].src[0] = Operand::reg(0);
  code[0].src[1] = Operand::reg(1);
  code[1].op = Opcode::kExit;
  Program program("over_budget", std::move(code), 4, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

TEST(ProgramValidate, RejectsWritingPT) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kISetp;
  code[0].dst = Operand::pred(kPredT);
  code[1].op = Opcode::kExit;
  Program program("write_pt", std::move(code), 4, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

TEST(ProgramValidate, RejectsBadMemWidth) {
  std::vector<Instr> code(2);
  code[0].op = Opcode::kLdg;
  code[0].dst = Operand::reg(0);
  code[0].src[0] = Operand::reg(2);
  code[0].mem_width = 3;
  code[1].op = Opcode::kExit;
  Program program("bad_width", std::move(code), 8, 0, 0);
  EXPECT_FALSE(program.validate().is_ok());
}

}  // namespace
}  // namespace gfi::sim
