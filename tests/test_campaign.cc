// Campaign-level tests: golden phase, sampling, classification,
// reproducibility, parallel execution, and memory-mode ECC behaviour.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "fi/campaign.h"

namespace gfi {
namespace {

using fi::BitFlipModel;
using fi::Campaign;
using fi::CampaignConfig;
using fi::InjectionMode;
using fi::Outcome;

CampaignConfig base_config(const std::string& workload) {
  CampaignConfig config;
  config.workload = workload;
  config.machine = arch::toy();
  config.model = {InjectionMode::kIov, BitFlipModel::kSingle};
  config.num_injections = 40;
  config.seed = 7;
  config.threads = 4;
  return config;
}

TEST(Campaign, GoldenRunProfilesWorkload) {
  auto golden = Campaign::golden_run(base_config("vecadd"));
  ASSERT_TRUE(golden.is_ok()) << golden.status().to_string();
  EXPECT_GT(golden.value().dyn_instrs, 0u);
  EXPECT_GT(golden.value().cycles, 0u);
  EXPECT_GT(golden.value().profile.group_warp_count(sim::InstrGroup::kFp32),
            0u);
  EXPECT_GT(golden.value().profile.group_warp_count(sim::InstrGroup::kStore),
            0u);
}

TEST(Campaign, UnknownWorkloadRejected) {
  auto result = Campaign::run(base_config("no_such_kernel"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(Campaign, ZeroInjectionsRejected) {
  auto config = base_config("vecadd");
  config.num_injections = 0;
  EXPECT_FALSE(Campaign::run(config).is_ok());
}

TEST(Campaign, GroupNotExecutedRejected) {
  auto config = base_config("vecadd");
  config.group = sim::InstrGroup::kFp64;  // vecadd has no FP64
  auto result = Campaign::run(config);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Campaign, ModeGroupMismatchRejected) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kIoa;
  config.group = sim::InstrGroup::kFp32;  // IOA targets stores only
  EXPECT_FALSE(Campaign::run(config).is_ok());
}

TEST(Campaign, QuarantinedIndicesAreSkippedWithoutDisturbingTheRest) {
  auto config = base_config("vecadd");
  auto baseline = Campaign::run(config);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().to_string();

  config.quarantine = {3, 17};
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_EQ(result.value().records.size(), baseline.value().records.size());
  EXPECT_EQ(result.value().count(Outcome::kQuarantined), 2u);

  for (std::size_t i = 0; i < result.value().records.size(); ++i) {
    const auto& record = result.value().records[i];
    const auto& reference = baseline.value().records[i];
    // The site is sampled either way — quarantine must not shift the RNG
    // stream of any other injection (that is what keeps a quarantined
    // campaign bit-identical to the reference outside the skipped indices).
    EXPECT_EQ(record.site.bit_sel, reference.site.bit_sel) << i;
    EXPECT_EQ(record.site.target_occurrence, reference.site.target_occurrence)
        << i;
    if (i == 3 || i == 17) {
      EXPECT_EQ(record.outcome, Outcome::kQuarantined) << i;
      EXPECT_EQ(record.pre_recovery, Outcome::kQuarantined) << i;
      EXPECT_EQ(record.attempts, 0u) << i;  // never launched
      EXPECT_EQ(record.dyn_instrs, 0u) << i;
    } else {
      EXPECT_EQ(record.outcome, reference.outcome) << i;
      EXPECT_EQ(record.error_magnitude, reference.error_magnitude) << i;
      EXPECT_EQ(record.dyn_instrs, reference.dyn_instrs) << i;
    }
  }

  // Quarantine is config, not identity: the flag is not in the journal
  // header, so is_quarantined is the only behavioural switch.
  EXPECT_TRUE(config.is_quarantined(3));
  EXPECT_FALSE(config.is_quarantined(4));
}

TEST(Campaign, OutcomeCountsSumToInjections) {
  auto result = Campaign::run(base_config("vecadd"));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  u64 total = 0;
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    total += result.value().outcome_counts[o];
  }
  EXPECT_EQ(total, result.value().records.size());
  EXPECT_EQ(result.value().records.size(), 40u);
}

TEST(Campaign, ReproducibleAcrossRuns) {
  auto a = Campaign::run(base_config("saxpy"));
  auto b = Campaign::run(base_config("saxpy"));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a.value().records.size(), b.value().records.size());
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    EXPECT_EQ(a.value().records[i].outcome, b.value().records[i].outcome) << i;
    EXPECT_EQ(a.value().records[i].effect.struck_dyn_index,
              b.value().records[i].effect.struck_dyn_index)
        << i;
  }
}

TEST(Campaign, DifferentSeedsDifferentSites) {
  auto a_cfg = base_config("saxpy");
  auto b_cfg = base_config("saxpy");
  b_cfg.seed = a_cfg.seed + 1;
  auto a = Campaign::run(a_cfg);
  auto b = Campaign::run(b_cfg);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  int different = 0;
  for (std::size_t i = 0; i < a.value().records.size(); ++i) {
    if (a.value().records[i].effect.struck_dyn_index !=
        b.value().records[i].effect.struck_dyn_index) {
      ++different;
    }
  }
  EXPECT_GT(different, 0);
}

TEST(Campaign, RunSingleReplaysExactRecord) {
  auto config = base_config("vecadd");
  auto campaign = Campaign::run(config);
  ASSERT_TRUE(campaign.is_ok());
  const auto& full = campaign.value();
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{39}}) {
    auto replay = Campaign::run_single(config, full.profile,
                                       full.golden_dyn_instrs, i);
    ASSERT_TRUE(replay.is_ok());
    EXPECT_EQ(replay.value().outcome, full.records[i].outcome) << i;
    EXPECT_EQ(replay.value().effect.struck_dyn_index,
              full.records[i].effect.struck_dyn_index)
        << i;
  }
}

TEST(Campaign, StoreGroupIoaProducesDuesOrDisplacedStores) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kIoa;
  config.group = sim::InstrGroup::kStore;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // Address corruption must never be silently "corrected".
  EXPECT_EQ(result.value().count(Outcome::kDetectedCorrected), 0u);
  // High address bits routinely leave the arena: expect some DUEs.
  EXPECT_GT(result.value().count(Outcome::kDue) +
                result.value().count(Outcome::kSdc) +
                result.value().count(Outcome::kMasked),
            0u);
}

TEST(Campaign, RfModeWithEccMostlyCorrects) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kRf;
  config.machine.rf_ecc = ecc::EccMode::kSecded;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  // Every activated single-bit RF strike is corrected under SECDED.
  EXPECT_EQ(result.value().count(Outcome::kSdc), 0u);
  EXPECT_EQ(result.value().count(Outcome::kDue), 0u);
  EXPECT_GT(result.value().count(Outcome::kDetectedCorrected), 0u);
}

TEST(Campaign, RfDoubleBitWithEccAllDue) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kRf;
  config.model.flip = BitFlipModel::kDouble;
  config.machine.rf_ecc = ecc::EccMode::kSecded;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().count(Outcome::kDue),
            result.value().records.size());
}

TEST(Campaign, MemoryModeSingleBitWithEccNeverCorrupts) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kMemory;
  config.machine.dram_ecc = ecc::EccMode::kSecded;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().count(Outcome::kSdc), 0u);
  EXPECT_EQ(result.value().count(Outcome::kHang), 0u);
}

TEST(Campaign, MemoryModeSingleBitWithoutEccCanCorrupt) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kMemory;
  config.machine.dram_ecc = ecc::EccMode::kDisabled;
  config.num_injections = 120;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  // With ECC off, upsets in input/output buffers become SDCs (or masked if
  // the word is never consumed); none may trap as a DBE.
  EXPECT_GT(result.value().count(Outcome::kSdc), 0u);
  EXPECT_EQ(result.value().count(Outcome::kDue), 0u);
}

TEST(Campaign, MemoryModeDoubleBitWithEccTrapsWhenConsumed) {
  auto config = base_config("vecadd");
  config.model.mode = InjectionMode::kMemory;
  config.model.flip = BitFlipModel::kDouble;
  config.num_injections = 120;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  EXPECT_GT(result.value().count(Outcome::kDue), 0u);
  EXPECT_EQ(result.value().count(Outcome::kSdc), 0u);  // detected, not silent
}

TEST(Campaign, FixedBitSweepRestrictsBit) {
  auto config = base_config("vecadd");
  config.fixed_bit = 31;  // FP32 sign bit
  config.group = sim::InstrGroup::kFp32;
  auto result = Campaign::run(config);
  ASSERT_TRUE(result.is_ok());
  for (const auto& record : result.value().records) {
    EXPECT_EQ(record.site.bit_sel, 31u);
  }
  // Sign flips of a+b are consumed by the store: high SDC rate expected.
  EXPECT_GT(result.value().rate(Outcome::kSdc), 0.5);
}

TEST(Campaign, RatesAndIntervalsConsistent) {
  auto result = Campaign::run(base_config("saxpy"));
  ASSERT_TRUE(result.is_ok());
  f64 total_rate = 0;
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    const auto outcome = static_cast<Outcome>(o);
    const f64 rate = result.value().rate(outcome);
    total_rate += rate;
    const auto ci = result.value().rate_interval(outcome);
    EXPECT_LE(ci.lo, rate + 1e-12);
    EXPECT_GE(ci.hi, rate - 1e-12);
  }
  EXPECT_NEAR(total_rate, 1.0, 1e-9);
}

}  // namespace
}  // namespace gfi
