// common/simd.h: per-op agreement between the active backend and plain
// per-lane C++ (the semantics the execution core's generic loop uses), and
// between the active backend and the always-compiled scalar backend.
//
// Under GFI_SIMD=off the two backends are the same type and this suite
// pins the scalar reference against the per-lane expressions; under avx2
// it is the cross-backend bit-identity proof for every op the executor's
// fast paths consume. The CI build matrix runs both, so any lane the AVX2
// code gets wrong fails one build or the other.
//
// Lane coverage is the cartesian product of an edge-value set per operand:
// 0, +/-1, INT_MIN, INT_MAX, UINT_MAX, shift counts >= 32 for integers;
// NaN (quiet and signaling patterns), +/-inf, +/-0.0, denormals and the
// finite extremes for f32.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/simd.h"
#include "sassim/warp.h"

namespace gfi {
namespace {

using sim::kWarpSize;

constexpr u32 kW = simd::kWidth;

const std::vector<u32>& u32_edges() {
  static const std::vector<u32> edges = {
      0u,          1u,          2u,          31u,         32u,
      33u,         64u,         0x7fffffffu, 0x80000000u, 0x80000001u,
      0xfffffffeu, 0xffffffffu, 0xdeadbeefu, 0x00010000u,
  };
  return edges;
}

const std::vector<u32>& f32_edge_bits() {
  static const std::vector<u32> edges = {
      0x00000000u,  // +0.0
      0x80000000u,  // -0.0
      0x3f800000u,  // 1.0
      0xbf800000u,  // -1.0
      0x40490fdbu,  // pi
      0x7f800000u,  // +inf
      0xff800000u,  // -inf
      0x7fc00000u,  // quiet NaN
      0xffc00001u,  // quiet NaN, negative, payload
      0x00000001u,  // smallest denormal
      0x807fffffu,  // largest negative denormal
      0x7f7fffffu,  // largest finite
      0xff7fffffu,  // lowest finite
      0x33800000u,  // small normal
  };
  return edges;
}

/// All (a, b) edge pairs, flattened into kW-lane rows (tail padded by
/// repeating the last pair), so every op sees every combination in every
/// lane position at least once across the sweep.
struct PairSweep {
  std::vector<u32> a;
  std::vector<u32> b;

  explicit PairSweep(const std::vector<u32>& edges) {
    for (u32 x : edges) {
      for (u32 y : edges) {
        a.push_back(x);
        b.push_back(y);
      }
    }
    while (a.size() % kW != 0) {
      a.push_back(a.back());
      b.push_back(b.back());
    }
  }
  [[nodiscard]] std::size_t chunks() const { return a.size() / kW; }
};

// ---------------------------------------------------------------------------
// u32xN ops vs per-lane expressions
// ---------------------------------------------------------------------------

template <typename V>
void check_u32_ops() {
  const PairSweep sweep(u32_edges());
  for (std::size_t c = 0; c < sweep.chunks(); ++c) {
    const u32* pa = sweep.a.data() + c * kW;
    const u32* pb = sweep.b.data() + c * kW;
    const V a = V::load(pa);
    const V b = V::load(pb);

    u32 out[kW];
    auto expect_lanes = [&](const V& r, auto&& ref, const char* op) {
      r.store(out);
      for (u32 l = 0; l < kW; ++l) {
        ASSERT_EQ(out[l], ref(pa[l], pb[l]))
            << op << " lane " << l << " a=0x" << std::hex << pa[l] << " b=0x"
            << pb[l];
      }
    };

    expect_lanes(a + b, [](u32 x, u32 y) { return x + y; }, "add");
    expect_lanes(a - b, [](u32 x, u32 y) { return x - y; }, "sub");
    expect_lanes(a * b, [](u32 x, u32 y) { return x * y; }, "mul");
    expect_lanes(a & b, [](u32 x, u32 y) { return x & y; }, "and");
    expect_lanes(a | b, [](u32 x, u32 y) { return x | y; }, "or");
    expect_lanes(a ^ b, [](u32 x, u32 y) { return x ^ y; }, "xor");
    expect_lanes(~a, [](u32 x, u32) { return ~x; }, "not");
    expect_lanes(shl(a, b), [](u32 x, u32 y) { return x << (y & 31u); },
                 "shl");
    expect_lanes(shr(a, b), [](u32 x, u32 y) { return x >> (y & 31u); },
                 "shr");
    expect_lanes(sar(a, b),
                 [](u32 x, u32 y) {
                   return static_cast<u32>(static_cast<i32>(x) >> (y & 31u));
                 },
                 "sar");
    expect_lanes(min_u(a, b), [](u32 x, u32 y) { return x < y ? x : y; },
                 "min_u");
    expect_lanes(max_u(a, b), [](u32 x, u32 y) { return x < y ? y : x; },
                 "max_u");
    expect_lanes(min_s(a, b),
                 [](u32 x, u32 y) {
                   return static_cast<i32>(x) < static_cast<i32>(y) ? x : y;
                 },
                 "min_s");
    expect_lanes(max_s(a, b),
                 [](u32 x, u32 y) {
                   return static_cast<i32>(x) < static_cast<i32>(y) ? y : x;
                 },
                 "max_s");
    expect_lanes(select(ceq(a, b), a, b),
                 [](u32 x, u32 y) { return x == y ? x : y; }, "select/ceq");

    auto expect_mask = [&](u32 got, auto&& ref, const char* op) {
      u32 want = 0;
      for (u32 l = 0; l < kW; ++l) want |= (ref(pa[l], pb[l]) ? 1u : 0u) << l;
      ASSERT_EQ(got, want) << op << " chunk " << c;
    };
    expect_mask(meq(a, b), [](u32 x, u32 y) { return x == y; }, "meq");
    expect_mask(mne(a, b), [](u32 x, u32 y) { return x != y; }, "mne");
    expect_mask(mlt_u(a, b), [](u32 x, u32 y) { return x < y; }, "mlt_u");
    expect_mask(mle_u(a, b), [](u32 x, u32 y) { return x <= y; }, "mle_u");
    expect_mask(mgt_u(a, b), [](u32 x, u32 y) { return x > y; }, "mgt_u");
    expect_mask(mge_u(a, b), [](u32 x, u32 y) { return x >= y; }, "mge_u");
    expect_mask(mlt_s(a, b),
                [](u32 x, u32 y) {
                  return static_cast<i32>(x) < static_cast<i32>(y);
                },
                "mlt_s");
    expect_mask(mle_s(a, b),
                [](u32 x, u32 y) {
                  return static_cast<i32>(x) <= static_cast<i32>(y);
                },
                "mle_s");
    expect_mask(mgt_s(a, b),
                [](u32 x, u32 y) {
                  return static_cast<i32>(x) > static_cast<i32>(y);
                },
                "mgt_s");
    expect_mask(mge_s(a, b),
                [](u32 x, u32 y) {
                  return static_cast<i32>(x) >= static_cast<i32>(y);
                },
                "mge_s");
  }
}

TEST(SimdU32, ActiveBackendMatchesPerLaneExpressions) {
  check_u32_ops<simd::u32xN>();
}
TEST(SimdU32, ScalarBackendMatchesPerLaneExpressions) {
  check_u32_ops<simd::scalar::u32xN>();
}

TEST(SimdU32, SplatAndLaneRoundTrip) {
  for (u32 x : u32_edges()) {
    const simd::u32xN v = simd::u32xN::splat(x);
    for (u32 l = 0; l < kW; ++l) ASSERT_EQ(v.lane(l), x);
  }
}

// ---------------------------------------------------------------------------
// f32xN ops vs per-lane expressions (bit-exact, NaN payloads included)
// ---------------------------------------------------------------------------

template <typename VF>
void check_f32_ops() {
  const PairSweep sweep(f32_edge_bits());
  for (std::size_t c = 0; c < sweep.chunks(); ++c) {
    const u32* pa = sweep.a.data() + c * kW;
    const u32* pb = sweep.b.data() + c * kW;
    const VF a = VF::load(pa);
    const VF b = VF::load(pb);

    u32 out[kW];
    auto expect_lanes = [&](const VF& r, auto&& ref, const char* op) {
      r.store(out);
      for (u32 l = 0; l < kW; ++l) {
        ASSERT_EQ(out[l], f32_bits(ref(bits_f32(pa[l]), bits_f32(pb[l]))))
            << op << " lane " << l << " a=0x" << std::hex << pa[l] << " b=0x"
            << pb[l];
      }
    };
    // Independent restatement of the gfi::fmin_det/fmax_det spec: take y
    // on strict order (or when x is the only NaN), else keep x — so ties
    // (fmin(+0,-0)) and two-NaN inputs return the first operand.
    auto ref_fmin = [](f32 x, f32 y) {
      if (y < x) return y;
      if (std::isnan(x) && !std::isnan(y)) return y;
      return x;
    };
    auto ref_fmax = [](f32 x, f32 y) {
      if (x < y) return y;
      if (std::isnan(x) && !std::isnan(y)) return y;
      return x;
    };
    // +/* results go through canon_nan on both sides, as the executor
    // does: two-NaN input payload selection is compilation-dependent
    // (bitutil.h), so only the canonicalized result is contractual.
    expect_lanes(canon_nan(a + b),
                 [](f32 x, f32 y) { return canon_nan(x + y); }, "fadd");
    expect_lanes(canon_nan(a * b),
                 [](f32 x, f32 y) { return canon_nan(x * y); }, "fmul");
    expect_lanes(fmin_det(a, b), ref_fmin, "fmin");
    expect_lanes(fmax_det(a, b), ref_fmax, "fmax");

    auto expect_mask = [&](u32 got, auto&& ref, const char* op) {
      u32 want = 0;
      for (u32 l = 0; l < kW; ++l) {
        want |= (ref(bits_f32(pa[l]), bits_f32(pb[l])) ? 1u : 0u) << l;
      }
      ASSERT_EQ(got, want) << op << " chunk " << c;
    };
    expect_mask(meq(a, b), [](f32 x, f32 y) { return x == y; }, "meq");
    expect_mask(mne(a, b), [](f32 x, f32 y) { return x != y; }, "mne");
    expect_mask(mlt(a, b), [](f32 x, f32 y) { return x < y; }, "mlt");
    expect_mask(mle(a, b), [](f32 x, f32 y) { return x <= y; }, "mle");
    expect_mask(mgt(a, b), [](f32 x, f32 y) { return x > y; }, "mgt");
    expect_mask(mge(a, b), [](f32 x, f32 y) { return x >= y; }, "mge");

    // fma over the pair sweep with a third operand drawn from the edges.
    for (u32 cb : {0x00000000u, 0x3f800000u, 0xff800000u, 0x7fc00000u,
                   0x7f7fffffu}) {
      const VF cc = VF::splat_bits(cb);
      const VF r = canon_nan(fma(a, b, cc));
      r.store(out);
      for (u32 l = 0; l < kW; ++l) {
        ASSERT_EQ(out[l], f32_bits(canon_nan(std::fmaf(
                              bits_f32(pa[l]), bits_f32(pb[l]), bits_f32(cb)))))
            << "fma lane " << l << " a=0x" << std::hex << pa[l] << " b=0x"
            << pb[l] << " c=0x" << cb;
      }
    }
  }
}

TEST(SimdF32, ActiveBackendMatchesPerLaneExpressions) {
  check_f32_ops<simd::f32xN>();
}
TEST(SimdF32, ScalarBackendMatchesPerLaneExpressions) {
  check_f32_ops<simd::scalar::f32xN>();
}

TEST(SimdF32, DetMinMaxPinsUnspecifiedCases) {
  const f32 pz = bits_f32(0x00000000u);
  const f32 nz = bits_f32(0x80000000u);
  // Ties return the first operand — std::fmin leaves this unspecified.
  EXPECT_EQ(f32_bits(fmin_det(pz, nz)), 0x00000000u);
  EXPECT_EQ(f32_bits(fmin_det(nz, pz)), 0x80000000u);
  EXPECT_EQ(f32_bits(fmax_det(pz, nz)), 0x00000000u);
  EXPECT_EQ(f32_bits(fmax_det(nz, pz)), 0x80000000u);
  // NaN-discarding with payloads untouched; two NaNs keep the first.
  const f32 nan_a = bits_f32(0x7fc00001u);
  const f32 nan_b = bits_f32(0xffc00002u);
  EXPECT_EQ(f32_bits(fmin_det(nan_a, 1.0f)), f32_bits(1.0f));
  EXPECT_EQ(f32_bits(fmin_det(1.0f, nan_b)), f32_bits(1.0f));
  EXPECT_EQ(f32_bits(fmin_det(nan_a, nan_b)), 0x7fc00001u);
  EXPECT_EQ(f32_bits(fmax_det(nan_b, nan_a)), 0xffc00002u);
}

TEST(SimdF32, I32ConversionMatchesStaticCast) {
  const std::vector<u32>& edges = u32_edges();
  std::vector<u32> padded = edges;
  while (padded.size() % kW != 0) padded.push_back(padded.back());
  for (std::size_t c = 0; c < padded.size() / kW; ++c) {
    const u32* p = padded.data() + c * kW;
    u32 out[kW];
    cvt_i32(simd::u32xN::load(p)).store(out);
    for (u32 l = 0; l < kW; ++l) {
      ASSERT_EQ(out[l],
                f32_bits(static_cast<f32>(static_cast<i32>(p[l]))));
    }
  }
}

// ---------------------------------------------------------------------------
// Predicate-byte primitives: partial lane masks
// ---------------------------------------------------------------------------

/// Deterministic byte patterns without pulling in <random>: xorshift32.
u32 next_rng(u32& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

TEST(SimdPredicates, TestbitMask32MatchesByteLoop) {
  u32 rng = 0x5eedu;
  for (int round = 0; round < 64; ++round) {
    u8 bytes[kWarpSize];
    for (u8& byte : bytes) byte = static_cast<u8>(next_rng(rng));
    for (u32 bit = 0; bit < 8; ++bit) {
      u32 want = 0;
      for (u32 i = 0; i < kWarpSize; ++i) {
        want |= static_cast<u32>((bytes[i] >> bit) & 1u) << i;
      }
      ASSERT_EQ(simd::testbit_mask32(bytes, bit), want) << "bit " << bit;
      ASSERT_EQ(simd::scalar::testbit_mask32(bytes, bit), want)
          << "scalar bit " << bit;
    }
  }
}

TEST(SimdPredicates, GuardMaskFastMatchesGuardMaskOnPartialMasks) {
  u32 rng = 0xfeedu;
  for (int round = 0; round < 32; ++round) {
    sim::WarpState warp(0, 8, 0xffffffffu);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      warp.set_pred_bits(lane, static_cast<u8>(next_rng(rng)));
    }
    // Full, empty, sparse and dense active masks.
    for (u32 active : {0xffffffffu, 0u, 0x00010001u, 0xaaaaaaaau,
                       next_rng(rng)}) {
      warp.set_active(active);
      for (u8 p = 0; p < 8; ++p) {
        for (bool negated : {false, true}) {
          ASSERT_EQ(warp.guard_mask_fast(p, negated),
                    warp.guard_mask(p, negated))
              << "p " << static_cast<int>(p) << " neg " << negated
              << " active 0x" << std::hex << active;
        }
      }
    }
  }
}

TEST(SimdPredicates, SetPredRowMatchesPerLaneSetPred) {
  u32 rng = 0xabcdu;
  for (u8 p = 0; p < 8; ++p) {
    for (u32 mask : {0u, 0xffffffffu, 0x80000001u, 0x55555555u,
                     next_rng(rng), next_rng(rng)}) {
      sim::WarpState via_row(0, 8, 0xffffffffu);
      sim::WarpState via_lanes(0, 8, 0xffffffffu);
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        const u8 bits = static_cast<u8>(next_rng(rng));
        via_row.set_pred_bits(lane, bits);
        via_lanes.set_pred_bits(lane, bits);
      }
      via_row.set_pred_row(p, mask);
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        via_lanes.set_pred(lane, p, ((mask >> lane) & 1u) != 0);
      }
      for (u32 lane = 0; lane < kWarpSize; ++lane) {
        ASSERT_EQ(via_row.pred_bits(lane), via_lanes.pred_bits(lane))
            << "p " << static_cast<int>(p) << " lane " << lane;
      }
    }
  }
}

TEST(SimdBackend, NameIsConsistentWithCompiledPath) {
#ifdef GFI_SIMD_ACTIVE_AVX2
  EXPECT_STRNE(simd::backend(), "off");
  EXPECT_FALSE((std::is_same_v<simd::u32xN, simd::scalar::u32xN>));
#else
  EXPECT_STREQ(simd::backend(), "off");
  EXPECT_TRUE((std::is_same_v<simd::u32xN, simd::scalar::u32xN>));
#endif
}

}  // namespace
}  // namespace gfi
