// SWIFT hardening tests: transform correctness (hardened kernels still
// compute the right answers), detection (injected dataflow corruption is
// turned into a deliberate trap), overhead accounting, and eligibility.
#include <gtest/gtest.h>

#include "fi/campaign.h"
#include "harden/swift.h"
#include "sim_test_util.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using gfi::Dim3;
using harden::swift_harden;
using harden::SwiftStats;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

class HardenedGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(HardenedGolden, HardenedKernelStillComputesCorrectly) {
  auto workload = harden::make_hardened(GetParam());
  if (!workload) GTEST_SKIP() << GetParam() << " is not hardenable";
  // A100: the doubled register footprint can exceed the toy SM's file.
  Device device(arch::a100());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(launch.is_ok()) << launch.status().to_string();
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();
  auto checked = workload->check(device);
  ASSERT_TRUE(checked.is_ok());
  EXPECT_TRUE(checked.value().result.passed())
      << GetParam() << " max rel err " << checked.value().result.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(Suite, HardenedGolden,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Swift, StatsAccountOverhead) {
  auto inner = wl::make_workload("saxpy");
  SwiftStats stats;
  auto hardened = swift_harden(inner->program(), &stats);
  ASSERT_TRUE(hardened.is_ok()) << hardened.status().to_string();
  EXPECT_EQ(stats.original_instrs, inner->program().size());
  EXPECT_GT(stats.hardened_instrs, stats.original_instrs);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.checks, 0u);
  EXPECT_GT(stats.static_overhead(), 1.0);
  EXPECT_LT(stats.static_overhead(), 6.0);
  EXPECT_EQ(hardened.value().num_regs(), 2 * inner->program().num_regs());
  EXPECT_EQ(hardened.value().name(), "saxpy_swift");
}

TEST(Swift, RejectsHmmaKernels) {
  auto inner = wl::make_workload("gemm_hmma");
  auto hardened = swift_harden(inner->program());
  EXPECT_FALSE(hardened.is_ok());
  EXPECT_EQ(hardened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(harden::make_hardened("gemm_hmma"), nullptr);
}

TEST(Swift, RejectsProgramsUsingP6) {
  KernelBuilder b("uses_p6");
  b.isetp(sim::CmpOp::kEq, 6, Operand::reg(0), Operand::imm_u(0));
  b.exit_();
  auto program = must(b);
  EXPECT_FALSE(swift_harden(program).is_ok());
}

TEST(Swift, DetectsCorruptedStoreValue) {
  // Inject a single-bit IOV flip into the value-producing IADD of a
  // hardened kernel: the pre-store check must convert it into a trap.
  KernelBuilder b("guarded_add");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.iadd_u32(4, Operand::reg(0), Operand::imm_u(1000));
  b.ldc_u64(6, 0);
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
  b.stg(8, 4);
  b.exit_();
  auto base = must(b);
  auto hardened = swift_harden(base);
  ASSERT_TRUE(hardened.is_ok());

  Device device(arch::toy());
  auto out = device.malloc_n<u32>(32);
  const u64 params[] = {out.value()};

  // Strike the master IADD (the duplicate writes the shadow; checks catch
  // the divergence). Find the IADD occurrence among INT-group instrs: in
  // the hardened stream the P6 init is occurrence 0's predecessor... use
  // opcode-targeted search via occurrence sweep: strike each INT occurrence
  // until the struck opcode is the IADD writing R4.
  bool detected_as_trap = false;
  for (u64 occurrence = 0; occurrence < 12 && !detected_as_trap;
       ++occurrence) {
    fi::FaultSite site;
    site.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
    site.group = sim::InstrGroup::kInt;
    site.target_occurrence = occurrence;
    site.lane_sel = 3;
    site.bit_sel = 12;
    fi::InjectorHook injector(site, device.config());
    sim::LaunchOptions options;
    options.hooks.push_back(&injector);
    auto launch = device.launch(hardened.value(), Dim3(1), Dim3(32), params,
                                options);
    ASSERT_TRUE(launch.is_ok());
    if (injector.effect().struck_opcode != sim::Opcode::kIAdd) continue;
    // The corruption hit master or shadow of the stored value: the store
    // check must have trapped at address 0.
    EXPECT_TRUE(launch.value().trap.fired());
    EXPECT_EQ(launch.value().trap.kind, TrapKind::kIllegalGlobalAddress);
    EXPECT_EQ(launch.value().trap.address, 0u);
    detected_as_trap = true;
  }
  EXPECT_TRUE(detected_as_trap);
}

TEST(Swift, CleanHardenedRunDoesNotTrap) {
  auto workload = harden::make_hardened("gemm");
  ASSERT_NE(workload, nullptr);
  Device device(arch::toy());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok());
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(launch.value().ok()) << launch.value().trap.to_string();
}

TEST(Swift, CampaignShowsSdcToDueConversion) {
  harden::register_hardened_workloads();

  auto run = [](const std::string& name) {
    fi::CampaignConfig config;
    config.workload = name;
    config.machine = arch::toy();
    config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
    config.num_injections = 120;
    config.seed = 99;
    auto result = fi::Campaign::run(config);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).take();
  };
  const auto baseline = run("saxpy");
  const auto hardened = run("saxpy_swift");

  // Hardening must cut the SDC rate sharply and raise detection (DUE).
  EXPECT_LT(hardened.rate(fi::Outcome::kSdc),
            baseline.rate(fi::Outcome::kSdc) / 2);
  EXPECT_GT(hardened.rate(fi::Outcome::kDue),
            baseline.rate(fi::Outcome::kDue));
}

TEST(Swift, RegisteredVariantsAppearInRegistry) {
  harden::register_hardened_workloads();
  auto names = wl::workload_names();
  bool found = false;
  for (const auto& name : names) {
    if (name == "gemm_swift") found = true;
    EXPECT_EQ(name.find("gemm_hmma_swift"), std::string::npos);
  }
  EXPECT_TRUE(found);
  auto workload = wl::make_workload("gemm_swift");
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->name(), "gemm_swift");
}

}  // namespace
}  // namespace gfi
