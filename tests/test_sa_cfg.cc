// CFG construction, SSY-depth tracking, and the dataflow passes (liveness,
// reaching definitions, def-use chains) on hand-built kernels that exercise
// the edge cases the linter and the pruning pass lean on.
#include <gtest/gtest.h>

#include <algorithm>

#include "sa/ace.h"
#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/defuse.h"
#include "sassim/kernel_builder.h"

namespace gfi {
namespace {

using sim::CmpOp;
using sim::Instr;
using sim::KernelBuilder;
using sim::Opcode;
using sim::Operand;
using sim::Program;

Program must_build(KernelBuilder& b) {
  auto program = b.build();
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  return std::move(program).take();
}

// ----------------------------------------------------------------- empty --

TEST(SaCfg, EmptyProgramYieldsEmptyEverything) {
  const Program empty;
  const auto cfg = sa::Cfg::build(empty);
  EXPECT_TRUE(cfg.empty());
  EXPECT_EQ(cfg.num_instrs(), 0u);

  const auto depth = sa::SsyDepth::compute(empty);
  EXPECT_TRUE(depth.at.empty());
  EXPECT_TRUE(depth.underflow_pcs.empty());

  const auto live = sa::Liveness::compute(empty, cfg);
  const auto reaching = sa::ReachingDefs::compute(empty, cfg);
  const auto chains = sa::DefUseChains::compute(empty, cfg, reaching);
  EXPECT_TRUE(chains.uses.empty());

  const auto sites = sa::StaticSiteAnalysis::analyze(empty);
  EXPECT_EQ(sites.size(), 0u);
  EXPECT_EQ(sites.num_dead_pcs(), 0u);
}

// ---------------------------------------------------------- single block --

TEST(SaCfg, SingleBlockKernel) {
  KernelBuilder b("straight");
  b.ldc_u64(2, 0);
  b.mov_u32(4, Operand::imm_u(7));
  b.stg(2, 4);
  b.exit_();
  const Program program = must_build(b);

  const auto cfg = sa::Cfg::build(program);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  const auto& block = cfg.blocks()[0];
  EXPECT_EQ(block.first, 0u);
  EXPECT_EQ(block.last, program.size() - 1);
  EXPECT_TRUE(block.succs.empty());
  EXPECT_TRUE(block.preds.empty());
  EXPECT_TRUE(block.reachable);
  for (u32 pc = 0; pc < program.size(); ++pc) {
    EXPECT_EQ(cfg.block_of(pc), 0u);
    EXPECT_TRUE(cfg.pc_reachable(pc));
  }
}

// ----------------------------------------------------------- successors --

TEST(SaCfg, InstrSuccsFollowGuardSemantics) {
  KernelBuilder b("succs");
  const auto target = b.new_label();
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(1));  // pc 0
  b.bra(target, 0);                                            // pc 1 guarded
  b.bra(target);                                               // pc 2 @PT
  b.bind(target);
  b.exit_if(0);                                                // pc 3 guarded
  b.exit_();                                                   // pc 4
  const Program program = must_build(b);
  const u32 size = static_cast<u32>(program.size());

  EXPECT_EQ(sa::instr_succs(program.at(0), 0, size), (std::vector<u32>{1}));
  EXPECT_EQ(sa::instr_succs(program.at(1), 1, size), (std::vector<u32>{2, 3}));
  EXPECT_EQ(sa::instr_succs(program.at(2), 2, size), (std::vector<u32>{3}));
  EXPECT_EQ(sa::instr_succs(program.at(3), 3, size), (std::vector<u32>{4}));
  EXPECT_TRUE(sa::instr_succs(program.at(4), 4, size).empty());
}

// ------------------------------------------------------------- back edge --

TEST(SaCfg, LoopBackEdgeAndLoopCarriedLiveness) {
  KernelBuilder b("loop");
  b.mov_u32(1, Operand::imm_u(0));  // pc 0: counter
  const auto top = b.new_label();
  b.bind(top);
  b.iadd_u32(1, Operand::reg(1), Operand::imm_u(1));       // pc 1
  b.isetp(CmpOp::kLt, 0, Operand::reg(1), Operand::imm_u(4));  // pc 2
  b.bra(top, 0);                                           // pc 3: back edge
  b.ldc_u64(2, 0);                                         // pc 4
  b.stg(2, 1);                                             // pc 5
  b.exit_();                                               // pc 6
  const Program program = must_build(b);

  const auto cfg = sa::Cfg::build(program);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const u32 body = cfg.block_of(1);
  const u32 tail = cfg.block_of(4);
  // The loop body both falls through and branches back to itself.
  EXPECT_EQ(cfg.blocks()[body].succs, (std::vector<u32>{tail, body}));
  EXPECT_TRUE(std::count(cfg.blocks()[body].preds.begin(),
                         cfg.blocks()[body].preds.end(), body) == 1);
  for (const auto& block : cfg.blocks()) EXPECT_TRUE(block.reachable);

  // R1 is loop-carried: live out of the increment (read by the compare, the
  // next iteration, and the store) and live around the back edge.
  const auto live = sa::Liveness::compute(program, cfg);
  EXPECT_TRUE(live.reg_live_out(1, 1));
  EXPECT_TRUE(live.reg_live_out(3, 1));
  // After the store nothing reads R1.
  EXPECT_FALSE(live.reg_live_out(5, 1));

  // The increment's value may be read by the compare and the store — and by
  // itself on the next trip around the loop.
  const auto reaching = sa::ReachingDefs::compute(program, cfg);
  const auto chains = sa::DefUseChains::compute(program, cfg, reaching);
  EXPECT_EQ(chains.uses[1], (std::vector<u32>{1, 2, 5}));
  // The initial mov reaches the loop header alongside the back-edge def.
  const auto defs = reaching.reaching_defs(1, 1);
  EXPECT_EQ(defs, (std::vector<u32>{0, 1}));
}

// --------------------------------------------------- divergent SSY nesting --

TEST(SaCfg, NestedDivergenceTracksSsyDepth) {
  KernelBuilder b("nested");
  b.s2r(0, sim::SpecialReg::kLaneId);
  b.isetp(CmpOp::kLt, 0, Operand::reg(0), Operand::imm_u(16));
  b.if_then(0, false, [&] {
    b.isetp(CmpOp::kLt, 1, Operand::reg(0), Operand::imm_u(8));
    b.if_then(1, false,
              [&] { b.iadd_u32(4, Operand::reg(0), Operand::imm_u(1)); });
  });
  b.ldc_u64(2, 0);
  b.stg(2, 4);
  b.exit_();
  const Program program = must_build(b);

  const auto depth = sa::SsyDepth::compute(program);
  EXPECT_TRUE(depth.underflow_pcs.empty());
  EXPECT_TRUE(depth.mismatch_pcs.empty());
  EXPECT_TRUE(depth.exit_unbalanced_pcs.empty());
  EXPECT_EQ(depth.at[0], 0);
  EXPECT_EQ(depth.at[program.size() - 1], 0);  // exit at depth 0
  // The innermost body sits under two open SSY regions.
  int max_depth = 0;
  for (u32 pc = 0; pc < program.size(); ++pc) {
    ASSERT_GE(depth.at[pc], 0) << "pc " << pc << " unreachable";
    if (program.at(pc).op == Opcode::kIAdd) {
      EXPECT_EQ(depth.at[pc], 2);
    }
    max_depth = std::max(max_depth, depth.at[pc]);
  }
  EXPECT_EQ(max_depth, 2);
}

TEST(SaCfg, BareSyncIsAnUnderflow) {
  // KernelBuilder's structured helpers cannot emit this, so link it by hand.
  Instr sync;
  sync.op = Opcode::kSync;
  Instr exit;
  exit.op = Opcode::kExit;
  const Program program("bad_sync", {sync, exit}, 0, 0, 0);

  const auto depth = sa::SsyDepth::compute(program);
  EXPECT_EQ(depth.underflow_pcs, (std::vector<u32>{0}));
}

// --------------------------------------------------- 64-bit register pairs --

TEST(SaCfg, WideOpsDefineAndUseRegisterPairs) {
  KernelBuilder b("wide");
  b.mov_u64(2, 0x1122334455667788ull);                       // pc 0: R2,R3
  b.fadd_f64(4, Operand::reg(2), Operand::reg(2));           // pc 1: R4,R5
  b.ldc_u64(6, 0);                                           // pc 2: R6,R7
  b.stg(6, 4, 0, 8);                                         // pc 3: 8-byte
  b.exit_();
  const Program program = must_build(b);

  const auto mov = sim::def_use(program.at(0));
  EXPECT_TRUE(mov.dst_regs.contains(2));
  EXPECT_TRUE(mov.dst_regs.contains(3));
  const auto fadd = sim::def_use(program.at(1));
  EXPECT_TRUE(fadd.src_regs.contains(2));
  EXPECT_TRUE(fadd.src_regs.contains(3));
  EXPECT_TRUE(fadd.dst_regs.contains(4));
  EXPECT_TRUE(fadd.dst_regs.contains(5));
  const auto stg = sim::def_use(program.at(3));
  EXPECT_TRUE(stg.src_regs.contains(6));
  EXPECT_TRUE(stg.src_regs.contains(7));  // 64-bit address pair
  EXPECT_TRUE(stg.src_regs.contains(4));
  EXPECT_TRUE(stg.src_regs.contains(5));  // 8-byte store data pair

  // Both halves of the pair stay live until the consumer reads them.
  const auto cfg = sa::Cfg::build(program);
  const auto live = sa::Liveness::compute(program, cfg);
  EXPECT_TRUE(live.reg_live_out(0, 2));
  EXPECT_TRUE(live.reg_live_out(0, 3));
  EXPECT_FALSE(live.reg_live_out(1, 2));
  EXPECT_FALSE(live.reg_live_out(1, 3));
  EXPECT_TRUE(live.reg_live_out(1, 4));
  EXPECT_TRUE(live.reg_live_out(1, 5));
}

// --------------------------------------------------- predicate liveness --

TEST(SaCfg, PredicateLivenessThroughSetpAndSel) {
  KernelBuilder b("preds");
  b.mov_u32(2, Operand::imm_u(3));                               // pc 0
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(5));    // pc 1: P0
  b.sel(4, Operand::imm_u(1), Operand::imm_u(0), 0);             // pc 2: reads P0
  b.isetp(CmpOp::kGe, 1, Operand::reg(4), Operand::imm_u(1));    // pc 3: P1
  b.ldc_u64(6, 0);                                               // pc 4
  b.stg(6, 4);                                                   // pc 5 @P1
  b.guard_last(1);
  b.exit_();                                                     // pc 6
  const Program program = must_build(b);

  const auto sel = sim::def_use(program.at(2));
  EXPECT_EQ(sel.src_preds, 1u << 0);
  const auto guarded_stg = sim::def_use(program.at(5));
  EXPECT_EQ(guarded_stg.src_preds, 1u << 1);  // the @P1 guard is a use

  const auto cfg = sa::Cfg::build(program);
  const auto live = sa::Liveness::compute(program, cfg);
  // P0 is live from the compare to the select, then dead.
  EXPECT_TRUE(live.pred_live_out(1, 0));
  EXPECT_FALSE(live.pred_live_out(2, 0));
  // P1 stays live until the guarded store consumes it.
  EXPECT_TRUE(live.pred_live_out(3, 0 + 1));
  EXPECT_TRUE(live.pred_live_out(4, 1));
  EXPECT_FALSE(live.pred_live_out(5, 1));
  // PT is never tracked as live.
  EXPECT_FALSE(live.pred_live_out(1, sim::kPredT));
}

// A guarded write must not end a live range: lanes whose guard is false keep
// the old value, so a strike on the original definition can still be read.
TEST(SaCfg, GuardedWriteDoesNotKill) {
  KernelBuilder b("guarded_kill");
  b.mov_u32(2, Operand::imm_u(7));                               // pc 0
  b.isetp(CmpOp::kLt, 0, Operand::reg(2), Operand::imm_u(5));    // pc 1
  b.mov_u32(2, Operand::imm_u(9));                               // pc 2 @P0
  b.guard_last(0);
  b.ldc_u64(4, 0);                                               // pc 3
  b.stg(4, 2);                                                   // pc 4
  b.exit_();
  const Program program = must_build(b);

  const auto cfg = sa::Cfg::build(program);
  const auto live = sa::Liveness::compute(program, cfg);
  // The pc-0 value survives the guarded redefinition at pc 2.
  EXPECT_TRUE(live.reg_live_out(0, 2));
  EXPECT_TRUE(live.reg_live_out(2, 2));

  // Both definitions may reach the store.
  const auto reaching = sa::ReachingDefs::compute(program, cfg);
  EXPECT_EQ(reaching.reaching_defs(4, 2), (std::vector<u32>{0, 2}));

  // An unguarded redefinition kills: rebuild without the guard.
  KernelBuilder b2("unguarded_kill");
  b2.mov_u32(2, Operand::imm_u(7));
  b2.mov_u32(2, Operand::imm_u(9));
  b2.ldc_u64(4, 0);
  b2.stg(4, 2);
  b2.exit_();
  const Program program2 = must_build(b2);
  const auto cfg2 = sa::Cfg::build(program2);
  const auto live2 = sa::Liveness::compute(program2, cfg2);
  EXPECT_FALSE(live2.reg_live_out(0, 2));
  const auto reaching2 = sa::ReachingDefs::compute(program2, cfg2);
  EXPECT_EQ(reaching2.reaching_defs(3, 2), (std::vector<u32>{1}));
}

// ---------------------------------------------------------- unreachable --

TEST(SaCfg, CodeAfterUnconditionalBranchIsUnreachable) {
  KernelBuilder b("unreachable");
  const auto end = b.new_label();
  b.bra(end);                         // pc 0
  b.mov_u32(2, Operand::imm_u(1));    // pc 1: skipped forever
  b.bind(end);
  b.exit_();                          // pc 2
  const Program program = must_build(b);

  const auto cfg = sa::Cfg::build(program);
  EXPECT_TRUE(cfg.pc_reachable(0));
  EXPECT_FALSE(cfg.pc_reachable(1));
  EXPECT_TRUE(cfg.pc_reachable(2));

  const auto depth = sa::SsyDepth::compute(program);
  EXPECT_EQ(depth.at[1], -1);
}

}  // namespace
}  // namespace gfi
