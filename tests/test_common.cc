// Unit tests for src/common: RNG, bit utilities, statistics, tables,
// histograms, thread pool, status.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/bitutil.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace gfi {
namespace {

// ---------------------------------------------------------------- status --

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = Status::invalid_argument("bad thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.to_string(), "INVALID_ARGUMENT: bad thing");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good(7);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad(Status::not_found("nope"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::for_stream(1, 0);
  Rng b = Rng::for_stream(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<u64> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const f64 x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, StreamSeedIsPositionIndependent) {
  // The contract sharded/resumable campaigns rely on: the seed of stream i
  // is a pure function of (seed, i), so drawing streams in any order, from
  // any shard, yields identical generators.
  EXPECT_EQ(Rng::stream_seed(42, 7), Rng::stream_seed(42, 7));
  EXPECT_NE(Rng::stream_seed(42, 7), Rng::stream_seed(42, 8));
  EXPECT_NE(Rng::stream_seed(42, 7), Rng::stream_seed(43, 7));
  Rng direct = Rng(Rng::stream_seed(42, 7));
  Rng stream = Rng::for_stream(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(direct.next(), stream.next());
}

TEST(Rng, RoughlyUniform) {
  Rng rng(31337);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

// --------------------------------------------------------------- bitutil --

TEST(BitUtil, FlipBit32) {
  EXPECT_EQ(flip_bit32(0, 0), 1u);
  EXPECT_EQ(flip_bit32(1, 0), 0u);
  EXPECT_EQ(flip_bit32(0, 31), 0x80000000u);
  EXPECT_EQ(flip_bit32(flip_bit32(0xDEADBEEF, 13), 13), 0xDEADBEEFu);
}

TEST(BitUtil, FlipBit64RoundTrips) {
  const u64 value = 0x0123456789ABCDEFULL;
  for (u32 bit = 0; bit < 64; ++bit) {
    EXPECT_EQ(flip_bit64(flip_bit64(value, bit), bit), value);
    EXPECT_NE(flip_bit64(value, bit), value);
  }
}

TEST(BitUtil, FloatBitCastsRoundTrip) {
  for (f32 v : {0.0f, 1.0f, -2.5f, 3.1415926f, 1e-30f, 1e30f}) {
    EXPECT_EQ(bits_f32(f32_bits(v)), v);
  }
  for (f64 v : {0.0, -1.0, 2.718281828459045, 1e-300}) {
    EXPECT_EQ(bits_f64(f64_bits(v)), v);
  }
}

TEST(BitUtil, Make64SplitsAndJoins) {
  const u64 v = 0xAABBCCDD11223344ULL;
  EXPECT_EQ(make64(lo32(v), hi32(v)), v);
  EXPECT_EQ(lo32(v), 0x11223344u);
  EXPECT_EQ(hi32(v), 0xAABBCCDDu);
}

TEST(BitUtil, Tf32DropsLowMantissaBits) {
  const f32 x = 1.0f + 0x1.0p-20f;  // sits entirely in the dropped bits
  EXPECT_EQ(to_tf32(x), 1.0f);
  // Values representable in 10 mantissa bits are unchanged.
  EXPECT_EQ(to_tf32(1.5f), 1.5f);
  EXPECT_EQ(to_tf32(-0.75f), -0.75f);
  EXPECT_EQ(to_tf32(0.0f), 0.0f);
}

TEST(BitUtil, Tf32RoundsToNearest) {
  // 1 + 1024.5 ulp(tf32) should round up to 1 + 1025 units? Verify
  // monotonicity and closeness instead of exact ties.
  const f32 x = 1.0f + 0x1.8p-11f;  // halfway+ between two tf32 values
  const f32 t = to_tf32(x);
  EXPECT_NEAR(t, x, 0x1.0p-11f);
}

// ----------------------------------------------------------------- stats --

TEST(Stats, RunningStatsMatchesClosedForm) {
  stats::RunningStats rs;
  for (f64 v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(Stats, MergeMatchesSequentialAccumulation) {
  // Shard-merge semantics: accumulating [0,20) in one pass must equal
  // accumulating two halves separately and merging.
  stats::RunningStats sequential, left, right;
  for (int i = 0; i < 20; ++i) {
    const f64 x = static_cast<f64>(i * i) - 7.5;
    sequential.add(x);
    (i < 9 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-6);
  EXPECT_EQ(left.min(), sequential.min());
  EXPECT_EQ(left.max(), sequential.max());
}

TEST(Stats, MergeWithEmptySidesIsIdentity) {
  stats::RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_NEAR(stats.mean(), 2.0, 1e-12);

  stats::RunningStats target;
  target.merge(stats);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_NEAR(target.mean(), 2.0, 1e-12);
  EXPECT_EQ(target.min(), 1.0);
  EXPECT_EQ(target.max(), 3.0);
}

TEST(Stats, WilsonIntervalContainsPointEstimate) {
  const auto ci = stats::wilson_interval(30, 100);
  EXPECT_LT(ci.lo, 0.30);
  EXPECT_GT(ci.hi, 0.30);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.hi, 1.0);
}

TEST(Stats, WilsonBehavesAtExtremes) {
  const auto zero = stats::wilson_interval(0, 100);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.05);

  const auto one = stats::wilson_interval(100, 100);
  EXPECT_NEAR(one.hi, 1.0, 1e-12);
  EXPECT_LT(one.lo, 1.0);
  EXPECT_GT(one.lo, 0.95);
}

TEST(Stats, WaldNarrowerWithMoreTrials) {
  const auto small = stats::wald_interval(10, 100);
  const auto large = stats::wald_interval(1000, 10000);
  EXPECT_LT(large.half_width(), small.half_width());
}

TEST(Stats, SampleSizePlannerMatchesLeveugle) {
  // Classic result: large population, 95% confidence, e=3.1% -> ~1000.
  const std::size_t n = stats::required_sample_size(1ULL << 40, 0.031);
  EXPECT_NEAR(static_cast<double>(n), 1000.0, 10.0);
  // e=2.2% -> ~2000.
  const std::size_t n2 = stats::required_sample_size(1ULL << 40, 0.0219);
  EXPECT_NEAR(static_cast<double>(n2), 2000.0, 25.0);
}

TEST(Stats, SampleSizeCappedByPopulation) {
  EXPECT_LE(stats::required_sample_size(50, 0.01), 50u);
}

TEST(Stats, Percentile) {
  std::vector<f64> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(stats::percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(values, 100), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(values, 50), 5.5);
}

TEST(Stats, PercentileClampsOutOfRangePct) {
  // Callers passing a fraction (0.5 for the median) or an overshoot (150)
  // get the nearest defined percentile, never an out-of-bounds read.
  std::vector<f64> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::percentile(values, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(values, 150.0), 4.0);
}

TEST(Stats, SampleSizeDegenerateProportionIsClamped) {
  // p of exactly 0 or 1 used to divide by zero in the Leveugle denominator;
  // the planner clamps p into [eps, 1-eps] and returns a sane positive n.
  const std::size_t at_zero =
      stats::required_sample_size(1ULL << 30, 0.01, 0.95, 0.0);
  const std::size_t at_one =
      stats::required_sample_size(1ULL << 30, 0.01, 0.95, 1.0);
  EXPECT_GT(at_zero, 0u);
  EXPECT_EQ(at_zero, at_one);  // symmetric clamp: p(1-p) identical
  EXPECT_EQ(at_zero, stats::required_sample_size(1ULL << 30, 0.01, 0.95,
                                                 stats::kPlannerEps));
}

TEST(Stats, ZForConfidenceAnswersArbitraryLevels) {
  // The canonical campaign levels keep their historical 4-decimal values...
  EXPECT_DOUBLE_EQ(stats::z_for_confidence(0.90), 1.6449);
  EXPECT_DOUBLE_EQ(stats::z_for_confidence(0.95), 1.9600);
  EXPECT_DOUBLE_EQ(stats::z_for_confidence(0.99), 2.5758);
  // ...while any other level in (0, 1) goes through the inverse normal CDF
  // instead of being silently coerced to 95%.
  EXPECT_NEAR(stats::z_for_confidence(0.80), 1.2816, 1e-3);
  EXPECT_NEAR(stats::z_for_confidence(0.999), 3.2905, 1e-3);
  // Nonsense levels are rejected with NaN (poisoning downstream intervals),
  // including the classic percent-instead-of-fraction mistake.
  EXPECT_TRUE(std::isnan(stats::z_for_confidence(0.0)));
  EXPECT_TRUE(std::isnan(stats::z_for_confidence(1.0)));
  EXPECT_TRUE(std::isnan(stats::z_for_confidence(-0.5)));
  EXPECT_TRUE(std::isnan(stats::z_for_confidence(95.0)));
}

TEST(Stats, IntervalsClampImpossibleSuccessCounts) {
  // successes > trials (a caller bug) degrades to the p = 1 interval rather
  // than a NaN CI that would wedge the stopping rule forever.
  const auto wilson = stats::wilson_interval(150, 100);
  const auto wilson_capped = stats::wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(wilson.lo, wilson_capped.lo);
  EXPECT_DOUBLE_EQ(wilson.hi, wilson_capped.hi);
  const auto wald = stats::wald_interval(150, 100);
  const auto wald_capped = stats::wald_interval(100, 100);
  EXPECT_DOUBLE_EQ(wald.lo, wald_capped.lo);
  EXPECT_DOUBLE_EQ(wald.hi, wald_capped.hi);
}

TEST(Stats, ApportionSumsExactlyAndBreaksTiesTowardLowIndex) {
  EXPECT_EQ(stats::apportion({0.5, 0.3, 0.2}, 100),
            (std::vector<u64>{50, 30, 20}));
  // Equal remainders: the extra unit goes to the lowest index, making the
  // allocation a pure function of (weights, total) — no tie RNG.
  EXPECT_EQ(stats::apportion({0.5, 0.5}, 1), (std::vector<u64>{1, 0}));
  EXPECT_EQ(stats::apportion({1.0, 1.0, 1.0}, 7),
            (std::vector<u64>{3, 2, 2}));
  const auto shares = stats::apportion({0.1234, 0.00001, 0.9, 0.31}, 97);
  u64 sum = 0;
  for (u64 share : shares) sum += share;
  EXPECT_EQ(sum, 97u);
}

TEST(Stats, NeymanFavorsHighSpreadStrata) {
  // Same population weight, but stratum 0 has p~0.5 (max Bernoulli spread)
  // and stratum 1 p~0.02: Neyman allocates stratum 0 the larger share.
  const auto weights = stats::neyman_weights({0.5, 0.5}, {50, 2}, {100, 100});
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
}

TEST(Stats, PoststratifiedMatchesPooledUnderProportionalSampling) {
  // With sampling proportional to the stratum weights, post-stratification
  // reduces to the pooled estimate.
  const std::vector<stats::StratumCount> strata = {{0.5, 10, 100},
                                                   {0.5, 30, 100}};
  EXPECT_NEAR(stats::poststratified_rate(strata), 0.2, 1e-12);
  const auto ci = stats::poststratified_interval(strata);
  EXPECT_LT(ci.lo, 0.2);
  EXPECT_GT(ci.hi, 0.2);
  // Unobserved strata drop out via weight renormalization instead of
  // dragging the estimate toward zero.
  const std::vector<stats::StratumCount> partial = {{0.25, 10, 100},
                                                    {0.75, 0, 0}};
  EXPECT_NEAR(stats::poststratified_rate(partial), 0.1, 1e-12);
}

// ----------------------------------------------------------------- table --

TEST(Table, AsciiAlignsColumns) {
  Table table("T");
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("| name   | value |"), std::string::npos);
  EXPECT_NE(ascii.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table;
  table.set_header({"a", "b"});
  table.add_row({"has,comma", "has\"quote"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FormattersRound) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(Table, ShortRowsArePadded) {
  Table table;
  table.set_header({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.to_ascii().find("only"), std::string::npos);
}

// ------------------------------------------------------------- histogram --

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to bin 0
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2.0);
  EXPECT_EQ(h.count(9), 2.0);
  EXPECT_EQ(h.total(), 4.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, NanSamplesAreDroppedNotBinned) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""), 2.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1.0);    // the NaN never entered a bin
  EXPECT_EQ(h.dropped(), 2.0);  // but its weight is accounted for
  EXPECT_EQ(h.count(5), 1.0);
}

TEST(Histogram, DegenerateRangeCollectsEverythingInBinZero) {
  // lo == hi used to divide by a zero span (UB, then an OOB bin index).
  Histogram h(3.0, 3.0, 4);
  h.add(3.0);
  h.add(-1e300);
  h.add(1e300);
  EXPECT_EQ(h.count(0), 3.0);
  EXPECT_EQ(h.total(), 3.0);
}

TEST(Histogram, InfinitiesAndHugeValuesClampToEdgeBins) {
  // Values far outside [lo, hi) used to overflow the f64->size_t cast
  // before the index clamp could run.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<f64>::infinity());
  h.add(-std::numeric_limits<f64>::infinity());
  h.add(1e300);
  h.add(-1e300);
  EXPECT_EQ(h.count(0), 2.0);
  EXPECT_EQ(h.count(9), 2.0);
  EXPECT_EQ(h.total(), 4.0);
}

TEST(Histogram, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  const std::string out = h.to_ascii(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

// ------------------------------------------------------------ threadpool --

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(1000, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelForPassesIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](std::size_t i) { hits[i] = static_cast<int>(i); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i], i);
}

TEST(ThreadPool, WaitIdleWithNoWorkReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(100, [&](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ThrowingJobRethrownFromWaitIdle) {
  // A throwing job used to escape worker_loop (std::terminate) and skip the
  // in_flight_ decrement, deadlocking wait_idle() forever.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&ran, i] {
      ++ran;
      if (i == 3) throw std::runtime_error("job 3 failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the rest of the batch still drained
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i % 16 == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterAJobThrew) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("once"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception slot was consumed; the pool keeps working.
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace gfi
