// Execution-path equivalence tests for the dual clean/instrumented engine:
// the clean path must be bit-identical to the instrumented path with no
// hooks, concurrent launches must safely share one Program's decode cache,
// the mid-launch downgrade must not perturb results, and the hook contract
// (invocation order, launch_end on every exit path) is pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "sassim/defuse.h"
#include "sassim/profiler.h"
#include "sassim/tracer.h"
#include "sim_test_util.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::LaunchOptions;
using sim::LaunchResult;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

/// Everything a launch can externally produce, for bit-exact comparison.
struct RunOutput {
  LaunchResult result;
  sim::GlobalMemory::Snapshot memory;
};

bool same_regs(const sim::RegList& a, const sim::RegList& b) {
  if (a.count != b.count) return false;
  for (int i = 0; i < a.count; ++i) {
    if (a.regs[i] != b.regs[i]) return false;
  }
  return true;
}

bool identical(const RunOutput& a, const RunOutput& b) {
  return a.result.trap.kind == b.result.trap.kind &&
         a.result.trap.pc == b.result.trap.pc &&
         a.result.dyn_warp_instrs == b.result.dyn_warp_instrs &&
         a.result.dyn_thread_instrs == b.result.dyn_thread_instrs &&
         a.result.cycles == b.result.cycles &&
         a.result.ecc.corrected_sbe == b.result.ecc.corrected_sbe &&
         a.result.ecc.detected_dbe == b.result.ecc.detected_dbe &&
         a.result.ecc.silent_corrupted == b.result.ecc.silent_corrupted &&
         a.memory.brk == b.memory.brk && a.memory.data == b.memory.data;
}

/// Runs `workload_name` on a fresh device and returns the full output.
RunOutput run_workload(const std::string& workload_name,
                       const sim::Program* shared_program,
                       const LaunchOptions& options) {
  auto workload = wl::make_workload(workload_name);
  EXPECT_NE(workload, nullptr) << workload_name;
  Device device(arch::toy());
  auto spec = workload->setup(device);
  EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
  const sim::Program& program =
      shared_program ? *shared_program : workload->program();
  auto launch = device.launch(program, spec.value().grid, spec.value().block,
                              spec.value().params, options);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();
  return RunOutput{launch.value(), device.snapshot()};
}

// Workloads with guards, divergence, loops, atomics, and FP — the shapes
// where the clean path's single guard-mask computation could diverge from
// the instrumented path's if either were wrong.
const char* const kPathWorkloads[] = {"vecadd", "scan", "reduce_u32", "spmv"};

TEST(ExecPaths, CleanMatchesForcedInstrumentedBitExact) {
  for (const char* name : kPathWorkloads) {
    LaunchOptions clean;
    LaunchOptions forced;
    forced.force_instrumented = true;
    const RunOutput a = run_workload(name, nullptr, clean);
    const RunOutput b = run_workload(name, nullptr, forced);
    EXPECT_TRUE(identical(a, b)) << name;
  }
}

TEST(ExecPaths, EmptyHookVectorTakesSameResultsAsInstrumented) {
  // No hooks and hooks-that-all-finished must agree with force_instrumented
  // on every counter the paper's experiments read.
  for (const char* name : kPathWorkloads) {
    LaunchOptions clean;
    const RunOutput a = run_workload(name, nullptr, clean);

    sim::TracerHook tracer(/*max_entries=*/4);
    tracer.stop_after(0);  // done_observing after the first instruction
    LaunchOptions downgrading;
    downgrading.hooks.push_back(&tracer);
    const RunOutput c = run_workload(name, nullptr, downgrading);
    EXPECT_TRUE(identical(a, c)) << name << " (mid-launch downgrade)";
  }
}

TEST(ExecPaths, ConcurrentLaunchesShareOneDecodeCache) {
  // One *undecoded* Program shared by many threads: the first decode races,
  // exactly as concurrent campaign workers race on a workload's kernel.
  auto workload = wl::make_workload("scan");
  ASSERT_NE(workload, nullptr);
  const sim::Program shared = workload->program();  // copy: fresh cache

  LaunchOptions clean;
  const RunOutput reference = run_workload("scan", &shared, clean);

  constexpr int kThreads = 8;
  std::vector<RunOutput> outputs(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        LaunchOptions options;
        options.force_instrumented = (t % 2) == 1;  // mix both paths
        outputs[t] = run_workload("scan", &shared, options);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(identical(reference, outputs[t])) << "thread " << t;
  }
}

TEST(ExecPaths, NativeProfileMatchesProfilerHook) {
  for (const char* name : kPathWorkloads) {
    sim::Profile native;
    LaunchOptions clean;
    clean.profile = &native;
    (void)run_workload(name, nullptr, clean);

    sim::ProfilerHook hook;
    LaunchOptions instrumented;
    instrumented.hooks.push_back(&hook);
    (void)run_workload(name, nullptr, instrumented);

    const sim::Profile& via_hook = hook.profile();
    EXPECT_EQ(native.total_warp_instrs, via_hook.total_warp_instrs) << name;
    EXPECT_EQ(native.total_thread_instrs, via_hook.total_thread_instrs)
        << name;
    EXPECT_EQ(native.warp_instrs_by_opcode, via_hook.warp_instrs_by_opcode)
        << name;
    EXPECT_EQ(native.warp_instrs_by_group, via_hook.warp_instrs_by_group)
        << name;
    EXPECT_EQ(native.thread_instrs_by_group, via_hook.thread_instrs_by_group)
        << name;
  }
}

/// Records the exact callback sequence, tagged with this hook's id, into a
/// log shared by all hooks of a launch.
class OrderRecordingHook final : public sim::InstrumentHook {
 public:
  OrderRecordingHook(std::vector<std::string>* log, std::string id)
      : log_(log), id_(std::move(id)) {}

  void on_launch_begin(const sim::Program&) override {
    log_->push_back(id_ + ":begin");
  }
  void on_launch_end() override { log_->push_back(id_ + ":end"); }
  void on_before_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index < 2) log_->push_back(id_ + ":before");
  }
  void on_after_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index < 2) log_->push_back(id_ + ":after");
  }

 private:
  std::vector<std::string>* log_;
  std::string id_;
};

TEST(ExecPaths, HookInvocationOrderIsPinned) {
  // Two hooks, first two dynamic instructions: begin in registration order,
  // then per instruction all on_before in order followed by all on_after in
  // order, and finally end in registration order.
  std::vector<std::string> log;
  OrderRecordingHook first(&log, "a");
  OrderRecordingHook second(&log, "b");
  LaunchOptions options;
  options.hooks.push_back(&first);
  options.hooks.push_back(&second);
  (void)sim_test::run_lane_kernel(
      [](KernelBuilder& b) { b.mov_u32(10, Operand::imm_u(7)); }, options);
  const std::vector<std::string> expected = {
      "a:begin", "b:begin",                        // launch start
      "a:before", "b:before", "a:after", "b:after",  // dyn 0
      "a:before", "b:before", "a:after", "b:after",  // dyn 1
      "a:end", "b:end",                            // launch end
  };
  EXPECT_EQ(log, expected);
}

/// Requests a trap on the first instruction it sees.
class TrapOnFirstHook final : public sim::InstrumentHook {
 public:
  void on_before_instr(sim::InstrContext& ctx) override {
    ctx.requested_trap = sim::TrapKind::kEccDoubleBit;
  }
};

TEST(ExecPaths, LaunchEndFiresOnTrapExit) {
  // The RAII launch scope must pair begin/end even when the launch aborts.
  std::vector<std::string> log;
  OrderRecordingHook recorder(&log, "r");
  TrapOnFirstHook trapper;
  LaunchOptions options;
  options.hooks.push_back(&recorder);
  options.hooks.push_back(&trapper);

  KernelBuilder b("trap_path");
  b.mov_u32(10, Operand::imm_u(1));
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {{0}}, options);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kEccDoubleBit);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), "r:begin");
  EXPECT_EQ(log.back(), "r:end");
  EXPECT_EQ(std::count(log.begin(), log.end(), "r:end"), 1);
}

TEST(ExecPaths, DecodedProgramAgreesWithInstructionStream) {
  auto workload = wl::make_workload("reduce_u32");
  ASSERT_NE(workload, nullptr);
  const sim::Program& program = workload->program();
  const sim::DecodedProgram& dec = program.decoded();
  ASSERT_EQ(dec.size(), program.size());
  // The cache is built once: repeated calls return the same object.
  EXPECT_EQ(&program.decoded(), &dec);
  for (u32 pc = 0; pc < program.size(); ++pc) {
    const sim::Instr& instr = program.at(pc);
    const sim::DecodedInstr& decoded = dec.at(pc);
    EXPECT_EQ(decoded.op, instr.op) << "pc " << pc;
    EXPECT_EQ(decoded.group, sim::instr_group(instr)) << "pc " << pc;
    EXPECT_EQ(dec.guarded(pc), sim::is_guarded(instr)) << "pc " << pc;
    const sim::DefUse expected = sim::def_use(instr);
    EXPECT_TRUE(same_regs(dec.def_use(pc).src_regs, expected.src_regs))
        << "pc " << pc;
    EXPECT_TRUE(same_regs(dec.def_use(pc).dst_regs, expected.dst_regs))
        << "pc " << pc;
  }
  // Copying a Program resets the cache on the copy, not the original.
  sim::Program copy = program;
  EXPECT_NE(&copy.decoded(), &dec);
  EXPECT_EQ(&program.decoded(), &dec);
}

}  // namespace
}  // namespace gfi
