// Execution-path equivalence tests for the tiered engine: the threaded and
// clean tiers must be bit-identical to the instrumented tier, concurrent
// launches must safely share one Program's decode cache (lowering included),
// the mid-launch downgrade must land on the threaded tier without perturbing
// results, pending faults must route the threaded tier onto the checked
// paths, and the hook contract (invocation order, launch_end on every exit
// path) is pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "sassim/defuse.h"
#include "sassim/profiler.h"
#include "sassim/tracer.h"
#include "sim_test_util.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

using sim::Device;
using gfi::Dim3;
using sim::KernelBuilder;
using sim::LaunchOptions;
using sim::LaunchResult;
using sim::Operand;
using sim::TrapKind;
using sim_test::must;

/// Everything a launch can externally produce, for bit-exact comparison.
struct RunOutput {
  LaunchResult result;
  sim::GlobalMemory::Snapshot memory;
};

bool same_regs(const sim::RegList& a, const sim::RegList& b) {
  if (a.count != b.count) return false;
  for (int i = 0; i < a.count; ++i) {
    if (a.regs[i] != b.regs[i]) return false;
  }
  return true;
}

bool identical(const RunOutput& a, const RunOutput& b) {
  return a.result.trap.kind == b.result.trap.kind &&
         a.result.trap.pc == b.result.trap.pc &&
         a.result.dyn_warp_instrs == b.result.dyn_warp_instrs &&
         a.result.dyn_thread_instrs == b.result.dyn_thread_instrs &&
         a.result.cycles == b.result.cycles &&
         a.result.ecc.corrected_sbe == b.result.ecc.corrected_sbe &&
         a.result.ecc.detected_dbe == b.result.ecc.detected_dbe &&
         a.result.ecc.silent_corrupted == b.result.ecc.silent_corrupted &&
         a.memory.brk == b.memory.brk && a.memory.data == b.memory.data;
}

/// Runs `workload_name` on a fresh device and returns the full output.
RunOutput run_workload(const std::string& workload_name,
                       const sim::Program* shared_program,
                       const LaunchOptions& options) {
  auto workload = wl::make_workload(workload_name);
  EXPECT_NE(workload, nullptr) << workload_name;
  Device device(arch::toy());
  auto spec = workload->setup(device);
  EXPECT_TRUE(spec.is_ok()) << spec.status().to_string();
  const sim::Program& program =
      shared_program ? *shared_program : workload->program();
  auto launch = device.launch(program, spec.value().grid, spec.value().block,
                              spec.value().params, options);
  EXPECT_TRUE(launch.is_ok()) << launch.status().to_string();
  return RunOutput{launch.value(), device.snapshot()};
}

// Workloads with guards, divergence, loops, atomics, and FP — the shapes
// where the clean path's single guard-mask computation could diverge from
// the instrumented path's if either were wrong.
const char* const kPathWorkloads[] = {"vecadd", "scan", "reduce_u32", "spmv"};

TEST(ExecPaths, CleanMatchesForcedInstrumentedBitExact) {
  for (const char* name : kPathWorkloads) {
    LaunchOptions clean;
    clean.engine = sim::EngineTier::kClean;
    LaunchOptions forced;
    forced.engine = sim::EngineTier::kInstrumented;
    const RunOutput a = run_workload(name, nullptr, clean);
    const RunOutput b = run_workload(name, nullptr, forced);
    EXPECT_TRUE(identical(a, b)) << name;
    EXPECT_EQ(a.result.tier_used, sim::EngineTier::kClean) << name;
    EXPECT_EQ(b.result.tier_used, sim::EngineTier::kInstrumented) << name;
  }
}

TEST(ExecPaths, AllTiersBitIdenticalOnEveryWorkload) {
  // The acceptance bar for the threaded tier: every built-in workload —
  // fusion-heavy gemm included — produces byte-identical memory and
  // identical counters on threaded, clean, and instrumented execution.
  for (const std::string& name : wl::workload_names()) {
    LaunchOptions instrumented;
    instrumented.engine = sim::EngineTier::kInstrumented;
    const RunOutput reference = run_workload(name, nullptr, instrumented);
    for (const sim::EngineTier tier :
         {sim::EngineTier::kAuto, sim::EngineTier::kClean,
          sim::EngineTier::kThreaded}) {
      LaunchOptions options;
      options.engine = tier;
      const RunOutput out = run_workload(name, nullptr, options);
      EXPECT_TRUE(identical(reference, out))
          << name << " tier=" << sim::engine_tier_name(tier);
      if (tier != sim::EngineTier::kClean) {
        // kAuto resolves to threaded on a hook-free launch.
        EXPECT_EQ(out.result.tier_used, sim::EngineTier::kThreaded) << name;
      }
      EXPECT_FALSE(out.result.downgraded) << name;
    }
  }
}

TEST(ExecPaths, PendingFaultRoutesThreadedTierOntoCheckedPaths) {
  // An injected (not yet consumed) fault disables the unchecked row copies:
  // the threaded tier must take the fault-aware generic path and classify
  // the fault exactly like the other tiers, ECC counters included.
  auto workload = wl::make_workload("vecadd");
  ASSERT_NE(workload, nullptr);
  std::vector<RunOutput> outputs;
  for (const sim::EngineTier tier :
       {sim::EngineTier::kInstrumented, sim::EngineTier::kClean,
        sim::EngineTier::kThreaded}) {
    Device device(arch::toy());
    auto spec = workload->setup(device);
    ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
    device.memory().inject_fault(sim::GlobalMemory::kBaseAddress,
                                 /*flip_mask=*/1u << 3);
    LaunchOptions options;
    options.engine = tier;
    auto launch = device.launch(workload->program(), spec.value().grid,
                                spec.value().block, spec.value().params,
                                options);
    ASSERT_TRUE(launch.is_ok()) << launch.status().to_string();
    outputs.push_back(RunOutput{launch.value(), device.snapshot()});
  }
  for (size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_TRUE(identical(outputs[0], outputs[i])) << "tier index " << i;
  }
}

TEST(ExecPaths, EmptyHookVectorTakesSameResultsAsInstrumented) {
  // No hooks and hooks-that-all-finished must agree on every counter the
  // paper's experiments read, whichever tier the remainder runs on.
  for (const char* name : kPathWorkloads) {
    LaunchOptions clean;
    const RunOutput a = run_workload(name, nullptr, clean);

    sim::TracerHook tracer(/*max_entries=*/4);
    tracer.stop_after(0);  // done_observing after the first instruction
    LaunchOptions downgrading;
    downgrading.hooks.push_back(&tracer);
    const RunOutput c = run_workload(name, nullptr, downgrading);
    EXPECT_TRUE(identical(a, c)) << name << " (mid-launch downgrade)";
    // The downgrade must land on the threaded tier (fastest correct choice)
    // and report itself.
    EXPECT_TRUE(c.result.downgraded) << name;
    EXPECT_EQ(c.result.tier_used, sim::EngineTier::kThreaded) << name;

    // Pinning kClean keeps the downgrade but lands on the templated path.
    sim::TracerHook tracer2(/*max_entries=*/4);
    tracer2.stop_after(0);
    LaunchOptions pinned;
    pinned.hooks.push_back(&tracer2);
    pinned.engine = sim::EngineTier::kClean;
    const RunOutput d = run_workload(name, nullptr, pinned);
    EXPECT_TRUE(identical(a, d)) << name << " (downgrade into clean)";
    EXPECT_TRUE(d.result.downgraded) << name;
    EXPECT_EQ(d.result.tier_used, sim::EngineTier::kClean) << name;

    // Pinning kInstrumented suppresses the downgrade entirely.
    sim::TracerHook tracer3(/*max_entries=*/4);
    tracer3.stop_after(0);
    LaunchOptions no_downgrade;
    no_downgrade.hooks.push_back(&tracer3);
    no_downgrade.engine = sim::EngineTier::kInstrumented;
    const RunOutput e = run_workload(name, nullptr, no_downgrade);
    EXPECT_TRUE(identical(a, e)) << name << " (downgrade suppressed)";
    EXPECT_FALSE(e.result.downgraded) << name;
    EXPECT_EQ(e.result.tier_used, sim::EngineTier::kInstrumented) << name;
  }
}

TEST(ExecPaths, ConcurrentLaunchesShareOneDecodeCache) {
  // One *undecoded* Program shared by many threads: the first decode races,
  // exactly as concurrent campaign workers race on a workload's kernel.
  auto workload = wl::make_workload("scan");
  ASSERT_NE(workload, nullptr);
  const sim::Program shared = workload->program();  // copy: fresh cache

  LaunchOptions clean;
  const RunOutput reference = run_workload("scan", &shared, clean);

  constexpr int kThreads = 8;
  std::vector<RunOutput> outputs(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        LaunchOptions options;
        // Mix all three tiers so the racing first decode (lowering and
        // fusion included) serves every consumer.
        options.engine = (t % 3 == 0)   ? sim::EngineTier::kThreaded
                         : (t % 3 == 1) ? sim::EngineTier::kClean
                                        : sim::EngineTier::kInstrumented;
        outputs[t] = run_workload("scan", &shared, options);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(identical(reference, outputs[t])) << "thread " << t;
  }
}

TEST(ExecPaths, NativeProfileMatchesProfilerHook) {
  // Profile-only launches must stay on the fastest tier — and the threaded
  // tier's per-opcode counts must match ProfilerHook exactly, fused
  // superinstructions included (gemm fuses IMAD.WIDE+LDG and ISETP+BRA
  // pairs; each fused half must still count as its own opcode).
  for (const std::string& name : wl::workload_names()) {
    sim::Profile native;
    LaunchOptions clean;
    clean.profile = &native;
    clean.engine = sim::EngineTier::kThreaded;
    const RunOutput threaded_run = run_workload(name, nullptr, clean);
    EXPECT_EQ(threaded_run.result.tier_used, sim::EngineTier::kThreaded)
        << name;

    sim::ProfilerHook hook;
    LaunchOptions instrumented;
    instrumented.hooks.push_back(&hook);
    (void)run_workload(name, nullptr, instrumented);

    const sim::Profile& via_hook = hook.profile();
    EXPECT_EQ(native.total_warp_instrs, via_hook.total_warp_instrs) << name;
    EXPECT_EQ(native.total_thread_instrs, via_hook.total_thread_instrs)
        << name;
    EXPECT_EQ(native.warp_instrs_by_opcode, via_hook.warp_instrs_by_opcode)
        << name;
    EXPECT_EQ(native.warp_instrs_by_group, via_hook.warp_instrs_by_group)
        << name;
    EXPECT_EQ(native.thread_instrs_by_group, via_hook.thread_instrs_by_group)
        << name;
  }
}

/// Records the exact callback sequence, tagged with this hook's id, into a
/// log shared by all hooks of a launch.
class OrderRecordingHook final : public sim::InstrumentHook {
 public:
  OrderRecordingHook(std::vector<std::string>* log, std::string id)
      : log_(log), id_(std::move(id)) {}

  void on_launch_begin(const sim::Program&) override {
    log_->push_back(id_ + ":begin");
  }
  void on_launch_end() override { log_->push_back(id_ + ":end"); }
  void on_before_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index < 2) log_->push_back(id_ + ":before");
  }
  void on_after_instr(sim::InstrContext& ctx) override {
    if (ctx.dyn_index < 2) log_->push_back(id_ + ":after");
  }

 private:
  std::vector<std::string>* log_;
  std::string id_;
};

TEST(ExecPaths, HookInvocationOrderIsPinned) {
  // Two hooks, first two dynamic instructions: begin in registration order,
  // then per instruction all on_before in order followed by all on_after in
  // order, and finally end in registration order.
  std::vector<std::string> log;
  OrderRecordingHook first(&log, "a");
  OrderRecordingHook second(&log, "b");
  LaunchOptions options;
  options.hooks.push_back(&first);
  options.hooks.push_back(&second);
  (void)sim_test::run_lane_kernel(
      [](KernelBuilder& b) { b.mov_u32(10, Operand::imm_u(7)); }, options);
  const std::vector<std::string> expected = {
      "a:begin", "b:begin",                        // launch start
      "a:before", "b:before", "a:after", "b:after",  // dyn 0
      "a:before", "b:before", "a:after", "b:after",  // dyn 1
      "a:end", "b:end",                            // launch end
  };
  EXPECT_EQ(log, expected);
}

/// Requests a trap on the first instruction it sees.
class TrapOnFirstHook final : public sim::InstrumentHook {
 public:
  void on_before_instr(sim::InstrContext& ctx) override {
    ctx.requested_trap = sim::TrapKind::kEccDoubleBit;
  }
};

TEST(ExecPaths, LaunchEndFiresOnTrapExit) {
  // The RAII launch scope must pair begin/end even when the launch aborts.
  std::vector<std::string> log;
  OrderRecordingHook recorder(&log, "r");
  TrapOnFirstHook trapper;
  LaunchOptions options;
  options.hooks.push_back(&recorder);
  options.hooks.push_back(&trapper);

  KernelBuilder b("trap_path");
  b.mov_u32(10, Operand::imm_u(1));
  b.exit_();
  auto program = must(b);
  Device device(arch::toy());
  auto launch = device.launch(program, Dim3(1), Dim3(32), {{0}}, options);
  ASSERT_TRUE(launch.is_ok());
  EXPECT_EQ(launch.value().trap.kind, TrapKind::kEccDoubleBit);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), "r:begin");
  EXPECT_EQ(log.back(), "r:end");
  EXPECT_EQ(std::count(log.begin(), log.end(), "r:end"), 1);
}

TEST(ExecPaths, DecodedProgramAgreesWithInstructionStream) {
  auto workload = wl::make_workload("reduce_u32");
  ASSERT_NE(workload, nullptr);
  const sim::Program& program = workload->program();
  const sim::DecodedProgram& dec = program.decoded();
  ASSERT_EQ(dec.size(), program.size());
  // The cache is built once: repeated calls return the same object.
  EXPECT_EQ(&program.decoded(), &dec);
  for (u32 pc = 0; pc < program.size(); ++pc) {
    const sim::Instr& instr = program.at(pc);
    const sim::DecodedInstr& decoded = dec.at(pc);
    EXPECT_EQ(decoded.op, instr.op) << "pc " << pc;
    EXPECT_EQ(decoded.group, sim::instr_group(instr)) << "pc " << pc;
    EXPECT_EQ(dec.guarded(pc), sim::is_guarded(instr)) << "pc " << pc;
    const sim::DefUse expected = sim::def_use(instr);
    EXPECT_TRUE(same_regs(dec.def_use(pc).src_regs, expected.src_regs))
        << "pc " << pc;
    EXPECT_TRUE(same_regs(dec.def_use(pc).dst_regs, expected.dst_regs))
        << "pc " << pc;
  }
  // Copying a Program resets the cache on the copy, not the original.
  sim::Program copy = program;
  EXPECT_NE(&copy.decoded(), &dec);
  EXPECT_EQ(&program.decoded(), &dec);
}

}  // namespace
}  // namespace gfi
