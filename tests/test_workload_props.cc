// Workload property tests, parameterized across the whole suite:
// determinism of inputs/programs, profile stability, launch-spec sanity,
// and per-workload structural invariants.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "fi/campaign.h"
#include "sassim/profiler.h"
#include "workloads/workload.h"

namespace gfi {
namespace {

class WorkloadProps : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProps, ProgramIsIdenticalAcrossInstances) {
  auto a = wl::make_workload(GetParam());
  auto b = wl::make_workload(GetParam());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->program().size(), b->program().size());
  EXPECT_EQ(a->program().disassemble(), b->program().disassemble());
  EXPECT_EQ(a->program().num_regs(), b->program().num_regs());
  EXPECT_EQ(a->program().shared_bytes(), b->program().shared_bytes());
}

TEST_P(WorkloadProps, ProgramValidates) {
  auto workload = wl::make_workload(GetParam());
  EXPECT_TRUE(workload->program().validate().is_ok());
  EXPECT_GT(workload->program().num_regs(), 0);
  EXPECT_LE(workload->program().num_regs(), 64);  // occupancy-friendly
}

TEST_P(WorkloadProps, LaunchSpecSane) {
  auto workload = wl::make_workload(GetParam());
  sim::Device device(arch::a100());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok());
  EXPECT_GT(spec.value().grid.count(), 0u);
  EXPECT_GT(spec.value().block.count(), 0u);
  EXPECT_LE(spec.value().block.count(), 1024u);
  EXPECT_GE(spec.value().params.size(), workload->program().num_params());
  // Device memory was actually allocated.
  EXPECT_GT(device.memory().bytes_allocated(), 0u);
}

TEST_P(WorkloadProps, GoldenProfileIsDeterministic) {
  auto run = [&] {
    fi::CampaignConfig config;
    config.workload = GetParam();
    config.machine = arch::toy();
    auto golden = fi::Campaign::golden_run(config);
    EXPECT_TRUE(golden.is_ok()) << golden.status().to_string();
    return golden.value();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.dyn_instrs, b.dyn_instrs);
  EXPECT_EQ(a.cycles, b.cycles);
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    EXPECT_EQ(a.profile.warp_instrs_by_group[g],
              b.profile.warp_instrs_by_group[g]);
  }
}

TEST_P(WorkloadProps, CheckIsRepeatableAfterOneLaunch) {
  auto workload = wl::make_workload(GetParam());
  sim::Device device(arch::toy());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok());
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(launch.is_ok());
  ASSERT_TRUE(launch.value().ok());
  auto first = workload->check(device);
  auto second = workload->check(device);  // check() must not mutate state
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().result.passed(), second.value().result.passed());
  EXPECT_EQ(first.value().result.bitwise_equal,
            second.value().result.bitwise_equal);
}

TEST_P(WorkloadProps, DetectsDeliberateOutputCorruption) {
  // Flip one bit in the last parameter-addressed output region after the
  // launch: check() must notice (no workload may ignore its own output).
  auto workload = wl::make_workload(GetParam());
  sim::Device device(arch::toy());
  auto spec = workload->setup(device);
  ASSERT_TRUE(spec.is_ok());
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  ASSERT_TRUE(launch.value().ok());

  auto clean = workload->check(device);
  ASSERT_TRUE(clean.is_ok());
  ASSERT_TRUE(clean.value().result.bitwise_equal || workload->tolerance() > 0);

  // Corrupt high bits of every allocated word... too blunt; instead flip a
  // high bit in a sweep until the check notices. ECC is bypassed by writing
  // through the raw path (write clears the fault map).
  bool detected = false;
  const u64 base = sim::GlobalMemory::kBaseAddress;
  const u64 allocated = device.memory().bytes_allocated();
  for (u64 offset = 0; offset < allocated && !detected; offset += 64) {
    u32 word = 0;
    if (device.memory().read(base + offset, &word, 4) != sim::TrapKind::kNone)
      continue;
    const u32 corrupted = word ^ 0x40000000u;
    ASSERT_EQ(device.memory().write(base + offset, &corrupted, 4),
              sim::TrapKind::kNone);
    auto checked = workload->check(device);
    ASSERT_TRUE(checked.is_ok());
    if (!checked.value().result.passed()) detected = true;
    // Restore and continue scanning.
    ASSERT_EQ(device.memory().write(base + offset, &word, 4),
              sim::TrapKind::kNone);
  }
  EXPECT_TRUE(detected)
      << GetParam() << ": no corrupted word changed the check verdict";
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadProps,
                         ::testing::ValuesIn(wl::workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(WorkloadRegistry, MakeUnknownReturnsNull) {
  EXPECT_EQ(wl::make_workload("definitely_not_registered"), nullptr);
}

TEST(WorkloadRegistry, NamesSortedAndUnique) {
  auto names = wl::workload_names();
  EXPECT_GE(names.size(), 15u);
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(WorkloadRegistry, CustomRegistration) {
  wl::register_workload("custom_alias_vecadd",
                        [] { return wl::make_workload("vecadd"); });
  auto workload = wl::make_workload("custom_alias_vecadd");
  ASSERT_NE(workload, nullptr);
  EXPECT_EQ(workload->name(), "vecadd");
}

}  // namespace
}  // namespace gfi
