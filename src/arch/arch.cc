#include "arch/arch.h"

namespace gfi::arch {

sim::MachineConfig toy() {
  sim::MachineConfig config;
  config.name = "toy";
  config.num_sms = 2;
  config.max_warps_per_sm = 16;
  config.max_ctas_per_sm = 8;
  config.regfile_words_per_sm = 16384;
  config.shared_bytes_per_sm = 32768;
  config.issue_width = 2;
  config.global_mem_bytes = 256ULL << 20;
  config.l2_bytes = 1u << 20;
  config.mem_latency_cycles = 20;
  config.sm_clock_ghz = 1.0;
  return config;
}

sim::MachineConfig a100() {
  sim::MachineConfig config;
  config.name = "A100";
  config.num_sms = 108;
  config.max_warps_per_sm = 64;
  config.max_ctas_per_sm = 32;
  config.regfile_words_per_sm = 65536;  // 256 KiB per SM
  config.shared_bytes_per_sm = 164 * 1024;
  config.issue_width = 4;
  // The real device has 40 GB HBM2e; the simulated arena is capped so
  // campaigns stay memory-light. Workloads fit far below this.
  config.global_mem_bytes = 2ULL << 30;
  config.l2_bytes = 40u << 20;
  config.mem_latency_cycles = 44;  // HBM2e round-trip, in SM cycles (scaled)
  config.shared_latency_cycles = 8;
  config.sm_clock_ghz = 1.41;
  config.dram_ecc = ecc::EccMode::kSecded;
  config.rf_ecc = ecc::EccMode::kSecded;
  config.tensor_core_tf32 = true;
  return config;
}

sim::MachineConfig h100() {
  sim::MachineConfig config;
  config.name = "H100";
  config.num_sms = 132;
  config.max_warps_per_sm = 64;
  config.max_ctas_per_sm = 32;
  config.regfile_words_per_sm = 65536;  // 256 KiB per SM
  config.shared_bytes_per_sm = 228 * 1024;
  config.issue_width = 4;
  config.global_mem_bytes = 2ULL << 30;
  config.l2_bytes = 50u << 20;
  config.mem_latency_cycles = 36;  // HBM3 + larger L2: lower effective latency
  config.shared_latency_cycles = 7;
  config.sm_clock_ghz = 1.98;
  config.dram_ecc = ecc::EccMode::kSecded;
  config.rf_ecc = ecc::EccMode::kSecded;
  config.tensor_core_tf32 = true;
  // Hopper's FP64 pipeline is 2x Ampere's per SM; reflect it in latency.
  config.latencies.set(sim::Opcode::kHmma, 6);  // 4th-gen tensor core
  return config;
}

sim::MachineConfig config_for(GpuModel model) {
  switch (model) {
    case GpuModel::kToy:
      return toy();
    case GpuModel::kA100:
      return a100();
    case GpuModel::kH100:
      return h100();
  }
  return toy();
}

const char* model_name(GpuModel model) {
  switch (model) {
    case GpuModel::kToy:
      return "toy";
    case GpuModel::kA100:
      return "A100";
    case GpuModel::kH100:
      return "H100";
  }
  return "?";
}

std::vector<GpuModel> study_models() {
  return {GpuModel::kA100, GpuModel::kH100};
}

}  // namespace gfi::arch
