// Machine-model presets: NVIDIA Ampere A100 (GA100) and Hopper H100 (GH100),
// plus a tiny "toy" config for fast unit tests.
//
// Parameter sources: the A100 and H100 whitepapers (SM counts, register
// file, shared memory, L2, clocks) — scaled where noted so simulation stays
// laptop-tractable. Resilience-relevant parameters (ECC coverage, tensor
// core input rounding) follow the public architecture documentation.
#pragma once

#include <string>
#include <vector>

#include "sassim/machine_config.h"

namespace gfi::arch {

enum class GpuModel { kToy, kA100, kH100 };

/// 2-SM miniature GPU for unit tests (fast, same semantics).
sim::MachineConfig toy();

/// NVIDIA A100 (GA100, Ampere): 108 SMs, 1.41 GHz, 40 MB L2,
/// SECDED ECC on RF/L2/DRAM, 3rd-gen tensor cores (TF32 inputs).
sim::MachineConfig a100();

/// NVIDIA H100 (GH100, Hopper): 132 SMs, 1.98 GHz, 50 MB L2,
/// SECDED ECC on RF/L2/DRAM, 4th-gen tensor cores (TF32 inputs),
/// lower effective memory latency (HBM3 + larger L2).
sim::MachineConfig h100();

sim::MachineConfig config_for(GpuModel model);
const char* model_name(GpuModel model);

/// The two GPUs of the study, in reporting order.
std::vector<GpuModel> study_models();

}  // namespace gfi::arch
