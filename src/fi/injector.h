// The injector: an InstrumentHook that strikes exactly one fault at a
// pre-sampled dynamic site, replicating what NVBitFI's instrumentation does
// on real GPUs.
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "fi/fault_model.h"
#include "sassim/instrument.h"
#include "sassim/machine_config.h"

namespace gfi::fi {

/// A fully sampled fault site. `target_occurrence` counts eligible dynamic
/// warp instructions (those matching the mode/group) from 0; the injector
/// fires on the matching one.
struct FaultSite {
  FaultModel model;
  /// Group filter for instruction-targeted modes; kRf strikes at an
  /// absolute dynamic index regardless of group.
  std::optional<sim::InstrGroup> group;
  u64 target_occurrence = 0;
  u32 lane_sel = 0;   ///< resolved against the exec mask at strike time
  u32 bit_sel = 0;    ///< bit index within the target's bit width
  u32 bit_sel2 = 0;   ///< second bit for kDouble
  u16 reg_sel = 0;    ///< kRf: architected register to strike
  u64 random_value = 0;  ///< payload for kRandomValue

  [[nodiscard]] std::string to_string() const;
};

/// What the injector actually did (for classification and replay logs).
struct InjectionEffect {
  bool activated = false;         ///< the site was reached and struck
  bool corrected_by_ecc = false;  ///< RF ECC corrected the flip (no corruption)
  u64 struck_dyn_index = 0;       ///< dynamic index of the strike
  sim::Opcode struck_opcode = sim::Opcode::kNop;
  sim::InstrGroup struck_group = sim::InstrGroup::kControl;
  u32 struck_lane = 0;
};

class InjectorHook final : public sim::InstrumentHook {
 public:
  InjectorHook(const FaultSite& site, const sim::MachineConfig& config)
      : site_(site), config_(config) {}

  void on_before_instr(sim::InstrContext& ctx) override;
  void on_after_instr(sim::InstrContext& ctx) override;
  u64 transform_store_address(u64 addr, const sim::InstrContext& ctx,
                              u32 lane) override;

  /// One-shot: after the fault has fired (and any armed store-address
  /// strike has landed) the hook is inert for the rest of the launch, so
  /// the engine may downgrade to the clean execution path.
  [[nodiscard]] bool done_observing() const override {
    return fired_ && armed_store_dyn_ == ~0ULL;
  }

  [[nodiscard]] const InjectionEffect& effect() const { return effect_; }

  /// Picks the struck lane among the set bits of `exec_mask`. Public so the
  /// campaign's analytic pruning path can reproduce the exact lane a
  /// simulated strike would have hit.
  [[nodiscard]] static u32 pick_lane(u32 exec_mask, u32 lane_sel);

 private:
  [[nodiscard]] bool is_target(const sim::InstrContext& ctx) const;

  void strike_iov(sim::InstrContext& ctx);
  void strike_pred(sim::InstrContext& ctx);
  void strike_rf(sim::InstrContext& ctx);

  FaultSite site_;
  const sim::MachineConfig& config_;
  u64 eligible_seen_ = 0;
  bool fired_ = false;
  u64 armed_store_dyn_ = ~0ULL;  ///< dyn index whose store address to corrupt
  InjectionEffect effect_;
};

}  // namespace gfi::fi
