// Fault models: where a transient fault strikes (InjectionMode) and what it
// does to the bits (BitFlipModel). The mode/flip taxonomy follows SASSIFI
// (Hari et al., ISPASS'17) and NVBitFI (Tsai et al., DSN'21).
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "sassim/isa.h"

namespace gfi::fi {

/// Where the fault is injected.
enum class InjectionMode : u8 {
  kIov,     ///< instruction output value: corrupt the destination register
            ///< written by a dynamic instruction (SASSIFI IOV)
  kIoa,     ///< instruction output address: corrupt a store's effective
            ///< address (SASSIFI IOA)
  kPred,    ///< corrupt the predicate written by a SETP-class instruction
  kRf,      ///< random architected register bit at a random dynamic point
            ///< (SASSIFI RF mode); interacts with register-file ECC
  kMemory,  ///< flip bit(s) in an allocated global-memory word before launch;
            ///< observable behaviour governed by DRAM/L2 ECC
};

/// What the fault does to the target bits.
enum class BitFlipModel : u8 {
  kSingle,       ///< flip one random bit
  kDouble,       ///< flip two distinct random bits
  kRandomValue,  ///< replace the value with a random pattern
  kZeroValue,    ///< replace the value with zero
};

/// Whether the fault survives a relaunch of the same kernel. Irrelevant
/// without recovery (every injection launches once); with trap-and-retry
/// (recover/retry.h) it separates soft errors, which a relaunch clears,
/// from permanent defects, which re-assert on every attempt.
enum class FaultPersistence : u8 {
  kTransient,  ///< one-shot upset: the retry runs fault-free
  kStuckAt,    ///< permanent defect: re-injected identically on every retry
};

struct FaultModel {
  InjectionMode mode = InjectionMode::kIov;
  BitFlipModel flip = BitFlipModel::kSingle;
  FaultPersistence persistence = FaultPersistence::kTransient;
};

const char* to_string(InjectionMode mode);
const char* to_string(BitFlipModel flip);
const char* to_string(FaultPersistence persistence);

/// True when `group` can be targeted by `mode` (e.g. IOV needs a
/// register/predicate-writing group; IOA needs stores).
bool mode_targets_group(InjectionMode mode, sim::InstrGroup group);

}  // namespace gfi::fi
