// Resilient campaign supervisor: `gpufi run`.
//
// Orchestrates a pool of shard-worker subprocesses (one `gpufi campaign
// --shard=i/N --journal=...` per shard) and keeps a campaign alive through
// worker crashes, hangs, and IO failures:
//
//   * shard leases (fi/lease.h) with TTL: a supervisor restart — or a
//     second supervisor pointed at the same directory — takes over shards
//     whose leases have lapsed and resumes them from their journals
//     (work-stealing for stalled shards);
//   * bounded retry with exponential backoff + deterministic jitter
//     (common/backoff.h) for workers that exit nonzero or stop
//     heartbeating; resume-from-journal means no completed injection is
//     ever re-run;
//   * poison-injection quarantine: an injection index that repeatedly
//     kills its worker (detected as the lowest unjournaled index of a
//     crashed single-threaded shard) is, after `poison_threshold`
//     consecutive crashes, passed to the relaunched worker as
//     --quarantine=... and journaled as Outcome::kQuarantined instead of
//     wedging the shard forever;
//   * a journaled supervisor state file (`<dir>/supervisor.jsonl`) so
//     `gpufi run --resume` reconstructs the quarantine set and keeps the
//     final auto-merge bit-identical to an uninterrupted unsharded run.
//
// Bit-identity argument: a record's bytes are a pure function of
// (seed, global index, quarantine set) — scheduling, retries, takeovers,
// and resume order never enter record content, and the quarantine set is
// journaled before it is first used, so any interleaving of crashes and
// restarts converges to the same merged journal.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "fi/journal.h"

namespace gfi::fi {

struct SupervisorConfig {
  std::string exe;       ///< gpufi binary to exec for workers
  std::string workload;  ///< positional workload name for `campaign`
  /// Campaign flags passed through to every worker verbatim (fault model,
  /// seed, injections, arch, golden cache, ...). The supervisor appends
  /// --shard / --journal / --threads=1 / --heartbeat-ms / --quarantine.
  std::vector<std::string> worker_flags;
  std::string dir;  ///< campaign directory (journals, leases, state, logs)
  u32 shards = 4;
  u32 max_workers = 0;  ///< concurrent workers; 0 = shards
  /// Mirror of the worker-side campaign geometry, needed to reason about
  /// slices and completeness without parsing worker flags.
  u64 num_injections = 1000;
  u64 seed = 0x5eed;

  u64 lease_ttl_ms = 15000;  ///< lease validity; refreshed at ttl/3
  u64 poll_ms = 200;         ///< supervision loop period
  /// A running worker whose heartbeat sidecar has not been written for this
  /// long is presumed hung, SIGKILLed, and retried. 0 disables.
  u64 stall_timeout_ms = 30000;
  u64 worker_heartbeat_ms = 500;  ///< --heartbeat-ms passed to workers

  /// A shard is abandoned (kFailed) after this many consecutive worker
  /// deaths with zero journal progress. Progress resets the count.
  u32 max_shard_attempts = 6;
  /// Consecutive crashes pinned on the same injection index before that
  /// index is quarantined.
  u32 poison_threshold = 3;
  u64 backoff_base_ms = 500;
  u64 backoff_cap_ms = 10000;

  /// GFI_FAILPOINTS value for worker processes (chaos testing). Always set
  /// explicitly in the child environment — workers never inherit the
  /// supervisor's own failpoint spec, and "" strips the variable.
  std::string worker_failpoints;
  bool resume = false;  ///< accept an existing supervisor state file

  /// Unsharded mirror of the worker campaign (same workload, fault model,
  /// seed, size, and planner knobs; shard 0/1). Consulted only when
  /// `campaign.planner` is active: the supervisor is the one party that
  /// sees the full global record prefix, so it computes every planner
  /// decision itself (fi/planner.h) and publishes them to `<dir>/plan.jsonl`
  /// for the plan-following workers. It MUST match the flags the workers
  /// are launched with — worker journal headers are derived from it when a
  /// stop must be recorded in a journal the worker never got to write.
  CampaignConfig campaign;
};

struct SupervisorResult {
  u64 crashes = 0;       ///< worker exits with nonzero status or by signal
  u64 stall_kills = 0;   ///< workers SIGKILLed for stale heartbeats
  u64 takeovers = 0;     ///< expired foreign leases taken over
  u64 worker_launches = 0;
  std::vector<u64> quarantined;  ///< global indices quarantined (sorted)
  u32 shards_failed = 0;         ///< shards abandoned after max attempts
  /// Boundary where the sequential stopping rule halted the campaign
  /// (0 = the planner never stopped it and the full budget ran).
  u64 plan_stop = 0;
  /// Strict auto-merge of all shard journals; meaningful only when
  /// shards_failed == 0.
  MergedCampaign merged;
};

class Supervisor {
 public:
  /// Runs the campaign to completion (or to abandonment). Worker crashes,
  /// stalls, and IO failures are handled internally; an error return means
  /// the supervisor itself could not proceed (bad config, state-file
  /// conflict, lease corruption, or an injected supervisor fault).
  static Result<SupervisorResult> run(const SupervisorConfig& config);

  /// The shard journal path convention: `<dir>/shard-<i>.jsonl`.
  static std::string shard_journal_path(const std::string& dir, u32 shard);
  /// The supervisor state journal: `<dir>/supervisor.jsonl`.
  static std::string state_path(const std::string& dir);
  /// The published planner decisions: `<dir>/plan.jsonl`.
  static std::string plan_path(const std::string& dir);
};

}  // namespace gfi::fi
