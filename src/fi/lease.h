// Crash-safe shard leases with TTL.
//
// A lease is a single-line JSONL file next to a shard journal claiming
// "owner O is working this shard until expires_ms". Writes go through a
// temp file + rename, so a reader never sees a torn lease. The protocol:
//
//   * acquire: take the lease if it is absent, expired, or already ours
//     (by owner id); a live lease held by someone else is refused.
//   * refresh: the holder re-acquires periodically (well inside the TTL).
//   * release: the holder deletes the file when its shard is done/failed.
//
// A supervisor that dies without releasing leaves lease files behind —
// that is the point: once their TTLs lapse, a restarted supervisor (or a
// second one pointed at the same campaign dir) takes the stalled shards
// over and resumes them from their journals. Expiry uses wall-clock
// unix_now_ms(), the only cross-process clock two supervisors share; the
// TTL should therefore be generous (seconds, not milliseconds) relative
// to plausible clock skew.
#pragma once

#include <optional>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace gfi::fi {

struct Lease {
  std::string owner;   ///< supervisor identity (host:pid:nonce)
  u64 pid = 0;         ///< holder's pid (diagnostics only)
  u32 shard = 0;       ///< shard index this lease covers
  u64 expires_ms = 0;  ///< unix ms after which the lease is dead
};

/// Wall-clock unix time in milliseconds (the lease expiry clock).
u64 unix_now_ms();

/// The lease path for a shard journal: `<journal>.lease`.
std::string lease_path_for_journal(const std::string& journal_path);

/// Serialization (single line, no trailing newline).
std::string lease_line(const Lease& lease);
Result<Lease> parse_lease(const std::string& line);

/// Reads a lease file. kNotFound when absent; corrupt/torn files are
/// kInternal (treat as held — safer to wait out a TTL than to double-run).
Result<Lease> read_lease(const std::string& path);

/// Takes the lease if it is absent, expired at `now_ms`, or already held
/// by `lease.owner`; refuses (kFailedPrecondition, message names the live
/// holder) otherwise. Also the refresh operation: the holder re-acquires
/// with a new expires_ms. Atomic via temp + rename.
Status acquire_lease(const std::string& path, const Lease& lease, u64 now_ms);

/// Deletes the lease file if held by `owner` (missing file is OK; a live
/// foreign lease is kFailedPrecondition).
Status release_lease(const std::string& path, const std::string& owner);

}  // namespace gfi::fi
