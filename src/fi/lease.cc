#include "fi/lease.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/jsonl.h"

namespace gfi::fi {
namespace {

constexpr const char* kMagic = "gpufi-lease-v1";

Status write_lease_file(const std::string& path, const Lease& lease) {
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::internal("cannot create " + tmp + ": " +
                              std::strerror(errno));
    }
    out << lease_line(lease) << '\n';
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::internal("write to " + tmp + " failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::internal("cannot rename " + tmp + " to " + path + ": " +
                            ec.message());
  }
  return Status::ok();
}

}  // namespace

u64 unix_now_ms() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string lease_path_for_journal(const std::string& journal_path) {
  return journal_path + ".lease";
}

std::string lease_line(const Lease& lease) {
  std::string out = "{";
  jsonl::append_str(out, "lease", kMagic);
  jsonl::append_str(out, "owner", lease.owner);
  jsonl::append_u64(out, "pid", lease.pid);
  jsonl::append_u64(out, "shard", lease.shard);
  jsonl::append_u64(out, "expires_ms", lease.expires_ms);
  out += '}';
  return out;
}

Result<Lease> parse_lease(const std::string& line) {
  jsonl::Fields fields;
  if (!jsonl::parse_fields(line, &fields)) {
    return Status::internal("lease: not a JSON object");
  }
  if (jsonl::get_str(fields, "lease").value_or("") != kMagic) {
    return Status::internal("lease: wrong magic");
  }
  auto owner = jsonl::get_str(fields, "owner");
  auto pid = jsonl::get_u64(fields, "pid");
  auto shard = jsonl::get_u64(fields, "shard");
  auto expires = jsonl::get_u64(fields, "expires_ms");
  if (!owner || !pid || !shard || !expires) {
    return Status::internal("lease: missing required field");
  }
  Lease lease;
  lease.owner = *owner;
  lease.pid = *pid;
  lease.shard = static_cast<u32>(*shard);
  lease.expires_ms = *expires;
  return lease;
}

Result<Lease> read_lease(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::not_found("no lease at " + path);
  std::string line;
  std::getline(file, line);
  auto parsed = parse_lease(line);
  if (!parsed.is_ok()) {
    return Status::internal("lease " + path + " is corrupt: " +
                            parsed.status().message());
  }
  return parsed;
}

Status acquire_lease(const std::string& path, const Lease& lease,
                     u64 now_ms) {
  auto current = read_lease(path);
  if (current.is_ok()) {
    const Lease& held = current.value();
    if (held.owner != lease.owner && held.expires_ms > now_ms) {
      return Status::failed_precondition(
          "shard " + std::to_string(lease.shard) + " is leased by " +
          held.owner + " for another " +
          std::to_string(held.expires_ms - now_ms) + "ms");
    }
    // Expired or ours: fall through and (re)take it.
  } else if (current.status().code() == StatusCode::kInternal) {
    // Corrupt lease: a torn rename should be impossible, so treat the file
    // as hostile and refuse — the TTL path cannot save us without a
    // readable expiry, but an operator can delete the file.
    return current.status();
  }
  return write_lease_file(path, lease);
}

Status release_lease(const std::string& path, const std::string& owner) {
  auto current = read_lease(path);
  if (!current.is_ok()) {
    if (current.status().code() == StatusCode::kNotFound) return Status::ok();
    return current.status();
  }
  if (current.value().owner != owner &&
      current.value().expires_ms > unix_now_ms()) {
    return Status::failed_precondition(
        "lease " + path + " is held by " + current.value().owner +
        ", not " + owner);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::internal("cannot remove lease " + path + ": " +
                            ec.message());
  }
  return Status::ok();
}

}  // namespace gfi::fi
