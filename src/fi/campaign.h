// Two-phase fault-injection campaign (NVBitFI style):
//   Phase 1 — golden run with the profiler: dynamic instruction counts per
//             group, golden output, watchdog budget.
//   Phase 2 — N independent injection runs, each on a fresh simulated
//             device, fanned out over a host thread pool; every run strikes
//             exactly one fault at a uniformly sampled eligible site and is
//             classified against the golden outcome.
//
// Injection i depends only on (config.seed, i), which makes runs resumable
// (fi/journal.h), shardable (CampaignConfig::shard_*), and replayable
// (run_single). Phase 1 results are memoized in fi/golden_cache.h.
#pragma once

#include <algorithm>
#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "fi/fault_model.h"
#include "fi/injector.h"
#include "sassim/machine_config.h"
#include "sassim/profiler.h"
#include "sassim/simulator.h"
#include "sassim/trap.h"

namespace gfi::sa {
struct PruneMap;
}  // namespace gfi::sa

namespace gfi::obs {
class Registry;
}  // namespace gfi::obs

namespace gfi::fi {

/// Classification of one injection run.
enum class Outcome : u8 {
  kMasked,             ///< bitwise-identical output
  kMaskedTolerated,    ///< output differs but within workload tolerance
  kSdc,                ///< silent data corruption (beyond tolerance)
  kDue,                ///< detected unrecoverable error (trap / ECC DBE)
  kHang,               ///< watchdog timeout
  kDetectedCorrected,  ///< ECC corrected the fault (no corruption occurred)
  kNotActivated,       ///< site was predicated off / never consumed
  // Recovery outcomes (max_retries > 0 only): what a DUE/Hang turned into
  // after checkpoint-restore relaunches (recover/retry.h).
  kRecoveredRetry,     ///< trapped, then a relaunch from checkpoint passed
  kUnrecoverableDue,   ///< trapped on every allowed relaunch attempt
  /// Supervisor verdict, never produced by a simulation: this injection
  /// repeatedly killed its worker process and was skipped after K attempts
  /// (CampaignConfig::quarantine) so the rest of the shard could finish.
  kQuarantined,
};

inline constexpr int kOutcomeCount =
    static_cast<int>(Outcome::kQuarantined) + 1;
const char* to_string(Outcome outcome);

/// The campaign classifier's trap rule: a watchdog timeout is a Hang,
/// everything else a trap can report is a DUE.
Outcome outcome_for_trap(sim::TrapKind kind);

/// Adaptive-campaign planner knobs (fi/planner.h). Off by default: a
/// campaign with an inactive planner runs the classic fixed budget and
/// writes byte-identical journals to pre-planner builds.
struct PlannerConfig {
  /// Sequential early stopping: once every tracked outcome rate (Masked,
  /// SDC, DUE — planner_tracked_outcomes()) has a Wilson CI no wider than
  /// this on each side, the campaign halts at the checkpoint boundary.
  /// target_half_width <= 0 disables stopping.
  stats::StoppingRule stop;
  /// Checkpoint period K: planner decisions (stop / reallocate) happen only
  /// after a multiple of K global injections has completed, so the decision
  /// is a pure function of a deterministic record prefix.
  u64 checkpoint_every = 100;
  /// Stratified allocation: split each checkpoint block across instruction
  /// groups (dynamic-frequency strata from the profile), reallocating
  /// Neyman-style from the observed per-group spread at every checkpoint.
  bool stratify = false;
  /// Follow an externally computed plan (`gpufi run` workers): the worker
  /// polls this file for the supervisor's alloc/stop events instead of
  /// deciding anything itself — sharded workers never see the full global
  /// prefix a decision needs.
  std::optional<std::string> plan_path;
  /// How long a plan-following worker waits for the supervisor to publish
  /// the next checkpoint's allocation before giving up (the supervisor then
  /// relaunches it with backoff).
  u64 plan_wait_ms = 120000;

  [[nodiscard]] bool stopping() const { return stop.enabled(); }
  [[nodiscard]] bool active() const { return stopping() || stratify; }
  bool operator==(const PlannerConfig&) const = default;
};

/// One journaled planner decision. Decisions are replayable log entries
/// exactly like injection records: resume, sharding, and merge reproduce the
/// identical schedule from them.
struct PlanEvent {
  enum class Kind : u8 {
    kAlloc,  ///< per-group injection allocation for one checkpoint block
    kStop,   ///< sequential stopping rule fired at a checkpoint boundary
  };
  Kind kind = Kind::kStop;
  /// kAlloc: block ordinal c — the block covers global indices
  /// [c*K, min((c+1)*K, num_injections)).
  u64 checkpoint = 0;
  /// kStop: the boundary B; only indices < B belong to the campaign.
  u64 stop_at = 0;
  /// kAlloc: injections assigned to each instruction group (enum order);
  /// zero for groups the fault mode cannot target.
  std::array<u64, sim::kInstrGroupCount> alloc{};

  bool operator==(const PlanEvent&) const = default;
};

struct CampaignConfig {
  std::string workload;            ///< registry name
  sim::MachineConfig machine;      ///< arch preset (a100() / h100() / toy())
  FaultModel model;
  /// Dispatch-tier pin forwarded to every launch of the campaign (golden
  /// run included). kAuto — the default — lets the simulator pick the
  /// fastest correct tier per launch; the explicit values exist for
  /// debugging and tier-equivalence CI, which diffs paired-seed journals
  /// across pins byte-for-byte. Like `quarantine`, deliberately NOT part
  /// of the journal header: all tiers are bit-identical, so a journal is
  /// resumable under a different pin.
  sim::EngineTier engine = sim::EngineTier::kAuto;
  /// Instruction-group filter for IOV/PRED/IOA. nullopt = sample across all
  /// groups the mode can target, weighted by dynamic frequency.
  std::optional<sim::InstrGroup> group;
  std::size_t num_injections = 1000;
  u64 seed = 0x5eed;
  std::size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  /// Fixes the flipped bit index for all runs (bit-sensitivity sweeps);
  /// nullopt = uniform random bit per run.
  std::optional<u32> fixed_bit;

  // --- scale-out ---------------------------------------------------------
  /// Shard `shard_index` of `shard_count` runs the global injection indices
  /// i with i % shard_count == shard_index. Every injection derives its RNG
  /// stream from (seed, global index), so N shards partition the same
  /// campaign bit-exactly and merge_journals() recombines them.
  u32 shard_index = 0;
  u32 shard_count = 1;
  /// JSONL journal path: every completed injection is appended and flushed;
  /// if the file already exists (and matches this campaign) journaled
  /// injections are skipped — crash/kill + rerun resumes where it stopped.
  std::optional<std::string> journal_path;

  // --- per-injection watchdog --------------------------------------------
  /// A faulty run is aborted as kHang after
  ///   golden_dyn_instrs * watchdog_multiplier + watchdog_floor
  /// dynamic warp instructions: generous enough that slow-but-progressing
  /// runs finish, tight enough that one hung injection cannot wedge a shard.
  u64 watchdog_multiplier = 3;
  u64 watchdog_floor = 10000;
  /// Absolute override of the budget (tests / pathological kernels).
  std::optional<u64> watchdog_instrs;

  // --- recovery ----------------------------------------------------------
  /// Global injection indices the supervisor has condemned: run_single
  /// records them as kQuarantined (site still sampled — the RNG stream is
  /// untouched — but nothing is simulated, so a poison injection that
  /// crashes the process cannot fire again). Kept out of the journal
  /// header so a quarantined resume stays compatible with earlier journals.
  /// Must be sorted (normalize_quarantine()): is_quarantined runs once per
  /// injection inside the hot parallel_for, where the old linear scan cost
  /// O(|quarantine|) per record.
  std::vector<u64> quarantine;
  [[nodiscard]] bool is_quarantined(u64 run_index) const {
    return std::binary_search(quarantine.begin(), quarantine.end(),
                              run_index);
  }
  /// Sorts + dedups `quarantine` into the form is_quarantined requires.
  /// Campaign::run applies this to its own copy, so callers may pass the
  /// set in any order.
  void normalize_quarantine() {
    std::sort(quarantine.begin(), quarantine.end());
    quarantine.erase(std::unique(quarantine.begin(), quarantine.end()),
                     quarantine.end());
  }

  /// >0 enables trap-and-retry: a run ending in a detected error (DUE or
  /// Hang) is restored to its pre-launch checkpoint and relaunched up to
  /// this many extra times. A retry that completes and passes its check is
  /// kRecoveredRetry; one that traps on every attempt is kUnrecoverableDue.
  /// Whether the retry sees the fault again is model.persistence. SDCs are
  /// never retried — nothing detected them.
  u32 max_retries = 0;

  // --- observability (src/obs) -------------------------------------------
  /// Metrics sink for campaign counters and latency histograms; nullptr
  /// uses obs::Registry::global(). Telemetry is purely additive: records,
  /// RNG streams, and outcome tables are bit-identical with or without it.
  obs::Registry* metrics = nullptr;
  /// Heartbeat flush interval for the `<journal>.status.jsonl` sidecar
  /// (written only when journal_path is set). 0 beats after every record.
  u64 heartbeat_interval_ms = 2000;

  // --- static pruning (sa/ace.h) -----------------------------------------
  /// Skip simulating IOV/PRED sites whose strike footprint is statically
  /// dead (or has nothing to corrupt): the record is credited analytically
  /// with the outcome the simulation would have produced, so results stay
  /// bit-identical to an unpruned campaign on the same seeds while the
  /// pruned launches cost nothing. Ignored for other modes.
  bool prune_dead_sites = false;
  /// Superset of prune_dead_sites (implies it): additionally credit
  /// single/double-bit flips whose sampled bits all land on statically dead
  /// bits of a partially-dead footprint (sa/bitlive.h). Same bit-identity
  /// guarantee; other flip models at partial sites are still simulated.
  bool prune_dead_bits = false;

  // --- adaptive planner (fi/planner.h) -----------------------------------
  /// Sequential stopping + stratified allocation. Inactive by default.
  PlannerConfig planner;
};

struct InjectionRecord {
  Outcome outcome = Outcome::kNotActivated;
  /// Classification before any recovery ran (== outcome when the run didn't
  /// trap or max_retries is 0): what this injection would have cost an
  /// unprotected system.
  Outcome pre_recovery = Outcome::kNotActivated;
  u32 attempts = 1;  ///< launches consumed (1 = no retry needed)
  FaultSite site;
  InjectionEffect effect;
  sim::TrapKind trap = sim::TrapKind::kNone;
  f64 error_magnitude = 0.0;  ///< max relative output error when mismatched
  u64 dyn_instrs = 0;  ///< dynamic warp instructions, summed over attempts
};

struct CampaignResult {
  CampaignConfig config;
  sim::Profile profile;  ///< golden dynamic-instruction profile
  u64 golden_dyn_instrs = 0;
  u64 golden_cycles = 0;
  std::vector<InjectionRecord> records;
  /// Global injection index of records[k] (0..n-1 unsharded; the shard's
  /// strided subsequence otherwise).
  std::vector<u64> run_indices;
  /// How many of `records` were restored from the journal instead of run.
  std::size_t resumed = 0;
  /// How many of `records` were credited analytically by dead-site pruning
  /// instead of simulated (prune_dead_sites only).
  u64 pruned = 0;
  /// Global injections the campaign actually covers: num_injections, or the
  /// stop boundary when the sequential stopping rule fired early. records /
  /// run_indices only contain indices below this.
  u64 effective_injections = 0;
  /// Planner decisions in effect for this run (journaled ones included),
  /// allocs in checkpoint order followed by the stop event if any.
  std::vector<PlanEvent> plan;
  std::array<u64, kOutcomeCount> outcome_counts{};

  [[nodiscard]] u64 count(Outcome outcome) const {
    return outcome_counts[static_cast<int>(outcome)];
  }
  /// Rate of `outcome` among all injections.
  [[nodiscard]] f64 rate(Outcome outcome) const;
  /// 95% Wilson interval for that rate.
  [[nodiscard]] stats::Interval rate_interval(Outcome outcome) const;
};

class Campaign {
 public:
  /// Runs the full two-phase campaign.
  static Result<CampaignResult> run(const CampaignConfig& config);

  /// Replays a single injection (used by tests and for debugging): returns
  /// the record produced for global run index `i` of `config`. Sharding
  /// never changes what a given index produces. When `prune_map` is given
  /// and the sampled site is prunable, the record is filled analytically
  /// without simulating (and `*pruned_out` is set when provided) — the
  /// record is field-identical to what the simulation would produce.
  /// `metrics`, when given, receives execution-path selection counters; it
  /// never influences the record produced. `stratum`, when given, pins the
  /// sampled instruction group (stratified campaigns assign each index its
  /// group from the journaled allocation; the pinned path consumes no group
  /// RNG draw, so the record stays a pure function of (seed, index, plan)).
  static Result<InjectionRecord> run_single(
      const CampaignConfig& config, const sim::Profile& profile,
      u64 golden_dyn_instrs, std::size_t run_index,
      const sa::PruneMap* prune_map = nullptr, bool* pruned_out = nullptr,
      obs::Registry* metrics = nullptr,
      std::optional<sim::InstrGroup> stratum = std::nullopt);

  /// Builds the dynamic prune map for `config`'s workload: one fault-free
  /// instrumented launch recording every prunable (group, occurrence) site,
  /// plus the golden check outcome used to credit dead sites analytically.
  static Result<sa::PruneMap> build_prune_map(const CampaignConfig& config);

  /// Phase-1 only: golden profile for a (workload, machine) pair.
  struct Golden {
    sim::Profile profile;
    u64 dyn_instrs = 0;
    u64 cycles = 0;
  };
  static Result<Golden> golden_run(const CampaignConfig& config);
};

}  // namespace gfi::fi
