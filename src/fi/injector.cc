#include "fi/injector.h"

#include <bit>
#include <sstream>

#include "common/bitutil.h"
#include "common/rng.h"

namespace gfi::fi {

std::string FaultSite::to_string() const {
  std::ostringstream out;
  out << fi::to_string(model.mode) << "/" << fi::to_string(model.flip);
  if (group) out << " group=" << sim::group_name(*group);
  out << " occ=" << target_occurrence << " lane_sel=" << lane_sel
      << " bit=" << bit_sel;
  if (model.mode == InjectionMode::kRf) out << " reg=R" << reg_sel;
  return out.str();
}

bool InjectorHook::is_target(const sim::InstrContext& ctx) const {
  switch (site_.model.mode) {
    case InjectionMode::kIov:
    case InjectionMode::kPred:
    case InjectionMode::kIoa:
      if (!mode_targets_group(site_.model.mode, ctx.group)) return false;
      return !site_.group || *site_.group == ctx.group;
    case InjectionMode::kRf:
      return true;  // strikes at an absolute dynamic index
    case InjectionMode::kMemory:
      return false;  // handled outside the hook (pre-launch)
  }
  return false;
}

u32 InjectorHook::pick_lane(u32 exec_mask, u32 lane_sel) {
  const u32 lanes = static_cast<u32>(std::popcount(exec_mask));
  u32 n = lane_sel % lanes;
  for (u32 lane = 0; lane < sim::kWarpSize; ++lane) {
    if ((exec_mask >> lane) & 1u) {
      if (n == 0) return lane;
      --n;
    }
  }
  return 0;
}

void InjectorHook::on_before_instr(sim::InstrContext& ctx) {
  if (fired_) return;
  if (site_.model.mode == InjectionMode::kRf) {
    if (eligible_seen_++ == site_.target_occurrence) strike_rf(ctx);
    return;
  }
  if (site_.model.mode == InjectionMode::kIoa && is_target(ctx)) {
    if (eligible_seen_++ == site_.target_occurrence) {
      // Arm the address transform for this store instruction.
      fired_ = true;
      effect_.struck_dyn_index = ctx.dyn_index;
      effect_.struck_opcode = ctx.instr->op;
      effect_.struck_group = ctx.group;
      if (ctx.exec_mask != 0) {
        effect_.activated = true;
        effect_.struck_lane = pick_lane(ctx.exec_mask, site_.lane_sel);
        armed_store_dyn_ = ctx.dyn_index;
      }
    }
  }
}

void InjectorHook::on_after_instr(sim::InstrContext& ctx) {
  if (fired_) return;
  const auto mode = site_.model.mode;
  if (mode != InjectionMode::kIov && mode != InjectionMode::kPred) return;
  if (!is_target(ctx)) return;
  if (eligible_seen_++ != site_.target_occurrence) return;

  fired_ = true;
  effect_.struck_dyn_index = ctx.dyn_index;
  effect_.struck_opcode = ctx.instr->op;
  effect_.struck_group = ctx.group;
  if (ctx.exec_mask == 0) return;  // predicated off: never activated

  if (mode == InjectionMode::kIov) {
    strike_iov(ctx);
  } else {
    strike_pred(ctx);
  }
}

u64 InjectorHook::transform_store_address(u64 addr,
                                          const sim::InstrContext& ctx,
                                          u32 lane) {
  if (armed_store_dyn_ != ctx.dyn_index || lane != effect_.struck_lane) {
    return addr;
  }
  armed_store_dyn_ = ~0ULL;  // strike only one lane's address
  switch (site_.model.flip) {
    case BitFlipModel::kSingle:
      return flip_bit64(addr, site_.bit_sel % 32);
    case BitFlipModel::kDouble: {
      u32 b2 = site_.bit_sel2 % 32;
      if (b2 == site_.bit_sel % 32) b2 = (b2 + 1) % 32;
      return flip_bit64(flip_bit64(addr, site_.bit_sel % 32), b2);
    }
    case BitFlipModel::kRandomValue:
      return site_.random_value;
    case BitFlipModel::kZeroValue:
      return 0;
  }
  return addr;
}

void InjectorHook::strike_iov(sim::InstrContext& ctx) {
  const sim::Instr& instr = *ctx.instr;
  sim::WarpState& warp = *ctx.warp_state;
  const u32 lane = pick_lane(ctx.exec_mask, site_.lane_sel);
  effect_.struck_lane = lane;

  if (instr.writes_reg() || instr.op == sim::Opcode::kHmma) {
    const u16 span = instr.dst_reg_span();
    const u32 bits = span * 32u;
    const u16 base = instr.dst.index;
    effect_.activated = true;
    switch (site_.model.flip) {
      case BitFlipModel::kSingle: {
        const u32 bit = site_.bit_sel % bits;
        const u16 r = static_cast<u16>(base + bit / 32);
        warp.set_reg(lane, r, flip_bit32(warp.reg(lane, r), bit % 32));
        break;
      }
      case BitFlipModel::kDouble: {
        const u32 b1 = site_.bit_sel % bits;
        u32 b2 = site_.bit_sel2 % bits;
        if (b2 == b1) b2 = (b2 + 1) % bits;
        for (u32 bit : {b1, b2}) {
          const u16 r = static_cast<u16>(base + bit / 32);
          warp.set_reg(lane, r, flip_bit32(warp.reg(lane, r), bit % 32));
        }
        break;
      }
      case BitFlipModel::kRandomValue: {
        u64 payload = site_.random_value;
        for (u16 s = 0; s < span; ++s) {
          warp.set_reg(lane, static_cast<u16>(base + s),
                       static_cast<u32>(splitmix64(payload)));
        }
        break;
      }
      case BitFlipModel::kZeroValue:
        for (u16 s = 0; s < span; ++s) {
          warp.set_reg(lane, static_cast<u16>(base + s), 0);
        }
        break;
    }
    return;
  }

  if (instr.writes_pred()) {
    effect_.activated = true;
    const auto p = static_cast<u8>(instr.dst.index);
    warp.set_pred(lane, p, !warp.pred(lane, p));
  }
}

void InjectorHook::strike_pred(sim::InstrContext& ctx) {
  const sim::Instr& instr = *ctx.instr;
  if (!instr.writes_pred()) return;
  sim::WarpState& warp = *ctx.warp_state;
  const u32 lane = pick_lane(ctx.exec_mask, site_.lane_sel);
  effect_.struck_lane = lane;
  effect_.activated = true;
  const auto p = static_cast<u8>(instr.dst.index);
  warp.set_pred(lane, p, !warp.pred(lane, p));
}

void InjectorHook::strike_rf(sim::InstrContext& ctx) {
  fired_ = true;
  effect_.struck_dyn_index = ctx.dyn_index;
  effect_.struck_opcode = ctx.instr->op;
  effect_.struck_group = ctx.group;
  sim::WarpState& warp = *ctx.warp_state;
  const u32 live = warp.active();
  if (live == 0) return;
  const u32 lane = pick_lane(live, site_.lane_sel);
  effect_.struck_lane = lane;
  effect_.activated = true;

  const u16 reg = warp.num_regs() == 0
                      ? 0
                      : static_cast<u16>(site_.reg_sel % warp.num_regs());

  if (config_.rf_ecc == ecc::EccMode::kSecded) {
    // The register file is SECDED protected: a single-bit upset is
    // corrected on the next read; anything wider is detected-uncorrectable
    // and surfaces as a DUE (XID-63-style) at consumption time, which we
    // model as an immediate trap.
    if (site_.model.flip == BitFlipModel::kSingle) {
      effect_.corrected_by_ecc = true;
      return;
    }
    ctx.requested_trap = sim::TrapKind::kEccDoubleBit;
    return;
  }

  switch (site_.model.flip) {
    case BitFlipModel::kSingle:
      warp.set_reg(lane, reg,
                   flip_bit32(warp.reg(lane, reg), site_.bit_sel % 32));
      break;
    case BitFlipModel::kDouble: {
      u32 b2 = site_.bit_sel2 % 32;
      if (b2 == site_.bit_sel % 32) b2 = (b2 + 1) % 32;
      u32 value = flip_bit32(warp.reg(lane, reg), site_.bit_sel % 32);
      warp.set_reg(lane, reg, flip_bit32(value, b2));
      break;
    }
    case BitFlipModel::kRandomValue:
      warp.set_reg(lane, reg, static_cast<u32>(site_.random_value));
      break;
    case BitFlipModel::kZeroValue:
      warp.set_reg(lane, reg, 0);
      break;
  }
}

}  // namespace gfi::fi
