// Adaptive campaign planner: sequential early stopping + stratified
// allocation, with every decision journaled so it replays bit-exactly.
//
// Determinism contract: injection record i is a pure function of
// (config.seed, global index i, plan). The plan itself is a pure function
// of the record prefix at checkpoint boundaries — a decision for boundary
// B = c*K may only read records [0, B), and the campaign executes blocks
// [c*K, (c+1)*K) strictly in order. Any party holding the complete prefix
// (an unsharded campaign in-process, or the supervisor pooling its shard
// journals) therefore computes the identical schedule, and a resumed,
// sharded, or merged campaign is byte-identical to an uninterrupted
// unsharded one.
//
// Decisions made:
//   * stop     — halt at boundary B once every tracked outcome rate
//                (Masked / SDC / DUE) has a Wilson CI inside the target
//                half-width (stats::StoppingRule, with a min-sample floor);
//   * alloc    — per-block split of the K injections across instruction
//                groups: proportional to the profile's dynamic-frequency
//                strata for block 0, Neyman-reweighted (W_g * s_g with the
//                observed per-group SDC spread) at every later checkpoint.
//
// Sharded campaigns cannot decide locally (no shard sees the full prefix),
// so `gpufi run` workers follow a shared plan file (`<dir>/plan.jsonl`)
// that the supervisor appends decisions to as global prefixes complete.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fi/campaign.h"

namespace gfi::fi {

/// The outcome rates the stopping rule must bound: the paper's headline
/// Masked / SDC / DUE cells. A fixed set, so the stop decision never
/// depends on which outcomes a particular run happened to produce.
const std::vector<Outcome>& planner_tracked_outcomes();

/// Checkpoint-block geometry and the deterministic decision state. Feed it
/// every record of the prefix (order within a block does not matter —
/// decisions only read counts at block boundaries) and ask for decisions
/// at boundaries.
class Planner {
 public:
  /// Validates the planner config against the campaign (stratify needs an
  /// instruction-targeted mode with no pinned group and at least one
  /// eligible stratum; stopping needs a valid confidence level).
  static Result<Planner> create(const CampaignConfig& config,
                                const sim::Profile& profile);

  [[nodiscard]] u64 checkpoint_every() const { return k_; }
  /// Global index range [start, end) of block `c`.
  [[nodiscard]] u64 block_start(u64 c) const { return c * k_; }
  [[nodiscard]] u64 block_end(u64 c) const;

  /// Accumulates one completed record of the prefix.
  void observe(const InjectionRecord& record);
  /// Injections observed so far (== the prefix boundary when fed in block
  /// order).
  [[nodiscard]] u64 observed() const { return observed_; }

  /// True when every tracked outcome's Wilson CI over the observed prefix
  /// is inside the target half-width (and the min-sample floor is met).
  [[nodiscard]] bool stop_satisfied() const;

  /// The allocation decision for block `c`, computed from the counts
  /// observed so far (the caller must have observed exactly [0, c*K)).
  [[nodiscard]] PlanEvent make_alloc(u64 c) const;

  /// The instruction group assigned to offset `i - block_start` under an
  /// allocation; nullopt when the offset exceeds the allocated total.
  static std::optional<sim::InstrGroup> group_for(const PlanEvent& alloc,
                                                  u64 offset);

  /// Eligible strata (instruction groups the mode targets with nonzero
  /// dynamic count), in enum order, and their profile weights.
  [[nodiscard]] const std::vector<sim::InstrGroup>& eligible() const {
    return eligible_;
  }
  [[nodiscard]] const std::vector<f64>& weights() const { return weights_; }

  /// Cumulative per-outcome counts over the observed prefix.
  [[nodiscard]] const std::array<u64, kOutcomeCount>& outcome_counts() const {
    return outcome_counts_;
  }

 private:
  Planner() = default;

  stats::StoppingRule rule_;
  bool stratify_ = false;
  u64 k_ = 100;
  u64 num_injections_ = 0;
  std::vector<sim::InstrGroup> eligible_;
  std::vector<f64> weights_;  ///< dynamic-frequency share per eligible group
  u64 observed_ = 0;
  std::array<u64, kOutcomeCount> outcome_counts_{};
  // Neyman inputs, indexed like eligible_: per-stratum trials and SDCs.
  std::vector<u64> group_trials_;
  std::vector<u64> group_sdc_;
};

// ------------------------------------------------- event serialization ---

/// One JSONL line for a decision (no trailing newline):
///   {"plan":"alloc","ckpt":2,"alloc":[40,0,35,...]}
///   {"plan":"stop","at":600}
/// The same format appears in journals (fi/journal.h) and the plan file.
std::string plan_event_line(const PlanEvent& event);
Result<PlanEvent> parse_plan_event(const std::string& line);
/// Cheap dispatch test: plan lines always start with `{"plan":`.
bool is_plan_line(const std::string& line);

// ------------------------------------------------------ the plan file ---
//
// `gpufi run` publishes supervisor decisions to `<dir>/plan.jsonl`: a
// header line binding the file to the campaign, then one PlanEvent line
// per decision, appended and flushed as each global prefix completes.
// Workers poll it (Campaign follows it when CampaignConfig::planner
// .plan_path is set); it uses the same line format as journaled plan
// events, so the two logs stay trivially comparable.

struct PlanFileContents {
  u64 seed = 0;
  u64 num_injections = 0;
  u64 checkpoint_every = 0;
  std::map<u64, PlanEvent> allocs;  ///< keyed by checkpoint ordinal
  std::optional<u64> stop_at;
};

/// The plan-file header line for a campaign (no trailing newline).
std::string plan_file_header(const CampaignConfig& config);

/// Loads a plan file, tolerating a torn trailing line (the supervisor may
/// die mid-append; everything before the tear is still authoritative).
/// kNotFound when the file does not exist yet.
Result<PlanFileContents> load_plan_file(const std::string& path,
                                        const CampaignConfig& config);

/// Appends one decision line (+ flush) to the plan file.
Status append_plan_event(const std::string& path, const PlanEvent& event);

}  // namespace gfi::fi
