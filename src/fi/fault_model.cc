#include "fi/fault_model.h"

namespace gfi::fi {

const char* to_string(InjectionMode mode) {
  switch (mode) {
    case InjectionMode::kIov: return "IOV";
    case InjectionMode::kIoa: return "IOA";
    case InjectionMode::kPred: return "PRED";
    case InjectionMode::kRf: return "RF";
    case InjectionMode::kMemory: return "MEM";
  }
  return "?";
}

const char* to_string(BitFlipModel flip) {
  switch (flip) {
    case BitFlipModel::kSingle: return "1-bit";
    case BitFlipModel::kDouble: return "2-bit";
    case BitFlipModel::kRandomValue: return "rand-val";
    case BitFlipModel::kZeroValue: return "zero-val";
  }
  return "?";
}

const char* to_string(FaultPersistence persistence) {
  switch (persistence) {
    case FaultPersistence::kTransient: return "transient";
    case FaultPersistence::kStuckAt: return "stuck-at";
  }
  return "?";
}

bool mode_targets_group(InjectionMode mode, sim::InstrGroup group) {
  using sim::InstrGroup;
  switch (mode) {
    case InjectionMode::kIov:
      // Any group whose instructions produce a register value.
      return group == InstrGroup::kInt || group == InstrGroup::kIntMad ||
             group == InstrGroup::kFp32 || group == InstrGroup::kFp32Fma ||
             group == InstrGroup::kFp64 || group == InstrGroup::kLoad ||
             group == InstrGroup::kAtomic || group == InstrGroup::kWarpComm ||
             group == InstrGroup::kMma;
    case InjectionMode::kPred:
      return group == InstrGroup::kSetp;
    case InjectionMode::kIoa:
      return group == InstrGroup::kStore;
    case InjectionMode::kRf:
    case InjectionMode::kMemory:
      return true;  // not instruction-targeted
  }
  return false;
}

}  // namespace gfi::fi
