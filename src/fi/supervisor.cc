#include "fi/supervisor.h"

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "common/backoff.h"
#include "common/failpoint.h"
#include "common/jsonl.h"
#include "common/logging.h"
#include "fi/golden_cache.h"
#include "fi/lease.h"
#include "fi/planner.h"
#include "obs/heartbeat.h"

namespace gfi::fi {

std::string Supervisor::shard_journal_path(const std::string& dir, u32 shard) {
  return dir + "/shard-" + std::to_string(shard) + ".jsonl";
}

std::string Supervisor::state_path(const std::string& dir) {
  return dir + "/supervisor.jsonl";
}

std::string Supervisor::plan_path(const std::string& dir) {
  return dir + "/plan.jsonl";
}

#ifdef _WIN32

Result<SupervisorResult> Supervisor::run(const SupervisorConfig&) {
  return Status::unimplemented(
      "gpufi run requires POSIX process control (fork/waitpid)");
}

#else

namespace {

constexpr const char* kStateMagic = "gpufi-run-v1";

enum class ShardPhase { kPending, kRunning, kDone, kFailed };

struct ShardState {
  u32 index = 0;
  ShardPhase phase = ShardPhase::kPending;
  pid_t pid = -1;
  u64 launched_at_ms = 0;
  u64 lease_refreshed_ms = 0;
  u64 backoff_until_ms = 0;
  u32 backoff_level = 0;         ///< consecutive crashes feeding the backoff
  u32 no_progress_crashes = 0;   ///< consecutive crashes with zero progress
  u64 records_at_launch = 0;
  std::optional<u64> poison_candidate;
  u32 poison_streak = 0;
};

/// Size of shard `s`'s strided slice of [0, n).
u64 slice_size(u64 n, u32 shards, u32 s) {
  return s < n ? (n - s - 1) / shards + 1 : 0;
}

/// The distinct global indices journaled for a shard (empty on any journal
/// problem — a torn header just means "no progress yet").
std::set<u64> journaled_indices(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return {};
  auto loaded = Journal::load(path);
  if (!loaded.is_ok()) return {};
  std::set<u64> indices;
  for (const auto& [index, record] : loaded.value().records) {
    indices.insert(index);
  }
  return indices;
}

/// Lowest index of shard `s`'s slice not yet journaled — for a crashed
/// single-threaded worker (FIFO pool), the injection it died executing.
std::optional<u64> lowest_unjournaled(u64 n, u32 shards, u32 s,
                                      const std::set<u64>& done) {
  for (u64 i = s; i < n; i += shards) {
    if (done.find(i) == done.end()) return i;
  }
  return std::nullopt;
}

/// Append-only flushed event log mirroring the journal's crash-safety
/// discipline: one self-contained JSONL line per supervisor decision.
class StateLog {
 public:
  static Result<std::unique_ptr<StateLog>> open(const std::string& path,
                                                bool existing) {
    std::FILE* file = std::fopen(path.c_str(), existing ? "ab" : "wb");
    if (!file) {
      return Status::internal("cannot open supervisor state " + path + ": " +
                              std::strerror(errno));
    }
    return std::unique_ptr<StateLog>(new StateLog(file));
  }

  ~StateLog() {
    if (file_) std::fclose(file_);
  }

  void write(const std::string& line) {
    const std::string out = line + "\n";
    // State-log IO failure must not kill the campaign: the log exists to
    // make --resume smarter, and the quarantine set is additionally
    // re-derivable from worker journals.
    if (std::fwrite(out.data(), 1, out.size(), file_) == out.size()) {
      std::fflush(file_);
    }
  }

  void event(const std::string& ev,
             const std::vector<std::pair<const char*, u64>>& fields) {
    std::string line = "{";
    jsonl::append_str(line, "ev", ev);
    for (const auto& [key, value] : fields) {
      jsonl::append_u64(line, key, value);
    }
    line += '}';
    write(line);
  }

 private:
  explicit StateLog(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
};

std::string state_header_line(const SupervisorConfig& config) {
  std::string out = "{";
  jsonl::append_str(out, "supervisor", kStateMagic);
  jsonl::append_str(out, "workload", config.workload);
  jsonl::append_u64(out, "shards", config.shards);
  jsonl::append_u64(out, "num_injections", config.num_injections);
  jsonl::append_u64(out, "seed", config.seed);
  out += '}';
  return out;
}

/// Replays an existing state file: validates the header against `config`
/// and reconstructs the quarantine set. Tolerates a torn trailing line.
Status replay_state(const std::string& path, const SupervisorConfig& config,
                    std::set<u64>* quarantine) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::internal("cannot read supervisor state " + path);
  }
  std::string line;
  bool have_header = false;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    jsonl::Fields fields;
    if (!jsonl::parse_fields(line, &fields)) continue;  // torn tail
    if (!have_header) {
      if (jsonl::get_str(fields, "supervisor").value_or("") != kStateMagic) {
        return Status::failed_precondition(
            path + " is not a gpufi run state file");
      }
      const std::string workload =
          jsonl::get_str(fields, "workload").value_or("");
      const u64 shards = jsonl::get_u64(fields, "shards").value_or(0);
      const u64 num = jsonl::get_u64(fields, "num_injections").value_or(0);
      const u64 seed = jsonl::get_u64(fields, "seed").value_or(0);
      if (workload != config.workload || shards != config.shards ||
          num != config.num_injections || seed != config.seed) {
        return Status::failed_precondition(
            path + " was written by a different campaign (workload '" +
            workload + "', " + std::to_string(shards) + " shards, " +
            std::to_string(num) + " injections, seed " +
            std::to_string(seed) + ")");
      }
      have_header = true;
      continue;
    }
    if (jsonl::get_str(fields, "ev").value_or("") == "quarantine") {
      if (auto index = jsonl::get_u64(fields, "index")) {
        quarantine->insert(*index);
      }
    }
  }
  if (!have_header) {
    return Status::failed_precondition(path + " has no state header");
  }
  return Status::ok();
}

std::string quarantine_flag(const std::set<u64>& quarantine) {
  std::string flag = "--quarantine=";
  bool first = true;
  for (u64 index : quarantine) {
    if (!first) flag += ',';
    flag += std::to_string(index);
    first = false;
  }
  return flag;
}

Result<pid_t> spawn_worker(const SupervisorConfig& config, u32 shard,
                           const std::set<u64>& quarantine) {
  std::vector<std::string> argv;
  argv.push_back(config.exe);
  argv.push_back("campaign");
  argv.push_back(config.workload);
  for (const std::string& flag : config.worker_flags) argv.push_back(flag);
  // Supervisor-owned flags last, so they win over anything in worker_flags.
  // --threads=1 is load-bearing: the poison-candidate heuristic (lowest
  // unjournaled index == crash point) needs in-order execution.
  argv.push_back("--threads=1");
  argv.push_back("--shard=" + std::to_string(shard) + "/" +
                 std::to_string(config.shards));
  argv.push_back("--journal=" +
                 Supervisor::shard_journal_path(config.dir, shard));
  argv.push_back("--heartbeat-ms=" +
                 std::to_string(config.worker_heartbeat_ms));
  if (!quarantine.empty()) argv.push_back(quarantine_flag(quarantine));
  // Adaptive campaigns: workers never decide anything — they follow the
  // supervisor's published plan file.
  if (config.campaign.planner.active()) {
    argv.push_back("--plan=" + Supervisor::plan_path(config.dir));
  }

  const std::string log_path =
      config.dir + "/shard-" + std::to_string(shard) + ".log";

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::internal(std::string("fork failed: ") +
                            std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe-ish work before exec.
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    // Workers get exactly the configured failpoint spec — never the
    // supervisor's own (a supervisor.tick clause firing inside a worker
    // would be chaos aimed at the wrong process).
    if (config.worker_failpoints.empty()) {
      ::unsetenv("GFI_FAILPOINTS");
    } else {
      ::setenv("GFI_FAILPOINTS", config.worker_failpoints.c_str(), 1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execv(config.exe.c_str(), cargv.data());
    std::fprintf(stderr, "execv %s failed: %s\n", config.exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

int exit_code_of(int wait_status) {
  if (WIFEXITED(wait_status)) return WEXITSTATUS(wait_status);
  if (WIFSIGNALED(wait_status)) return 128 + WTERMSIG(wait_status);
  return -1;
}

}  // namespace

Result<SupervisorResult> Supervisor::run(const SupervisorConfig& config) {
  if (config.shards == 0) {
    return Status::invalid_argument("gpufi run: shards must be > 0");
  }
  if (config.num_injections == 0) {
    return Status::invalid_argument("gpufi run: num_injections must be > 0");
  }
  if (config.exe.empty() || config.workload.empty() || config.dir.empty()) {
    return Status::invalid_argument(
        "gpufi run: exe, workload, and dir are required");
  }
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) {
    return Status::internal("cannot create campaign dir " + config.dir +
                            ": " + ec.message());
  }

  // --- supervisor state: refuse to silently clobber a previous run -------
  const std::string spath = state_path(config.dir);
  std::set<u64> quarantine;
  const bool state_exists = std::filesystem::exists(spath, ec) &&
                            std::filesystem::file_size(spath, ec) > 0;
  if (state_exists && !config.resume) {
    return Status::failed_precondition(
        spath + " exists — a supervisor already ran this directory; pass "
        "--resume to continue it (or use a fresh --dir)");
  }
  if (state_exists) {
    if (Status replayed = replay_state(spath, config, &quarantine);
        !replayed.is_ok()) {
      return replayed;
    }
  }
  auto log_opened = StateLog::open(spath, state_exists);
  if (!log_opened.is_ok()) return log_opened.status();
  std::unique_ptr<StateLog> log = std::move(log_opened).take();
  if (!state_exists) log->write(state_header_line(config));
  if (state_exists) log->event("resume", {});

  char host[256] = "unknown";
  (void)::gethostname(host, sizeof(host) - 1);
  const std::string owner =
      std::string(host) + ":" + std::to_string(::getpid());

  SupervisorResult result;
  for (u64 index : quarantine) result.quarantined.push_back(index);

  std::vector<ShardState> shards(config.shards);
  for (u32 s = 0; s < config.shards; ++s) shards[s].index = s;
  const u32 max_workers =
      config.max_workers == 0 ? config.shards : config.max_workers;
  const u64 refresh_ms = std::max<u64>(config.lease_ttl_ms / 3, 1);

  // --- adaptive planner: supervisor-side decisions -----------------------
  // The supervisor pools shard journals into the global record prefix and
  // computes every stop/alloc decision exactly as an unsharded campaign
  // would, publishing each to the plan file the workers follow.
  const std::string ppath = plan_path(config.dir);
  std::optional<Planner> planner;
  std::optional<Campaign::Golden> golden;
  std::set<u64> published_allocs;
  std::optional<u64> plan_stop;
  u64 plan_frontier = 0;  ///< records fed to `planner` (contiguous prefix)
  if (config.campaign.planner.active()) {
    if (config.campaign.workload != config.workload ||
        config.campaign.num_injections != config.num_injections ||
        config.campaign.seed != config.seed ||
        config.campaign.shard_count != 1) {
      return Status::invalid_argument(
          "gpufi run: SupervisorConfig::campaign must mirror the unsharded "
          "campaign (same workload / num_injections / seed, shard 0/1)");
    }
    auto golden_or = GoldenCache::instance().get_or_run(config.campaign);
    if (!golden_or.is_ok()) return golden_or.status();
    golden = std::move(golden_or).take();
    auto planner_or = Planner::create(config.campaign, golden->profile);
    if (!planner_or.is_ok()) return planner_or.status();
    planner.emplace(std::move(planner_or).take());
    if (std::filesystem::exists(ppath, ec) &&
        std::filesystem::file_size(ppath, ec) > 0) {
      // Resume: already-published decisions are authoritative — they were
      // computed from the identical prefix and must not be re-derived.
      auto existing = load_plan_file(ppath, config.campaign);
      if (!existing.is_ok()) return existing.status();
      for (const auto& [c, alloc] : existing.value().allocs) {
        published_allocs.insert(c);
      }
      plan_stop = existing.value().stop_at;
    } else {
      std::ofstream out(ppath, std::ios::binary | std::ios::trunc);
      out << plan_file_header(config.campaign) << '\n';
      out.flush();
      if (!out) return Status::internal("cannot create plan file " + ppath);
    }
  }

  auto journal_of = [&](u32 s) { return shard_journal_path(config.dir, s); };
  auto lease_of = [&](u32 s) {
    return lease_path_for_journal(journal_of(s));
  };
  auto shard_complete = [&](u32 s) {
    // A planner stop shrinks every slice: only indices below the boundary
    // belong to the campaign (overshoot is dropped at merge).
    const u64 effective =
        plan_stop ? std::min<u64>(*plan_stop, config.num_injections)
                  : config.num_injections;
    const std::set<u64> done = journaled_indices(journal_of(s));
    u64 in_range = 0;
    for (u64 i : done) {
      if (i < effective) ++in_range;
    }
    return in_range >= slice_size(effective, config.shards, s);
  };

  // Crash bookkeeping shared by "worker exited badly", "worker exited
  // cleanly but incomplete", and "worker hung and was killed".
  auto handle_crash = [&](ShardState& shard, int exit_code) {
    const std::set<u64> done = journaled_indices(journal_of(shard.index));
    const bool progress = done.size() > shard.records_at_launch;
    const std::optional<u64> candidate = lowest_unjournaled(
        config.num_injections, config.shards, shard.index, done);
    if (candidate && shard.poison_candidate == candidate) {
      ++shard.poison_streak;
    } else {
      shard.poison_candidate = candidate;
      shard.poison_streak = candidate ? 1 : 0;
    }
    log->event("crash",
               {{"shard", shard.index},
                {"exit", static_cast<u64>(static_cast<u32>(exit_code))},
                {"records", done.size()},
                {"candidate", candidate.value_or(~0ULL)}});
    bool quarantined_now = false;
    if (candidate && shard.poison_streak >= config.poison_threshold) {
      // Journal the verdict BEFORE any worker can act on it: resume must
      // see the same quarantine set the relaunched worker saw, or the
      // merged journal's content would depend on crash timing.
      quarantine.insert(*candidate);
      result.quarantined.push_back(*candidate);
      log->event("quarantine", {{"index", *candidate}});
      GFI_LOG(kWarn) << "shard " << shard.index << ": injection "
                     << *candidate << " killed " << shard.poison_streak
                     << " workers in a row; quarantined";
      shard.poison_streak = 0;
      shard.poison_candidate.reset();
      quarantined_now = true;
    }
    if (progress || quarantined_now) {
      shard.no_progress_crashes = 0;
      shard.backoff_level = 1;
    } else {
      ++shard.no_progress_crashes;
      ++shard.backoff_level;
    }
    if (shard.no_progress_crashes >= config.max_shard_attempts) {
      shard.phase = ShardPhase::kFailed;
      ++result.shards_failed;
      log->event("shard_failed", {{"shard", shard.index}});
      GFI_LOG(kError) << "shard " << shard.index << ": abandoned after "
                      << shard.no_progress_crashes
                      << " consecutive no-progress crashes";
      (void)release_lease(lease_of(shard.index), owner);
      return;
    }
    shard.phase = ShardPhase::kPending;
    shard.backoff_until_ms =
        unix_now_ms() + backoff_delay_ms(shard.backoff_level,
                                         config.backoff_base_ms,
                                         config.backoff_cap_ms, config.seed,
                                         shard.index);
  };

  // Writes the stop decision into every shard journal that does not carry
  // one yet, so each journal matches what an unsharded stopped campaign
  // would have recorded for that slice. A journal that was never created
  // (or has only a torn header) is safe to synthesize fresh: the stop only
  // fires once the whole prefix [0, at) is journaled, so that shard's slice
  // below the boundary must be empty.
  auto ensure_stop_journaled = [&](u64 at) -> Status {
    PlanEvent stop;
    stop.kind = PlanEvent::Kind::kStop;
    stop.stop_at = at;
    for (u32 s = 0; s < config.shards; ++s) {
      const std::string path = journal_of(s);
      auto loaded = Journal::load(path);
      std::unique_ptr<JournalWriter> writer;
      if (loaded.is_ok()) {
        bool has_stop = false;
        for (const PlanEvent& event : loaded.value().plan) {
          if (event.kind == PlanEvent::Kind::kStop) has_stop = true;
        }
        if (has_stop) continue;
        auto opened =
            JournalWriter::open_append(path, loaded.value().valid_bytes);
        if (!opened.is_ok()) return opened.status();
        writer = std::move(opened).take();
      } else {
        CampaignConfig worker = config.campaign;
        worker.shard_index = s;
        worker.shard_count = config.shards;
        auto created =
            JournalWriter::create(path, make_journal_header(worker, *golden));
        if (!created.is_ok()) return created.status();
        writer = std::move(created).take();
      }
      if (Status appended = writer->append_plan(stop); !appended.is_ok()) {
        return appended;
      }
    }
    return Status::ok();
  };

  // Applies a stop decision: kill the fleet FIRST (journaling the stop
  // truncates each journal to its valid byte count, which must not race a
  // live worker's appends), then settle the survivors — the stop-aware
  // shard_complete promotes them to kDone on the next pass.
  auto apply_stop = [&](u64 at) -> Status {
    plan_stop = at;
    result.plan_stop = at;
    log->event("plan_stop", {{"at", at}});
    GFI_LOG(kInfo) << "planner: stopping rule satisfied at " << at << " of "
                   << config.num_injections << " injections";
    for (ShardState& shard : shards) {
      if (shard.phase == ShardPhase::kRunning) {
        if (shard.pid > 0) {
          ::kill(shard.pid, SIGKILL);
          ::waitpid(shard.pid, nullptr, 0);
          shard.pid = -1;
        }
        shard.phase = ShardPhase::kPending;
        shard.backoff_until_ms = 0;
        (void)release_lease(lease_of(shard.index), owner);
      }
    }
    return ensure_stop_journaled(at);
  };

  // One planner step per supervision cycle: pool the shard journals into
  // the global record sequence, advance the observed prefix in strict block
  // order, publish the allocation each frontier block needs (workers park
  // on exactly that line), and test the stopping rule at every completed
  // boundary — the same decision procedure, over the same prefix, as an
  // unsharded campaign deciding locally.
  auto planner_tick = [&]() -> Status {
    std::map<u64, InjectionRecord> pooled;
    for (u32 s = 0; s < config.shards; ++s) {
      auto loaded = Journal::load(journal_of(s));
      if (!loaded.is_ok()) continue;  // not started yet / torn header
      for (const auto& [index, record] : loaded.value().records) {
        pooled.emplace(index, record);
      }
    }
    const u64 k = planner->checkpoint_every();
    while (plan_frontier < config.num_injections) {
      const u64 c = plan_frontier / k;
      const u64 b0 = plan_frontier;
      const u64 b1 = planner->block_end(c);
      if (config.campaign.planner.stratify &&
          published_allocs.find(c) == published_allocs.end()) {
        // Publish before waiting on the block's records: no worker can
        // produce them until the allocation is visible.
        if (Status appended = append_plan_event(ppath, planner->make_alloc(c));
            !appended.is_ok()) {
          return appended;
        }
        published_allocs.insert(c);
        log->event("plan_alloc", {{"ckpt", c}});
      }
      bool block_complete = true;
      for (u64 i = b0; i < b1; ++i) {
        if (pooled.find(i) == pooled.end()) {
          block_complete = false;
          break;
        }
      }
      if (!block_complete) break;
      for (u64 i = b0; i < b1; ++i) planner->observe(pooled.find(i)->second);
      plan_frontier = b1;
      if (config.campaign.planner.stopping() &&
          b1 < config.num_injections && planner->stop_satisfied()) {
        PlanEvent stop;
        stop.kind = PlanEvent::Kind::kStop;
        stop.stop_at = b1;
        if (Status appended = append_plan_event(ppath, stop);
            !appended.is_ok()) {
          return appended;
        }
        return apply_stop(b1);
      }
    }
    return Status::ok();
  };

  if (planner && plan_stop) {
    // Resumed into a campaign the planner already stopped: re-assert the
    // boundary before any completeness is judged.
    result.plan_stop = *plan_stop;
    if (Status stopped = ensure_stop_journaled(*plan_stop); !stopped.is_ok()) {
      return stopped;
    }
  }

  while (true) {
    if (fp::enabled() &&
        fp::hit("supervisor.tick").action == fp::Action::kErr) {
      // Simulated supervisor death (test hook): reap the children so the
      // test process leaks nothing, but leave leases and journals exactly
      // as a real crash would — the takeover/resume paths start from here.
      for (ShardState& shard : shards) {
        if (shard.phase == ShardPhase::kRunning && shard.pid > 0) {
          ::kill(shard.pid, SIGKILL);
          ::waitpid(shard.pid, nullptr, 0);
        }
      }
      return Status::internal("supervisor aborted [failpoint supervisor.tick]");
    }

    u32 running = 0;
    for (const ShardState& shard : shards) {
      if (shard.phase == ShardPhase::kRunning) ++running;
    }

    bool all_settled = true;
    for (ShardState& shard : shards) {
      const u64 now = unix_now_ms();
      switch (shard.phase) {
        case ShardPhase::kDone:
        case ShardPhase::kFailed:
          continue;
        case ShardPhase::kPending: {
          all_settled = false;
          if (now < shard.backoff_until_ms) break;
          if (shard_complete(shard.index)) {
            shard.phase = ShardPhase::kDone;
            log->event("shard_done", {{"shard", shard.index}});
            (void)release_lease(lease_of(shard.index), owner);
            break;
          }
          if (running >= max_workers) break;
          // Lease protocol: a live foreign lease means another supervisor
          // is working this shard — wait (it may die; its TTL will lapse).
          auto prior = read_lease(lease_of(shard.index));
          Lease lease;
          lease.owner = owner;
          lease.pid = static_cast<u64>(::getpid());
          lease.shard = shard.index;
          lease.expires_ms = now + config.lease_ttl_ms;
          Status acquired = acquire_lease(lease_of(shard.index), lease, now);
          if (!acquired.is_ok()) {
            if (acquired.code() == StatusCode::kFailedPrecondition) break;
            return acquired;  // corrupt lease file: operator attention
          }
          if (prior.is_ok() && prior.value().owner != owner) {
            ++result.takeovers;
            log->event("takeover", {{"shard", shard.index}});
            GFI_LOG(kWarn) << "shard " << shard.index
                           << ": took over expired lease of "
                           << prior.value().owner;
          }
          shard.records_at_launch =
              journaled_indices(journal_of(shard.index)).size();
          auto spawned = spawn_worker(config, shard.index, quarantine);
          if (!spawned.is_ok()) return spawned.status();
          shard.pid = spawned.value();
          shard.phase = ShardPhase::kRunning;
          shard.launched_at_ms = now;
          shard.lease_refreshed_ms = now;
          ++running;
          ++result.worker_launches;
          log->event("launch", {{"shard", shard.index},
                                {"pid", static_cast<u64>(shard.pid)}});
          break;
        }
        case ShardPhase::kRunning: {
          all_settled = false;
          if (now >= shard.lease_refreshed_ms + refresh_ms) {
            Lease lease;
            lease.owner = owner;
            lease.pid = static_cast<u64>(::getpid());
            lease.shard = shard.index;
            lease.expires_ms = now + config.lease_ttl_ms;
            if (Status refreshed =
                    acquire_lease(lease_of(shard.index), lease, now);
                refreshed.is_ok()) {
              shard.lease_refreshed_ms = now;
            } else {
              // Lease write failure degrades to a shorter effective TTL;
              // losing the lease is recoverable (another supervisor would
              // resume from the journal), so only warn.
              GFI_LOG(kWarn) << "shard " << shard.index
                             << ": lease refresh failed: "
                             << refreshed.message();
            }
          }
          int wait_status = 0;
          const pid_t reaped = ::waitpid(shard.pid, &wait_status, WNOHANG);
          if (reaped == 0) {
            // Still running: hang detection via heartbeat staleness.
            if (config.stall_timeout_ms > 0 &&
                now >= shard.launched_at_ms + config.stall_timeout_ms) {
              auto age = obs::sidecar_age_ms(
                  obs::status_path_for_journal(journal_of(shard.index)));
              const bool stale =
                  !age.is_ok() || age.value() >= config.stall_timeout_ms;
              if (stale) {
                GFI_LOG(kWarn)
                    << "shard " << shard.index << " (pid " << shard.pid
                    << "): no heartbeat for " << config.stall_timeout_ms
                    << "ms; killing";
                ::kill(shard.pid, SIGKILL);
                ::waitpid(shard.pid, &wait_status, 0);
                ++result.stall_kills;
                ++result.crashes;
                log->event("stall_kill", {{"shard", shard.index}});
                shard.pid = -1;
                handle_crash(shard, 128 + SIGKILL);
              }
            }
            break;
          }
          if (reaped < 0) {
            // ECHILD etc.: we lost track of the worker; treat as a crash.
            shard.pid = -1;
            ++result.crashes;
            handle_crash(shard, -1);
            break;
          }
          shard.pid = -1;
          const int code = exit_code_of(wait_status);
          if (code == 0 && shard_complete(shard.index)) {
            shard.phase = ShardPhase::kDone;
            log->event("shard_done", {{"shard", shard.index}});
            (void)release_lease(lease_of(shard.index), owner);
          } else {
            // Nonzero exit, death by signal, or a "clean" exit that left
            // the slice incomplete (e.g. journal ENOSPC errored the
            // campaign): retry with backoff, resuming from the journal.
            ++result.crashes;
            handle_crash(shard, code);
          }
          break;
        }
      }
    }
    if (planner && !plan_stop) {
      if (Status ticked = planner_tick(); !ticked.is_ok()) return ticked;
      // A stop shrinks every slice: re-judge each shard's completeness
      // immediately instead of sleeping on stale phases.
      if (plan_stop) continue;
    }
    if (all_settled) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }

  std::sort(result.quarantined.begin(), result.quarantined.end());
  log->event("run_done", {{"crashes", result.crashes},
                          {"takeovers", result.takeovers},
                          {"stall_kills", result.stall_kills},
                          {"shards_failed", result.shards_failed}});
  if (result.shards_failed > 0) {
    return std::move(result);  // caller inspects shards_failed; no merge
  }

  std::vector<std::string> paths;
  paths.reserve(config.shards);
  for (u32 s = 0; s < config.shards; ++s) paths.push_back(journal_of(s));
  auto merged = merge_journals(paths);
  if (!merged.is_ok()) return merged.status();
  result.merged = std::move(merged).take();
  return std::move(result);
}

#endif  // _WIN32

}  // namespace gfi::fi
