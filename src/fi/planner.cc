#include "fi/planner.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/jsonl.h"

namespace gfi::fi {
namespace {

constexpr const char* kPlanMagic = "gpufi-plan-v1";

}  // namespace

const std::vector<Outcome>& planner_tracked_outcomes() {
  static const std::vector<Outcome> kTracked = {Outcome::kMasked,
                                                Outcome::kSdc, Outcome::kDue};
  return kTracked;
}

Result<Planner> Planner::create(const CampaignConfig& config,
                                const sim::Profile& profile) {
  const PlannerConfig& pc = config.planner;
  Planner planner;
  planner.rule_ = pc.stop;
  planner.stratify_ = pc.stratify;
  planner.k_ = pc.checkpoint_every;
  planner.num_injections_ = config.num_injections;
  if (pc.active() && planner.k_ == 0) {
    return Status::invalid_argument(
        "planner: checkpoint_every must be > 0 when the planner is active");
  }
  if (pc.stopping()) {
    if (std::isnan(stats::z_for_confidence(pc.stop.confidence))) {
      return Status::invalid_argument(
          "planner: stop confidence must be in (0, 1), got " +
          std::to_string(pc.stop.confidence));
    }
    if (pc.stop.target_half_width >= 0.5) {
      return Status::invalid_argument(
          "planner: stop half-width " +
          std::to_string(pc.stop.target_half_width) +
          " is not a meaningful CI target (must be < 0.5)");
    }
  }
  if (pc.stratify) {
    if (config.group) {
      return Status::invalid_argument(
          "planner: --stratify=group cannot be combined with a pinned "
          "--group (stratifying a single stratum is meaningless)");
    }
    for (int g = 0; g < sim::kInstrGroupCount; ++g) {
      const auto group = static_cast<sim::InstrGroup>(g);
      if (!mode_targets_group(config.model.mode, group)) continue;
      if (profile.group_warp_count(group) == 0) continue;
      planner.eligible_.push_back(group);
    }
    if (planner.eligible_.empty()) {
      return Status::invalid_argument(
          std::string("planner: mode ") + to_string(config.model.mode) +
          " has no instruction-group strata to stratify over");
    }
    u64 total = 0;
    for (const sim::InstrGroup group : planner.eligible_) {
      total += profile.group_warp_count(group);
    }
    for (const sim::InstrGroup group : planner.eligible_) {
      planner.weights_.push_back(
          static_cast<f64>(profile.group_warp_count(group)) /
          static_cast<f64>(total));
    }
    planner.group_trials_.assign(planner.eligible_.size(), 0);
    planner.group_sdc_.assign(planner.eligible_.size(), 0);
  }
  return planner;
}

u64 Planner::block_end(u64 c) const {
  return std::min((c + 1) * k_, num_injections_);
}

void Planner::observe(const InjectionRecord& record) {
  ++observed_;
  ++outcome_counts_[static_cast<int>(record.outcome)];
  if (!stratify_ || !record.site.group) return;
  for (std::size_t h = 0; h < eligible_.size(); ++h) {
    if (eligible_[h] != *record.site.group) continue;
    ++group_trials_[h];
    if (record.outcome == Outcome::kSdc) ++group_sdc_[h];
    break;
  }
}

bool Planner::stop_satisfied() const {
  if (!rule_.enabled()) return false;
  for (const Outcome outcome : planner_tracked_outcomes()) {
    if (!rule_.satisfied(outcome_counts_[static_cast<int>(outcome)],
                         observed_)) {
      return false;
    }
  }
  return true;
}

PlanEvent Planner::make_alloc(u64 c) const {
  PlanEvent event;
  event.kind = PlanEvent::Kind::kAlloc;
  event.checkpoint = c;
  const u64 block = block_end(c) - block_start(c);
  // Block 0 has nothing observed: allocate proportionally to the dynamic-
  // frequency strata. Later blocks reweight by the observed per-stratum
  // SDC spread (Neyman), so high-variance groups draw more of the budget.
  const std::vector<f64> weights =
      observed_ == 0 ? weights_
                     : stats::neyman_weights(weights_, group_sdc_,
                                             group_trials_);
  const std::vector<u64> shares = stats::apportion(weights, block);
  for (std::size_t h = 0; h < eligible_.size(); ++h) {
    event.alloc[static_cast<int>(eligible_[h])] = shares[h];
  }
  return event;
}

std::optional<sim::InstrGroup> Planner::group_for(const PlanEvent& alloc,
                                                  u64 offset) {
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    if (offset < alloc.alloc[g]) return static_cast<sim::InstrGroup>(g);
    offset -= alloc.alloc[g];
  }
  return std::nullopt;
}

// ------------------------------------------------- event serialization ---

std::string plan_event_line(const PlanEvent& event) {
  std::string out = "{";
  if (event.kind == PlanEvent::Kind::kAlloc) {
    jsonl::append_str(out, "plan", "alloc");
    jsonl::append_u64(out, "ckpt", event.checkpoint);
    jsonl::append_array(out, "alloc", event.alloc);
  } else {
    jsonl::append_str(out, "plan", "stop");
    jsonl::append_u64(out, "at", event.stop_at);
  }
  out += '}';
  return out;
}

Result<PlanEvent> parse_plan_event(const std::string& line) {
  jsonl::Fields fields;
  if (!jsonl::parse_fields(line, &fields)) {
    return Status::invalid_argument("plan event: not a JSON object");
  }
  const std::string kind = jsonl::get_str(fields, "plan").value_or("");
  PlanEvent event;
  if (kind == "alloc") {
    event.kind = PlanEvent::Kind::kAlloc;
    auto ckpt = jsonl::get_u64(fields, "ckpt");
    if (!ckpt || !jsonl::copy_array(fields, "alloc", &event.alloc)) {
      return Status::invalid_argument("plan event: bad alloc line");
    }
    event.checkpoint = *ckpt;
    return event;
  }
  if (kind == "stop") {
    event.kind = PlanEvent::Kind::kStop;
    auto at = jsonl::get_u64(fields, "at");
    if (!at) return Status::invalid_argument("plan event: bad stop line");
    event.stop_at = *at;
    return event;
  }
  return Status::invalid_argument("plan event: unknown kind '" + kind + "'");
}

bool is_plan_line(const std::string& line) {
  return line.rfind("{\"plan\":", 0) == 0;
}

// ------------------------------------------------------ the plan file ---

std::string plan_file_header(const CampaignConfig& config) {
  std::string out = "{";
  jsonl::append_str(out, "plan", kPlanMagic);
  jsonl::append_u64(out, "seed", config.seed);
  jsonl::append_u64(out, "num_injections", config.num_injections);
  jsonl::append_u64(out, "ckpt", config.planner.checkpoint_every);
  out += '}';
  return out;
}

Result<PlanFileContents> load_plan_file(const std::string& path,
                                        const CampaignConfig& config) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::not_found("no plan file at " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();

  PlanFileContents contents;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t newline = data.find('\n', pos);
    if (newline == std::string::npos) break;  // torn trailing line: drop
    const std::string line = data.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.empty()) continue;
    if (!have_header) {
      jsonl::Fields fields;
      if (!jsonl::parse_fields(line, &fields) ||
          jsonl::get_str(fields, "plan").value_or("") != kPlanMagic) {
        return Status::failed_precondition(path + " is not a gpufi plan file");
      }
      const u64 seed = jsonl::get_u64(fields, "seed").value_or(0);
      const u64 num = jsonl::get_u64(fields, "num_injections").value_or(0);
      const u64 ckpt = jsonl::get_u64(fields, "ckpt").value_or(0);
      if (seed != config.seed || num != config.num_injections ||
          ckpt != config.planner.checkpoint_every) {
        return Status::failed_precondition(
            path + " was written for a different campaign (seed " +
            std::to_string(seed) + ", " + std::to_string(num) +
            " injections, checkpoint " + std::to_string(ckpt) + ")");
      }
      contents.seed = seed;
      contents.num_injections = num;
      contents.checkpoint_every = ckpt;
      have_header = true;
      continue;
    }
    auto event = parse_plan_event(line);
    if (!event.is_ok()) {
      // Only a torn tail is tolerable; a malformed line with lines after
      // it is corruption.
      if (pos >= data.size()) break;
      return Status::internal("plan file " + path + " is corrupt: " +
                              event.status().message());
    }
    if (event.value().kind == PlanEvent::Kind::kAlloc) {
      contents.allocs[event.value().checkpoint] = event.value();
    } else {
      contents.stop_at = event.value().stop_at;
    }
  }
  if (!have_header) {
    return Status::failed_precondition(path + " has no plan header line");
  }
  return contents;
}

Status append_plan_event(const std::string& path, const PlanEvent& event) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (!file) {
    return Status::internal("cannot open plan file " + path + ": " +
                            std::strerror(errno));
  }
  const std::string line = plan_event_line(event) + "\n";
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file) == line.size() &&
      std::fflush(file) == 0;
  std::fclose(file);
  if (!ok) {
    return Status::internal("cannot append to plan file " + path + ": " +
                            std::strerror(errno));
  }
  return Status::ok();
}

}  // namespace gfi::fi
