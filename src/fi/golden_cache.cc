#include "fi/golden_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "common/logging.h"
#include "fi/journal.h"

namespace gfi::fi {
namespace {

/// FNV-1a over the key string; names the cache file. Collisions are safe:
/// the stored key is compared before use.
u64 fnv1a(const std::string& s) {
  u64 hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex(u64 value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

GoldenCache& GoldenCache::instance() {
  static GoldenCache cache;
  return cache;
}

std::string GoldenCache::key_for(const CampaignConfig& config) {
  const sim::MachineConfig& m = config.machine;
  std::ostringstream key;
  key << config.workload << '|' << m.name << '|' << m.num_sms << '|'
      << m.max_warps_per_sm << '|' << m.max_ctas_per_sm << '|'
      << m.regfile_words_per_sm << '|' << m.shared_bytes_per_sm << '|'
      << m.issue_width << '|' << m.global_mem_bytes << '|' << m.l2_bytes << '|'
      << m.mem_latency_cycles << '|' << m.shared_latency_cycles << '|'
      << m.sm_clock_ghz << '|' << static_cast<int>(m.dram_ecc) << '|'
      << static_cast<int>(m.rf_ecc) << '|' << (m.tensor_core_tf32 ? 1 : 0)
      << '|';
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    key << static_cast<int>(m.latencies.cycles[op]) << ',';
  }
  return key.str();
}

void GoldenCache::set_directory(std::string dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  directory_ = std::move(dir);
}

void GoldenCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t GoldenCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t GoldenCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

Result<Campaign::Golden> GoldenCache::get_or_run(
    const CampaignConfig& config) {
  const std::string key = key_for(config);
  std::string directory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    directory = directory_;
  }

  const std::string file_path =
      directory.empty()
          ? std::string()
          : directory + "/golden-" + hex(fnv1a(key)) + ".json";
  if (!file_path.empty()) {
    std::ifstream file(file_path);
    if (file) {
      std::string line;
      std::getline(file, line);
      auto parsed = parse_golden_line(line);
      // Any disk-layer problem (stale format, hash collision, torn write)
      // degrades to recomputing the golden run — loudly, so an operator can
      // tell a corrupted cache from a cold one.
      if (parsed.is_ok() && parsed.value().first == key) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++hits_;
        entries_[key] = parsed.value().second;
        return std::move(parsed).take().second;
      }
      if (!parsed.is_ok()) {
        GFI_LOG(kWarn) << "golden cache entry " << file_path
                       << " is corrupt (" << parsed.status().message()
                       << "); discarding and recomputing";
      } else {
        GFI_LOG(kWarn) << "golden cache entry " << file_path
                       << " was written for a different campaign "
                          "(filename-hash collision or stale key); "
                          "recomputing";
      }
    }
  }

  auto golden = Campaign::golden_run(config);
  if (!golden.is_ok()) return golden.status();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    entries_[key] = golden.value();
  }
  if (!file_path.empty()) {
    // Persisting is best-effort: the entry is already in memory, so any
    // disk-layer failure (ENOSPC, read-only mount, permissions) degrades to
    // memory-only caching with one warning and no partial file left behind
    // — it must never error the campaign.
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    const bool inject_fail =
        fp::enabled() &&
        fp::hit("golden_cache.persist").action == fp::Action::kErr;
    // Write-then-rename so a concurrent shard never reads a torn entry; the
    // pid suffix keeps two shards' temp files from colliding.
    const std::string tmp_path =
        file_path + ".tmp-" + std::to_string(static_cast<long>(getpid()));
    std::ofstream out(tmp_path, std::ios::trunc);
    bool persisted = false;
    if (out && !inject_fail) {
      out << golden_line(key, golden.value()) << '\n';
      out.close();
      if (out.good()) {
        std::filesystem::rename(tmp_path, file_path, ec);
        persisted = !ec;
      }
    }
    if (!persisted) {
      GFI_LOG(kWarn) << "golden cache: cannot persist " << file_path
                     << (inject_fail ? " [failpoint]" : "")
                     << "; continuing memory-only";
      std::error_code rm;
      std::filesystem::remove(tmp_path, rm);
    }
  }
  return golden;
}

}  // namespace gfi::fi
