#include "fi/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/failpoint.h"
#include "common/jsonl.h"
#include "fi/planner.h"

namespace gfi::fi {
namespace {

// Serialization runs on the shared flat-JSONL helpers (common/jsonl.h), the
// same ones the observability heartbeat stream uses, so escaping, non-finite
// handling (null <-> NaN), and torn-line behaviour stay uniform.
using jsonl::append_array;
using jsonl::append_f64;
using jsonl::append_str;
using jsonl::append_u64;
using jsonl::copy_array;
using jsonl::Fields;
using jsonl::get_f64;
using jsonl::get_str;
using jsonl::get_u64;
using jsonl::parse_fields;

// ------------------------------------------------------ name -> enum -----

std::optional<Outcome> outcome_from_name(const std::string& name) {
  for (int o = 0; o < kOutcomeCount; ++o) {
    const auto outcome = static_cast<Outcome>(o);
    if (name == to_string(outcome)) return outcome;
  }
  return std::nullopt;
}

std::optional<sim::TrapKind> trap_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(sim::TrapKind::kBarrierDivergence);
       ++k) {
    const auto kind = static_cast<sim::TrapKind>(k);
    if (name == sim::trap_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<sim::Opcode> opcode_from_name(const std::string& name) {
  for (int op = 0; op < sim::kOpcodeCount; ++op) {
    const auto opcode = static_cast<sim::Opcode>(op);
    if (name == sim::opcode_name(opcode)) return opcode;
  }
  return std::nullopt;
}

std::optional<sim::InstrGroup> group_from_name(const std::string& name) {
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    if (name == sim::group_name(group)) return group;
  }
  return std::nullopt;
}

std::optional<InjectionMode> mode_from_name(const std::string& name) {
  for (int m = static_cast<int>(InjectionMode::kIov);
       m <= static_cast<int>(InjectionMode::kMemory); ++m) {
    const auto mode = static_cast<InjectionMode>(m);
    if (name == to_string(mode)) return mode;
  }
  return std::nullopt;
}

std::optional<BitFlipModel> flip_from_name(const std::string& name) {
  for (int f = static_cast<int>(BitFlipModel::kSingle);
       f <= static_cast<int>(BitFlipModel::kZeroValue); ++f) {
    const auto flip = static_cast<BitFlipModel>(f);
    if (name == to_string(flip)) return flip;
  }
  return std::nullopt;
}

std::optional<FaultPersistence> persist_from_name(const std::string& name) {
  for (int p = static_cast<int>(FaultPersistence::kTransient);
       p <= static_cast<int>(FaultPersistence::kStuckAt); ++p) {
    const auto persist = static_cast<FaultPersistence>(p);
    if (name == to_string(persist)) return persist;
  }
  return std::nullopt;
}

constexpr const char* kMagic = "gpufi-journal-v1";

Status bad_header(const std::string& why) {
  return Status::invalid_argument("journal header: " + why);
}

/// Canonical planner identity for headers: all-zero when inactive, and the
/// follow-mode plumbing (plan_path, plan_wait_ms) stripped — where the plan
/// came from never changes what the plan is.
PlannerConfig normalized_planner(const PlannerConfig& pc) {
  PlannerConfig out;
  out.stop.target_half_width = 0.0;
  out.stop.confidence = 0.0;
  out.stop.min_samples = 0;
  out.checkpoint_every = 0;
  out.stratify = false;
  out.plan_wait_ms = 0;
  if (!pc.active()) return out;
  if (pc.stopping()) out.stop = pc.stop;
  out.checkpoint_every = pc.checkpoint_every;
  out.stratify = pc.stratify;
  return out;
}

}  // namespace

JournalHeader make_journal_header(const CampaignConfig& config,
                                  const Campaign::Golden& golden) {
  JournalHeader header;
  header.workload = config.workload;
  header.arch = config.machine.name;
  header.mode = to_string(config.model.mode);
  header.flip = to_string(config.model.flip);
  header.persist = to_string(config.model.persistence);
  header.max_retries = config.max_retries;
  if (config.group) header.group = sim::group_name(*config.group);
  header.fixed_bit = config.fixed_bit;
  header.seed = config.seed;
  header.num_injections = config.num_injections;
  header.shard_index = config.shard_index;
  header.shard_count = config.shard_count;
  header.golden_dyn_instrs = golden.dyn_instrs;
  header.golden_cycles = golden.cycles;
  header.planner = normalized_planner(config.planner);
  header.profile = golden.profile;
  return header;
}

Status check_journal_compatible(const JournalHeader& header,
                                const CampaignConfig& config,
                                const Campaign::Golden& golden) {
  const JournalHeader want = make_journal_header(config, golden);
  auto mismatch = [](const char* what, const std::string& got,
                     const std::string& expected) {
    return Status::failed_precondition(
        std::string("journal was written by a different campaign: ") + what +
        " is '" + got + "', campaign has '" + expected + "'");
  };
  if (header.workload != want.workload) {
    return mismatch("workload", header.workload, want.workload);
  }
  if (header.arch != want.arch) return mismatch("arch", header.arch, want.arch);
  if (header.mode != want.mode) return mismatch("mode", header.mode, want.mode);
  if (header.flip != want.flip) return mismatch("flip", header.flip, want.flip);
  if (header.persist != want.persist) {
    return mismatch("persistence", header.persist, want.persist);
  }
  if (header.max_retries != want.max_retries) {
    return mismatch("max_retries", std::to_string(header.max_retries),
                    std::to_string(want.max_retries));
  }
  if (header.group != want.group) {
    return mismatch("group", header.group.value_or("<all>"),
                    want.group.value_or("<all>"));
  }
  if (header.fixed_bit != want.fixed_bit) {
    return mismatch("fixed bit",
                    header.fixed_bit ? std::to_string(*header.fixed_bit)
                                     : "<random>",
                    want.fixed_bit ? std::to_string(*want.fixed_bit)
                                   : "<random>");
  }
  if (header.seed != want.seed) {
    return mismatch("seed", std::to_string(header.seed),
                    std::to_string(want.seed));
  }
  if (header.num_injections != want.num_injections) {
    return mismatch("num_injections", std::to_string(header.num_injections),
                    std::to_string(want.num_injections));
  }
  if (header.shard_index != want.shard_index ||
      header.shard_count != want.shard_count) {
    return mismatch("shard",
                    std::to_string(header.shard_index) + "/" +
                        std::to_string(header.shard_count),
                    std::to_string(want.shard_index) + "/" +
                        std::to_string(want.shard_count));
  }
  if (header.planner != want.planner) {
    return Status::failed_precondition(
        "journal was written by a different campaign: its planner "
        "configuration (stop half-width / confidence / min samples, "
        "checkpoint period, stratification) differs — a journal cannot "
        "resume under a different adaptive schedule");
  }
  if (header.golden_dyn_instrs != want.golden_dyn_instrs ||
      header.golden_cycles != want.golden_cycles) {
    return Status::failed_precondition(
        "journal golden run disagrees with this build's golden run "
        "(simulator or workload changed since the journal was written)");
  }
  return Status::ok();
}

std::string Journal::header_line(const JournalHeader& header) {
  std::string out = "{";
  append_str(out, "journal", kMagic);
  append_str(out, "workload", header.workload);
  append_str(out, "arch", header.arch);
  append_str(out, "mode", header.mode);
  append_str(out, "flip", header.flip);
  append_str(out, "persist", header.persist);
  append_u64(out, "max_retries", header.max_retries);
  if (header.group) append_str(out, "group", *header.group);
  if (header.fixed_bit) append_u64(out, "fixed_bit", *header.fixed_bit);
  append_u64(out, "seed", header.seed);
  append_u64(out, "num_injections", header.num_injections);
  append_u64(out, "shard_index", header.shard_index);
  append_u64(out, "shard_count", header.shard_count);
  // Planner identity fields only appear when the planner is active, so
  // planner-off journals stay byte-identical to pre-planner builds.
  if (header.planner.active()) {
    append_f64(out, "stop_hw", header.planner.stop.target_half_width);
    append_f64(out, "stop_conf", header.planner.stop.confidence);
    append_u64(out, "stop_min", header.planner.stop.min_samples);
    append_u64(out, "ckpt", header.planner.checkpoint_every);
    append_u64(out, "stratify", header.planner.stratify ? 1 : 0);
  }
  append_u64(out, "golden_dyn", header.golden_dyn_instrs);
  append_u64(out, "golden_cycles", header.golden_cycles);
  append_u64(out, "profile_warp_total", header.profile.total_warp_instrs);
  append_u64(out, "profile_thread_total", header.profile.total_thread_instrs);
  append_array(out, "profile_op", header.profile.warp_instrs_by_opcode);
  append_array(out, "profile_warp", header.profile.warp_instrs_by_group);
  append_array(out, "profile_thread", header.profile.thread_instrs_by_group);
  out += '}';
  return out;
}

Result<JournalHeader> Journal::parse_header(const std::string& line) {
  Fields fields;
  if (!parse_fields(line, &fields)) return bad_header("not a JSON object");
  if (get_str(fields, "journal").value_or("") != kMagic) {
    return bad_header("missing or wrong magic (expected " +
                      std::string(kMagic) + ")");
  }
  JournalHeader header;
  auto workload = get_str(fields, "workload");
  auto arch = get_str(fields, "arch");
  auto mode = get_str(fields, "mode");
  auto flip = get_str(fields, "flip");
  auto seed = get_u64(fields, "seed");
  auto num = get_u64(fields, "num_injections");
  auto shard_index = get_u64(fields, "shard_index");
  auto shard_count = get_u64(fields, "shard_count");
  auto golden_dyn = get_u64(fields, "golden_dyn");
  auto golden_cycles = get_u64(fields, "golden_cycles");
  auto warp_total = get_u64(fields, "profile_warp_total");
  auto thread_total = get_u64(fields, "profile_thread_total");
  if (!workload || !arch || !mode || !flip || !seed || !num || !shard_index ||
      !shard_count || !golden_dyn || !golden_cycles || !warp_total ||
      !thread_total) {
    return bad_header("missing required field");
  }
  if (!mode_from_name(*mode)) return bad_header("unknown mode '" + *mode + "'");
  if (!flip_from_name(*flip)) return bad_header("unknown flip '" + *flip + "'");
  header.workload = *workload;
  header.arch = *arch;
  header.mode = *mode;
  header.flip = *flip;
  // Recovery fields are absent in journals written before recovery existed;
  // those campaigns were all transient with no retry budget.
  header.persist = get_str(fields, "persist").value_or("transient");
  if (!persist_from_name(header.persist)) {
    return bad_header("unknown persistence '" + header.persist + "'");
  }
  header.max_retries =
      static_cast<u32>(get_u64(fields, "max_retries").value_or(0));
  header.group = get_str(fields, "group");
  if (header.group && !group_from_name(*header.group)) {
    return bad_header("unknown group '" + *header.group + "'");
  }
  if (auto bit = get_u64(fields, "fixed_bit")) {
    header.fixed_bit = static_cast<u32>(*bit);
  }
  header.seed = *seed;
  header.num_injections = *num;
  header.shard_index = static_cast<u32>(*shard_index);
  header.shard_count = static_cast<u32>(*shard_count);
  // Planner fields are absent in pre-planner journals and planner-off
  // campaigns; every field is set explicitly so the normalized all-zero
  // form round-trips (PlannerConfig's defaults are the ACTIVE defaults).
  header.planner.stop.target_half_width =
      get_f64(fields, "stop_hw").value_or(0.0);
  header.planner.stop.confidence = get_f64(fields, "stop_conf").value_or(0.0);
  header.planner.stop.min_samples = get_u64(fields, "stop_min").value_or(0);
  header.planner.checkpoint_every = get_u64(fields, "ckpt").value_or(0);
  header.planner.stratify = get_u64(fields, "stratify").value_or(0) != 0;
  header.planner.plan_wait_ms = 0;
  header.golden_dyn_instrs = *golden_dyn;
  header.golden_cycles = *golden_cycles;
  header.profile.total_warp_instrs = *warp_total;
  header.profile.total_thread_instrs = *thread_total;
  if (!copy_array(fields, "profile_op",
                  &header.profile.warp_instrs_by_opcode) ||
      !copy_array(fields, "profile_warp",
                  &header.profile.warp_instrs_by_group) ||
      !copy_array(fields, "profile_thread",
                  &header.profile.thread_instrs_by_group)) {
    return bad_header("bad or missing profile arrays");
  }
  return header;
}

std::string Journal::record_line(u64 index, const InjectionRecord& record) {
  std::string out = "{";
  append_u64(out, "i", index);
  append_str(out, "outcome", to_string(record.outcome));
  append_str(out, "pre", to_string(record.pre_recovery));
  append_u64(out, "att", record.attempts);
  append_str(out, "trap", sim::trap_kind_name(record.trap));
  append_f64(out, "err", record.error_magnitude);
  append_u64(out, "dyn", record.dyn_instrs);
  if (record.site.group) {
    append_str(out, "group", sim::group_name(*record.site.group));
  }
  append_u64(out, "occ", record.site.target_occurrence);
  append_u64(out, "lane", record.site.lane_sel);
  append_u64(out, "bit", record.site.bit_sel);
  append_u64(out, "bit2", record.site.bit_sel2);
  append_u64(out, "reg", record.site.reg_sel);
  append_u64(out, "rand", record.site.random_value);
  append_u64(out, "act", record.effect.activated ? 1 : 0);
  append_u64(out, "ecc", record.effect.corrected_by_ecc ? 1 : 0);
  append_u64(out, "sdyn", record.effect.struck_dyn_index);
  append_str(out, "sop", sim::opcode_name(record.effect.struck_opcode));
  append_str(out, "sgrp", sim::group_name(record.effect.struck_group));
  append_u64(out, "slane", record.effect.struck_lane);
  out += '}';
  return out;
}

Result<std::pair<u64, InjectionRecord>> Journal::parse_record(
    const std::string& line) {
  Fields fields;
  if (!parse_fields(line, &fields)) {
    return Status::invalid_argument("journal record: not a JSON object");
  }
  auto index = get_u64(fields, "i");
  auto outcome = get_str(fields, "outcome");
  auto trap = get_str(fields, "trap");
  auto err = get_f64(fields, "err");
  auto dyn = get_u64(fields, "dyn");
  auto occ = get_u64(fields, "occ");
  auto lane = get_u64(fields, "lane");
  auto bit = get_u64(fields, "bit");
  auto bit2 = get_u64(fields, "bit2");
  auto reg = get_u64(fields, "reg");
  auto rand = get_u64(fields, "rand");
  auto act = get_u64(fields, "act");
  auto ecc = get_u64(fields, "ecc");
  auto sdyn = get_u64(fields, "sdyn");
  auto sop = get_str(fields, "sop");
  auto sgrp = get_str(fields, "sgrp");
  auto slane = get_u64(fields, "slane");
  if (!index || !outcome || !trap || !err || !dyn || !occ || !lane || !bit ||
      !bit2 || !reg || !rand || !act || !ecc || !sdyn || !sop || !sgrp ||
      !slane) {
    return Status::invalid_argument("journal record: missing required field");
  }
  InjectionRecord record;
  auto outcome_value = outcome_from_name(*outcome);
  auto trap_value = trap_from_name(*trap);
  auto sop_value = opcode_from_name(*sop);
  auto sgrp_value = group_from_name(*sgrp);
  if (!outcome_value || !trap_value || !sop_value || !sgrp_value) {
    return Status::invalid_argument("journal record: unknown enum name");
  }
  record.outcome = *outcome_value;
  record.trap = *trap_value;
  // Recovery fields: absent in pre-recovery journals, where no retries ran
  // and the pre-recovery classification IS the outcome.
  record.pre_recovery = record.outcome;
  if (auto pre = get_str(fields, "pre")) {
    auto pre_value = outcome_from_name(*pre);
    if (!pre_value) {
      return Status::invalid_argument(
          "journal record: unknown pre-recovery outcome '" + *pre + "'");
    }
    record.pre_recovery = *pre_value;
  }
  record.attempts = static_cast<u32>(get_u64(fields, "att").value_or(1));
  record.error_magnitude = *err;
  record.dyn_instrs = *dyn;
  if (auto group = get_str(fields, "group")) {
    auto group_value = group_from_name(*group);
    if (!group_value) {
      return Status::invalid_argument("journal record: unknown group '" +
                                      *group + "'");
    }
    record.site.group = *group_value;
  }
  record.site.target_occurrence = *occ;
  record.site.lane_sel = static_cast<u32>(*lane);
  record.site.bit_sel = static_cast<u32>(*bit);
  record.site.bit_sel2 = static_cast<u32>(*bit2);
  record.site.reg_sel = static_cast<u16>(*reg);
  record.site.random_value = *rand;
  record.effect.activated = *act != 0;
  record.effect.corrected_by_ecc = *ecc != 0;
  record.effect.struck_dyn_index = *sdyn;
  record.effect.struck_opcode = *sop_value;
  record.effect.struck_group = *sgrp_value;
  record.effect.struck_lane = static_cast<u32>(*slane);
  return std::make_pair(*index, record);
}

Result<JournalContents> Journal::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::not_found("cannot open journal " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();

  JournalContents contents;
  std::size_t pos = 0;
  bool have_header = false;
  while (pos < data.size()) {
    const std::size_t newline = data.find('\n', pos);
    if (newline == std::string::npos) break;  // torn trailing record: drop
    const std::string line = data.substr(pos, newline - pos);
    if (!line.empty()) {
      if (!have_header) {
        auto header = parse_header(line);
        if (!header.is_ok()) return header.status();
        contents.header = std::move(header).take();
        have_header = true;
      } else if (is_plan_line(line)) {
        auto event = parse_plan_event(line);
        if (!event.is_ok()) {
          // Same torn-tail tolerance as records below.
          if (data.find('\n', newline + 1) == std::string::npos &&
              newline + 1 >= data.size()) {
            break;
          }
          return Status::internal("journal " + path + " is corrupt: " +
                                  event.status().message());
        }
        contents.plan.push_back(event.value());
      } else {
        auto record = parse_record(line);
        if (!record.is_ok()) {
          // A malformed line is only tolerable as the file's torn tail.
          if (data.find('\n', newline + 1) == std::string::npos &&
              newline + 1 >= data.size()) {
            break;
          }
          return Status::internal("journal " + path + " is corrupt: " +
                                  record.status().message());
        }
        const FaultModel model{*mode_from_name(contents.header.mode),
                               *flip_from_name(contents.header.flip),
                               *persist_from_name(contents.header.persist)};
        auto [index, parsed] = std::move(record).take();
        parsed.site.model = model;
        contents.records.emplace_back(index, parsed);
      }
    }
    pos = newline + 1;
    contents.valid_bytes = pos;
  }
  if (!have_header) {
    // Distinct code: the writer died before the header line hit the disk, so
    // the file holds no data — callers may safely recreate it.
    return Status::failed_precondition("journal " + path +
                                       " has no complete header line");
  }
  return contents;
}

JournalWriter::~JournalWriter() {
  if (file_) std::fclose(file_);
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::create(
    const std::string& path, const JournalHeader& header) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) {
    return Status::internal("cannot create journal " + path + ": " +
                            std::strerror(errno));
  }
  const std::string line = Journal::header_line(header) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::internal("cannot write journal header to " + path);
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(file));
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::open_append(
    const std::string& path, u64 valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    return Status::internal("cannot truncate journal " + path + ": " +
                            ec.message());
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (!file) {
    return Status::internal("cannot open journal " + path + ": " +
                            std::strerror(errno));
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(file));
}

Status JournalWriter::append(u64 index, const InjectionRecord& record) {
  return append_line(Journal::record_line(index, record));
}

Status JournalWriter::append_plan(const PlanEvent& event) {
  return append_line(plan_event_line(event));
}

Status JournalWriter::append_line(const std::string& payload) {
  const std::string line = payload + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (fp::enabled()) {
    const fp::Hit f = fp::hit("journal.append");
    if (f.action == fp::Action::kErr) {
      return Status::internal(
          "journal append failed: No space left on device [failpoint]");
    }
    if (f.action == fp::Action::kTorn) {
      // Model a crash mid-write: half the line reaches the disk, then the
      // process dies without running destructors. Resume must drop this
      // torn tail and re-run the injection.
      std::fwrite(line.data(), 1, line.size() / 2, file_);
      std::fflush(file_);
      std::_Exit(fp::kKillExitCode);
    }
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Status::internal("journal append failed: " +
                            std::string(std::strerror(errno)));
  }
  if (fp::enabled() &&
      fp::hit("journal.flush").action == fp::Action::kErr) {
    return Status::internal("journal flush failed: Input/output error "
                            "[failpoint]");
  }
  return Status::ok();
}

namespace {

/// Renders "[a, b, c]" for shard-set error messages.
std::string list_u32(const std::vector<u32>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

Result<MergedCampaign> merge_journals(const std::vector<std::string>& paths,
                                      const MergeOptions& options) {
  if (paths.empty()) {
    return Status::invalid_argument("merge_journals: no journals given");
  }
  // Pass 1: load every journal, validate campaign identity, and settle the
  // planner decisions. The stop boundary must be known before coverage is
  // judged — an early stop shrinks the index space every slice is measured
  // against.
  std::vector<JournalContents> journals;
  journals.reserve(paths.size());
  std::map<u64, PlanEvent> allocs;  // checkpoint -> allocation
  std::optional<u64> stop_at;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    auto loaded = Journal::load(paths[p]);
    if (!loaded.is_ok()) return loaded.status();
    JournalContents contents = std::move(loaded).take();
    if (contents.header.shard_count == 0) {
      return Status::internal("journal " + paths[p] +
                              " has shard_count 0");
    }
    if (p > 0) {
      const JournalHeader& h = contents.header;
      const JournalHeader& m = journals[0].header;
      if (h.workload != m.workload || h.arch != m.arch || h.mode != m.mode ||
          h.flip != m.flip || h.persist != m.persist ||
          h.max_retries != m.max_retries || h.group != m.group ||
          h.fixed_bit != m.fixed_bit || h.seed != m.seed ||
          h.num_injections != m.num_injections ||
          h.golden_dyn_instrs != m.golden_dyn_instrs ||
          h.planner != m.planner) {
        return Status::failed_precondition(
            "journal " + paths[p] +
            " belongs to a different campaign than " + paths[0]);
      }
      if (h.shard_count != m.shard_count) {
        return Status::failed_precondition(
            "journal " + paths[p] + " is shard " +
            std::to_string(h.shard_index) + "/" +
            std::to_string(h.shard_count) + " but " + paths[0] +
            " was written with shard_count " +
            std::to_string(m.shard_count) +
            " — these journals do not partition the same campaign");
      }
    }
    for (const PlanEvent& event : contents.plan) {
      if (event.kind == PlanEvent::Kind::kAlloc) {
        auto [it, inserted] = allocs.emplace(event.checkpoint, event);
        if (!inserted && !(it->second == event)) {
          return Status::failed_precondition(
              "journals disagree on the planner allocation at checkpoint " +
              std::to_string(event.checkpoint) +
              " — they did not follow the same plan");
        }
      } else {
        if (stop_at && *stop_at != event.stop_at) {
          return Status::failed_precondition(
              "journals disagree on the planner stop boundary (" +
              std::to_string(*stop_at) + " vs " +
              std::to_string(event.stop_at) +
              ") — they did not follow the same plan");
        }
        stop_at = event.stop_at;
      }
    }
    journals.push_back(std::move(contents));
  }

  MergedCampaign merged;
  merged.header = journals[0].header;
  merged.header.shard_index = 0;
  merged.header.shard_count = 1;
  const u64 num = merged.header.num_injections;
  merged.effective_injections = std::min<u64>(num, stop_at.value_or(num));
  const u64 effective = merged.effective_injections;
  merged.records.resize(effective);
  std::vector<bool> covered(effective, false);
  // shard index -> path of the journal claiming it (duplicate detection).
  std::vector<std::string> shard_owner(journals[0].header.shard_count);
  std::vector<std::string> incomplete_shards;

  // Pass 2: place every record, judging coverage against the effective
  // (possibly stopped-short) index space.
  for (std::size_t p = 0; p < journals.size(); ++p) {
    const JournalContents& contents = journals[p];
    // Shard-set bookkeeping: each shard index may appear exactly once.
    const u32 shard = contents.header.shard_index;
    if (shard < shard_owner.size()) {
      if (!shard_owner[shard].empty()) {
        return Status::failed_precondition(
            "duplicate shard " + std::to_string(shard) + "/" +
            std::to_string(shard_owner.size()) + ": both " +
            shard_owner[shard] + " and " + paths[p]);
      }
      shard_owner[shard] = paths[p];
    }
    // This shard's expected slice size (strided partition of the effective
    // index space) — fewer journaled records means the shard is unfinished.
    u64 expected = 0;
    for (u64 i = shard; i < effective; i += shard_owner.size()) {
      ++expected;
    }
    u64 in_range = 0;
    for (const auto& [index, record] : contents.records) {
      if (index >= num) {
        return Status::internal("journal " + paths[p] + " has record index " +
                                std::to_string(index) + " out of range");
      }
      if (index >= effective) {
        // A worker raced ahead of the stop decision; its extra records are
        // dropped deterministically so the merge matches an uninterrupted
        // run that stopped at the boundary.
        ++merged.overshoot;
        continue;
      }
      ++in_range;
      if (covered[index]) {
        return Status::internal("journals overlap at record index " +
                                std::to_string(index));
      }
      covered[index] = true;
      merged.records[index] = record;
    }
    if (in_range < expected) {
      incomplete_shards.push_back(
          "shard " + std::to_string(shard) + " (" + paths[p] + "): " +
          std::to_string(in_range) + " of " + std::to_string(expected) +
          " records");
    }
  }
  if (!options.allow_partial) {
    std::vector<u32> missing_shards;
    for (u32 s = 0; s < shard_owner.size(); ++s) {
      if (shard_owner[s].empty()) missing_shards.push_back(s);
    }
    if (!missing_shards.empty()) {
      return Status::failed_precondition(
          "merge is missing shard(s) " + list_u32(missing_shards) + " of " +
          std::to_string(shard_owner.size()) +
          " (pass --allow-partial to merge what is present)");
    }
    if (!incomplete_shards.empty()) {
      std::string detail;
      for (const std::string& s : incomplete_shards) {
        detail += "\n  " + s;
      }
      return Status::failed_precondition(
          "merge has incomplete shard(s):" + detail +
          "\n(resume them, or pass --allow-partial to merge what is "
          "present)");
    }
  }
  for (u64 i = 0; i < covered.size(); ++i) {
    merged.missing += covered[i] ? 0 : 1;
  }
  if (merged.missing > 0) {
    // allow_partial: compact to the covered subsequence, in index order.
    std::vector<InjectionRecord> present;
    present.reserve(covered.size() - merged.missing);
    for (u64 i = 0; i < covered.size(); ++i) {
      if (!covered[i]) continue;
      merged.indices.push_back(i);
      present.push_back(merged.records[i]);
    }
    merged.records = std::move(present);
  } else {
    merged.indices.resize(merged.records.size());
    for (u64 i = 0; i < merged.indices.size(); ++i) merged.indices[i] = i;
  }
  for (const InjectionRecord& record : merged.records) {
    ++merged.outcome_counts[static_cast<int>(record.outcome)];
  }
  // Rebuilt plan: allocations in checkpoint order (dropping any whose whole
  // block lies beyond the stop — a live campaign never journals those), then
  // the stop event. This is exactly what an uninterrupted unsharded run
  // journals, which is what makes merged output byte-stable.
  const u64 ckpt = merged.header.planner.checkpoint_every;
  for (const auto& [c, event] : allocs) {
    if (ckpt > 0 && c * ckpt >= effective) continue;
    merged.plan.push_back(event);
  }
  if (stop_at) {
    PlanEvent stop;
    stop.kind = PlanEvent::Kind::kStop;
    stop.stop_at = *stop_at;
    merged.plan.push_back(stop);
  }
  return merged;
}

Status write_merged_journal(const std::string& path,
                            const MergedCampaign& merged) {
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::internal("cannot create " + tmp + ": " +
                              std::strerror(errno));
    }
    out << Journal::header_line(merged.header) << '\n';
    // Interleave plan lines exactly the way a live campaign journals them —
    // an allocation line precedes its block's records, the stop line comes
    // last — so a complete merge of an adaptive campaign is byte-identical
    // to the unsharded journal.
    std::map<u64, const PlanEvent*> pending_allocs;
    const PlanEvent* stop = nullptr;
    for (const PlanEvent& event : merged.plan) {
      if (event.kind == PlanEvent::Kind::kAlloc) {
        pending_allocs[event.checkpoint] = &event;
      } else {
        stop = &event;
      }
    }
    const u64 ckpt = merged.header.planner.checkpoint_every;
    for (std::size_t k = 0; k < merged.records.size(); ++k) {
      if (ckpt > 0) {
        while (!pending_allocs.empty() &&
               pending_allocs.begin()->first * ckpt <= merged.indices[k]) {
          out << plan_event_line(*pending_allocs.begin()->second) << '\n';
          pending_allocs.erase(pending_allocs.begin());
        }
      }
      out << Journal::record_line(merged.indices[k], merged.records[k])
          << '\n';
    }
    // A partial merge can leave allocations whose records are all missing;
    // they still belong in the file, before the stop line.
    for (const auto& [c, event] : pending_allocs) {
      out << plan_event_line(*event) << '\n';
    }
    if (stop != nullptr) out << plan_event_line(*stop) << '\n';
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::internal("write to " + tmp + " failed: " +
                              std::strerror(errno));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::internal("cannot rename " + tmp + " to " + path + ": " +
                            ec.message());
  }
  return Status::ok();
}

std::string golden_line(const std::string& key,
                        const Campaign::Golden& golden) {
  std::string out = "{";
  append_str(out, "golden", kMagic);
  append_str(out, "key", key);
  append_u64(out, "dyn", golden.dyn_instrs);
  append_u64(out, "cycles", golden.cycles);
  append_u64(out, "profile_warp_total", golden.profile.total_warp_instrs);
  append_u64(out, "profile_thread_total", golden.profile.total_thread_instrs);
  append_array(out, "profile_op", golden.profile.warp_instrs_by_opcode);
  append_array(out, "profile_warp", golden.profile.warp_instrs_by_group);
  append_array(out, "profile_thread", golden.profile.thread_instrs_by_group);
  out += '}';
  return out;
}

Result<std::pair<std::string, Campaign::Golden>> parse_golden_line(
    const std::string& line) {
  Fields fields;
  if (!parse_fields(line, &fields)) {
    return Status::invalid_argument("golden cache entry: not a JSON object");
  }
  if (get_str(fields, "golden").value_or("") != kMagic) {
    return Status::invalid_argument("golden cache entry: wrong magic");
  }
  auto key = get_str(fields, "key");
  auto dyn = get_u64(fields, "dyn");
  auto cycles = get_u64(fields, "cycles");
  auto warp_total = get_u64(fields, "profile_warp_total");
  auto thread_total = get_u64(fields, "profile_thread_total");
  if (!key || !dyn || !cycles || !warp_total || !thread_total) {
    return Status::invalid_argument("golden cache entry: missing field");
  }
  Campaign::Golden golden;
  golden.dyn_instrs = *dyn;
  golden.cycles = *cycles;
  golden.profile.total_warp_instrs = *warp_total;
  golden.profile.total_thread_instrs = *thread_total;
  if (!copy_array(fields, "profile_op",
                  &golden.profile.warp_instrs_by_opcode) ||
      !copy_array(fields, "profile_warp",
                  &golden.profile.warp_instrs_by_group) ||
      !copy_array(fields, "profile_thread",
                  &golden.profile.thread_instrs_by_group)) {
    return Status::invalid_argument("golden cache entry: bad profile arrays");
  }
  return std::make_pair(*key, golden);
}

}  // namespace gfi::fi
