// Golden-run cache: memoizes the phase-1 fault-free reference keyed by
// (workload, arch, machine parameters), so resuming a journaled campaign,
// running N shards in one process, or comparing architectures never
// recomputes the same golden run. An optional directory-backed layer shares
// goldens across processes (each shard of a CI matrix job hits the same
// cache file instead of re-profiling).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "fi/campaign.h"

namespace gfi::fi {

class GoldenCache {
 public:
  /// Process-wide instance used by Campaign::run.
  static GoldenCache& instance();

  /// Returns the golden run for `config`, computing and caching it on miss.
  /// Lookups key on the workload plus every MachineConfig field that can
  /// influence execution, so e.g. toy-with-ECC and toy-without-ECC never
  /// alias.
  Result<Campaign::Golden> get_or_run(const CampaignConfig& config);

  /// Enables ("" disables) the on-disk layer: goldens are stored as
  /// single-line JSON files under `dir` (created on demand).
  void set_directory(std::string dir);

  /// Drops the in-memory layer (tests; the disk layer is left alone).
  void clear();

  // Observability for tests and the CLI.
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

  /// The cache key for `config` (exposed for tests).
  static std::string key_for(const CampaignConfig& config);

 private:
  GoldenCache() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Campaign::Golden> entries_;
  std::string directory_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace gfi::fi
