#include "fi/campaign.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>

#include "common/bitutil.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fi/golden_cache.h"
#include "fi/journal.h"
#include "fi/planner.h"
#include "obs/heartbeat.h"
#include "obs/registry.h"
#include "recover/retry.h"
#include "sa/ace.h"
#include "sassim/device.h"
#include "workloads/workload.h"

namespace gfi::fi {
namespace {

/// Watchdog budget: generous multiple of the golden dynamic length so true
/// hangs are caught without misclassifying slow-but-progressing runs.
u64 watchdog_for(const CampaignConfig& config, u64 golden_dyn_instrs) {
  if (config.watchdog_instrs) return *config.watchdog_instrs;
  return golden_dyn_instrs * config.watchdog_multiplier +
         config.watchdog_floor;
}

/// Samples the group to strike for instruction-targeted modes, weighted by
/// dynamic frequency over the groups the mode can reach. A pinned group —
/// config.group, or a planner-assigned `stratum` — consumes no RNG draw, so
/// every other field of the record stays a pure function of (seed, index).
Result<sim::InstrGroup> sample_group(
    const CampaignConfig& config, const sim::Profile& profile, Rng& rng,
    const std::optional<sim::InstrGroup>& stratum) {
  const std::optional<sim::InstrGroup>& pinned =
      stratum ? stratum : config.group;
  if (pinned) {
    if (!mode_targets_group(config.model.mode, *pinned)) {
      return Status::invalid_argument(
          std::string("mode ") + to_string(config.model.mode) +
          " cannot target group " + sim::group_name(*pinned));
    }
    if (profile.group_warp_count(*pinned) == 0) {
      return Status::invalid_argument(
          std::string("workload '") + config.workload +
          "' executes no instructions in group " + sim::group_name(*pinned));
    }
    return *pinned;
  }
  u64 total = 0;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    if (mode_targets_group(config.model.mode, group)) {
      total += profile.group_warp_count(group);
    }
  }
  if (total == 0) {
    return Status::invalid_argument(
        std::string("workload '") + config.workload +
        "' has no instructions eligible for mode " +
        to_string(config.model.mode));
  }
  u64 pick = rng.next_below(total);
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    if (!mode_targets_group(config.model.mode, group)) continue;
    const u64 count = profile.group_warp_count(group);
    if (pick < count) return group;
    pick -= count;
  }
  return static_cast<sim::InstrGroup>(0);  // unreachable
}

Result<FaultSite> sample_site(const CampaignConfig& config,
                              const sim::Profile& profile,
                              u64 golden_dyn_instrs, Rng& rng,
                              const std::optional<sim::InstrGroup>& stratum) {
  FaultSite site;
  site.model = config.model;
  switch (config.model.mode) {
    case InjectionMode::kIov:
    case InjectionMode::kPred:
    case InjectionMode::kIoa: {
      auto group = sample_group(config, profile, rng, stratum);
      if (!group.is_ok()) return group.status();
      site.group = group.value();
      site.target_occurrence =
          rng.next_below(profile.group_warp_count(group.value()));
      break;
    }
    case InjectionMode::kRf:
      site.target_occurrence = rng.next_below(std::max<u64>(golden_dyn_instrs, 1));
      site.reg_sel = static_cast<u16>(rng.next_u32());
      break;
    case InjectionMode::kMemory:
      break;  // the address is sampled after setup (needs the allocation map)
  }
  site.lane_sel = rng.next_u32();
  site.bit_sel = config.fixed_bit ? *config.fixed_bit : rng.next_u32();
  site.bit_sel2 = rng.next_u32();
  site.random_value = rng.next();
  return site;
}

/// A sampled pre-launch memory upset. Sampled once per injection (not per
/// attempt) so a stuck-at retry re-applies the identical fault.
struct MemoryFault {
  u64 addr = 0;
  u32 mask = 0;
};

std::optional<MemoryFault> sample_memory_fault(const sim::GlobalMemory& memory,
                                               const FaultSite& site,
                                               Rng& rng) {
  const u64 allocated = memory.bytes_allocated();
  if (allocated < 4) return std::nullopt;
  const u64 words = allocated / 4;
  MemoryFault fault;
  fault.addr = sim::GlobalMemory::kBaseAddress + rng.next_below(words) * 4;
  switch (site.model.flip) {
    case BitFlipModel::kSingle:
      fault.mask = 1u << (site.bit_sel % 32);
      break;
    case BitFlipModel::kDouble: {
      u32 b2 = site.bit_sel2 % 32;
      if (b2 == site.bit_sel % 32) b2 = (b2 + 1) % 32;
      fault.mask = (1u << (site.bit_sel % 32)) | (1u << b2);
      break;
    }
    case BitFlipModel::kRandomValue:
    case BitFlipModel::kZeroValue:
      // A whole-word upset: random multi-bit pattern (never zero).
      fault.mask = static_cast<u32>(site.random_value) | 1u;
      break;
  }
  return fault;
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "Masked";
    case Outcome::kMaskedTolerated: return "Tolerated";
    case Outcome::kSdc: return "SDC";
    case Outcome::kDue: return "DUE";
    case Outcome::kHang: return "Hang";
    case Outcome::kDetectedCorrected: return "Corrected";
    case Outcome::kNotActivated: return "NotActivated";
    case Outcome::kRecoveredRetry: return "RecoveredRetry";
    case Outcome::kUnrecoverableDue: return "UnrecoverableDUE";
    case Outcome::kQuarantined: return "Quarantined";
  }
  return "?";
}

Outcome outcome_for_trap(sim::TrapKind kind) {
  return kind == sim::TrapKind::kWatchdogTimeout ? Outcome::kHang
                                                 : Outcome::kDue;
}

f64 CampaignResult::rate(Outcome outcome) const {
  if (records.empty()) return 0.0;
  return static_cast<f64>(count(outcome)) / static_cast<f64>(records.size());
}

stats::Interval CampaignResult::rate_interval(Outcome outcome) const {
  return stats::wilson_interval(count(outcome), records.size());
}

Result<Campaign::Golden> Campaign::golden_run(const CampaignConfig& config) {
  auto workload = wl::make_workload(config.workload);
  if (!workload) {
    return Status::not_found("unknown workload '" + config.workload + "'");
  }
  sim::Device device(config.machine);
  auto spec = workload->setup(device);
  if (!spec.is_ok()) return spec.status();

  // Profile natively (LaunchOptions::profile) instead of via ProfilerHook:
  // with no hooks attached the golden run takes the clean execution path.
  // The engine's counts are identical to the hook's.
  sim::Profile profile;
  sim::LaunchOptions options;
  options.profile = &profile;
  options.engine = config.engine;
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params, options);
  if (!launch.is_ok()) return launch.status();
  if (!launch.value().ok()) {
    return Status::internal("golden run of '" + config.workload +
                            "' trapped: " + launch.value().trap.to_string());
  }
  auto checked = workload->check(device);
  if (!checked.is_ok()) return checked.status();
  if (checked.value().trap != sim::TrapKind::kNone ||
      !checked.value().result.passed()) {
    return Status::internal("golden run of '" + config.workload +
                            "' failed its own reference check (max rel err " +
                            std::to_string(checked.value().result.max_rel_err) +
                            ")");
  }
  Golden golden;
  golden.profile = profile;
  golden.dyn_instrs = launch.value().dyn_warp_instrs;
  golden.cycles = launch.value().cycles;
  return golden;
}

namespace {

/// True when the analytic fast path may credit `entry` for this sampled
/// injection. Fully-dead, no-op, and predicated-off sites always qualify;
/// a kPartialDead site qualifies only under prune_dead_bits, and only when
/// every bit the sampled single/double flip would strike is statically dead
/// (mirroring injector.cc strike_iov's bit arithmetic exactly).
bool credit_allowed(const CampaignConfig& config, const sa::PruneMap& map,
                    const sa::PruneEntry& entry, const FaultSite& site) {
  if (entry.exec_mask == 0 || entry.cls != sa::SiteClass::kPartialDead) {
    return true;
  }
  if (!config.prune_dead_bits || config.model.mode != InjectionMode::kIov) {
    return false;
  }
  const sa::StaticSiteAnalysis& analysis = map.analysis;
  const u32 bits = analysis.strike_span(entry.pc) * 32u;
  if (bits == 0) return false;
  switch (config.model.flip) {
    case BitFlipModel::kSingle:
      return analysis.strike_bit_dead(entry.pc, site.bit_sel % bits);
    case BitFlipModel::kDouble: {
      const u32 b1 = site.bit_sel % bits;
      u32 b2 = site.bit_sel2 % bits;
      if (b2 == b1) b2 = (b2 + 1) % bits;
      return analysis.strike_bit_dead(entry.pc, b1) &&
             analysis.strike_bit_dead(entry.pc, b2);
    }
    case BitFlipModel::kRandomValue:
    case BitFlipModel::kZeroValue:
      return false;  // whole-footprint corruption touches the live bits
  }
  return false;
}

/// Fills `record` for a prunable site without simulating, reproducing field
/// by field what the launch would have recorded:
///  - exec_mask == 0: the injector never activates (predicated-off site).
///  - kNoop: the strike hits nothing corruptible (e.g. RZ-dst atomic);
///    activated stays false.
///  - kDead (or kPartialDead with every struck bit dead): the strike lands
///    but nothing it flips is ever read, so the run completes with
///    fault-free output and the golden check verdict.
void credit_pruned(const sa::PruneMap& map, const sa::PruneEntry& entry,
                   u64 golden_dyn_instrs, InjectionRecord& record) {
  record.effect.struck_dyn_index = entry.dyn_index;
  record.effect.struck_opcode = entry.op;
  record.effect.struck_group = *record.site.group;
  record.attempts = 1;
  record.dyn_instrs = golden_dyn_instrs;
  record.trap = sim::TrapKind::kNone;
  if (entry.exec_mask == 0) {
    record.outcome = record.pre_recovery = Outcome::kNotActivated;
    return;
  }
  record.effect.struck_lane =
      InjectorHook::pick_lane(entry.exec_mask, record.site.lane_sel);
  if (entry.cls == sa::SiteClass::kNoop) {
    record.outcome = record.pre_recovery = Outcome::kNotActivated;
    return;
  }
  record.effect.activated = true;
  record.error_magnitude = map.golden_max_rel_err;
  record.outcome = record.pre_recovery = map.golden_bitwise_equal
                                             ? Outcome::kMasked
                                             : Outcome::kMaskedTolerated;
}

}  // namespace

Result<InjectionRecord> Campaign::run_single(
    const CampaignConfig& config, const sim::Profile& profile,
    u64 golden_dyn_instrs, std::size_t run_index,
    const sa::PruneMap* prune_map, bool* pruned_out, obs::Registry* metrics,
    std::optional<sim::InstrGroup> stratum) {
  Rng rng = Rng::for_stream(config.seed, run_index);
  auto site = sample_site(config, profile, golden_dyn_instrs, rng, stratum);
  if (!site.is_ok()) return site.status();

  // Quarantined injections get their site sampled (the RNG stream and thus
  // every other record stays bit-identical) but are never simulated — this
  // is how the supervisor stops a poison injection from killing worker
  // after worker. attempts = 0 marks "never launched".
  if (!config.quarantine.empty() && config.is_quarantined(run_index)) {
    InjectionRecord record;
    record.site = site.value();
    record.outcome = record.pre_recovery = Outcome::kQuarantined;
    record.attempts = 0;
    record.dyn_instrs = 0;
    return record;
  }
  // Poison-injection modeling for tests/chaos: placed after the quarantine
  // short-circuit so a quarantined index no longer triggers its kill.
  if (fp::enabled()) fp::hit("inject.execute", run_index);

  // Analytic fast path: nothing after sample_site consumes the RNG for
  // IOV/PRED, so skipping the simulation cannot perturb any other record.
  // Partial-dead entries fall through to the full simulation unless the
  // sampled bits are all provably dead (credit_allowed).
  if (prune_map && site.value().group &&
      (config.model.mode == InjectionMode::kIov ||
       config.model.mode == InjectionMode::kPred)) {
    const sa::PruneEntry* entry = prune_map->find(
        *site.value().group, site.value().target_occurrence);
    if (entry && credit_allowed(config, *prune_map, *entry, site.value())) {
      InjectionRecord record;
      record.site = site.value();
      credit_pruned(*prune_map, *entry, golden_dyn_instrs, record);
      if (pruned_out) *pruned_out = true;
      return record;
    }
  }

  auto workload = wl::make_workload(config.workload);
  if (!workload) {
    return Status::not_found("unknown workload '" + config.workload + "'");
  }
  sim::Device device(config.machine);
  auto spec = workload->setup(device);
  if (!spec.is_ok()) return spec.status();

  InjectionRecord record;
  record.site = site.value();

  const bool memory_mode = config.model.mode == InjectionMode::kMemory;
  // Memory mode samples its struck word once, before any attempt, so a
  // stuck-at retry re-applies the identical upset (and so the rng sequence
  // matches pre-recovery campaigns bit-exactly).
  std::optional<MemoryFault> mem_fault;
  if (memory_mode) {
    mem_fault = sample_memory_fault(device.memory(), site.value(), rng);
  }
  const u64 watchdog = watchdog_for(config, golden_dyn_instrs);
  const bool stuck_at =
      config.model.persistence == FaultPersistence::kStuckAt;

  bool not_activated = false;
  u64 first_launch_sbe = 0;
  std::optional<wl::Workload::Checked> final_check;

  // Path-selection telemetry: resolved once, bumped per launch attempt.
  obs::Counter* path_instrumented =
      metrics ? &metrics->counter("campaign.path.instrumented") : nullptr;
  obs::Counter* path_clean =
      metrics ? &metrics->counter("campaign.path.clean") : nullptr;
  // Dispatch-tier telemetry, keyed on what the engine actually ran
  // (LaunchResult::tier_used) rather than what the launch requested.
  // Purely additive: counters go only to --metrics-out snapshots, never
  // journals, so tier pins cannot perturb journal diffs.
  obs::Counter* tier_counter[static_cast<int>(sim::EngineTier::kThreaded) + 1] =
      {};
  obs::Counter* tier_downgrades = nullptr;
  if (metrics) {
    for (const sim::EngineTier tier :
         {sim::EngineTier::kInstrumented, sim::EngineTier::kClean,
          sim::EngineTier::kThreaded}) {
      tier_counter[static_cast<int>(tier)] = &metrics->counter(
          std::string("engine.dispatch.") + sim::engine_tier_name(tier));
    }
    tier_downgrades = &metrics->counter("engine.dispatch.downgrades");
  }

  // One attempt = arm fault (if due) + launch + result check. The retry
  // executor restores the pre-attempt checkpoint between calls, so every
  // attempt sees bit-identical initial device state.
  auto attempt_fn = [&](u32 attempt) -> Result<recover::Attempt> {
    const bool armed = attempt == 0 || stuck_at;
    InjectorHook injector(site.value(), device.config());
    sim::LaunchOptions options;
    options.watchdog_instrs = watchdog;
    options.engine = config.engine;
    if (memory_mode) {
      if (armed && mem_fault) {
        device.memory().inject_fault(mem_fault->addr, mem_fault->mask);
      }
    } else if (armed) {
      options.hooks.push_back(&injector);
    }
    // Hooks attached selects the instrumented engine; memory-mode and
    // unarmed retry launches run clean (sassim decides the same way).
    if (obs::Counter* path = options.hooks.empty() ? path_clean
                                                   : path_instrumented) {
      path->inc();
    }

    auto launch = device.launch(workload->program(), spec.value().grid,
                                spec.value().block, spec.value().params,
                                options);
    if (!launch.is_ok()) return launch.status();
    if (metrics) {
      tier_counter[static_cast<int>(launch.value().tier_used)]->inc();
      if (launch.value().downgraded) tier_downgrades->inc();
    }
    if (attempt == 0) {
      if (memory_mode) {
        record.effect.activated = mem_fault.has_value();
      } else {
        record.effect = injector.effect();
      }
      first_launch_sbe = launch.value().ecc.corrected_sbe;
    }

    recover::Attempt result;
    result.dyn_instrs = launch.value().dyn_warp_instrs;
    final_check.reset();
    if (launch.value().trap.fired()) {
      result.trap = launch.value().trap;
      return result;
    }
    if (attempt == 0 && !memory_mode && !record.effect.activated) {
      not_activated = true;  // site predicated off; output is golden
      return result;
    }
    auto checked = workload->check(device);
    if (!checked.is_ok()) return checked.status();
    final_check = checked.value();
    if (checked.value().trap != sim::TrapKind::kNone) {
      // DBE consumed during result copy-back: detected at the API boundary.
      result.trap.kind = checked.value().trap;
    }
    return result;
  };

  auto executed = recover::run_with_retry(
      device, recover::RetryPolicy{config.max_retries}, attempt_fn);
  if (!executed.is_ok()) return executed.status();
  const recover::RetryResult& retry = executed.value();
  record.attempts = retry.attempts;
  record.dyn_instrs = retry.total_dyn_instrs;

  if (retry.gave_up()) {
    record.trap = retry.last_trap.kind;
    record.pre_recovery = outcome_for_trap(retry.first_trap.kind);
    // With recovery off the historical labels (DUE / Hang) stand unchanged.
    record.outcome = config.max_retries == 0 ? record.pre_recovery
                                             : Outcome::kUnrecoverableDue;
    return record;
  }

  if (not_activated) {
    record.outcome = record.pre_recovery = Outcome::kNotActivated;
    return record;
  }

  // Final attempt completed and was checked.
  const wl::CheckResult& result = final_check->result;
  record.error_magnitude = result.max_rel_err;
  if (retry.recovered()) {
    // The run would have been lost without recovery; record what was
    // detected and whether the relaunch actually produced a good answer.
    record.trap = retry.first_trap.kind;
    record.pre_recovery = outcome_for_trap(retry.first_trap.kind);
    record.outcome =
        result.passed() ? Outcome::kRecoveredRetry : Outcome::kSdc;
    return record;
  }
  if (record.effect.corrected_by_ecc) {
    record.outcome = Outcome::kDetectedCorrected;
  } else if (result.bitwise_equal) {
    // For memory mode, credit ECC when the launch observed corrections.
    record.outcome = (memory_mode && first_launch_sbe > 0)
                         ? Outcome::kDetectedCorrected
                         : Outcome::kMasked;
  } else if (result.within_tolerance) {
    record.outcome = Outcome::kMaskedTolerated;
  } else {
    record.outcome = Outcome::kSdc;
  }
  record.pre_recovery = record.outcome;
  return record;
}

Result<sa::PruneMap> Campaign::build_prune_map(const CampaignConfig& config) {
  auto workload = wl::make_workload(config.workload);
  if (!workload) {
    return Status::not_found("unknown workload '" + config.workload + "'");
  }
  sim::Device device(config.machine);
  auto spec = workload->setup(device);
  if (!spec.is_ok()) return spec.status();

  sa::PruneMap map;
  map.analysis = sa::StaticSiteAnalysis::analyze(workload->program());
  sa::SiteMapHook hook(map);
  sim::LaunchOptions options;
  options.hooks.push_back(&hook);
  options.engine = config.engine;
  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params, options);
  if (!launch.is_ok()) return launch.status();
  if (!launch.value().ok()) {
    return Status::internal("prune-map run of '" + config.workload +
                            "' trapped: " + launch.value().trap.to_string());
  }
  auto checked = workload->check(device);
  if (!checked.is_ok()) return checked.status();
  if (checked.value().trap != sim::TrapKind::kNone) {
    return Status::internal("prune-map check of '" + config.workload +
                            "' trapped");
  }
  map.golden_bitwise_equal = checked.value().result.bitwise_equal;
  map.golden_max_rel_err = checked.value().result.max_rel_err;
  return map;
}

Result<CampaignResult> Campaign::run(const CampaignConfig& config_in) {
  // Local normalized copy: the quarantine set is sorted once here so the
  // binary-search lookup inside the hot loop is valid, and everything below
  // (journal headers included) sees the same view.
  CampaignConfig config = config_in;
  config.normalize_quarantine();
  if (config.num_injections == 0) {
    return Status::invalid_argument("num_injections must be > 0");
  }
  if (config.shard_count == 0) {
    return Status::invalid_argument("shard_count must be > 0");
  }
  if (config.shard_index >= config.shard_count) {
    return Status::invalid_argument(
        "shard_index " + std::to_string(config.shard_index) +
        " out of range for shard_count " +
        std::to_string(config.shard_count));
  }
  if (config.planner.active() && config.shard_count > 1 &&
      !config.planner.plan_path) {
    return Status::invalid_argument(
        "adaptive planner: a sharded campaign cannot make planner decisions "
        "locally (no shard sees the full record prefix a decision needs) — "
        "run it under `gpufi run`, which publishes a plan file the workers "
        "follow");
  }
  obs::Registry& reg = config.metrics ? *config.metrics
                                      : obs::Registry::global();

  // Golden-cache effectiveness: the cache is process-wide, so attribute the
  // delta this lookup produced rather than its absolute totals.
  const std::size_t cache_hits_before = GoldenCache::instance().hits();
  const std::size_t cache_misses_before = GoldenCache::instance().misses();
  auto golden = GoldenCache::instance().get_or_run(config);
  reg.counter("campaign.golden_cache.hits")
      .inc(GoldenCache::instance().hits() - cache_hits_before);
  reg.counter("campaign.golden_cache.misses")
      .inc(GoldenCache::instance().misses() - cache_misses_before);
  if (!golden.is_ok()) return golden.status();

  CampaignResult result;
  result.config = config;
  result.profile = golden.value().profile;
  result.golden_dyn_instrs = golden.value().dyn_instrs;
  result.golden_cycles = golden.value().cycles;
  // This shard's strided slice of the global index space. Injection i
  // depends only on (seed, i), so the partition is bit-exact.
  for (u64 i = config.shard_index; i < config.num_injections;
       i += config.shard_count) {
    result.run_indices.push_back(i);
  }
  result.records.resize(result.run_indices.size());

  // Journal: restore completed injections, then append the rest. Planner
  // decisions journaled by the interrupted run are restored alongside them —
  // resume must replay the identical schedule, not recompute a fresh one.
  std::vector<u8> done(result.run_indices.size(), 0);
  std::map<u64, PlanEvent> journaled_allocs;  // checkpoint -> allocation
  std::optional<u64> journaled_stop;
  std::unique_ptr<JournalWriter> writer;
  if (config.journal_path) {
    const std::string& path = *config.journal_path;
    std::error_code ec;
    const bool exists = std::filesystem::exists(path, ec) &&
                        std::filesystem::file_size(path, ec) > 0;
    Result<JournalContents> loaded =
        exists ? Journal::load(path)
               : Status::not_found("no journal at " + path);
    if (exists && !loaded.is_ok() &&
        loaded.status().code() != StatusCode::kFailedPrecondition) {
      return loaded.status();  // kFailedPrecondition = torn header: recreate
    }
    if (loaded.is_ok()) {
      auto compatible =
          check_journal_compatible(loaded.value().header, config,
                                   golden.value());
      if (!compatible.is_ok()) return compatible;
      for (const auto& [index, record] : loaded.value().records) {
        if (index >= config.num_injections ||
            index % config.shard_count != config.shard_index) {
          return Status::internal(
              "journal " + path + " contains record " +
              std::to_string(index) + " outside this shard");
        }
        const std::size_t slot =
            (index - config.shard_index) / config.shard_count;
        if (done[slot]) continue;  // duplicate append; first one wins
        done[slot] = 1;
        result.records[slot] = record;
        ++result.resumed;
      }
      for (const PlanEvent& event : loaded.value().plan) {
        if (event.kind == PlanEvent::Kind::kAlloc) {
          journaled_allocs[event.checkpoint] = event;
        } else {
          journaled_stop = event.stop_at;
        }
      }
      auto opened = JournalWriter::open_append(path,
                                               loaded.value().valid_bytes);
      if (!opened.is_ok()) return opened.status();
      writer = std::move(opened).take();
    } else {
      auto created = JournalWriter::create(
          path, make_journal_header(config, golden.value()));
      if (!created.is_ok()) return created.status();
      writer = std::move(created).take();
    }
  }

  // Static dead-site pruning: one instrumented fault-free launch maps every
  // prunable (group, occurrence) site; workers then credit those records
  // analytically instead of simulating them.
  std::optional<sa::PruneMap> prune_map;
  if ((config.prune_dead_sites || config.prune_dead_bits) &&
      (config.model.mode == InjectionMode::kIov ||
       config.model.mode == InjectionMode::kPred)) {
    auto map = build_prune_map(config);
    if (!map.is_ok()) return map.status();
    prune_map = std::move(map).take();
  }

  // Campaign metrics: handles resolved once, bumped from the workers.
  // Outcome counters include journal-restored records, so the final
  // registry snapshot totals match the merged journal's outcome counts.
  std::array<obs::Counter*, kOutcomeCount> outcome_counters{};
  for (int o = 0; o < kOutcomeCount; ++o) {
    outcome_counters[o] = &reg.counter(
        std::string("campaign.outcome.") + to_string(static_cast<Outcome>(o)));
  }
  obs::Counter& attempted = reg.counter("campaign.injections.attempted");
  obs::Counter& completed = reg.counter("campaign.injections.completed");
  obs::Counter& resumed_counter = reg.counter("campaign.injections.resumed");
  obs::Counter& pruned_counter = reg.counter("campaign.injections.pruned");
  obs::Counter& retries = reg.counter("campaign.retries");
  obs::Counter& watchdog_hangs = reg.counter("campaign.watchdog.hangs");
  obs::LatencyHistogram& latency = reg.histogram(
      "campaign.injection.latency_ms", 0.0, 500.0, 50);
  reg.gauge("campaign.injections.total")
      .set(static_cast<f64>(result.run_indices.size()));
  for (std::size_t slot = 0; slot < result.run_indices.size(); ++slot) {
    if (!done[slot]) continue;
    resumed_counter.inc();
    outcome_counters[static_cast<int>(result.records[slot].outcome)]->inc();
    if (result.records[slot].pre_recovery == Outcome::kHang) {
      watchdog_hangs.inc();
    }
  }

  // Heartbeat sidecar: journaled campaigns stream per-shard progress into
  // `<journal>.status.jsonl` for `gpufi status` (obs/heartbeat.h).
  std::unique_ptr<obs::HeartbeatWriter> heartbeat;
  if (config.journal_path) {
    obs::HeartbeatState initial;
    initial.workload = config.workload;
    initial.arch = config.machine.name;
    initial.shard_index = config.shard_index;
    initial.shard_count = config.shard_count;
    initial.total = result.run_indices.size();
    initial.stop_half_width = config.planner.stop.target_half_width;
    initial.outcome_counts.assign(kOutcomeCount, 0);
    initial.done = result.resumed;
    for (std::size_t slot = 0; slot < result.run_indices.size(); ++slot) {
      if (!done[slot]) continue;
      ++initial.outcome_counts[static_cast<int>(
          result.records[slot].outcome)];
    }
    auto created = obs::HeartbeatWriter::create(
        obs::status_path_for_journal(*config.journal_path), initial,
        config.heartbeat_interval_ms);
    if (created.is_ok()) {
      heartbeat = std::move(created).take();
    } else {
      // Telemetry must never abort a campaign: run without the sidecar.
      GFI_LOG(kWarn) << "heartbeat sidecar disabled: "
                     << created.status().message();
    }
  }

  std::vector<Status> errors(result.run_indices.size());
  std::vector<u8> pruned_flags(result.run_indices.size(), 0);
  ThreadPool pool(config.threads);

  // One injection slot: sample, simulate (or credit), journal, measure.
  // `stratum` pins the instruction group under a stratified allocation.
  auto run_slot = [&](std::size_t slot,
                      std::optional<sim::InstrGroup> stratum) {
    if (done[slot]) return;
    // Generic chaos site: "worker dies at the n-th injection it attempts"
    // (or at a specific global index via key=). The kill is executed inside
    // fp::hit, mid-shard, after some records are already journaled — which
    // is exactly the crash shape the supervisor must recover from.
    if (fp::enabled()) fp::hit("campaign.injection", result.run_indices[slot]);
    attempted.inc();
    bool pruned = false;
    const auto started = std::chrono::steady_clock::now();
    auto record = run_single(config, result.profile,
                             result.golden_dyn_instrs,
                             result.run_indices[slot],
                             prune_map ? &*prune_map : nullptr, &pruned,
                             &reg, stratum);
    latency.observe(
        std::chrono::duration_cast<std::chrono::duration<f64, std::milli>>(
            std::chrono::steady_clock::now() - started)
            .count());
    pruned_flags[slot] = pruned ? 1 : 0;
    if (pruned) pruned_counter.inc();
    if (record.is_ok()) {
      result.records[slot] = std::move(record).take();
      if (writer) {
        errors[slot] =
            writer->append(result.run_indices[slot], result.records[slot]);
      }
      const InjectionRecord& final_record = result.records[slot];
      completed.inc();
      outcome_counters[static_cast<int>(final_record.outcome)]->inc();
      if (final_record.attempts > 1) retries.inc(final_record.attempts - 1);
      if (final_record.pre_recovery == Outcome::kHang) watchdog_hangs.inc();
      // After the journal append, so status never runs ahead of the journal.
      if (heartbeat) {
        heartbeat->record(static_cast<int>(final_record.outcome));
      }
    } else {
      errors[slot] = record.status();
    }
  };

  if (!config.planner.active()) {
    // Classic fixed budget: one flat fan-out over the whole slice. This
    // path is byte-identical to pre-planner builds.
    pool.parallel_for(result.run_indices.size(), [&](std::size_t slot) {
      run_slot(slot, std::nullopt);
    });
    result.effective_injections = config.num_injections;
  } else {
    auto planner_or = Planner::create(config, result.profile);
    if (!planner_or.is_ok()) return planner_or.status();
    Planner planner = std::move(planner_or).take();
    const u64 k = planner.checkpoint_every();
    const bool follow = config.planner.plan_path.has_value();
    // decide: unsharded (validated above) — this process holds the full
    // record prefix and makes every decision itself. follow: a `gpufi run`
    // worker replaying the supervisor's published plan.
    const bool decide = !follow;

    u64 effective = config.num_injections;
    std::optional<u64> stop_at;
    if (follow && journaled_stop) {
      // Resuming a worker journal that already recorded the supervisor's
      // stop decision: the boundary is authoritative.
      stop_at = journaled_stop;
      effective = std::min<u64>(effective, *journaled_stop);
    }

    // Polls the plan file until the supervisor publishes what block `c`
    // needs: its allocation, or a stop at/before its start.
    auto wait_for_plan = [&](u64 c, u64 b0) -> Result<PlanEvent> {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config.planner.plan_wait_ms);
      while (true) {
        auto plan_now = load_plan_file(*config.planner.plan_path, config);
        if (plan_now.is_ok()) {
          if (plan_now.value().stop_at && *plan_now.value().stop_at <= b0) {
            PlanEvent stop;
            stop.kind = PlanEvent::Kind::kStop;
            stop.stop_at = *plan_now.value().stop_at;
            return stop;
          }
          auto it = plan_now.value().allocs.find(c);
          if (it != plan_now.value().allocs.end()) return it->second;
        } else if (plan_now.status().code() != StatusCode::kNotFound) {
          return plan_now.status();
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          return Status::internal(
              "timed out after " +
              std::to_string(config.planner.plan_wait_ms) +
              " ms waiting for the supervisor to publish the allocation "
              "for checkpoint " + std::to_string(c) + " in " +
              *config.planner.plan_path);
        }
        // Keep the heartbeat fresh while parked, so the supervisor's stall
        // detector does not mistake waiting for a hang.
        if (heartbeat) heartbeat->idle_beat();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    };

    std::vector<PlanEvent> allocs_used;
    for (u64 c = 0; c * k < effective; ++c) {
      const u64 b0 = c * k;
      const u64 b1 =
          std::min<u64>(b0 + k, static_cast<u64>(config.num_injections));

      // Resolve this block's allocation (stratified campaigns only).
      std::optional<PlanEvent> alloc;
      const auto journaled = journaled_allocs.find(c);
      if (config.planner.stratify) {
        if (decide) {
          PlanEvent computed = planner.make_alloc(c);
          if (journaled != journaled_allocs.end() &&
              !(journaled->second == computed)) {
            return Status::failed_precondition(
                "journaled allocation for checkpoint " + std::to_string(c) +
                " is not reproduced by this run — the journal was written "
                "under a different plan");
          }
          alloc = computed;
        } else if (journaled != journaled_allocs.end()) {
          alloc = journaled->second;
        } else {
          auto waited = wait_for_plan(c, b0);
          if (!waited.is_ok()) return waited.status();
          if (waited.value().kind == PlanEvent::Kind::kStop) {
            stop_at = waited.value().stop_at;
            effective = std::min<u64>(effective, *stop_at);
            break;
          }
          alloc = waited.value();
        }
      }

      // This shard's slots inside the block.
      std::vector<std::size_t> block_slots;
      const u64 delta = (config.shard_index + config.shard_count -
                         b0 % config.shard_count) % config.shard_count;
      for (u64 i = b0 + delta; i < b1; i += config.shard_count) {
        block_slots.push_back(static_cast<std::size_t>(
            (i - config.shard_index) / config.shard_count));
      }

      // Journal the allocation before its block's records (not on resume if
      // already present, and not when the shard owns none of the block).
      if (alloc && writer && !block_slots.empty() &&
          journaled == journaled_allocs.end()) {
        Status appended = writer->append_plan(*alloc);
        if (!appended.is_ok()) return appended;
      }
      if (alloc) allocs_used.push_back(*alloc);

      pool.parallel_for(block_slots.size(), [&](std::size_t b) {
        const std::size_t slot = block_slots[b];
        run_slot(slot,
                 alloc ? Planner::group_for(*alloc,
                                            result.run_indices[slot] - b0)
                       : std::nullopt);
      });
      for (const std::size_t slot : block_slots) {
        if (!errors[slot].is_ok()) return errors[slot];
      }

      if (decide) {
        // Feed the planner the completed prefix in global index order
        // (unsharded, so block_slots IS [b0, b1) in order).
        for (const std::size_t slot : block_slots) {
          planner.observe(result.records[slot]);
        }
        if (config.planner.stopping() && b1 < config.num_injections) {
          if (planner.stop_satisfied()) {
            if (journaled_stop && *journaled_stop != b1) {
              return Status::failed_precondition(
                  "journaled stop at " + std::to_string(*journaled_stop) +
                  " is not reproduced by this run (the stopping rule fired "
                  "at " + std::to_string(b1) + ")");
            }
            if (writer && !journaled_stop) {
              PlanEvent stop;
              stop.kind = PlanEvent::Kind::kStop;
              stop.stop_at = b1;
              Status appended = writer->append_plan(stop);
              if (!appended.is_ok()) return appended;
            }
            stop_at = b1;
            effective = b1;
            break;
          }
          if (journaled_stop && *journaled_stop == b1) {
            return Status::failed_precondition(
                "journaled stop at " + std::to_string(b1) +
                " is not reproduced by this run (the stopping rule did not "
                "fire there)");
          }
        }
      } else {
        // Opportunistic stop check: stop-only workers never block on the
        // plan file, so they may overshoot the boundary by however many
        // blocks they complete before noticing — the merge drops the
        // overshoot deterministically.
        auto plan_now = load_plan_file(*config.planner.plan_path, config);
        if (plan_now.is_ok() && plan_now.value().stop_at) {
          stop_at = plan_now.value().stop_at;
          effective = std::min<u64>(effective, *stop_at);
        }
      }
    }

    // Truncate to the effective boundary: blocks beyond it never ran, but a
    // resumed journal may have restored records past a stop published after
    // this shard had raced ahead.
    std::size_t keep = result.run_indices.size();
    while (keep > 0 && result.run_indices[keep - 1] >= effective) --keep;
    for (std::size_t s = keep; s < result.run_indices.size(); ++s) {
      if (done[s]) --result.resumed;
    }
    result.run_indices.resize(keep);
    result.records.resize(keep);
    pruned_flags.resize(keep);

    result.effective_injections = effective;
    result.plan = std::move(allocs_used);
    if (stop_at) {
      PlanEvent stop;
      stop.kind = PlanEvent::Kind::kStop;
      stop.stop_at = *stop_at;
      result.plan.push_back(stop);
    }
    reg.gauge("campaign.planner.effective_injections")
        .set(static_cast<f64>(effective));
    if (stop_at) {
      reg.gauge("campaign.planner.stopped_at").set(static_cast<f64>(*stop_at));
    }
  }

  for (const Status& status : errors) {
    if (!status.is_ok()) return status;
  }
  for (u8 flag : pruned_flags) result.pruned += flag;

  for (const InjectionRecord& record : result.records) {
    ++result.outcome_counts[static_cast<int>(record.outcome)];
  }
  if (heartbeat) heartbeat->finish();
  return result;
}

}  // namespace gfi::fi
