// Crash-safe campaign journal: one JSONL line per completed injection.
//
// A journal makes a campaign an append-only log of independent, replayable
// units. The first line is a header binding the journal to its campaign
// (workload, arch, fault model, seed, injection count, shard) plus the
// golden-run reference, so a resumed or merged journal can never silently
// mix incompatible runs. Every subsequent line is one InjectionRecord,
// flushed as soon as the injection completes. On restart:
//   * a file truncated mid-record keeps every complete line (the torn tail
//     is discarded and overwritten),
//   * already-journaled injections are skipped, and
//   * aggregate outcome counts are rebuilt deterministically, so a killed
//     and resumed campaign is bit-identical to an uninterrupted one.
// Shard journals (--shard i/N) partition the same index space and are
// recombined with merge_journals().
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fi/campaign.h"

namespace gfi::fi {

/// First line of every journal: identifies the campaign and caches the
/// phase-1 golden reference so resume never re-runs it.
struct JournalHeader {
  std::string workload;
  std::string arch;  ///< MachineConfig::name
  std::string mode;  ///< to_string(InjectionMode)
  std::string flip;  ///< to_string(BitFlipModel)
  /// to_string(FaultPersistence). Absent in pre-recovery journals, which
  /// were all transient — the parser defaults accordingly.
  std::string persist = "transient";
  u32 max_retries = 0;  ///< recovery budget (absent in old journals = 0)
  std::optional<std::string> group;  ///< instruction-group filter, if any
  std::optional<u32> fixed_bit;
  u64 seed = 0;
  u64 num_injections = 0;  ///< global campaign size (across all shards)
  u32 shard_index = 0;
  u32 shard_count = 1;
  u64 golden_dyn_instrs = 0;
  u64 golden_cycles = 0;
  /// Adaptive-planner identity, normalized (all-zero when inactive, so
  /// pre-planner journals and planner-off campaigns compare equal). A
  /// journal written under one stopping rule or stratification scheme can
  /// never silently resume under another.
  PlannerConfig planner;
  sim::Profile profile;  ///< golden dynamic-instruction profile
};

/// Header describing `config` + its golden run.
JournalHeader make_journal_header(const CampaignConfig& config,
                                  const Campaign::Golden& golden);

/// Rejects resume against a journal written by a different campaign
/// (workload, arch, fault model, seed, size, shard, or golden mismatch).
Status check_journal_compatible(const JournalHeader& header,
                                const CampaignConfig& config,
                                const Campaign::Golden& golden);

/// Parsed journal contents. `valid_bytes` is the offset just past the last
/// complete record — the truncation point for crash-safe appends.
struct JournalContents {
  JournalHeader header;
  std::vector<std::pair<u64, InjectionRecord>> records;  ///< (global index, record)
  /// Planner decisions journaled alongside the records (file order:
  /// allocations before their block's records, a stop event last).
  std::vector<PlanEvent> plan;
  u64 valid_bytes = 0;
};

class Journal {
 public:
  /// Loads a journal, tolerating a torn trailing record (a mid-record crash
  /// leaves a partial last line, which is dropped). A malformed line in the
  /// middle of the file is corruption and fails.
  static Result<JournalContents> load(const std::string& path);

  // Serialization primitives (exposed for tests and the merge tool).
  static std::string header_line(const JournalHeader& header);
  static std::string record_line(u64 index, const InjectionRecord& record);
  static Result<JournalHeader> parse_header(const std::string& line);
  static Result<std::pair<u64, InjectionRecord>> parse_record(
      const std::string& line);
};

/// Append-only writer; one flushed line per record. Thread-safe.
class JournalWriter {
 public:
  /// Creates (truncating) `path` and writes the header line.
  static Result<std::unique_ptr<JournalWriter>> create(
      const std::string& path, const JournalHeader& header);

  /// Opens an existing journal for appending, first truncating the file to
  /// `valid_bytes` (from Journal::load) so a torn tail never corrupts the
  /// next record.
  static Result<std::unique_ptr<JournalWriter>> open_append(
      const std::string& path, u64 valid_bytes);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  Status append(u64 index, const InjectionRecord& record);
  /// Appends one planner decision line (fi/planner.h line format), under
  /// the same flush + failpoint discipline as records.
  Status append_plan(const PlanEvent& event);

 private:
  explicit JournalWriter(std::FILE* file) : file_(file) {}

  Status append_line(const std::string& line);

  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

/// A campaign reassembled from shard journals: records in global index
/// order (dense over [0, num_injections) unless merged allow_partial), plus
/// the rebuilt outcome table.
struct MergedCampaign {
  JournalHeader header;  ///< shard fields reset to 0/1
  std::vector<InjectionRecord> records;
  /// Global injection index of records[k]. Identity for a complete merge;
  /// the surviving subsequence for a partial one.
  std::vector<u64> indices;
  /// Injections not covered by any journal (nonzero only with allow_partial).
  u64 missing = 0;
  /// Planner decisions, deduplicated across shards and verified equal:
  /// allocations in checkpoint order, then the stop event if any.
  std::vector<PlanEvent> plan;
  /// Global injections the campaign covers: header.num_injections, or the
  /// journaled stop boundary when the planner halted it early.
  u64 effective_injections = 0;
  /// Records beyond the stop boundary (a worker racing ahead of the
  /// supervisor's stop decision); dropped deterministically from the merge.
  u64 overshoot = 0;
  std::array<u64, kOutcomeCount> outcome_counts{};

  [[nodiscard]] u64 count(Outcome outcome) const {
    return outcome_counts[static_cast<int>(outcome)];
  }
};

struct MergeOptions {
  /// Accept an incomplete shard set: missing shards / unfinished slices are
  /// tolerated and the merge returns only the covered records (statistics
  /// over a partial campaign are biased toward fast injections — this is an
  /// escape hatch, not a default).
  bool allow_partial = false;
};

/// Merges shard journals into one campaign. A malformed shard *set* —
/// duplicate shard indices, disagreeing shard counts, missing shards, or
/// uncovered indices — is kFailedPrecondition with the offending shards
/// named (relaxed by MergeOptions::allow_partial); identity mismatches are
/// kFailedPrecondition; corrupt record indices are kInternal.
Result<MergedCampaign> merge_journals(const std::vector<std::string>& paths,
                                      const MergeOptions& options = {});

/// Writes `merged` back out as a journal file (temp file + rename, so a
/// crash never leaves a torn merged journal). A complete merge of shard
/// journals is byte-identical to the journal an uninterrupted unsharded
/// single-threaded run would have written — the bit-identity contract the
/// supervisor's auto-merge is verified against.
Status write_merged_journal(const std::string& path,
                            const MergedCampaign& merged);

/// Serialization of one golden run, used by the on-disk golden cache. `key`
/// is the full cache key; it is stored verbatim so a filename-hash collision
/// degrades to a recompute, never to a wrong reference.
std::string golden_line(const std::string& key, const Campaign::Golden& golden);
Result<std::pair<std::string, Campaign::Golden>> parse_golden_line(
    const std::string& line);

}  // namespace gfi::fi
