#include "analysis/report.h"

#include <array>
#include <cstdio>

#include "sassim/xid.h"

namespace gfi::analysis {

const std::vector<fi::Outcome>& reported_outcomes() {
  static const std::vector<fi::Outcome> kOutcomes = {
      fi::Outcome::kMasked,  fi::Outcome::kMaskedTolerated,
      fi::Outcome::kSdc,     fi::Outcome::kDue,
      fi::Outcome::kHang,    fi::Outcome::kDetectedCorrected,
      fi::Outcome::kNotActivated, fi::Outcome::kRecoveredRetry,
      fi::Outcome::kUnrecoverableDue, fi::Outcome::kQuarantined,
  };
  return kOutcomes;
}

std::string rate_cell(const fi::CampaignResult& result, fi::Outcome outcome) {
  const f64 rate = result.rate(outcome);
  const auto ci = result.rate_interval(outcome);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%5.2f%% ±%.2f", rate * 100.0,
                ci.half_width() * 100.0);
  return buffer;
}

std::vector<std::string> outcome_header() {
  std::vector<std::string> header = {"workload"};
  for (fi::Outcome outcome : reported_outcomes()) {
    header.emplace_back(fi::to_string(outcome));
  }
  header.emplace_back("injections");
  return header;
}

std::vector<std::string> outcome_row(const std::string& label,
                                     const fi::CampaignResult& result) {
  std::vector<std::string> row = {label};
  for (fi::Outcome outcome : reported_outcomes()) {
    row.push_back(rate_cell(result, outcome));
  }
  row.push_back(std::to_string(result.records.size()));
  return row;
}

std::vector<stats::StratumCount> group_strata(const fi::CampaignResult& result,
                                              fi::Outcome outcome) {
  std::array<u64, sim::kInstrGroupCount> successes{};
  std::array<u64, sim::kInstrGroupCount> trials{};
  for (const fi::InjectionRecord& record : result.records) {
    if (!record.site.group) continue;
    const int g = static_cast<int>(*record.site.group);
    ++trials[g];
    if (record.outcome == outcome) ++successes[g];
  }
  std::vector<stats::StratumCount> strata;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const f64 weight =
        result.profile.total_warp_instrs
            ? static_cast<f64>(result.profile.warp_instrs_by_group[g]) /
                  static_cast<f64>(result.profile.total_warp_instrs)
            : 0.0;
    if (weight <= 0.0 && trials[g] == 0) continue;
    stats::StratumCount stratum;
    stratum.weight = weight;
    stratum.successes = successes[g];
    stratum.trials = trials[g];
    strata.push_back(stratum);
  }
  return strata;
}

std::string poststratified_cell(const fi::CampaignResult& result,
                                fi::Outcome outcome, f64 confidence) {
  const auto strata = group_strata(result, outcome);
  const f64 rate = stats::poststratified_rate(strata);
  const auto ci = stats::poststratified_interval(strata, confidence);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%5.2f%% ±%.2f", rate * 100.0,
                ci.half_width() * 100.0);
  return buffer;
}

std::vector<std::string> profile_header() {
  std::vector<std::string> header = {"workload", "warp instrs"};
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    header.emplace_back(sim::group_name(static_cast<sim::InstrGroup>(g)));
  }
  return header;
}

std::vector<std::string> profile_row(const std::string& label,
                                     const sim::Profile& profile) {
  std::vector<std::string> row = {label,
                                  std::to_string(profile.total_warp_instrs)};
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const f64 share =
        profile.total_warp_instrs
            ? static_cast<f64>(profile.warp_instrs_by_group[g]) /
                  static_cast<f64>(profile.total_warp_instrs)
            : 0.0;
    row.push_back(Table::pct(share, 1));
  }
  return row;
}

f64 uncorrected_failure_rate(const fi::CampaignResult& result) {
  return result.rate(fi::Outcome::kSdc) + result.rate(fi::Outcome::kDue) +
         result.rate(fi::Outcome::kHang) +
         result.rate(fi::Outcome::kUnrecoverableDue);
}

RecoverySummary summarize_recovery(const fi::CampaignResult& result) {
  RecoverySummary summary;
  summary.injections = result.records.size();
  if (summary.injections == 0) return summary;
  u64 total_attempts = 0;
  u64 total_dyn = 0;
  for (const fi::InjectionRecord& record : result.records) {
    const bool was_detected =
        record.pre_recovery == fi::Outcome::kDue ||
        record.pre_recovery == fi::Outcome::kHang;
    if (was_detected) ++summary.detected;
    if (record.outcome == fi::Outcome::kRecoveredRetry) ++summary.recovered;
    if (record.outcome == fi::Outcome::kUnrecoverableDue) {
      ++summary.unrecoverable;
    }
    if (was_detected && record.outcome == fi::Outcome::kSdc) {
      ++summary.retried_to_sdc;
    }
    // Quarantined records were never launched (attempts == 0): they have no
    // bin in the 1-based attempts histogram.
    if (record.attempts > 0) {
      if (summary.attempts_histogram.size() < record.attempts) {
        summary.attempts_histogram.resize(record.attempts, 0);
      }
      ++summary.attempts_histogram[record.attempts - 1];
    }
    total_attempts += record.attempts;
    total_dyn += record.dyn_instrs;
  }
  summary.converted_fraction =
      summary.detected ? static_cast<f64>(summary.recovered) /
                             static_cast<f64>(summary.detected)
                       : 0.0;
  summary.mean_attempts = static_cast<f64>(total_attempts) /
                          static_cast<f64>(summary.injections);
  if (result.golden_dyn_instrs > 0) {
    summary.dyn_overhead =
        static_cast<f64>(total_dyn) /
        (static_cast<f64>(summary.injections) *
         static_cast<f64>(result.golden_dyn_instrs));
  }
  return summary;
}

std::vector<std::string> recovery_header() {
  return {"config",     "injections", "detected",  "recovered",
          "unrecov",    "retry->SDC", "converted", "mean attempts",
          "dyn overhead"};
}

std::vector<std::string> recovery_row(const std::string& label,
                                      const fi::CampaignResult& result) {
  const RecoverySummary s = summarize_recovery(result);
  return {label,
          std::to_string(s.injections),
          std::to_string(s.detected),
          std::to_string(s.recovered),
          std::to_string(s.unrecoverable),
          std::to_string(s.retried_to_sdc),
          Table::pct(s.converted_fraction, 1),
          Table::fmt(s.mean_attempts, 2),
          Table::fmt(s.dyn_overhead, 2)};
}

Status write_records_csv(const fi::CampaignResult& result,
                         const std::string& path) {
  Table table;
  table.set_header({"run", "outcome", "pre_outcome", "attempts", "mode",
                    "flip", "persist", "group", "occurrence", "activated",
                    "struck_opcode", "struck_lane", "trap", "xid",
                    "error_magnitude", "dyn_instrs"});
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const fi::InjectionRecord& record = result.records[i];
    // Sharded results carry the global injection index of each record.
    const u64 run = i < result.run_indices.size() ? result.run_indices[i] : i;
    table.add_row({
        std::to_string(run),
        fi::to_string(record.outcome),
        fi::to_string(record.pre_recovery),
        std::to_string(record.attempts),
        fi::to_string(record.site.model.mode),
        fi::to_string(record.site.model.flip),
        fi::to_string(record.site.model.persistence),
        record.site.group ? sim::group_name(*record.site.group) : "-",
        std::to_string(record.site.target_occurrence),
        record.effect.activated ? "1" : "0",
        sim::opcode_name(record.effect.struck_opcode),
        std::to_string(record.effect.struck_lane),
        sim::trap_kind_name(record.trap),
        std::to_string(sim::xid_for_trap(record.trap)),
        Table::fmt(record.error_magnitude, 6),
        std::to_string(record.dyn_instrs),
    });
  }
  return table.write_csv(path);
}

}  // namespace gfi::analysis
