#include "analysis/compare.h"

#include <cmath>

namespace gfi::analysis {
namespace {

/// Standard normal CDF.
f64 phi(f64 x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

ProportionTest two_proportion_z(u64 successes1, u64 n1, u64 successes2,
                                u64 n2) {
  ProportionTest test;
  if (n1 == 0 || n2 == 0) return test;
  test.p1 = static_cast<f64>(successes1) / static_cast<f64>(n1);
  test.p2 = static_cast<f64>(successes2) / static_cast<f64>(n2);
  const f64 pooled = static_cast<f64>(successes1 + successes2) /
                     static_cast<f64>(n1 + n2);
  const f64 se = std::sqrt(pooled * (1.0 - pooled) *
                           (1.0 / static_cast<f64>(n1) +
                            1.0 / static_cast<f64>(n2)));
  if (se == 0.0) {
    test.z = 0.0;
    test.p_value = 1.0;
    return test;
  }
  test.z = (test.p1 - test.p2) / se;
  test.p_value = 2.0 * (1.0 - phi(std::abs(test.z)));
  return test;
}

ProportionTest compare_outcome(const fi::CampaignResult& a,
                               const fi::CampaignResult& b,
                               fi::Outcome outcome) {
  return two_proportion_z(a.count(outcome), a.records.size(),
                          b.count(outcome), b.records.size());
}

f64 composed_rate(const sim::Profile& profile, const GroupRates& rates) {
  if (profile.total_warp_instrs == 0) return 0.0;
  f64 weighted = 0.0;
  u64 covered = 0;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    if (!rates.known[g]) continue;
    weighted += rates.rate[g] *
                static_cast<f64>(profile.warp_instrs_by_group[g]);
    covered += profile.warp_instrs_by_group[g];
  }
  if (covered == 0) return 0.0;
  // Normalize over the covered population: the estimate answers "given a
  // fault lands in a covered group, what is the outcome rate".
  return weighted / static_cast<f64>(covered);
}

}  // namespace gfi::analysis
