// Statistical comparison of campaigns: two-proportion z-tests (is the
// H100's SDC rate really different from the A100's, or within noise?) and
// composed AVF estimation (per-group rates x dynamic mix vs direct
// measurement — the SASSIFI cross-check).
#pragma once

#include <array>

#include "common/types.h"
#include "fi/campaign.h"
#include "sassim/profiler.h"

namespace gfi::analysis {

/// Result of a two-proportion z-test.
struct ProportionTest {
  f64 p1 = 0.0;
  f64 p2 = 0.0;
  f64 z = 0.0;        ///< signed z statistic (p1 - p2)
  f64 p_value = 1.0;  ///< two-sided

  [[nodiscard]] bool significant(f64 alpha = 0.05) const {
    return p_value < alpha;
  }
};

/// Pooled two-proportion z-test for successes1/n1 vs successes2/n2.
ProportionTest two_proportion_z(u64 successes1, u64 n1, u64 successes2,
                                u64 n2);

/// Compares one outcome's rate between two campaigns.
ProportionTest compare_outcome(const fi::CampaignResult& a,
                               const fi::CampaignResult& b,
                               fi::Outcome outcome);

/// Per-instruction-group outcome rates (e.g. measured by group-filtered
/// campaigns), used to compose a program-level estimate.
struct GroupRates {
  std::array<f64, sim::kInstrGroupCount> rate{};
  std::array<bool, sim::kInstrGroupCount> known{};

  void set(sim::InstrGroup group, f64 value) {
    rate[static_cast<int>(group)] = value;
    known[static_cast<int>(group)] = true;
  }
};

/// Composes a program-level rate from per-group rates weighted by the
/// program's dynamic warp-instruction mix (groups with unknown rates
/// contribute zero). This is the "AVF from per-group vulnerabilities"
/// estimate that should track the directly measured unfiltered rate.
f64 composed_rate(const sim::Profile& profile, const GroupRates& rates);

}  // namespace gfi::analysis
