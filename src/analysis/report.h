// Reporting helpers: turn campaign results into the tables and series the
// bench binaries print (outcome distributions, per-group AVF, cross-arch
// comparisons, profiles).
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "fi/campaign.h"

namespace gfi::analysis {

/// The outcome columns every distribution table reports, in order.
const std::vector<fi::Outcome>& reported_outcomes();

/// One row of an outcome-distribution table: workload name + one percentage
/// cell per outcome (with 95% CI half-width) + injection count.
std::vector<std::string> outcome_row(const std::string& label,
                                     const fi::CampaignResult& result);

/// Header matching outcome_row.
std::vector<std::string> outcome_header();

/// Formats "12.3% ±1.9" for an outcome of a campaign.
std::string rate_cell(const fi::CampaignResult& result, fi::Outcome outcome);

/// Dynamic-instruction mix table row for a profile: per-group percentage of
/// warp instructions.
std::vector<std::string> profile_row(const std::string& label,
                                     const sim::Profile& profile);
std::vector<std::string> profile_header();

/// Architectural Vulnerability Factor estimate for a campaign: fraction of
/// injections whose outcome corrupts or kills the program (SDC+DUE+Hang).
f64 uncorrected_failure_rate(const fi::CampaignResult& result);

/// Writes one CSV row per injection record (outcome, struck site, trap,
/// XID, error magnitude) — the raw-data export for external analysis.
Status write_records_csv(const fi::CampaignResult& result,
                         const std::string& path);

}  // namespace gfi::analysis
