// Reporting helpers: turn campaign results into the tables and series the
// bench binaries print (outcome distributions, per-group AVF, cross-arch
// comparisons, profiles).
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "fi/campaign.h"

namespace gfi::analysis {

/// The outcome columns every distribution table reports, in order.
const std::vector<fi::Outcome>& reported_outcomes();

/// One row of an outcome-distribution table: workload name + one percentage
/// cell per outcome (with 95% CI half-width) + injection count.
std::vector<std::string> outcome_row(const std::string& label,
                                     const fi::CampaignResult& result);

/// Header matching outcome_row.
std::vector<std::string> outcome_header();

/// Formats "12.3% ±1.9" for an outcome of a campaign.
std::string rate_cell(const fi::CampaignResult& result, fi::Outcome outcome);

/// Per-instruction-group strata for one outcome of a campaign: each
/// stratum's weight is the profile's dynamic-frequency share of that group
/// (the stratified planner's sampling frame), successes/trials count the
/// records whose struck site landed in the group. Records without a group
/// (memory-mode strikes, quarantined entries) carry no stratum and are
/// excluded — use the plain rate() for those modes. Feed the result to
/// stats::poststratified_rate / poststratified_interval.
std::vector<stats::StratumCount> group_strata(const fi::CampaignResult& result,
                                              fi::Outcome outcome);

/// Formats "12.3% ±1.9" from the post-stratified pooled estimator — the
/// design-unbiased rate for a campaign whose allocation was Neyman-skewed
/// away from the natural group frequencies (a naive pooled rate would be
/// biased toward the oversampled strata).
std::string poststratified_cell(const fi::CampaignResult& result,
                                fi::Outcome outcome, f64 confidence = 0.95);

/// Dynamic-instruction mix table row for a profile: per-group percentage of
/// warp instructions.
std::vector<std::string> profile_row(const std::string& label,
                                     const sim::Profile& profile);
std::vector<std::string> profile_header();

/// Architectural Vulnerability Factor estimate for a campaign: fraction of
/// injections whose outcome corrupts or kills the program
/// (SDC + DUE + Hang + UnrecoverableDUE).
f64 uncorrected_failure_rate(const fi::CampaignResult& result);

/// Aggregate view of what trap-and-retry recovery bought in a campaign.
/// Meaningful for runs with max_retries > 0; degenerates to zeros otherwise.
struct RecoverySummary {
  u64 injections = 0;
  u64 detected = 0;       ///< pre-recovery classification was DUE or Hang
  u64 recovered = 0;      ///< ... and a relaunch produced a correct result
  u64 unrecoverable = 0;  ///< ... and every allowed relaunch trapped again
  u64 retried_to_sdc = 0; ///< relaunch completed but its output was wrong
  /// recovered / detected (0 when nothing was detected).
  f64 converted_fraction = 0.0;
  f64 mean_attempts = 1.0;  ///< launches per injection, averaged over all
  /// attempt-count distribution: attempts_histogram[k] = injections that
  /// consumed exactly k+1 launches.
  std::vector<u64> attempts_histogram;
  /// Mean dynamic-instruction cost per injection relative to one golden run
  /// (1.0 = no overhead; retries push it up).
  f64 dyn_overhead = 0.0;
};
RecoverySummary summarize_recovery(const fi::CampaignResult& result);

/// Table row/header for recovery summaries (bench_a4_recovery).
std::vector<std::string> recovery_header();
std::vector<std::string> recovery_row(const std::string& label,
                                      const fi::CampaignResult& result);

/// Writes one CSV row per injection record (outcome, struck site, trap,
/// XID, error magnitude) — the raw-data export for external analysis.
Status write_records_csv(const fi::CampaignResult& result,
                         const std::string& path);

}  // namespace gfi::analysis
