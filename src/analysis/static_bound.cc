#include "analysis/static_bound.h"

#include <sstream>

namespace gfi::analysis {

StaticBound static_masked_bound(const sa::PruneMap& map,
                                fi::InjectionMode mode,
                                std::optional<sim::InstrGroup> group) {
  StaticBound bound;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto instr_group = static_cast<sim::InstrGroup>(g);
    if (!fi::mode_targets_group(mode, instr_group)) continue;
    if (group && *group != instr_group) continue;
    bound.eligible += map.occurrences[g];
    for (const sa::PruneEntry& entry : map.entries[g]) {
      if (entry.exec_mask == 0 || entry.cls == sa::SiteClass::kNoop) {
        ++bound.inert;
      } else if (entry.cls == sa::SiteClass::kDead) {
        ++bound.dead;
      } else if (entry.cls == sa::SiteClass::kPartialDead) {
        ++bound.partial;
        const u32 total_bits = map.analysis.strike_span(entry.pc) * 32u;
        if (total_bits > 0) {
          bound.partial_dead_weight +=
              static_cast<f64>(map.analysis.num_dead_bits(entry.pc)) /
              static_cast<f64>(total_bits);
        }
      }
    }
  }
  return bound;
}

f64 static_bit_masked_bound(const sa::PruneMap& map, fi::InjectionMode mode,
                            std::optional<sim::InstrGroup> group, u32 bit) {
  u64 eligible = 0;
  u64 masked = 0;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto instr_group = static_cast<sim::InstrGroup>(g);
    if (!fi::mode_targets_group(mode, instr_group)) continue;
    if (group && *group != instr_group) continue;
    eligible += map.occurrences[g];
    for (const sa::PruneEntry& entry : map.entries[g]) {
      // Inert sites are NotActivated, not Masked: they do not count
      // toward the masked bound.
      if (entry.exec_mask == 0 || entry.cls == sa::SiteClass::kNoop) continue;
      if (entry.cls == sa::SiteClass::kDead) {
        ++masked;  // any flipped bit is dead, whatever the position
      } else if (entry.cls == sa::SiteClass::kPartialDead) {
        const u32 total_bits = map.analysis.strike_span(entry.pc) * 32u;
        if (total_bits > 0 &&
            map.analysis.strike_bit_dead(entry.pc, bit % total_bits)) {
          ++masked;
        }
      }
    }
  }
  return eligible == 0
             ? 0.0
             : static_cast<f64>(masked) / static_cast<f64>(eligible);
}

AvfReport avf_report(const sa::PruneMap& map, fi::InjectionMode mode) {
  AvfReport report;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto group = static_cast<sim::InstrGroup>(g);
    if (!fi::mode_targets_group(mode, group)) continue;
    if (map.occurrences[g] == 0) continue;
    AvfReport::GroupRow row;
    row.group = group;
    row.bound = static_masked_bound(map, mode, group);
    report.groups.push_back(row);
  }
  report.total = static_masked_bound(map, mode, std::nullopt);
  for (u32 bit = 0; bit < 32; ++bit) {
    report.bit_bounds[bit] =
        static_bit_masked_bound(map, mode, std::nullopt, bit);
  }
  return report;
}

std::string to_json(const AvfReport& report, const std::string& workload,
                    const std::string& arch) {
  std::ostringstream out;
  out << "{\"workload\": \"" << workload << "\", \"arch\": \"" << arch
      << "\", \"groups\": [";
  for (std::size_t i = 0; i < report.groups.size(); ++i) {
    const AvfReport::GroupRow& row = report.groups[i];
    if (i > 0) out << ", ";
    out << "{\"group\": \"" << sim::group_name(row.group)
        << "\", \"eligible\": " << row.bound.eligible
        << ", \"dead\": " << row.bound.dead
        << ", \"partial\": " << row.bound.partial
        << ", \"inert\": " << row.bound.inert
        << ", \"masked_lb\": " << row.bound.masked_lower_bound()
        << ", \"bit_masked_lb\": " << row.bound.bit_masked_lower_bound()
        << "}";
  }
  out << "], \"total\": {\"eligible\": " << report.total.eligible
      << ", \"dead\": " << report.total.dead
      << ", \"partial\": " << report.total.partial
      << ", \"inert\": " << report.total.inert
      << ", \"masked_lb\": " << report.total.masked_lower_bound()
      << ", \"bit_masked_lb\": " << report.total.bit_masked_lower_bound()
      << "}, \"bit_bounds\": [";
  for (u32 bit = 0; bit < 32; ++bit) {
    if (bit > 0) out << ", ";
    out << report.bit_bounds[bit];
  }
  out << "]}";
  return out.str();
}

}  // namespace gfi::analysis
