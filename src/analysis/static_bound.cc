#include "analysis/static_bound.h"

namespace gfi::analysis {

StaticBound static_masked_bound(const sa::PruneMap& map,
                                fi::InjectionMode mode,
                                std::optional<sim::InstrGroup> group) {
  StaticBound bound;
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const auto instr_group = static_cast<sim::InstrGroup>(g);
    if (!fi::mode_targets_group(mode, instr_group)) continue;
    if (group && *group != instr_group) continue;
    bound.eligible += map.occurrences[g];
    for (const sa::PruneEntry& entry : map.entries[g]) {
      if (entry.exec_mask == 0 || entry.cls == sa::SiteClass::kNoop) {
        ++bound.inert;
      } else if (entry.cls == sa::SiteClass::kDead) {
        ++bound.dead;
      }
    }
  }
  return bound;
}

}  // namespace gfi::analysis
