// Experiment R-S1/R-S2 arithmetic: static masked-fraction lower bounds vs
// the dynamically measured masked rate, from a workload's PruneMap.
//
// A uniformly sampled IOV/PRED site lands on a statically-dead destination
// with probability dead/eligible; every such injection is Masked (the strike
// footprint is never read), so
//     static_masked_bound  <=  E[dynamic masked rate].
// Bit-liveness extends the argument below whole registers: a single-bit
// flip at a partially-dead site is Masked whenever the sampled bit is
// statically dead, which tightens the random-bit expectation to
//     (dead + sum over partial sites of dead_bits/total_bits) / eligible
// and gives a per-bit-position bound for fixed-bit sweeps. Inert sites
// (predicated-off or nothing to corrupt) classify NotActivated, not Masked,
// and are reported separately.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fi/fault_model.h"
#include "sa/ace.h"

namespace gfi::analysis {

struct StaticBound {
  /// Dynamic sites a uniform (mode, group-filter) sample can land on.
  u64 eligible = 0;
  /// Sites whose strike footprint is statically dead (provably Masked).
  u64 dead = 0;
  /// Sites the injector cannot activate: predicated off (exec_mask == 0)
  /// or with nothing to corrupt (e.g. RZ-destination atomics).
  u64 inert = 0;
  /// Sites with a partially-dead strike footprint (some bits provably
  /// dead): a uniformly sampled single-bit flip there is Masked with
  /// probability dead_bits/total_bits.
  u64 partial = 0;
  /// Sum over partial sites of dead_bits/total_bits: the expected number
  /// of partial-site injections a random single-bit flip masks.
  f64 partial_dead_weight = 0.0;

  /// Lower bound on the expected masked rate from fully-dead sites alone
  /// (the R-S1 register-level bound; flip-model independent).
  [[nodiscard]] f64 masked_lower_bound() const {
    return eligible == 0 ? 0.0
                         : static_cast<f64>(dead) / static_cast<f64>(eligible);
  }
  /// Lower bound on the expected masked rate of a *uniform random
  /// single-bit* flip campaign: dead sites plus the dead-bit fraction of
  /// partial sites (the R-S2 bit-level bound).
  [[nodiscard]] f64 bit_masked_lower_bound() const {
    return eligible == 0 ? 0.0
                         : (static_cast<f64>(dead) + partial_dead_weight) /
                               static_cast<f64>(eligible);
  }
  /// Fraction of sampled injections the campaign can skip simulating
  /// without bit-level crediting (dead-site pruning only).
  [[nodiscard]] f64 prunable_fraction() const {
    return eligible == 0
               ? 0.0
               : static_cast<f64>(dead + inert) / static_cast<f64>(eligible);
  }
};

/// Aggregates `map` over the groups `mode` can target (optionally restricted
/// to one group, mirroring CampaignConfig::group).
StaticBound static_masked_bound(const sa::PruneMap& map,
                                fi::InjectionMode mode,
                                std::optional<sim::InstrGroup> group);

/// Per-bit-position static masked lower bound for fixed-bit sweeps: the
/// fraction of eligible sites where a `fixed_bit = b` single-bit flip is
/// provably Masked. The injector reduces the bit selector modulo the
/// footprint width, so for b < 32 the strike always lands on bit b of the
/// footprint's first register.
[[nodiscard]] f64 static_bit_masked_bound(const sa::PruneMap& map,
                                          fi::InjectionMode mode,
                                          std::optional<sim::InstrGroup> group,
                                          u32 bit);

/// Static AVF report (`gpufi avf`): per-group and per-bit-position masked
/// lower bounds for one (workload, arch) PruneMap under IOV single-bit
/// injection.
struct AvfReport {
  struct GroupRow {
    sim::InstrGroup group = sim::InstrGroup::kInt;
    StaticBound bound;
  };
  std::vector<GroupRow> groups;          ///< groups with eligible sites
  StaticBound total;                     ///< all eligible groups combined
  std::array<f64, 32> bit_bounds{};      ///< per-bit-position masked LB
};

[[nodiscard]] AvfReport avf_report(const sa::PruneMap& map,
                                   fi::InjectionMode mode);

/// JSON serialisation for `gpufi avf --json`.
[[nodiscard]] std::string to_json(const AvfReport& report,
                                  const std::string& workload,
                                  const std::string& arch);

}  // namespace gfi::analysis
