// Experiment R-S1 arithmetic: static masked-fraction lower bound vs the
// dynamically measured masked rate, from a workload's PruneMap.
//
// A uniformly sampled IOV/PRED site lands on a statically-dead destination
// with probability dead/eligible; every such injection is Masked (the strike
// footprint is never read), so
//     static_masked_bound  <=  E[dynamic masked rate].
// Inert sites (predicated-off or nothing to corrupt) classify NotActivated,
// not Masked, and are reported separately.
#pragma once

#include "fi/fault_model.h"
#include "sa/ace.h"

namespace gfi::analysis {

struct StaticBound {
  /// Dynamic sites a uniform (mode, group-filter) sample can land on.
  u64 eligible = 0;
  /// Sites whose strike footprint is statically dead (provably Masked).
  u64 dead = 0;
  /// Sites the injector cannot activate: predicated off (exec_mask == 0)
  /// or with nothing to corrupt (e.g. RZ-destination atomics).
  u64 inert = 0;

  /// Lower bound on the expected masked rate from dead sites alone.
  [[nodiscard]] f64 masked_lower_bound() const {
    return eligible == 0 ? 0.0
                         : static_cast<f64>(dead) / static_cast<f64>(eligible);
  }
  /// Fraction of sampled injections the campaign can skip simulating.
  [[nodiscard]] f64 prunable_fraction() const {
    return eligible == 0
               ? 0.0
               : static_cast<f64>(dead + inert) / static_cast<f64>(eligible);
  }
};

/// Aggregates `map` over the groups `mode` can target (optionally restricted
/// to one group, mirroring CampaignConfig::group).
StaticBound static_masked_bound(const sa::PruneMap& map,
                                fi::InjectionMode mode,
                                std::optional<sim::InstrGroup> group);

}  // namespace gfi::analysis
