// Reduction workloads:
//  - reduce_u32: integer grid sum (grid-stride partials -> shared-memory
//    tree -> global atomic). Exact, order-free golden check.
//  - dotprod: FP32 dot product using warp shuffle reduction and a global
//    FP32 atomic — exercises SHFL/VOTE-class instructions and float
//    atomics; checked against a double-precision reference with tolerance.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::AtomKind;
using sim::CmpOp;
using sim::Device;
using sim::DType;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::ShflKind;
using sim::ShiftKind;
using sim::SpecialReg;

class ReduceU32 final : public Workload {
 public:
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = 8;
  static constexpr u32 kPerThread = 8;

  ReduceU32()
      : name_("reduce_u32"),
        n_(kBlock * kGrid * kPerThread),
        x_(random_u32(n_, 0x5EED, 1u << 16)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<u32>(n_);
    auto out = device.malloc_n<u32>(1);
    if (!x.is_ok()) return x.status();
    if (!out.is_ok()) return out.status();
    x_dev_ = x.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<u32>(x_dev_, x_); !s.is_ok()) return s;
    const u32 zero = 0;
    if (auto s = device.to_device<u32>(out_dev_, std::span<const u32>(&zero, 1));
        !s.is_ok()) {
      return s;
    }

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {x_dev_, out_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    u32 want = 0;
    for (u32 v : x_) want += v;
    std::vector<u32> expect = {want};
    return fetch_and_check<u32>(
        device, out_dev_, 1,
        [&](std::span<const u32> got) { return compare_u32(got, expect); });
  }

 private:
  Program build() {
    KernelBuilder b("reduce_u32");
    emit_global_tid_x(b, 0);          // R0 = gid (clobbers R1, R2)
    b.s2r(3, SpecialReg::kTidX);      // R3 = tid
    b.s2r(1, SpecialReg::kNtidX);
    b.s2r(2, SpecialReg::kNctaidX);
    b.imul_u32(4, Operand::reg(1), Operand::reg(2));  // R4 = total threads
    b.ldc_u64(6, 0);                  // x
    b.ldc_u64(8, 1);                  // out

    // Grid-stride partial sum (uniform trip count).
    b.mov_u32(10, Operand::imm_u(0));
    b.mov_u32(11, Operand::imm_u(0));
    b.uniform_loop(11, Operand::imm_u(kPerThread), 1, [&] {
      b.imad_u32(12, Operand::reg(11), Operand::reg(4), Operand::reg(0));
      b.imad_wide(14, Operand::reg(12), Operand::imm_u(4), Operand::reg(6));
      b.ldg(16, 14);
      b.iadd_u32(10, Operand::reg(10), Operand::reg(16));
    });

    // Shared-memory tree reduction.
    b.set_shared_bytes(kBlock * 4);
    b.shf(ShiftKind::kLeft, 17, Operand::reg(3), Operand::imm_u(2));
    b.sts(17, 10);
    b.bar();
    for (u32 stride = kBlock / 2; stride > 0; stride >>= 1) {
      b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(stride));
      b.if_then(0, false, [&] {
        b.lds(18, 17, 0);
        b.lds(19, 17, static_cast<u64>(stride) * 4);
        b.iadd_u32(18, Operand::reg(18), Operand::reg(19));
        b.sts(17, 18);
      });
      b.bar();
    }

    // Thread 0 accumulates the block's partial into the global result.
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.lds(18, 17, 0);
      b.atomg(AtomKind::kAdd, sim::kRegZ, 8, Operand::reg(18));
    });
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<u32> x_;
  u64 x_dev_ = 0, out_dev_ = 0;
  Program program_;
};

class DotProd final : public Workload {
 public:
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = 4;
  static constexpr u32 kPerThread = 4;

  DotProd()
      : name_("dotprod"),
        n_(kBlock * kGrid * kPerThread),
        x_(random_f32(n_, 0xD07, -0.5f, 0.5f)),
        y_(random_f32(n_, 0xFEED, -0.5f, 0.5f)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-3; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<f32>(n_);
    auto y = device.malloc_n<f32>(n_);
    auto out = device.malloc_n<f32>(1);
    if (!x.is_ok()) return x.status();
    if (!y.is_ok()) return y.status();
    if (!out.is_ok()) return out.status();
    x_dev_ = x.value();
    y_dev_ = y.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(y_dev_, y_); !s.is_ok()) return s;
    const f32 zero = 0.0f;
    if (auto s = device.to_device<f32>(out_dev_, std::span<const f32>(&zero, 1));
        !s.is_ok()) {
      return s;
    }

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {x_dev_, y_dev_, out_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    f64 sum = 0.0;
    for (u32 i = 0; i < n_; ++i) {
      sum += static_cast<f64>(x_[i]) * static_cast<f64>(y_[i]);
    }
    std::vector<f32> want = {static_cast<f32>(sum)};
    return fetch_and_check<f32>(
        device, out_dev_, 1, [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("dotprod");
    emit_global_tid_x(b, 0);          // R0 = gid
    b.s2r(3, SpecialReg::kLaneId);
    b.s2r(1, SpecialReg::kNtidX);
    b.s2r(2, SpecialReg::kNctaidX);
    b.imul_u32(4, Operand::reg(1), Operand::reg(2));  // total threads
    b.ldc_u64(6, 0);   // x
    b.ldc_u64(8, 1);   // y
    b.ldc_u64(10, 2);  // out

    b.mov_f32(12, 0.0f);  // partial
    b.mov_u32(13, Operand::imm_u(0));
    b.uniform_loop(13, Operand::imm_u(kPerThread), 1, [&] {
      b.imad_u32(14, Operand::reg(13), Operand::reg(4), Operand::reg(0));
      b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(6));
      b.ldg(20, 16);
      b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(8));
      b.ldg(21, 16);
      b.ffma_f32(12, Operand::reg(20), Operand::reg(21), Operand::reg(12));
    });

    // Warp-level butterfly reduction via SHFL.DOWN.
    for (u32 delta = 16; delta > 0; delta >>= 1) {
      b.shfl(ShflKind::kDown, 22, 12, Operand::imm_u(delta));
      b.fadd_f32(12, Operand::reg(12), Operand::reg(22));
    }

    // Lane 0 of each warp contributes via a global FP32 atomic add.
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.atomg(AtomKind::kAdd, sim::kRegZ, 10, Operand::reg(12),
              Operand::none(), DType::kF32);
    });
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<f32> x_;
  std::vector<f32> y_;
  u64 x_dev_ = 0, y_dev_ = 0, out_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_reduce_u32() {
  return std::make_unique<ReduceU32>();
}
std::unique_ptr<Workload> make_dotprod() { return std::make_unique<DotProd>(); }

}  // namespace gfi::wl
