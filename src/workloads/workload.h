// Workload abstraction: a kernel plus deterministic inputs and a CPU
// reference check. Campaigns treat workloads as black boxes with a
// setup -> launch -> check lifecycle, mirroring how NVBitFI wraps benchmark
// binaries.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sassim/device.h"

namespace gfi::wl {

/// Everything a launch needs: geometry and kernel parameters.
struct LaunchSpec {
  Dim3 grid;
  Dim3 block;
  std::vector<u64> params;
};

/// Output comparison against the CPU reference.
struct CheckResult {
  bool bitwise_equal = false;     ///< outputs match the reference exactly
  bool within_tolerance = false;  ///< mismatch small enough to be benign
  f64 max_rel_err = 0.0;          ///< worst relative error observed

  /// The classification campaigns use: an SDC is a mismatch beyond
  /// tolerance.
  [[nodiscard]] bool passed() const { return within_tolerance; }
};

/// One benchmark kernel with deterministic inputs and a golden check.
///
/// Instances are single-use per device: construct, setup(device),
/// launch via spec(), then check(device). Construction and the CPU
/// reference must be deterministic (seeded) so every injection run of a
/// campaign sees identical inputs.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual const sim::Program& program() const = 0;

  /// Allocates device buffers and uploads inputs; returns the launch spec.
  virtual Result<LaunchSpec> setup(sim::Device& device) = 0;

  /// Copies outputs back and compares against the CPU reference. The
  /// returned Status is non-OK only on harness errors; an ECC trap during
  /// the copy-back is reported through `trap`.
  struct Checked {
    sim::TrapKind trap = sim::TrapKind::kNone;  ///< d2h ECC trap, if any
    CheckResult result;
  };
  virtual Result<Checked> check(sim::Device& device) = 0;

  /// Relative-error tolerance for within_tolerance (0 = exact match only).
  [[nodiscard]] virtual f64 tolerance() const { return 0.0; }
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// Global registry (populated at static-init time by each workload TU).
void register_workload(const std::string& name, WorkloadFactory factory);
[[nodiscard]] std::vector<std::string> workload_names();
[[nodiscard]] std::unique_ptr<Workload> make_workload(const std::string& name);

/// Helper used by workload TUs for self-registration.
struct Registrar {
  Registrar(const std::string& name, WorkloadFactory factory) {
    register_workload(name, std::move(factory));
  }
};

}  // namespace gfi::wl
