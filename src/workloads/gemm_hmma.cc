// Tensor-core GEMM: each warp computes one 16x8 C tile through m16n8k8
// HMMA instructions with TF32 input rounding, accumulating over K in chunks
// of 8. The contrast workload for SIMT-vs-tensor-core resilience (R-F5).
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::LopKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

class GemmHmma final : public Workload {
 public:
  GemmHmma()
      : name_("gemm_hmma"),
        m_(32),
        n_(32),
        k_(32),
        a_(random_f32(static_cast<std::size_t>(m_) * k_, 0xCAFE)),
        b_(random_f32(static_cast<std::size_t>(k_) * n_, 0xF00D)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto a = device.malloc_n<f32>(a_.size());
    auto b = device.malloc_n<f32>(b_.size());
    auto c = device.malloc_n<f32>(static_cast<u64>(m_) * n_);
    if (!a.is_ok()) return a.status();
    if (!b.is_ok()) return b.status();
    if (!c.is_ok()) return c.status();
    a_dev_ = a.value();
    b_dev_ = b.value();
    c_dev_ = c.value();
    if (auto s = device.to_device<f32>(a_dev_, a_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(b_dev_, b_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(32);                    // one warp per CTA
    spec.grid = Dim3(n_ / 8, m_ / 16);        // one 16x8 tile per warp
    spec.params = {a_dev_, b_dev_, c_dev_, m_, n_, k_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    const bool tf32 = device.config().tensor_core_tf32;
    auto in = [&](f32 v) { return tf32 ? to_tf32(v) : v; };
    std::vector<f32> want(static_cast<std::size_t>(m_) * n_);
    // Chunk-major accumulation replicates the HMMA sequence bit-for-bit.
    for (u32 row = 0; row < m_; ++row) {
      for (u32 col = 0; col < n_; ++col) {
        f32 acc = 0.0f;
        for (u32 k0 = 0; k0 < k_; k0 += 8) {
          for (u32 kk = 0; kk < 8; ++kk) {
            acc = std::fmaf(in(a_[row * k_ + k0 + kk]),
                            in(b_[(k0 + kk) * n_ + col]), acc);
          }
        }
        want[row * n_ + col] = acc;
      }
    }
    return fetch_and_check<f32>(
        device, c_dev_, want.size(), [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  // Register map:
  //   R0 lane | R1 tile_n (ctaid.x) | R2 tile_m (ctaid.y)
  //   R4 N | R5 K | R6:7 A | R8:9 B | R10:11 C
  //   R12 k0 | R13..17 scratch | R18:19 address
  //   R20..23 C/D fragment | R24..27 A fragment | R28..29 B fragment
  //   R30 chunk counter | R31 chunk bound
  Program build() {
    KernelBuilder b("gemm_hmma");
    b.s2r(0, SpecialReg::kLaneId);
    b.s2r(1, SpecialReg::kCtaidX);
    b.s2r(2, SpecialReg::kCtaidY);
    b.ldc_u32(4, 4);   // N
    b.ldc_u32(5, 5);   // K
    b.ldc_u64(6, 0);   // A
    b.ldc_u64(8, 1);   // B
    b.ldc_u64(10, 2);  // C

    for (u16 r = 20; r < 24; ++r) b.mov_f32(r, 0.0f);  // acc tile = 0

    b.shf(ShiftKind::kRightLogical, 31, Operand::reg(5), Operand::imm_u(3));
    b.mov_u32(30, Operand::imm_u(0));
    b.uniform_loop(30, Operand::reg(31), 1, [&] {
      b.shf(ShiftKind::kLeft, 12, Operand::reg(30), Operand::imm_u(3));  // k0

      // Load the A fragment: element e = slot*32 + lane of the row-major
      // 16x8 tile; i = e>>3, kk = e&7.
      for (u16 slot = 0; slot < 4; ++slot) {
        b.iadd_u32(14, Operand::reg(0), Operand::imm_u(slot * 32u));
        b.shf(ShiftKind::kRightLogical, 15, Operand::reg(14), Operand::imm_u(3));
        b.lop(LopKind::kAnd, 16, Operand::reg(14), Operand::imm_u(7));
        b.imad_u32(17, Operand::reg(2), Operand::imm_u(16), Operand::reg(15));
        b.imul_u32(17, Operand::reg(17), Operand::reg(5));   // row*K
        b.iadd_u32(17, Operand::reg(17), Operand::reg(12));  // + k0
        b.iadd_u32(17, Operand::reg(17), Operand::reg(16));  // + kk
        b.imad_wide(18, Operand::reg(17), Operand::imm_u(4), Operand::reg(6));
        b.ldg(static_cast<u16>(24 + slot), 18);
      }
      // Load the B fragment: 8x8 tile, krow = e>>3, j = e&7.
      for (u16 slot = 0; slot < 2; ++slot) {
        b.iadd_u32(14, Operand::reg(0), Operand::imm_u(slot * 32u));
        b.shf(ShiftKind::kRightLogical, 15, Operand::reg(14), Operand::imm_u(3));
        b.lop(LopKind::kAnd, 16, Operand::reg(14), Operand::imm_u(7));
        b.iadd_u32(17, Operand::reg(12), Operand::reg(15));  // k0 + krow
        b.imul_u32(17, Operand::reg(17), Operand::reg(4));   // * N
        b.imad_u32(13, Operand::reg(1), Operand::imm_u(8), Operand::reg(16));
        b.iadd_u32(17, Operand::reg(17), Operand::reg(13));  // + tile_n*8 + j
        b.imad_wide(18, Operand::reg(17), Operand::imm_u(4), Operand::reg(8));
        b.ldg(static_cast<u16>(28 + slot), 18);
      }
      b.hmma(20, 24, 28, 20);
    });

    // Store D: same layout as the C fragment.
    for (u16 slot = 0; slot < 4; ++slot) {
      b.iadd_u32(14, Operand::reg(0), Operand::imm_u(slot * 32u));
      b.shf(ShiftKind::kRightLogical, 15, Operand::reg(14), Operand::imm_u(3));
      b.lop(LopKind::kAnd, 16, Operand::reg(14), Operand::imm_u(7));
      b.imad_u32(17, Operand::reg(2), Operand::imm_u(16), Operand::reg(15));
      b.imul_u32(17, Operand::reg(17), Operand::reg(4));   // row*N
      b.imad_u32(13, Operand::reg(1), Operand::imm_u(8), Operand::reg(16));
      b.iadd_u32(17, Operand::reg(17), Operand::reg(13));  // + tile_n*8 + j
      b.imad_wide(18, Operand::reg(17), Operand::imm_u(4), Operand::reg(10));
      b.stg(18, static_cast<u16>(20 + slot));
    }
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 m_, n_, k_;
  std::vector<f32> a_;
  std::vector<f32> b_;
  u64 a_dev_ = 0, b_dev_ = 0, c_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_gemm_hmma() {
  return std::make_unique<GemmHmma>();
}

}  // namespace gfi::wl
