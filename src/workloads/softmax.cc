// Row-wise softmax (64 rows x 256 cols): shared-memory max-tree, MUFU
// exp2/rcp, sum-tree, normalize — the suite's transformer-inference proxy.
#include "workloads/all.h"

#include "common/bitutil.h"
#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::MinMax;
using sim::MufuKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

constexpr f32 kLog2e = 1.4426950408889634f;

class Softmax final : public Workload {
 public:
  static constexpr u32 kRowsN = 64;
  static constexpr u32 kColsN = 256;

  Softmax()
      : name_("softmax"),
        x_(random_f32(static_cast<std::size_t>(kRowsN) * kColsN, 0x50F7,
                      -4.0f, 4.0f)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<f32>(x_.size());
    auto y = device.malloc_n<f32>(x_.size());
    if (!x.is_ok()) return x.status();
    if (!y.is_ok()) return y.status();
    x_dev_ = x.value();
    y_dev_ = y.value();
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kColsN);
    spec.grid = Dim3(kRowsN);
    spec.params = {x_dev_, y_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(x_.size());
    std::vector<f32> scratch(kColsN);
    for (u32 row = 0; row < kRowsN; ++row) {
      const f32* xr = &x_[row * kColsN];
      // Max tree in the exact shared-memory order.
      for (u32 i = 0; i < kColsN; ++i) scratch[i] = xr[i];
      for (u32 s = kColsN / 2; s > 0; s >>= 1) {
        for (u32 i = 0; i < s; ++i) {
          // fmax_det, not std::fmax: the golden must mirror the kernel's
          // FMNMX bit-for-bit in every build (bitutil.h explains why
          // std::fmax is not compilation-stable).
          scratch[i] = fmax_det(scratch[i], scratch[i + s]);
        }
      }
      const f32 neg_max = scratch[0] * -1.0f;
      std::vector<f32> e(kColsN);
      for (u32 i = 0; i < kColsN; ++i) {
        e[i] = std::exp2((xr[i] + neg_max) * kLog2e);
      }
      for (u32 i = 0; i < kColsN; ++i) scratch[i] = e[i];
      for (u32 s = kColsN / 2; s > 0; s >>= 1) {
        for (u32 i = 0; i < s; ++i) scratch[i] += scratch[i + s];
      }
      const f32 inv = 1.0f / scratch[0];
      for (u32 i = 0; i < kColsN; ++i) want[row * kColsN + i] = e[i] * inv;
    }
    return fetch_and_check<f32>(
        device, y_dev_, want.size(), [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  // Emits a shared-memory tree combine; `combine` emits R18 = f(R18, R19).
  void emit_tree(KernelBuilder& b, const std::function<void()>& combine) {
    for (u32 stride = kColsN / 2; stride > 0; stride >>= 1) {
      b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(stride));
      b.if_then(0, false, [&] {
        b.lds(18, 17, 0);
        b.lds(19, 17, static_cast<u64>(stride) * 4);
        combine();
        b.sts(17, 18);
      });
      b.bar();
    }
  }

  Program build() {
    KernelBuilder b("softmax");
    b.set_shared_bytes(kColsN * 4);
    b.s2r(3, SpecialReg::kTidX);    // col
    b.s2r(4, SpecialReg::kCtaidX);  // row
    b.ldc_u64(6, 0);                // x
    b.ldc_u64(8, 1);                // y

    // idx = row * cols + col
    b.imad_u32(10, Operand::reg(4), Operand::imm_u(kColsN), Operand::reg(3));
    b.imad_wide(12, Operand::reg(10), Operand::imm_u(4), Operand::reg(6));
    b.ldg(16, 12);  // x value

    b.shf(ShiftKind::kLeft, 17, Operand::reg(3), Operand::imm_u(2));
    b.sts(17, 16);
    b.bar();
    emit_tree(b, [&] {
      b.fmnmx_f32(18, Operand::reg(18), Operand::reg(19), MinMax::kMax);
    });
    b.mov_u32(20, Operand::imm_u(0));
    b.lds(20, 20);  // row max (shared[0])
    b.bar();        // everyone read the max before the sum tree overwrites

    // e = exp2((x - max) * log2e)
    b.fmul_f32(20, Operand::reg(20), Operand::imm_f32(-1.0f));
    b.fadd_f32(21, Operand::reg(16), Operand::reg(20));
    b.fmul_f32(21, Operand::reg(21), Operand::imm_f32(kLog2e));
    b.mufu(MufuKind::kExp2, 22, Operand::reg(21));

    b.sts(17, 22);
    b.bar();
    emit_tree(b, [&] {
      b.fadd_f32(18, Operand::reg(18), Operand::reg(19));
    });
    b.mov_u32(23, Operand::imm_u(0));
    b.lds(23, 23);  // row sum
    b.mufu(MufuKind::kRcp, 24, Operand::reg(23));
    b.fmul_f32(25, Operand::reg(22), Operand::reg(24));

    b.imad_wide(12, Operand::reg(10), Operand::imm_u(4), Operand::reg(8));
    b.stg(12, 25);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<f32> x_;
  u64 x_dev_ = 0, y_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_softmax() { return std::make_unique<Softmax>(); }

}  // namespace gfi::wl
