// 64-bin histogram with per-block shared-memory privatization and a global
// merge — the suite's atomic-heavy, data-dependent-addressing workload.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::AtomKind;
using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::LopKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

class HistogramWl final : public Workload {
 public:
  static constexpr u32 kBins = 64;
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = 4;
  static constexpr u32 kPerThread = 8;

  HistogramWl()
      : name_("histogram"),
        n_(kBlock * kGrid * kPerThread),
        data_(random_u32(n_, 0x415706, kBins)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto data = device.malloc_n<u32>(n_);
    auto bins = device.malloc_n<u32>(kBins);
    if (!data.is_ok()) return data.status();
    if (!bins.is_ok()) return bins.status();
    data_dev_ = data.value();
    bins_dev_ = bins.value();
    if (auto s = device.to_device<u32>(data_dev_, data_); !s.is_ok()) return s;
    const std::vector<u32> zeros(kBins, 0);
    if (auto s = device.to_device<u32>(bins_dev_, zeros); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {data_dev_, bins_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<u32> want(kBins, 0);
    for (u32 v : data_) ++want[v % kBins];
    return fetch_and_check<u32>(
        device, bins_dev_, kBins,
        [&](std::span<const u32> got) { return compare_u32(got, want); });
  }

 private:
  Program build() {
    KernelBuilder b("histogram");
    b.set_shared_bytes(kBins * 4);
    emit_global_tid_x(b, 0);        // R0 = gid
    b.s2r(3, SpecialReg::kTidX);    // R3 = tid
    b.s2r(1, SpecialReg::kNtidX);
    b.s2r(2, SpecialReg::kNctaidX);
    b.imul_u32(4, Operand::reg(1), Operand::reg(2));  // total threads
    b.ldc_u64(6, 0);  // data
    b.ldc_u64(8, 1);  // bins

    // Zero the privatized bins.
    b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(kBins));
    b.if_then(0, false, [&] {
      b.shf(ShiftKind::kLeft, 10, Operand::reg(3), Operand::imm_u(2));
      b.mov_u32(11, Operand::imm_u(0));
      b.sts(10, 11);
    });
    b.bar();

    // Count into shared bins.
    b.mov_u32(12, Operand::imm_u(0));  // loop counter
    b.uniform_loop(12, Operand::imm_u(kPerThread), 1, [&] {
      b.imad_u32(13, Operand::reg(12), Operand::reg(4), Operand::reg(0));
      b.imad_wide(14, Operand::reg(13), Operand::imm_u(4), Operand::reg(6));
      b.ldg(16, 14);
      b.lop(LopKind::kAnd, 17, Operand::reg(16), Operand::imm_u(kBins - 1));
      b.shf(ShiftKind::kLeft, 17, Operand::reg(17), Operand::imm_u(2));
      b.atoms(AtomKind::kAdd, sim::kRegZ, 17, Operand::imm_u(1));
    });
    b.bar();

    // Merge privatized bins into the global histogram.
    b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(kBins));
    b.if_then(0, false, [&] {
      b.shf(ShiftKind::kLeft, 10, Operand::reg(3), Operand::imm_u(2));
      b.lds(18, 10);
      b.imad_wide(20, Operand::reg(3), Operand::imm_u(4), Operand::reg(8));
      b.atomg(AtomKind::kAdd, sim::kRegZ, 20, Operand::reg(18));
    });
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<u32> data_;
  u64 data_dev_ = 0, bins_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_histogram() {
  return std::make_unique<HistogramWl>();
}

}  // namespace gfi::wl
