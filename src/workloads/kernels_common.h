// Internal helpers shared by workload kernel implementations.
#pragma once

#include <cstdlib>

#include "common/logging.h"
#include "sassim/kernel_builder.h"

namespace gfi::wl {

/// Finalizes a builder; a failure here is a programming bug in the workload,
/// so abort loudly rather than propagate.
inline sim::Program must_build(sim::KernelBuilder& builder) {
  auto result = builder.build();
  if (!result.is_ok()) {
    GFI_LOG(kError) << "kernel build failed: " << result.status().to_string();
    std::abort();
  }
  return std::move(result).take();
}

/// Emits `gid = ctaid.x * ntid.x + tid.x` into register `dst`, clobbering
/// dst+1 and dst+2.
inline void emit_global_tid_x(sim::KernelBuilder& b, u16 dst) {
  using sim::Operand;
  b.s2r(dst, sim::SpecialReg::kTidX);
  b.s2r(static_cast<u16>(dst + 1), sim::SpecialReg::kCtaidX);
  b.s2r(static_cast<u16>(dst + 2), sim::SpecialReg::kNtidX);
  b.imad_u32(dst, Operand::reg(static_cast<u16>(dst + 1)),
             Operand::reg(static_cast<u16>(dst + 2)), Operand::reg(dst));
}

}  // namespace gfi::wl
