// Factory functions for every built-in workload. The registry in
// workload.cc registers these explicitly (self-registering statics would be
// stripped from the static library).
#pragma once

#include <memory>

#include "workloads/workload.h"

namespace gfi::wl {

std::unique_ptr<Workload> make_vecadd();
std::unique_ptr<Workload> make_saxpy();
std::unique_ptr<Workload> make_gemm();
std::unique_ptr<Workload> make_gemm_hmma();
std::unique_ptr<Workload> make_reduce_u32();
std::unique_ptr<Workload> make_dotprod();
std::unique_ptr<Workload> make_conv2d();
std::unique_ptr<Workload> make_stencil();
std::unique_ptr<Workload> make_histogram();
std::unique_ptr<Workload> make_scan();
std::unique_ptr<Workload> make_bitonic_sort();
std::unique_ptr<Workload> make_spmv();
std::unique_ptr<Workload> make_softmax();
std::unique_ptr<Workload> make_layernorm();
std::unique_ptr<Workload> make_pathfinder();
std::unique_ptr<Workload> make_nbody();
std::unique_ptr<Workload> make_mc_pi();

}  // namespace gfi::wl
