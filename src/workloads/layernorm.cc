// Row-wise LayerNorm (64 rows x 256 cols): mean and variance via
// shared-memory sum trees, normalization via MUFU rsqrt — the second
// transformer-layer proxy, with two dependent reductions per row.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::MufuKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

constexpr f32 kEps = 1e-5f;

class LayerNorm final : public Workload {
 public:
  static constexpr u32 kRowsN = 64;
  static constexpr u32 kColsN = 256;

  LayerNorm()
      : name_("layernorm"),
        x_(random_f32(static_cast<std::size_t>(kRowsN) * kColsN, 0x7A9E,
                      -2.0f, 2.0f)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<f32>(x_.size());
    auto y = device.malloc_n<f32>(x_.size());
    if (!x.is_ok()) return x.status();
    if (!y.is_ok()) return y.status();
    x_dev_ = x.value();
    y_dev_ = y.value();
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kColsN);
    spec.grid = Dim3(kRowsN);
    spec.params = {x_dev_, y_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    constexpr f32 kInvN = 1.0f / kColsN;
    std::vector<f32> want(x_.size());
    std::vector<f32> scratch(kColsN);
    auto tree_sum = [&](const std::vector<f32>& values) {
      for (u32 i = 0; i < kColsN; ++i) scratch[i] = values[i];
      for (u32 s = kColsN / 2; s > 0; s >>= 1) {
        for (u32 i = 0; i < s; ++i) scratch[i] += scratch[i + s];
      }
      return scratch[0];
    };
    std::vector<f32> row(kColsN);
    std::vector<f32> sq(kColsN);
    for (u32 r = 0; r < kRowsN; ++r) {
      for (u32 i = 0; i < kColsN; ++i) row[i] = x_[r * kColsN + i];
      const f32 mean = tree_sum(row) * kInvN;
      const f32 neg_mean = mean * -1.0f;
      std::vector<f32> diff(kColsN);
      for (u32 i = 0; i < kColsN; ++i) {
        diff[i] = row[i] + neg_mean;
        sq[i] = diff[i] * diff[i];
      }
      const f32 var = tree_sum(sq) * kInvN;
      const f32 rstd = 1.0f / std::sqrt(var + kEps);
      for (u32 i = 0; i < kColsN; ++i) {
        want[r * kColsN + i] = diff[i] * rstd;
      }
    }
    return fetch_and_check<f32>(
        device, y_dev_, want.size(), [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  void emit_sum_tree(KernelBuilder& b) {
    for (u32 stride = kColsN / 2; stride > 0; stride >>= 1) {
      b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(stride));
      b.if_then(0, false, [&] {
        b.lds(18, 17, 0);
        b.lds(19, 17, static_cast<u64>(stride) * 4);
        b.fadd_f32(18, Operand::reg(18), Operand::reg(19));
        b.sts(17, 18);
      });
      b.bar();
    }
  }

  Program build() {
    KernelBuilder b("layernorm");
    b.set_shared_bytes(kColsN * 4);
    b.s2r(3, SpecialReg::kTidX);    // col
    b.s2r(4, SpecialReg::kCtaidX);  // row
    b.ldc_u64(6, 0);                // x
    b.ldc_u64(8, 1);                // y

    b.imad_u32(10, Operand::reg(4), Operand::imm_u(kColsN), Operand::reg(3));
    b.imad_wide(12, Operand::reg(10), Operand::imm_u(4), Operand::reg(6));
    b.ldg(16, 12);

    b.shf(ShiftKind::kLeft, 17, Operand::reg(3), Operand::imm_u(2));
    b.sts(17, 16);
    b.bar();
    emit_sum_tree(b);
    b.mov_u32(20, Operand::imm_u(0));
    b.lds(20, 20);  // row sum
    b.bar();
    b.fmul_f32(20, Operand::reg(20), Operand::imm_f32(1.0f / kColsN));  // mean
    b.fmul_f32(20, Operand::reg(20), Operand::imm_f32(-1.0f));
    b.fadd_f32(21, Operand::reg(16), Operand::reg(20));  // diff
    b.fmul_f32(22, Operand::reg(21), Operand::reg(21));  // diff^2

    b.sts(17, 22);
    b.bar();
    emit_sum_tree(b);
    b.mov_u32(23, Operand::imm_u(0));
    b.lds(23, 23);  // sum of squares
    b.fmul_f32(23, Operand::reg(23), Operand::imm_f32(1.0f / kColsN));  // var
    b.fadd_f32(23, Operand::reg(23), Operand::imm_f32(kEps));
    b.mufu(MufuKind::kRsq, 24, Operand::reg(23));  // 1/sqrt(var+eps)
    b.fmul_f32(25, Operand::reg(21), Operand::reg(24));

    b.imad_wide(12, Operand::reg(10), Operand::imm_u(4), Operand::reg(8));
    b.stg(12, 25);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<f32> x_;
  u64 x_dev_ = 0, y_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_layernorm() {
  return std::make_unique<LayerNorm>();
}

}  // namespace gfi::wl
