// 2D convolution (3x3, "valid" padding) in FP32 — one thread per output
// pixel, fully unrolled taps. Representative of image/CNN inference layers.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::SpecialReg;

constexpr f32 kWeights[3][3] = {
    {0.0625f, 0.125f, 0.0625f},
    {0.125f, 0.25f, 0.125f},
    {0.0625f, 0.125f, 0.0625f},
};

class Conv2d final : public Workload {
 public:
  Conv2d()
      : name_("conv2d"),
        width_(64),
        height_(64),
        input_(random_f32(static_cast<std::size_t>(width_) * height_, 0xC04)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    const u32 ow = width_ - 2;
    const u32 oh = height_ - 2;
    auto in = device.malloc_n<f32>(input_.size());
    auto out = device.malloc_n<f32>(static_cast<u64>(ow) * oh);
    if (!in.is_ok()) return in.status();
    if (!out.is_ok()) return out.status();
    in_dev_ = in.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<f32>(in_dev_, input_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(16, 16);
    spec.grid = Dim3((ow + 15) / 16, (oh + 15) / 16);
    spec.params = {in_dev_, out_dev_, width_, height_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    const u32 ow = width_ - 2;
    const u32 oh = height_ - 2;
    std::vector<f32> want(static_cast<std::size_t>(ow) * oh);
    for (u32 oy = 0; oy < oh; ++oy) {
      for (u32 ox = 0; ox < ow; ++ox) {
        f32 acc = 0.0f;
        for (u32 dy = 0; dy < 3; ++dy) {
          for (u32 dx = 0; dx < 3; ++dx) {
            acc = std::fmaf(input_[(oy + dy) * width_ + ox + dx],
                            kWeights[dy][dx], acc);
          }
        }
        want[oy * ow + ox] = acc;
      }
    }
    return fetch_and_check<f32>(
        device, out_dev_, want.size(), [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("conv2d");
    // ox / oy
    b.s2r(0, SpecialReg::kTidX);
    b.s2r(1, SpecialReg::kCtaidX);
    b.s2r(2, SpecialReg::kNtidX);
    b.imad_u32(4, Operand::reg(1), Operand::reg(2), Operand::reg(0));  // ox
    b.s2r(0, SpecialReg::kTidY);
    b.s2r(1, SpecialReg::kCtaidY);
    b.s2r(2, SpecialReg::kNtidY);
    b.imad_u32(5, Operand::reg(1), Operand::reg(2), Operand::reg(0));  // oy

    b.ldc_u32(6, 2);  // W
    b.ldc_u32(7, 3);  // H
    b.iadd_u32(8, Operand::reg(6), Operand::imm_u(0xFFFFFFFEu));  // OW = W-2
    b.iadd_u32(9, Operand::reg(7), Operand::imm_u(0xFFFFFFFEu));  // OH = H-2
    b.isetp(CmpOp::kGe, 0, Operand::reg(4), Operand::reg(8));
    b.exit_if(0);
    b.isetp(CmpOp::kGe, 0, Operand::reg(5), Operand::reg(9));
    b.exit_if(0);

    b.ldc_u64(10, 0);  // input
    b.ldc_u64(12, 1);  // output

    b.mov_f32(14, 0.0f);  // acc
    for (u32 dy = 0; dy < 3; ++dy) {
      for (u32 dx = 0; dx < 3; ++dx) {
        b.iadd_u32(15, Operand::reg(5), Operand::imm_u(dy));   // iy
        b.iadd_u32(16, Operand::reg(4), Operand::imm_u(dx));   // ix
        b.imad_u32(15, Operand::reg(15), Operand::reg(6), Operand::reg(16));
        b.imad_wide(18, Operand::reg(15), Operand::imm_u(4), Operand::reg(10));
        b.ldg(17, 18);
        b.ffma_f32(14, Operand::reg(17), Operand::imm_f32(kWeights[dy][dx]),
                   Operand::reg(14));
      }
    }

    b.imad_u32(15, Operand::reg(5), Operand::reg(8), Operand::reg(4));
    b.imad_wide(18, Operand::reg(15), Operand::imm_u(4), Operand::reg(12));
    b.stg(18, 14);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 width_, height_;
  std::vector<f32> input_;
  u64 in_dev_ = 0, out_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_conv2d() { return std::make_unique<Conv2d>(); }

}  // namespace gfi::wl
