// Segmented inclusive prefix sum (Hillis-Steele in shared memory): each
// 256-element segment is scanned by one CTA. Heavy on LDS/STS, barriers,
// and per-step divergent guards.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

class Scan final : public Workload {
 public:
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = 16;

  Scan()
      : name_("scan"),
        n_(kBlock * kGrid),
        x_(random_u32(n_, 0x5CA9, 1000)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<u32>(n_);
    auto y = device.malloc_n<u32>(n_);
    if (!x.is_ok()) return x.status();
    if (!y.is_ok()) return y.status();
    x_dev_ = x.value();
    y_dev_ = y.value();
    if (auto s = device.to_device<u32>(x_dev_, x_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {x_dev_, y_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<u32> want(n_);
    for (u32 seg = 0; seg < kGrid; ++seg) {
      u32 running = 0;
      for (u32 i = 0; i < kBlock; ++i) {
        running += x_[seg * kBlock + i];
        want[seg * kBlock + i] = running;
      }
    }
    return fetch_and_check<u32>(
        device, y_dev_, n_,
        [&](std::span<const u32> got) { return compare_u32(got, want); });
  }

 private:
  Program build() {
    KernelBuilder b("scan");
    b.set_shared_bytes(kBlock * 4);
    emit_global_tid_x(b, 0);      // R0 = gid
    b.s2r(3, SpecialReg::kTidX);  // R3 = tid
    b.ldc_u64(6, 0);              // x
    b.ldc_u64(8, 1);              // y

    b.imad_wide(10, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
    b.ldg(16, 10);                                        // running value
    b.shf(ShiftKind::kLeft, 17, Operand::reg(3), Operand::imm_u(2));
    // R18 (the neighbour value) is loaded and consumed under the same @P0
    // guard each step; a path-insensitive analysis cannot correlate the two
    // guards, so define it up front (zero matches the launch-time state).
    b.mov_u32(18, Operand::imm_u(0));
    b.sts(17, 16);
    b.bar();

    for (u32 dist = 1; dist < kBlock; dist <<= 1) {
      // Read the neighbour before anyone overwrites it this step.
      b.isetp(CmpOp::kGe, 0, Operand::reg(3), Operand::imm_u(dist));
      b.if_then(0, false, [&] {
        b.iadd_u32(19, Operand::reg(17),
                   Operand::imm_u(static_cast<u64>(-static_cast<i64>(dist) * 4) &
                                  0xffffffffu));
        b.lds(18, 19);
      });
      b.bar();
      b.if_then(0, false, [&] {
        b.iadd_u32(16, Operand::reg(16), Operand::reg(18));
      });
      b.sts(17, 16);
      b.bar();
    }

    b.imad_wide(12, Operand::reg(0), Operand::imm_u(4), Operand::reg(8));
    b.stg(12, 16);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<u32> x_;
  u64 x_dev_ = 0, y_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_scan() { return std::make_unique<Scan>(); }

}  // namespace gfi::wl
