// Element-wise streaming kernels: vecadd (c = a + b) and saxpy
// (y = alpha * x + y). The simplest dataflow workloads in the suite —
// dominated by LDG/FADD-or-FFMA/STG with one bounds compare.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::DType;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::SpecialReg;

class VecAdd final : public Workload {
 public:
  VecAdd()
      : name_("vecadd"),
        n_(1u << 14),
        a_(random_f32(n_, 0xA11CE)),
        b_(random_f32(n_, 0xB0B)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto a = device.malloc_n<f32>(n_);
    auto b = device.malloc_n<f32>(n_);
    auto c = device.malloc_n<f32>(n_);
    if (!a.is_ok()) return a.status();
    if (!b.is_ok()) return b.status();
    if (!c.is_ok()) return c.status();
    a_dev_ = a.value();
    b_dev_ = b.value();
    c_dev_ = c.value();
    if (auto s = device.to_device<f32>(a_dev_, a_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(b_dev_, b_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(256);
    spec.grid = Dim3((n_ + 255) / 256);
    spec.params = {a_dev_, b_dev_, c_dev_, n_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(n_);
    for (u32 i = 0; i < n_; ++i) want[i] = a_[i] + b_[i];
    return fetch_and_check<f32>(
        device, c_dev_, n_, [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("vecadd");
    emit_global_tid_x(b, 0);                       // R0 = gid
    b.ldc_u32(3, 3);                               // R3 = n
    b.isetp(CmpOp::kGe, 0, Operand::reg(0), Operand::reg(3));
    b.exit_if(0);
    b.ldc_u64(4, 0);                               // R4:R5 = a
    b.ldc_u64(6, 1);                               // R6:R7 = b
    b.ldc_u64(8, 2);                               // R8:R9 = c
    b.imad_wide(10, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.imad_wide(12, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
    b.imad_wide(14, Operand::reg(0), Operand::imm_u(4), Operand::reg(8));
    b.ldg(16, 10);
    b.ldg(17, 12);
    b.fadd_f32(18, Operand::reg(16), Operand::reg(17));
    b.stg(14, 18);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<f32> a_;
  std::vector<f32> b_;
  u64 a_dev_ = 0, b_dev_ = 0, c_dev_ = 0;
  Program program_;
};

class Saxpy final : public Workload {
 public:
  Saxpy()
      : name_("saxpy"),
        n_(1u << 14),
        alpha_(1.75f),
        x_(random_f32(n_, 0x5AE9)),
        y_(random_f32(n_, 0x1234)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<f32>(n_);
    auto y = device.malloc_n<f32>(n_);
    if (!x.is_ok()) return x.status();
    if (!y.is_ok()) return y.status();
    x_dev_ = x.value();
    y_dev_ = y.value();
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(y_dev_, y_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(256);
    spec.grid = Dim3((n_ + 255) / 256);
    spec.params = {x_dev_, y_dev_, n_, static_cast<u64>(f32_bits(alpha_))};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(n_);
    for (u32 i = 0; i < n_; ++i) want[i] = std::fmaf(alpha_, x_[i], y_[i]);
    return fetch_and_check<f32>(
        device, y_dev_, n_, [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("saxpy");
    emit_global_tid_x(b, 0);                       // R0 = gid
    b.ldc_u32(3, 2);                               // R3 = n
    b.isetp(CmpOp::kGe, 0, Operand::reg(0), Operand::reg(3));
    b.exit_if(0);
    b.ldc_u64(4, 0);                               // x
    b.ldc_u64(6, 1);                               // y
    b.ldc_u32(8, 3);                               // alpha bits
    b.imad_wide(10, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.imad_wide(12, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
    b.ldg(16, 10);                                 // x[i]
    b.ldg(17, 12);                                 // y[i]
    b.ffma_f32(18, Operand::reg(8), Operand::reg(16), Operand::reg(17));
    b.stg(12, 18);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 n_;
  f32 alpha_;
  std::vector<f32> x_;
  std::vector<f32> y_;
  u64 x_dev_ = 0, y_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_vecadd() { return std::make_unique<VecAdd>(); }
std::unique_ptr<Workload> make_saxpy() { return std::make_unique<Saxpy>(); }

}  // namespace gfi::wl
