// Sparse matrix-vector product (CSR, scalar row-per-thread) — irregular
// row lengths make the inner loop trip count warp-divergent, exercising the
// simulator's divergent backward-branch handling and indirect addressing.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;

class Spmv final : public Workload {
 public:
  static constexpr u32 kRows = 1024;
  static constexpr u32 kCols = 1024;

  Spmv() : name_("spmv"), program_(build()) {
    Rng rng(0x5B37);
    row_ptr_.push_back(0);
    for (u32 row = 0; row < kRows; ++row) {
      const u32 nnz = 1 + static_cast<u32>(rng.next_below(15));
      for (u32 e = 0; e < nnz; ++e) {
        col_idx_.push_back(static_cast<u32>(rng.next_below(kCols)));
        vals_.push_back(rng.next_float(-1.0f, 1.0f));
      }
      row_ptr_.push_back(static_cast<u32>(col_idx_.size()));
    }
    x_ = random_f32(kCols, 0x5137);
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto rp = device.malloc_n<u32>(row_ptr_.size());
    auto ci = device.malloc_n<u32>(col_idx_.size());
    auto va = device.malloc_n<f32>(vals_.size());
    auto xv = device.malloc_n<f32>(x_.size());
    auto yv = device.malloc_n<f32>(kRows);
    for (const auto* r : {&rp, &ci, &va, &xv, &yv}) {
      if (!r->is_ok()) return r->status();
    }
    rp_dev_ = rp.value();
    ci_dev_ = ci.value();
    va_dev_ = va.value();
    x_dev_ = xv.value();
    y_dev_ = yv.value();
    if (auto s = device.to_device<u32>(rp_dev_, row_ptr_); !s.is_ok()) return s;
    if (auto s = device.to_device<u32>(ci_dev_, col_idx_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(va_dev_, vals_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(256);
    spec.grid = Dim3(kRows / 256);
    spec.params = {rp_dev_, ci_dev_, va_dev_, x_dev_, y_dev_, kRows};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(kRows);
    for (u32 row = 0; row < kRows; ++row) {
      f32 acc = 0.0f;
      for (u32 e = row_ptr_[row]; e < row_ptr_[row + 1]; ++e) {
        acc = std::fmaf(vals_[e], x_[col_idx_[e]], acc);
      }
      want[row] = acc;
    }
    return fetch_and_check<f32>(
        device, y_dev_, kRows, [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("spmv");
    emit_global_tid_x(b, 0);  // R0 = row
    b.ldc_u32(3, 5);          // rows
    b.isetp(CmpOp::kGe, 0, Operand::reg(0), Operand::reg(3));
    b.exit_if(0);

    b.ldc_u64(4, 0);   // row_ptr
    b.ldc_u64(6, 1);   // col_idx
    b.ldc_u64(8, 2);   // vals
    b.ldc_u64(10, 3);  // x
    b.ldc_u64(12, 4);  // y

    // start = row_ptr[row]; end = row_ptr[row+1]
    b.imad_wide(14, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.ldg(16, 14, 0);
    b.ldg(17, 14, 4);

    b.mov_f32(18, 0.0f);  // acc
    // Divergent trip count: rows in a warp have different nnz.
    b.uniform_loop(16, Operand::reg(17), 1, [&] {
      b.imad_wide(20, Operand::reg(16), Operand::imm_u(4), Operand::reg(6));
      b.ldg(22, 20);  // col
      b.imad_wide(20, Operand::reg(16), Operand::imm_u(4), Operand::reg(8));
      b.ldg(23, 20);  // val
      b.imad_wide(20, Operand::reg(22), Operand::imm_u(4), Operand::reg(10));
      b.ldg(24, 20);  // x[col]
      b.ffma_f32(18, Operand::reg(23), Operand::reg(24), Operand::reg(18));
    });

    b.imad_wide(20, Operand::reg(0), Operand::imm_u(4), Operand::reg(12));
    b.stg(20, 18);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<u32> row_ptr_;
  std::vector<u32> col_idx_;
  std::vector<f32> vals_;
  std::vector<f32> x_;
  u64 rp_dev_ = 0, ci_dev_ = 0, va_dev_ = 0, x_dev_ = 0, y_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_spmv() { return std::make_unique<Spmv>(); }

}  // namespace gfi::wl
