// Monte-Carlo pi estimation with a per-thread LCG — mixed integer/FP
// pipeline, data-dependent divergent counting, and an atomic tally. The
// inherently-approximate workload: small numeric corruption is invisible,
// so it shows the highest masking rates in the suite (the "app-level
// masking" effect the resilience literature reports for stochastic codes).
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::AtomKind;
using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::LopKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;

constexpr u32 kLcgA = 1664525u;
constexpr u32 kLcgC = 1013904223u;

class McPi final : public Workload {
 public:
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = 4;
  static constexpr u32 kSamplesPerThread = 16;

  McPi() : name_("mc_pi"), program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto hits = device.malloc_n<u32>(1);
    if (!hits.is_ok()) return hits.status();
    hits_dev_ = hits.value();
    const u32 zero = 0;
    if (auto s = device.to_device<u32>(hits_dev_, std::span<const u32>(&zero, 1));
        !s.is_ok()) {
      return s;
    }
    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {hits_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    // The device computation is integer-exact and fully deterministic, so
    // the reference replays the same LCG streams on the host.
    u32 want = 0;
    const u32 threads = kBlock * kGrid;
    for (u32 gid = 0; gid < threads; ++gid) {
      u32 state = gid * 2654435761u + 12345u;
      for (u32 s = 0; s < kSamplesPerThread; ++s) {
        state = state * kLcgA + kLcgC;
        const u32 xi = state >> 16;  // 16-bit x
        state = state * kLcgA + kLcgC;
        const u32 yi = state >> 16;  // 16-bit y
        const f32 x = static_cast<f32>(static_cast<i32>(xi)) * (1.0f / 65536.0f);
        const f32 y = static_cast<f32>(static_cast<i32>(yi)) * (1.0f / 65536.0f);
        const f32 r2 = std::fmaf(x, x, y * y);
        if (r2 <= 1.0f) ++want;
      }
    }
    std::vector<u32> expect = {want};
    return fetch_and_check<u32>(
        device, hits_dev_, 1,
        [&](std::span<const u32> got) { return compare_u32(got, expect); });
  }

 private:
  // Registers: R0 gid | R2 lcg state | R4:5 out | R6 local hits | R7 loop
  // R10..14 scratch
  Program build() {
    KernelBuilder b("mc_pi");
    emit_global_tid_x(b, 0);
    b.ldc_u64(4, 0);  // hits pointer
    b.imad_u32(2, Operand::reg(0), Operand::imm_u(2654435761u),
               Operand::imm_u(12345u));  // seed
    b.mov_u32(6, Operand::imm_u(0));     // local hit count
    b.mov_u32(7, Operand::imm_u(0));
    b.uniform_loop(7, Operand::imm_u(kSamplesPerThread), 1, [&] {
      // x = (state >> 16) / 65536
      b.imad_u32(2, Operand::reg(2), Operand::imm_u(kLcgA),
                 Operand::imm_u(kLcgC));
      b.shf(ShiftKind::kRightLogical, 10, Operand::reg(2), Operand::imm_u(16));
      b.i2f(11, Operand::reg(10));
      b.fmul_f32(11, Operand::reg(11), Operand::imm_f32(1.0f / 65536.0f));
      // y likewise
      b.imad_u32(2, Operand::reg(2), Operand::imm_u(kLcgA),
                 Operand::imm_u(kLcgC));
      b.shf(ShiftKind::kRightLogical, 10, Operand::reg(2), Operand::imm_u(16));
      b.i2f(12, Operand::reg(10));
      b.fmul_f32(12, Operand::reg(12), Operand::imm_f32(1.0f / 65536.0f));
      // r2 = fma(x, x, y*y); hit if r2 <= 1
      b.fmul_f32(13, Operand::reg(12), Operand::reg(12));
      b.ffma_f32(13, Operand::reg(11), Operand::reg(11), Operand::reg(13));
      b.fsetp(CmpOp::kLe, 0, Operand::reg(13), Operand::imm_f32(1.0f));
      b.iadd_u32(6, Operand::reg(6), Operand::imm_u(1));
      b.guard_last(0);  // divergence-free guarded increment
    });
    b.atomg(AtomKind::kAdd, sim::kRegZ, 4, Operand::reg(6));
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u64 hits_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_mc_pi() { return std::make_unique<McPi>(); }

}  // namespace gfi::wl
