// N-body acceleration step (all-pairs, softened gravity) — the suite's
// MUFU-heavy workload: one rsqrt per interaction, quadratic FFMA stream.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::MufuKind;
using sim::Operand;
using sim::Program;

constexpr f32 kSoftening = 1e-2f;

class NBody final : public Workload {
 public:
  static constexpr u32 kBodies = 256;

  NBody()
      : name_("nbody"),
        px_(random_f32(kBodies, 0xAB0D1, -1.0f, 1.0f)),
        py_(random_f32(kBodies, 0xAB0D2, -1.0f, 1.0f)),
        mass_(random_f32(kBodies, 0xAB0D3, 0.5f, 1.5f)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto px = device.malloc_n<f32>(kBodies);
    auto py = device.malloc_n<f32>(kBodies);
    auto mass = device.malloc_n<f32>(kBodies);
    auto ax = device.malloc_n<f32>(kBodies);
    auto ay = device.malloc_n<f32>(kBodies);
    for (const auto* r : {&px, &py, &mass, &ax, &ay}) {
      if (!r->is_ok()) return r->status();
    }
    px_dev_ = px.value();
    py_dev_ = py.value();
    mass_dev_ = mass.value();
    ax_dev_ = ax.value();
    ay_dev_ = ay.value();
    if (auto s = device.to_device<f32>(px_dev_, px_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(py_dev_, py_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(mass_dev_, mass_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(64);
    spec.grid = Dim3(kBodies / 64);
    spec.params = {px_dev_, py_dev_, mass_dev_, ax_dev_, ay_dev_, kBodies};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want_ax(kBodies);
    std::vector<f32> want_ay(kBodies);
    for (u32 i = 0; i < kBodies; ++i) {
      f32 ax = 0.0f;
      f32 ay = 0.0f;
      for (u32 j = 0; j < kBodies; ++j) {
        const f32 dx = px_[j] - px_[i];
        const f32 dy = py_[j] - py_[i];
        // r2 = dx*dx + dy*dy + eps, accumulated exactly as the kernel does.
        f32 r2 = std::fmaf(dx, dx, kSoftening);
        r2 = std::fmaf(dy, dy, r2);
        const f32 inv_r = 1.0f / std::sqrt(r2);  // MUFU.RSQ
        const f32 inv_r3 = inv_r * inv_r * inv_r;
        const f32 s = mass_[j] * inv_r3;
        ax = std::fmaf(dx, s, ax);
        ay = std::fmaf(dy, s, ay);
      }
      want_ax[i] = ax;
      want_ay[i] = ay;
    }
    auto first = fetch_and_check<f32>(
        device, ax_dev_, kBodies, [&](std::span<const f32> got) {
          return compare_f32(got, want_ax, tolerance());
        });
    if (!first.is_ok() || first.value().trap != sim::TrapKind::kNone ||
        !first.value().result.passed()) {
      return first;
    }
    auto second = fetch_and_check<f32>(
        device, ay_dev_, kBodies, [&](std::span<const f32> got) {
          return compare_f32(got, want_ay, tolerance());
        });
    if (!second.is_ok()) return second;
    // Combine: worst of the two output buffers.
    Checked combined = second.value();
    combined.result.bitwise_equal &= first.value().result.bitwise_equal;
    combined.result.within_tolerance &= first.value().result.within_tolerance;
    combined.result.max_rel_err = std::max(combined.result.max_rel_err,
                                           first.value().result.max_rel_err);
    return combined;
  }

 private:
  // Registers: R0 i | R4:5 px | R6:7 py | R8:9 mass | R10 n | R12/13 my x/y
  // R14/15 ax/ay | R16 j | R18:19 addr | R20.. interaction scratch
  Program build() {
    KernelBuilder b("nbody");
    emit_global_tid_x(b, 0);  // R0 = i
    b.ldc_u32(10, 5);         // n
    b.isetp(CmpOp::kGe, 0, Operand::reg(0), Operand::reg(10));
    b.exit_if(0);
    b.ldc_u64(4, 0);
    b.ldc_u64(6, 1);
    b.ldc_u64(8, 2);

    b.imad_wide(18, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.ldg(12, 18);  // px[i]
    b.imad_wide(18, Operand::reg(0), Operand::imm_u(4), Operand::reg(6));
    b.ldg(13, 18);  // py[i]
    b.mov_f32(14, 0.0f);
    b.mov_f32(15, 0.0f);
    b.fmul_f32(26, Operand::reg(12), Operand::imm_f32(-1.0f));  // -px[i]
    b.fmul_f32(27, Operand::reg(13), Operand::imm_f32(-1.0f));  // -py[i]

    b.mov_u32(16, Operand::imm_u(0));
    b.uniform_loop(16, Operand::reg(10), 1, [&] {
      b.imad_wide(18, Operand::reg(16), Operand::imm_u(4), Operand::reg(4));
      b.ldg(20, 18);  // px[j]
      b.imad_wide(18, Operand::reg(16), Operand::imm_u(4), Operand::reg(6));
      b.ldg(21, 18);  // py[j]
      b.fadd_f32(20, Operand::reg(20), Operand::reg(26));  // dx
      b.fadd_f32(21, Operand::reg(21), Operand::reg(27));  // dy
      b.ffma_f32(22, Operand::reg(20), Operand::reg(20),
                 Operand::imm_f32(kSoftening));
      b.ffma_f32(22, Operand::reg(21), Operand::reg(21), Operand::reg(22));
      b.mufu(MufuKind::kRsq, 23, Operand::reg(22));        // 1/r
      b.fmul_f32(24, Operand::reg(23), Operand::reg(23));
      b.fmul_f32(24, Operand::reg(24), Operand::reg(23));  // 1/r^3
      b.imad_wide(18, Operand::reg(16), Operand::imm_u(4), Operand::reg(8));
      b.ldg(25, 18);                                       // mass[j]
      b.fmul_f32(24, Operand::reg(25), Operand::reg(24));  // s
      b.ffma_f32(14, Operand::reg(20), Operand::reg(24), Operand::reg(14));
      b.ffma_f32(15, Operand::reg(21), Operand::reg(24), Operand::reg(15));
    });

    b.ldc_u64(4, 3);  // ax (reuse R4:5)
    b.imad_wide(18, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.stg(18, 14);
    b.ldc_u64(4, 4);  // ay
    b.imad_wide(18, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.stg(18, 15);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<f32> px_, py_, mass_;
  u64 px_dev_ = 0, py_dev_ = 0, mass_dev_ = 0, ax_dev_ = 0, ay_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_nbody() { return std::make_unique<NBody>(); }

}  // namespace gfi::wl
