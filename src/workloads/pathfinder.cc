// Pathfinder-style dynamic programming: each CTA sweeps a 64-column strip
// of a cost grid row by row, taking min(left, center, right) of the previous
// row from ping-pong shared buffers. Integer DP with clamped neighbour
// indexing and a barrier every row — the Rodinia-derived control workload.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::Device;
using sim::KernelBuilder;
using sim::LopKind;
using sim::MinMax;
using sim::Operand;
using sim::Program;
using sim::SpecialReg;

class Pathfinder final : public Workload {
 public:
  static constexpr u32 kStripCols = 64;
  static constexpr u32 kStrips = 4;
  static constexpr u32 kCols = kStripCols * kStrips;
  static constexpr u32 kRows = 32;

  Pathfinder()
      : name_("pathfinder"),
        wall_(random_u32(static_cast<std::size_t>(kCols) * kRows, 0x9A7F, 10)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto wall = device.malloc_n<u32>(wall_.size());
    auto out = device.malloc_n<u32>(kCols);
    if (!wall.is_ok()) return wall.status();
    if (!out.is_ok()) return out.status();
    wall_dev_ = wall.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<u32>(wall_dev_, wall_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kStripCols);
    spec.grid = Dim3(kStrips);
    spec.params = {wall_dev_, out_dev_, kCols, kRows};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    // Reference DP with strip-local neighbour clamping (each CTA only sees
    // its own 64-column strip, matching the kernel).
    std::vector<u32> prev(kCols);
    std::vector<u32> cur(kCols);
    for (u32 c = 0; c < kCols; ++c) prev[c] = wall_[c];
    for (u32 r = 1; r < kRows; ++r) {
      for (u32 strip = 0; strip < kStrips; ++strip) {
        const u32 base = strip * kStripCols;
        for (u32 t = 0; t < kStripCols; ++t) {
          const u32 left = prev[base + (t == 0 ? 0 : t - 1)];
          const u32 center = prev[base + t];
          const u32 right =
              prev[base + (t == kStripCols - 1 ? t : t + 1)];
          const u32 best = std::min(std::min(left, center), right);
          cur[base + t] = wall_[r * kCols + base + t] + best;
        }
      }
      std::swap(prev, cur);
    }
    return fetch_and_check<u32>(
        device, out_dev_, kCols,
        [&](std::span<const u32> got) { return compare_u32(got, prev); });
  }

 private:
  // Register map: R3 tid | R4 gcol | R5 ping-pong offset | R6:7 wall
  // R8:9 out | R10 row counter | R11..15 scratch | R16:17 addresses
  Program build() {
    KernelBuilder b("pathfinder");
    b.set_shared_bytes(2 * kStripCols * 4);
    b.s2r(3, SpecialReg::kTidX);
    b.s2r(1, SpecialReg::kCtaidX);
    b.imad_u32(4, Operand::reg(1), Operand::imm_u(kStripCols),
               Operand::reg(3));  // global column
    b.ldc_u64(6, 0);              // wall
    b.ldc_u64(8, 1);              // out

    // prev[tid] = wall[0][gcol]
    b.imad_wide(16, Operand::reg(4), Operand::imm_u(4), Operand::reg(6));
    b.ldg(11, 16);
    b.shf(sim::ShiftKind::kLeft, 12, Operand::reg(3), Operand::imm_u(2));
    b.sts(12, 11);
    b.bar();

    b.mov_u32(5, Operand::imm_u(0));  // ping-pong byte offset (0 / 256)
    b.mov_u32(10, Operand::imm_u(1));  // row = 1
    b.uniform_loop(10, Operand::imm_u(kRows), 1, [&] {
      // Clamped neighbour columns.
      b.iadd_u32(13, Operand::reg(3), Operand::imm_u(0xFFFFFFFFu));  // t-1
      b.imnmx_s32(13, Operand::reg(13), Operand::imm_u(0), MinMax::kMax);
      b.iadd_u32(14, Operand::reg(3), Operand::imm_u(1));            // t+1
      b.imnmx_u32(14, Operand::reg(14), Operand::imm_u(kStripCols - 1),
                  MinMax::kMin);
      // prev values from shared[off + idx*4].
      b.imad_u32(15, Operand::reg(13), Operand::imm_u(4), Operand::reg(5));
      b.lds(13, 15);  // left
      b.imad_u32(15, Operand::reg(3), Operand::imm_u(4), Operand::reg(5));
      b.lds(11, 15);  // center
      b.imad_u32(15, Operand::reg(14), Operand::imm_u(4), Operand::reg(5));
      b.lds(14, 15);  // right
      b.imnmx_u32(11, Operand::reg(11), Operand::reg(13), MinMax::kMin);
      b.imnmx_u32(11, Operand::reg(11), Operand::reg(14), MinMax::kMin);
      // wall[row][gcol]
      b.ldc_u32(15, 2);  // total cols
      b.imad_u32(15, Operand::reg(10), Operand::reg(15), Operand::reg(4));
      b.imad_wide(16, Operand::reg(15), Operand::imm_u(4), Operand::reg(6));
      b.ldg(15, 16);
      b.iadd_u32(11, Operand::reg(11), Operand::reg(15));
      // cur[tid] in the other half of shared memory.
      b.lop(LopKind::kXor, 13, Operand::reg(5),
            Operand::imm_u(kStripCols * 4));
      b.imad_u32(15, Operand::reg(3), Operand::imm_u(4), Operand::reg(13));
      b.sts(15, 11);
      b.bar();
      b.mov_u32(5, Operand::reg(13));  // swap ping-pong
    });

    // Result = final "prev" row (offset R5 after the last swap).
    b.imad_u32(15, Operand::reg(3), Operand::imm_u(4), Operand::reg(5));
    b.lds(11, 15);
    b.imad_wide(16, Operand::reg(4), Operand::imm_u(4), Operand::reg(8));
    b.stg(16, 11);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<u32> wall_;
  u64 wall_dev_ = 0, out_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_pathfinder() {
  return std::make_unique<Pathfinder>();
}

}  // namespace gfi::wl
