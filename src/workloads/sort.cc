// Bitonic sort of 512 u32 keys in shared memory (one CTA) — the suite's
// control-flow-dominated workload: 45 compare-exchange passes with nested
// data-dependent divergence, barriers every pass.
#include "workloads/all.h"

#include <algorithm>

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::LopKind;
using sim::Operand;
using sim::Program;
using sim::ShiftKind;
using sim::SpecialReg;

class BitonicSort final : public Workload {
 public:
  static constexpr u32 kN = 512;
  static constexpr u32 kBlock = 256;

  BitonicSort()
      : name_("bitonic_sort"),
        keys_(random_u32(kN, 0xB170)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto data = device.malloc_n<u32>(kN);
    if (!data.is_ok()) return data.status();
    data_dev_ = data.value();
    if (auto s = device.to_device<u32>(data_dev_, keys_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(1);
    spec.params = {data_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<u32> want = keys_;
    std::sort(want.begin(), want.end());
    return fetch_and_check<u32>(
        device, data_dev_, kN,
        [&](std::span<const u32> got) { return compare_u32(got, want); });
  }

 private:
  // One compare-exchange for element index held in R4 (i) under the (k, j)
  // pass. Registers: R4 i, R5 l, R6/R7 keys, R8 scratch, R10/R11 addresses.
  void emit_compare_exchange(KernelBuilder& b, u32 k, u32 j) {
    b.lop(LopKind::kXor, 5, Operand::reg(4), Operand::imm_u(j));  // l = i ^ j
    b.isetp(CmpOp::kGt, 0, Operand::reg(5), Operand::reg(4));
    b.if_then(0, false, [&] {
      b.shf(ShiftKind::kLeft, 10, Operand::reg(4), Operand::imm_u(2));
      b.shf(ShiftKind::kLeft, 11, Operand::reg(5), Operand::imm_u(2));
      b.lds(6, 10);
      b.lds(7, 11);
      b.lop(LopKind::kAnd, 8, Operand::reg(4), Operand::imm_u(k));
      b.isetp(CmpOp::kEq, 1, Operand::reg(8), Operand::imm_u(0));  // ascending
      b.if_then_else(
          1, false,
          [&] {  // ascending: swap when a > b
            b.isetp(CmpOp::kGt, 2, Operand::reg(6), Operand::reg(7));
            b.if_then(2, false, [&] {
              b.sts(10, 7);
              b.sts(11, 6);
            });
          },
          [&] {  // descending: swap when a < b
            b.isetp(CmpOp::kLt, 2, Operand::reg(6), Operand::reg(7));
            b.if_then(2, false, [&] {
              b.sts(10, 7);
              b.sts(11, 6);
            });
          });
    });
  }

  Program build() {
    KernelBuilder b("bitonic_sort");
    b.set_shared_bytes(kN * 4);
    b.s2r(3, SpecialReg::kTidX);  // tid
    b.ldc_u64(14, 0);             // data pointer

    // Stage in: each thread loads two elements.
    for (u32 half = 0; half < 2; ++half) {
      b.iadd_u32(4, Operand::reg(3), Operand::imm_u(half * kBlock));
      b.imad_wide(10, Operand::reg(4), Operand::imm_u(4), Operand::reg(14));
      b.ldg(6, 10);
      b.shf(ShiftKind::kLeft, 12, Operand::reg(4), Operand::imm_u(2));
      b.sts(12, 6);
    }
    b.bar();

    for (u32 k = 2; k <= kN; k <<= 1) {
      for (u32 j = k >> 1; j > 0; j >>= 1) {
        for (u32 half = 0; half < 2; ++half) {
          b.iadd_u32(4, Operand::reg(3), Operand::imm_u(half * kBlock));
          emit_compare_exchange(b, k, j);
        }
        b.bar();
      }
    }

    // Stage out.
    for (u32 half = 0; half < 2; ++half) {
      b.iadd_u32(4, Operand::reg(3), Operand::imm_u(half * kBlock));
      b.shf(ShiftKind::kLeft, 12, Operand::reg(4), Operand::imm_u(2));
      b.lds(6, 12);
      b.imad_wide(10, Operand::reg(4), Operand::imm_u(4), Operand::reg(14));
      b.stg(10, 6);
    }
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  std::vector<u32> keys_;
  u64 data_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_bitonic_sort() {
  return std::make_unique<BitonicSort>();
}

}  // namespace gfi::wl
