#include "workloads/workload.h"

#include <map>

#include "workloads/all.h"

namespace gfi::wl {
namespace {

std::map<std::string, WorkloadFactory>& registry() {
  static auto* instance = new std::map<std::string, WorkloadFactory>();
  return *instance;
}

/// Registers the built-in suite exactly once. Explicit registration keeps
/// the workloads alive inside a static library (self-registering globals
/// would be dropped by the linker).
void ensure_builtin() {
  static const bool done = [] {
    register_workload("vecadd", make_vecadd);
    register_workload("saxpy", make_saxpy);
    register_workload("gemm", make_gemm);
    register_workload("gemm_hmma", make_gemm_hmma);
    register_workload("reduce_u32", make_reduce_u32);
    register_workload("dotprod", make_dotprod);
    register_workload("conv2d", make_conv2d);
    register_workload("stencil", make_stencil);
    register_workload("histogram", make_histogram);
    register_workload("scan", make_scan);
    register_workload("bitonic_sort", make_bitonic_sort);
    register_workload("spmv", make_spmv);
    register_workload("softmax", make_softmax);
    register_workload("layernorm", make_layernorm);
    register_workload("pathfinder", make_pathfinder);
    register_workload("nbody", make_nbody);
    register_workload("mc_pi", make_mc_pi);
    return true;
  }();
  (void)done;
}

}  // namespace

void register_workload(const std::string& name, WorkloadFactory factory) {
  registry()[name] = std::move(factory);
}

std::vector<std::string> workload_names() {
  ensure_builtin();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  ensure_builtin();
  auto it = registry().find(name);
  if (it == registry().end()) return nullptr;
  return it->second();
}

}  // namespace gfi::wl
