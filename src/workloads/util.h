// Shared helpers for workload implementations: deterministic input
// generation and output comparison.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/bitutil.h"
#include "common/rng.h"
#include "common/types.h"
#include "workloads/workload.h"

namespace gfi::wl {

/// Deterministic float inputs in [lo, hi).
inline std::vector<f32> random_f32(std::size_t n, u64 seed, f32 lo = -1.0f,
                                   f32 hi = 1.0f) {
  Rng rng(seed);
  std::vector<f32> values(n);
  for (auto& v : values) v = rng.next_float(lo, hi);
  return values;
}

/// Deterministic u32 inputs below `bound` (bound 0 = full range).
inline std::vector<u32> random_u32(std::size_t n, u64 seed, u32 bound = 0) {
  Rng rng(seed);
  std::vector<u32> values(n);
  for (auto& v : values) {
    v = bound ? static_cast<u32>(rng.next_below(bound)) : rng.next_u32();
  }
  return values;
}

/// Compares device output against a reference. `tolerance` is the relative
/// error beyond which a mismatch counts as an SDC.
inline CheckResult compare_f32(std::span<const f32> got,
                               std::span<const f32> want, f64 tolerance) {
  CheckResult result;
  result.bitwise_equal = true;
  result.within_tolerance = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (f32_bits(got[i]) == f32_bits(want[i])) continue;
    result.bitwise_equal = false;
    const f64 g = got[i];
    const f64 w = want[i];
    f64 rel;
    if (std::isnan(g) || std::isinf(g)) {
      rel = std::numeric_limits<f64>::infinity();
    } else {
      const f64 denom = std::max(std::abs(w), 1e-30);
      rel = std::abs(g - w) / denom;
    }
    result.max_rel_err = std::max(result.max_rel_err, rel);
    if (rel > tolerance) result.within_tolerance = false;
  }
  return result;
}

/// FP64 variant of compare_f32.
inline CheckResult compare_f64(std::span<const f64> got,
                               std::span<const f64> want, f64 tolerance) {
  CheckResult result;
  result.bitwise_equal = true;
  result.within_tolerance = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (f64_bits(got[i]) == f64_bits(want[i])) continue;
    result.bitwise_equal = false;
    f64 rel;
    if (std::isnan(got[i]) || std::isinf(got[i])) {
      rel = std::numeric_limits<f64>::infinity();
    } else {
      const f64 denom = std::max(std::abs(want[i]), 1e-300);
      rel = std::abs(got[i] - want[i]) / denom;
    }
    result.max_rel_err = std::max(result.max_rel_err, rel);
    if (rel > tolerance) result.within_tolerance = false;
  }
  return result;
}

/// Exact comparison for integer outputs.
inline CheckResult compare_u32(std::span<const u32> got,
                               std::span<const u32> want) {
  CheckResult result;
  result.bitwise_equal = true;
  result.within_tolerance = true;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      result.bitwise_equal = false;
      result.within_tolerance = false;
      result.max_rel_err = std::numeric_limits<f64>::infinity();
      break;
    }
  }
  return result;
}

/// Boilerplate: copies `count` T from device `addr` and wraps trap handling.
template <typename T>
Result<Workload::Checked> fetch_and_check(
    sim::Device& device, u64 addr, std::size_t count,
    const std::function<CheckResult(std::span<const T>)>& compare) {
  std::vector<T> host(count);
  Workload::Checked checked;
  checked.trap = device.to_host(std::span<T>(host), addr);
  if (checked.trap != sim::TrapKind::kNone) return checked;
  checked.result = compare(std::span<const T>(host));
  return checked;
}

}  // namespace gfi::wl
