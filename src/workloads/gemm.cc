// SIMT GEMM: C = A * B in FP32, one thread per output element, sequential
// k-loop of FFMAs — the canonical dense dataflow kernel and the workload
// with the highest SDC exposure in every GPU fault-injection study.
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::SpecialReg;

class Gemm final : public Workload {
 public:
  Gemm()
      : name_("gemm"),
        m_(48),
        n_(48),
        k_(48),
        a_(random_f32(static_cast<std::size_t>(m_) * k_, 0xAAAA)),
        b_(random_f32(static_cast<std::size_t>(k_) * n_, 0xBBBB)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto a = device.malloc_n<f32>(a_.size());
    auto b = device.malloc_n<f32>(b_.size());
    auto c = device.malloc_n<f32>(static_cast<u64>(m_) * n_);
    if (!a.is_ok()) return a.status();
    if (!b.is_ok()) return b.status();
    if (!c.is_ok()) return c.status();
    a_dev_ = a.value();
    b_dev_ = b.value();
    c_dev_ = c.value();
    if (auto s = device.to_device<f32>(a_dev_, a_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(b_dev_, b_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(16, 16);
    spec.grid = Dim3((n_ + 15) / 16, (m_ + 15) / 16);
    spec.params = {a_dev_, b_dev_, c_dev_, m_, n_, k_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(static_cast<std::size_t>(m_) * n_);
    for (u32 row = 0; row < m_; ++row) {
      for (u32 col = 0; col < n_; ++col) {
        f32 acc = 0.0f;
        for (u32 k = 0; k < k_; ++k) {
          acc = std::fmaf(a_[row * k_ + k], b_[k * n_ + col], acc);
        }
        want[row * n_ + col] = acc;
      }
    }
    return fetch_and_check<f32>(
        device, c_dev_, want.size(), [&](std::span<const f32> got) {
          return compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("gemm");
    // col = ctaid.x * ntid.x + tid.x ; row = ctaid.y * ntid.y + tid.y
    b.s2r(0, SpecialReg::kTidX);
    b.s2r(1, SpecialReg::kCtaidX);
    b.s2r(2, SpecialReg::kNtidX);
    b.imad_u32(4, Operand::reg(1), Operand::reg(2), Operand::reg(0));  // col
    b.s2r(0, SpecialReg::kTidY);
    b.s2r(1, SpecialReg::kCtaidY);
    b.s2r(2, SpecialReg::kNtidY);
    b.imad_u32(5, Operand::reg(1), Operand::reg(2), Operand::reg(0));  // row

    b.ldc_u32(6, 3);  // M
    b.ldc_u32(7, 4);  // N
    b.ldc_u32(8, 5);  // K
    b.isetp(CmpOp::kGe, 0, Operand::reg(5), Operand::reg(6));
    b.exit_if(0);
    b.isetp(CmpOp::kGe, 0, Operand::reg(4), Operand::reg(7));
    b.exit_if(0);

    b.ldc_u64(10, 0);  // A
    b.ldc_u64(12, 1);  // B
    b.ldc_u64(14, 2);  // C

    b.mov_f32(24, 0.0f);                                   // acc
    b.imul_u32(26, Operand::reg(5), Operand::reg(8));      // row * K
    b.mov_u32(16, Operand::imm_u(0));                      // k = 0
    b.uniform_loop(16, Operand::reg(8), 1, [&] {
      // a = A[row*K + k]
      b.iadd_u32(27, Operand::reg(26), Operand::reg(16));
      b.imad_wide(18, Operand::reg(27), Operand::imm_u(4), Operand::reg(10));
      b.ldg(22, 18);
      // bv = B[k*N + col]
      b.imad_u32(27, Operand::reg(16), Operand::reg(7), Operand::reg(4));
      b.imad_wide(20, Operand::reg(27), Operand::imm_u(4), Operand::reg(12));
      b.ldg(23, 20);
      b.ffma_f32(24, Operand::reg(22), Operand::reg(23), Operand::reg(24));
    });

    // C[row*N + col] = acc
    b.imad_u32(27, Operand::reg(5), Operand::reg(7), Operand::reg(4));
    b.imad_wide(18, Operand::reg(27), Operand::imm_u(4), Operand::reg(14));
    b.stg(18, 24);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 m_, n_, k_;
  std::vector<f32> a_;
  std::vector<f32> b_;
  u64 a_dev_ = 0, b_dev_ = 0, c_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_gemm() { return std::make_unique<Gemm>(); }

}  // namespace gfi::wl
