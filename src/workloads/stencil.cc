// 5-point Jacobi stencil sweep in FP64 — the suite's double-precision HPC
// proxy (register pairs, 8-byte loads/stores, FP64 arithmetic group).
#include "workloads/all.h"

#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::wl {
namespace {

using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::SpecialReg;

class Stencil final : public Workload {
 public:
  Stencil()
      : name_("stencil"), width_(64), height_(64), program_(build()) {
    Rng rng(0x57E4C11);
    input_.resize(static_cast<std::size_t>(width_) * height_);
    for (auto& v : input_) v = rng.next_double() * 2.0 - 1.0;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-12; }

  Result<LaunchSpec> setup(Device& device) override {
    auto in = device.malloc_n<f64>(input_.size());
    auto out = device.malloc_n<f64>(input_.size());
    if (!in.is_ok()) return in.status();
    if (!out.is_ok()) return out.status();
    in_dev_ = in.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<f64>(in_dev_, input_); !s.is_ok()) return s;
    // Borders are copied through; the kernel rewrites the interior.
    if (auto s = device.to_device<f64>(out_dev_, input_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(16, 16);
    spec.grid = Dim3((width_ - 2 + 15) / 16, (height_ - 2 + 15) / 16);
    spec.params = {in_dev_, out_dev_, width_, height_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f64> want = input_;
    for (u32 y = 1; y + 1 < height_; ++y) {
      for (u32 x = 1; x + 1 < width_; ++x) {
        const f64 up = input_[(y - 1) * width_ + x];
        const f64 down = input_[(y + 1) * width_ + x];
        const f64 left = input_[y * width_ + x - 1];
        const f64 right = input_[y * width_ + x + 1];
        want[y * width_ + x] = ((up + down) + (left + right)) * 0.25;
      }
    }
    return fetch_and_check<f64>(
        device, out_dev_, want.size(), [&](std::span<const f64> got) {
          return compare_f64(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("stencil");
    b.s2r(0, SpecialReg::kTidX);
    b.s2r(1, SpecialReg::kCtaidX);
    b.s2r(2, SpecialReg::kNtidX);
    b.imad_u32(4, Operand::reg(1), Operand::reg(2), Operand::reg(0));
    b.s2r(0, SpecialReg::kTidY);
    b.s2r(1, SpecialReg::kCtaidY);
    b.s2r(2, SpecialReg::kNtidY);
    b.imad_u32(5, Operand::reg(1), Operand::reg(2), Operand::reg(0));
    b.iadd_u32(4, Operand::reg(4), Operand::imm_u(1));  // x in [1, W-1)
    b.iadd_u32(5, Operand::reg(5), Operand::imm_u(1));  // y in [1, H-1)

    b.ldc_u32(6, 2);  // W
    b.ldc_u32(7, 3);  // H
    b.iadd_u32(8, Operand::reg(6), Operand::imm_u(0xFFFFFFFFu));  // W-1
    b.iadd_u32(9, Operand::reg(7), Operand::imm_u(0xFFFFFFFFu));  // H-1
    b.isetp(CmpOp::kGe, 0, Operand::reg(4), Operand::reg(8));
    b.exit_if(0);
    b.isetp(CmpOp::kGe, 0, Operand::reg(5), Operand::reg(9));
    b.exit_if(0);

    b.ldc_u64(10, 0);  // in
    b.ldc_u64(12, 1);  // out

    b.imad_u32(14, Operand::reg(5), Operand::reg(6), Operand::reg(4));  // idx
    // Neighbour loads (FP64, register pairs).
    auto load_at = [&](u16 dst_pair, i64 delta) {
      b.iadd_u32(15, Operand::reg(14),
                 Operand::imm_u(static_cast<u64>(static_cast<i64>(delta)) &
                                0xffffffffu));
      b.imad_wide(16, Operand::reg(15), Operand::imm_u(8), Operand::reg(10));
      b.ldg(dst_pair, 16, 0, 8);
    };
    // up = idx - W
    b.imul_u32(17, Operand::reg(6), Operand::imm_u(0xFFFFFFFFu));  // -W
    b.iadd_u32(15, Operand::reg(14), Operand::reg(17));
    b.imad_wide(16, Operand::reg(15), Operand::imm_u(8), Operand::reg(10));
    b.ldg(20, 16, 0, 8);
    // down = idx + W
    b.iadd_u32(15, Operand::reg(14), Operand::reg(6));
    b.imad_wide(16, Operand::reg(15), Operand::imm_u(8), Operand::reg(10));
    b.ldg(22, 16, 0, 8);
    // left / right
    load_at(24, -1);
    load_at(26, +1);

    // ((up + down) + (left + right)) * 0.25
    b.fadd_f64(28, Operand::reg(20), Operand::reg(22));
    b.fadd_f64(30, Operand::reg(24), Operand::reg(26));
    b.fadd_f64(28, Operand::reg(28), Operand::reg(30));
    b.mov_u64(32, f64_bits(0.25));
    b.fmul_f64(28, Operand::reg(28), Operand::reg(32));

    b.imad_wide(16, Operand::reg(14), Operand::imm_u(8), Operand::reg(12));
    b.stg(16, 28, 0, 8);
    b.exit_();
    return must_build(b);
  }

  std::string name_;
  u32 width_, height_;
  std::vector<f64> input_;
  u64 in_dev_ = 0, out_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<Workload> make_stencil() { return std::make_unique<Stencil>(); }

}  // namespace gfi::wl
