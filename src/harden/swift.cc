#include "harden/swift.h"

#include <utility>
#include <vector>

namespace gfi::harden {
namespace {

using sim::CmpOp;
using sim::DType;
using sim::Instr;
using sim::Opcode;
using sim::Operand;
using sim::Program;

/// Predicate reserved for the check results.
constexpr u8 kCheckPred = 6;

/// Shifts register operands into the shadow bank; immediates, predicates
/// and RZ pass through.
Operand shadow(Operand operand, u16 offset) {
  if (operand.is_reg() && operand.index != sim::kRegZ) {
    operand.index = static_cast<u16>(operand.index + offset);
  }
  return operand;
}

/// ISETP.NE P6, R(reg), R(reg+offset) under the protected instruction's
/// guard: sets the check predicate when master and shadow diverge.
Instr make_check(u16 reg, u16 offset, const Instr& guarded_like) {
  Instr check;
  check.op = Opcode::kISetp;
  check.dtype = DType::kU32;
  check.sub = static_cast<u8>(CmpOp::kNe);
  check.dst = Operand::pred(kCheckPred);
  check.src[0] = Operand::reg(reg);
  check.src[1] = Operand::reg(static_cast<u16>(reg + offset));
  check.guard_pred = guarded_like.guard_pred;
  check.guard_negated = guarded_like.guard_negated;
  return check;
}

/// @P6 STG [0] — the deliberate trap: a detected mismatch becomes an
/// illegal-address DUE instead of escaping as an SDC.
Instr make_trap() {
  Instr trap;
  trap.op = Opcode::kStg;
  trap.dtype = DType::kU32;
  trap.mem_width = 4;
  trap.src[0] = Operand::reg(sim::kRegZ);  // address 0: below the arena
  trap.src[1] = Operand::imm_u(0);
  trap.src[2] = Operand::reg(sim::kRegZ);
  trap.guard_pred = kCheckPred;
  return trap;
}

/// MOV shadow(dst) <- dst for values entering the sphere of replication
/// (loads, parameters, special registers, atomic return values).
Instr make_copy(u16 dst, u16 span, u16 offset, const Instr& guarded_like) {
  Instr copy;
  copy.op = Opcode::kMov;
  copy.dtype = span == 2 ? DType::kU64 : DType::kU32;
  copy.dst = Operand::reg(static_cast<u16>(dst + offset));
  copy.src[0] = Operand::reg(dst);
  copy.guard_pred = guarded_like.guard_pred;
  copy.guard_negated = guarded_like.guard_negated;
  return copy;
}

}  // namespace

Result<Program> swift_harden(const Program& program, SwiftStats* stats) {
  const u16 regs = program.num_regs();
  if (regs == 0) {
    return Status::invalid_argument("cannot harden a register-free program");
  }
  const u16 offset = regs;
  if (2 * static_cast<u32>(regs) > 250) {
    return Status::failed_precondition(
        "register budget " + std::to_string(regs) +
        " leaves no room for a shadow bank");
  }
  for (const Instr& instr : program.code()) {
    if (instr.op == Opcode::kHmma) {
      return Status::failed_precondition(
          "HMMA kernels are out of SWIFT's scope (fragment duplication)");
    }
    if (instr.writes_pred() && instr.dst.index == kCheckPred) {
      return Status::failed_precondition("program already writes P6");
    }
    if (instr.guard_pred == kCheckPred) {
      return Status::failed_precondition("program already guards on P6");
    }
  }

  SwiftStats local;
  local.original_instrs = program.size();

  std::vector<Instr> out;
  out.reserve(program.size() * 2 + 2);
  std::vector<i32> new_index(program.size(), 0);

  // P6 := false for every lane before anything else.
  {
    Instr init;
    init.op = Opcode::kISetp;
    init.dtype = DType::kU32;
    init.sub = static_cast<u8>(CmpOp::kNe);
    init.dst = Operand::pred(kCheckPred);
    init.src[0] = Operand::reg(sim::kRegZ);
    init.src[1] = Operand::reg(sim::kRegZ);
    out.push_back(init);
  }

  auto emit_check = [&](u16 reg, u16 span, const Instr& like) {
    for (u16 s = 0; s < span; ++s) {
      out.push_back(make_check(static_cast<u16>(reg + s), offset, like));
      out.push_back(make_trap());
      ++local.checks;
    }
  };

  for (std::size_t idx = 0; idx < program.size(); ++idx) {
    const Instr& instr = program.at(idx);
    new_index[idx] = static_cast<i32>(out.size());

    switch (instr.op) {
      case Opcode::kStg:
      case Opcode::kSts: {
        // Verify the address and the stored value against their shadows.
        const u16 addr_span = instr.op == Opcode::kStg ? 2 : 1;
        if (instr.src[0].is_reg() && instr.src[0].index != sim::kRegZ) {
          emit_check(instr.src[0].index, addr_span, instr);
        }
        const u16 value_span = instr.mem_width == 8 ? 2 : 1;
        if (instr.src[2].is_reg() && instr.src[2].index != sim::kRegZ) {
          emit_check(instr.src[2].index, value_span, instr);
        }
        out.push_back(instr);
        break;
      }

      case Opcode::kAtomG:
      case Opcode::kAtomS: {
        const u16 addr_span = instr.op == Opcode::kAtomG ? 2 : 1;
        if (instr.src[0].is_reg() && instr.src[0].index != sim::kRegZ) {
          emit_check(instr.src[0].index, addr_span, instr);
        }
        for (int s : {1, 2}) {
          if (instr.src[s].is_reg() && instr.src[s].index != sim::kRegZ) {
            emit_check(instr.src[s].index, 1, instr);
          }
        }
        out.push_back(instr);
        if (instr.dst.is_reg() && instr.dst.index != sim::kRegZ) {
          out.push_back(make_copy(instr.dst.index, 1, offset, instr));
          ++local.duplicated;
        }
        break;
      }

      case Opcode::kLdg:
      case Opcode::kLds: {
        // A wrong address loads wrong data: verify it, then copy the loaded
        // value into the sphere.
        const u16 addr_span = instr.op == Opcode::kLdg ? 2 : 1;
        if (instr.src[0].is_reg() && instr.src[0].index != sim::kRegZ) {
          emit_check(instr.src[0].index, addr_span, instr);
        }
        out.push_back(instr);
        out.push_back(make_copy(instr.dst.index, instr.dst_reg_span(), offset,
                                instr));
        ++local.duplicated;
        break;
      }

      case Opcode::kLdc:
      case Opcode::kS2r: {
        out.push_back(instr);
        out.push_back(make_copy(instr.dst.index, instr.dst_reg_span(), offset,
                                instr));
        ++local.duplicated;
        break;
      }

      default: {
        out.push_back(instr);
        if (instr.writes_reg()) {
          Instr dup = instr;
          dup.dst = shadow(dup.dst, offset);
          for (Operand& src : dup.src) src = shadow(src, offset);
          out.push_back(std::move(dup));
          ++local.duplicated;
        }
        break;
      }
    }
  }

  // Retarget control flow onto the new instruction positions.
  for (Instr& instr : out) {
    if ((instr.op == Opcode::kBra || instr.op == Opcode::kSsy) &&
        instr.target >= 0) {
      instr.target = new_index[static_cast<std::size_t>(instr.target)];
    }
  }

  local.hardened_instrs = out.size();
  if (stats != nullptr) *stats = local;

  Program hardened(program.name() + "_swift", std::move(out),
                   static_cast<u16>(2 * regs), program.shared_bytes(),
                   program.num_params());
  if (Status status = hardened.validate(); !status.is_ok()) return status;
  return hardened;
}

namespace {

/// Delegates everything to the inner workload but launches the hardened
/// kernel.
class HardenedWorkload final : public wl::Workload {
 public:
  HardenedWorkload(std::unique_ptr<wl::Workload> inner, Program program)
      : inner_(std::move(inner)),
        name_(inner_->name() + "_swift"),
        program_(std::move(program)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return inner_->tolerance(); }
  Result<wl::LaunchSpec> setup(sim::Device& device) override {
    return inner_->setup(device);
  }
  Result<Checked> check(sim::Device& device) override {
    return inner_->check(device);
  }

 private:
  std::unique_ptr<wl::Workload> inner_;
  std::string name_;
  Program program_;
};

}  // namespace

std::unique_ptr<wl::Workload> make_hardened(const std::string& inner_name) {
  auto inner = wl::make_workload(inner_name);
  if (!inner) return nullptr;
  auto hardened = swift_harden(inner->program());
  if (!hardened.is_ok()) return nullptr;
  return std::make_unique<HardenedWorkload>(std::move(inner),
                                            std::move(hardened).take());
}

void register_hardened_workloads() {
  static const bool done = [] {
    for (const std::string& name : wl::workload_names()) {
      if (auto probe = make_hardened(name); probe != nullptr) {
        wl::register_workload(name + "_swift",
                              [name] { return make_hardened(name); });
      }
    }
    return true;
  }();
  (void)done;
}

}  // namespace gfi::harden
