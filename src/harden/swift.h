// SWIFT-style software hardening (Reis et al., CGO'05) for gpufi kernels:
// duplicate the dataflow into shadow registers and verify value and address
// operands immediately before every store/atomic; a mismatch raises a
// deliberate trap (detected error) instead of letting corrupted data escape
// to memory.
//
// Scope (documented, as in the original SWIFT): the sphere of replication
// covers register dataflow. Loads/S2R/LDC enter it by copying their result
// to the shadow; stores/atomics exit it through the checks. Predicates and
// control flow are not duplicated, and HMMA kernels are rejected (fragment
// duplication would double an already-wide register footprint).
#pragma once

#include <memory>

#include "common/status.h"
#include "sassim/program.h"
#include "workloads/workload.h"

namespace gfi::harden {

/// Statistics of one hardening transform.
struct SwiftStats {
  std::size_t original_instrs = 0;
  std::size_t hardened_instrs = 0;
  std::size_t duplicated = 0;  ///< shadow compute instructions inserted
  std::size_t checks = 0;      ///< store/atomic operand checks inserted

  [[nodiscard]] f64 static_overhead() const {
    return original_instrs
               ? static_cast<f64>(hardened_instrs) /
                     static_cast<f64>(original_instrs)
               : 0.0;
  }
};

/// Transforms `program` into its SWIFT-hardened equivalent. Fails when the
/// program cannot be hardened (register budget would exceed the ISA limit,
/// HMMA present, or the check predicate P6 is already written).
Result<sim::Program> swift_harden(const sim::Program& program,
                                  SwiftStats* stats = nullptr);

/// Wraps a workload so campaigns run its SWIFT-hardened kernel against the
/// same inputs and golden check. Returns nullptr if the inner workload is
/// unknown or cannot be hardened.
std::unique_ptr<wl::Workload> make_hardened(const std::string& inner_name);

/// Registers "<name>_swift" hardened variants for every built-in workload
/// that can be hardened. Idempotent.
void register_hardened_workloads();

}  // namespace gfi::harden
