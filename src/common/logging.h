// Minimal leveled logger. Campaign workers log through this so output from
// parallel injections does not interleave mid-line.
#pragma once

#include <sstream>
#include <string>

namespace gfi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style one-shot logger: destructor emits the accumulated line.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gfi

#define GFI_LOG(level) ::gfi::internal::LogMessage(::gfi::LogLevel::level)
