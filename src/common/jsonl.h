// Flat one-line JSON (JSONL) writer/scanner shared by the campaign journal
// (fi/journal.cc), the golden cache, and the observability heartbeat stream
// (obs/heartbeat.cc). Supports exactly the shape those files emit: a single
// non-nested object per line whose values are strings, numbers, nulls, and
// arrays of unsigned integers.
//
// Two invariants every producer relies on:
//   * append_f64 never emits the `inf`/`nan` tokens (invalid JSON that would
//     poison a resume parse): NaN serializes as `null` (parsed back by
//     get_f64 as quiet NaN) and ±inf as the overflowing-but-valid JSON
//     number `±1e999` (parsed back as ±inf), so every f64 round-trips.
//   * the writers are append-only on a buffer that starts as "{", and
//     append_key tolerates (ignores) an empty buffer instead of indexing
//     out.back() into undefined behaviour.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace gfi::jsonl {

// ------------------------------------------------------------- writing ---

/// Appends `,"key":` (or `"key":` right after the opening brace). A defensive
/// no-key prefix is used if `out` is empty rather than touching out.back().
void append_key(std::string& out, const char* key);

void append_u64(std::string& out, const char* key, u64 value);

/// Finite values via %.17g (round-trip exact); NaN as `null`, ±inf as
/// `±1e999` (strtod overflows it back to ±inf).
void append_f64(std::string& out, const char* key, f64 value);

/// Quoted string with '"' and '\\' escaped.
void append_str(std::string& out, const char* key, const std::string& value);

void append_u64_array(std::string& out, const char* key,
                      const std::vector<u64>& values);

template <std::size_t N>
void append_array(std::string& out, const char* key,
                  const std::array<u64, N>& values) {
  append_u64_array(out, key, std::vector<u64>(values.begin(), values.end()));
}

// ------------------------------------------------------------- parsing ---

/// Minimal scanner for the flat one-line JSON the writers above produce:
/// string, number/null, and unsigned-array values only, no nesting.
struct Fields {
  std::map<std::string, std::string> scalars;  ///< raw text, strings unquoted
  std::map<std::string, std::vector<u64>> arrays;
};

/// Parses one object line into `out`. Returns false on malformed input
/// (including a truncated line — the caller's torn-tail case).
bool parse_fields(const std::string& line, Fields* out);

std::optional<u64> get_u64(const Fields& fields, const char* key);

/// Numbers parse normally (±1e999 overflows to ±inf, matching append_f64's
/// infinity encoding); a `null` value comes back as quiet NaN.
std::optional<f64> get_f64(const Fields& fields, const char* key);

std::optional<std::string> get_str(const Fields& fields, const char* key);

template <std::size_t N>
bool copy_array(const Fields& fields, const char* key,
                std::array<u64, N>* out) {
  auto it = fields.arrays.find(key);
  if (it == fields.arrays.end() || it->second.size() != N) return false;
  std::copy(it->second.begin(), it->second.end(), out->begin());
  return true;
}

}  // namespace gfi::jsonl
