#include "common/thread_pool.h"

#include <utility>

namespace gfi {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    // Surface the failure on the submitting thread (one rethrow per batch;
    // later exceptions from the same batch were already dropped).
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(exception);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      job = std::move(queue_.front());
      queue_.pop();
    }
    // A job that throws must not escape: it would std::terminate the worker
    // thread AND skip the in_flight_ decrement, deadlocking wait_idle().
    // The first exception of a batch is kept and rethrown from wait_idle().
    std::exception_ptr exception;
    try {
      job();
    } catch (...) {
      exception = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (exception && !first_exception_) {
        first_exception_ = std::move(exception);
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gfi
