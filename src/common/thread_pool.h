// Fixed-size worker pool used to fan injection runs out across host cores.
//
// Each injection run is an independent simulation, so the pool only needs
// fire-and-wait semantics: submit N jobs, wait for all. Results are written
// into caller-owned slots (one per job) to avoid synchronization on the
// result path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gfi {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe to call from any thread.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing. If any job
  /// threw, the first captured exception is rethrown here (the remaining
  /// jobs of the batch still ran to completion).
  void wait_idle();

  /// Runs fn(i) for i in [0, count) across the pool and waits for completion.
  /// Rethrows the first exception any fn(i) threw, after the batch drains.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_exception_;  ///< first throw since last wait_idle
  bool shutting_down_ = false;
};

}  // namespace gfi
