#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gfi {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());  // pad or truncate to header arity
  rows_.push_back(std::move(row));
}

std::string Table::fmt(f64 value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::pct(f64 fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, fraction * 100.0);
  return buffer;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream out;
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
    return out.str();
  };

  std::ostringstream out;
  std::size_t total = 1;
  for (auto w : widths) total += w + 3;
  const std::string rule(total, '-');

  if (!title_.empty()) out << title_ << "\n";
  out << rule << "\n" << render_row(header_) << rule << "\n";
  for (const auto& row : rows_) out << render_row(row);
  out << rule << "\n";
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << escape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_ascii().c_str(), stdout); }

Status Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::internal("cannot open " + path + " for writing");
  file << to_csv();
  return Status::ok();
}

}  // namespace gfi
