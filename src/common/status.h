// Lightweight Status / Result error-handling types (no exceptions on hot
// paths; simulator traps are modeled as data, not C++ exceptions).
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace gfi {

/// Broad machine-readable failure categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code);

/// Success-or-error result of an operation, carrying a message on failure.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" — for logs and test failure output.
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status result. Minimal StatusOr: check ok() before value().
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& take() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gfi
