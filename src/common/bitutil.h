// Bit-manipulation helpers shared by the ECC codec and the fault injector.
#pragma once

#include <bit>
#include <cstring>

#include "common/types.h"

namespace gfi {

/// Flips bit `bit` (0 = LSB) of a 32-bit word.
constexpr u32 flip_bit32(u32 value, u32 bit) { return value ^ (1u << (bit & 31)); }

/// Flips bit `bit` (0 = LSB) of a 64-bit word.
constexpr u64 flip_bit64(u64 value, u32 bit) {
  return value ^ (1ULL << (bit & 63));
}

/// Extracts bit `bit` of a 64-bit word as 0/1.
constexpr u32 get_bit64(u64 value, u32 bit) {
  return static_cast<u32>((value >> (bit & 63)) & 1u);
}

/// Number of set bits.
constexpr int popcount64(u64 value) { return std::popcount(value); }

/// Bit-reinterprets float <-> u32 and double <-> u64 (no UB).
inline u32 f32_bits(f32 v) { return std::bit_cast<u32>(v); }
inline f32 bits_f32(u32 b) { return std::bit_cast<f32>(b); }
inline u64 f64_bits(f64 v) { return std::bit_cast<u64>(v); }
inline f64 bits_f64(u64 b) { return std::bit_cast<f64>(b); }

/// Splits a 64-bit value into (lo, hi) 32-bit halves and back.
constexpr u32 lo32(u64 v) { return static_cast<u32>(v); }
constexpr u32 hi32(u64 v) { return static_cast<u32>(v >> 32); }
constexpr u64 make64(u32 lo, u32 hi) {
  return static_cast<u64>(hi) << 32 | lo;
}

/// TF32 rounding: truncates an FP32 mantissa to 10 explicit bits, the input
/// precision of Ampere/Hopper tensor cores in TF32 mode.
inline f32 to_tf32(f32 v) {
  // Round-to-nearest-even on the 13 dropped mantissa bits.
  u32 bits = f32_bits(v);
  const u32 round = ((bits >> 13) & 1u) + 0x0fffu;
  bits = (bits + round) & ~0x1fffu;
  return bits_f32(bits);
}

}  // namespace gfi
