// Bit-manipulation helpers shared by the ECC codec and the fault injector.
#pragma once

#include <bit>
#include <cmath>
#include <cstring>

#include "common/types.h"

namespace gfi {

/// Flips bit `bit` (0 = LSB) of a 32-bit word.
constexpr u32 flip_bit32(u32 value, u32 bit) { return value ^ (1u << (bit & 31)); }

/// Flips bit `bit` (0 = LSB) of a 64-bit word.
constexpr u64 flip_bit64(u64 value, u32 bit) {
  return value ^ (1ULL << (bit & 63));
}

/// Extracts bit `bit` of a 64-bit word as 0/1.
constexpr u32 get_bit64(u64 value, u32 bit) {
  return static_cast<u32>((value >> (bit & 63)) & 1u);
}

/// Number of set bits.
constexpr int popcount64(u64 value) { return std::popcount(value); }

/// Bit-reinterprets float <-> u32 and double <-> u64 (no UB).
inline u32 f32_bits(f32 v) { return std::bit_cast<u32>(v); }
inline f32 bits_f32(u32 b) { return std::bit_cast<f32>(b); }
inline u64 f64_bits(f64 v) { return std::bit_cast<u64>(v); }
inline f64 bits_f64(u64 b) { return std::bit_cast<f64>(b); }

/// Splits a 64-bit value into (lo, hi) 32-bit halves and back.
constexpr u32 lo32(u64 v) { return static_cast<u32>(v); }
constexpr u32 hi32(u64 v) { return static_cast<u32>(v >> 32); }
constexpr u64 make64(u32 lo, u32 hi) {
  return static_cast<u64>(hi) << 32 | lo;
}

/// Canonical quiet-NaN bit patterns, and a canonicalizer for float results.
/// IEEE-754 leaves the payload of a NaN *result* unspecified when an input
/// is NaN, and x86 resolves it by operand position (src1's payload wins) —
/// which the compiler may legally permute per context for commutative ops,
/// so `a + b` on two NaNs is not even stable between two compilations of
/// the same source. Real NVIDIA GPUs sidestep the whole question by
/// returning one canonical NaN (0x7fffffff) from float ops; the executor
/// does the same: every FADD/FMUL/FFMA result is passed through
/// canon_nan(), making NaN arithmetic bit-reproducible across backends,
/// builds, and execution paths (and more faithful to the modeled hardware).
inline constexpr u32 kCanonNanBitsF32 = 0x7fffffffu;
inline constexpr u64 kCanonNanBitsF64 = 0x7ff8000000000000ull;
inline f32 canon_nan(f32 v) {
  return std::isnan(v) ? std::bit_cast<f32>(kCanonNanBitsF32) : v;
}
inline f64 canon_nan(f64 v) {
  return std::isnan(v) ? std::bit_cast<f64>(kCanonNanBitsF64) : v;
}

/// Deterministic float min/max: std::fmin/fmax's NaN-discarding contract
/// with every case the standard leaves unspecified pinned down — ties
/// (including fmin(+0.0, -0.0)) and two-NaN inputs return the FIRST
/// operand, and NaN payloads pass through bit-unchanged. std::fmin itself
/// is not safe for bit-reproducible state: its ±0/NaN tie-breaks are
/// implementation choices, so the same source can legally compile to
/// libm in one context and a minps-style sequence with the opposite
/// tie-break in an auto-vectorized one. These are fully specified at the
/// C++ value level, so every compilation — scalar, auto-vectorized, or
/// the AVX2 simd backend — must produce identical bits. The executor
/// (FMNMX, float atomics), host-side goldens, and common/simd.h all
/// funnel float min/max through these two functions.
template <typename T>
[[nodiscard]] inline T fmin_det(T x, T y) {
  if (y < x) return y;
  return (std::isnan(x) && !std::isnan(y)) ? y : x;
}
template <typename T>
[[nodiscard]] inline T fmax_det(T x, T y) {
  if (x < y) return y;
  return (std::isnan(x) && !std::isnan(y)) ? y : x;
}

/// TF32 rounding: truncates an FP32 mantissa to 10 explicit bits, the input
/// precision of Ampere/Hopper tensor cores in TF32 mode.
inline f32 to_tf32(f32 v) {
  // Round-to-nearest-even on the 13 dropped mantissa bits.
  u32 bits = f32_bits(v);
  const u32 round = ((bits >> 13) & 1u) + 0x0fffu;
  bits = (bits + round) & ~0x1fffu;
  return bits_f32(bits);
}

}  // namespace gfi
