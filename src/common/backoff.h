// Exponential backoff with deterministic jitter.
//
// The supervisor retries crashed shards; naive exponential backoff makes
// every restarted worker of a mass failure hammer the disk in lockstep,
// while random jitter makes supervised runs irreproducible. Equal-jitter
// backoff with the jitter drawn from a splitmix64 hash of
// (seed, stream, attempt) gives both: retries spread out, and the exact
// retry schedule of a campaign is a pure function of its seed.
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "common/types.h"

namespace gfi {

/// Delay in ms before retry number `attempt` (1-based; attempt 0 → 0ms).
/// Exponential base_ms * 2^(attempt-1) capped at cap_ms, then equal-jitter:
/// half the window fixed, half drawn deterministically from
/// (jitter_seed, stream, attempt) — `stream` is the retrying entity's id
/// (e.g. shard index) so co-failing shards never retry in lockstep.
inline u64 backoff_delay_ms(u32 attempt, u64 base_ms, u64 cap_ms,
                            u64 jitter_seed, u64 stream) {
  if (attempt == 0 || base_ms == 0) return 0;
  const u32 shift = std::min(attempt - 1, 63u);
  u64 window = (shift < 63 && base_ms <= (cap_ms >> shift)) ? base_ms << shift
                                                            : cap_ms;
  window = std::min(window, cap_ms);
  const u64 half = window / 2;
  u64 h = jitter_seed;
  h = splitmix64(h) ^ stream;
  h = splitmix64(h) ^ attempt;
  h = splitmix64(h);
  const u64 jitter = half > 0 ? h % (half + 1) : 0;
  return window - half + jitter;
}

}  // namespace gfi
