// ASCII and CSV table rendering for bench harnesses. Every bench binary
// prints the rows of its paper table/figure through this so output is
// uniform and machine-extractable.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gfi {

/// Column-aligned text table with an optional title, plus CSV export.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience formatters.
  static std::string fmt(f64 value, int precision = 3);
  static std::string pct(f64 fraction, int precision = 2);  // "12.34%"

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the aligned ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (fields containing commas are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Prints the ASCII rendering to stdout.
  void print() const;

  /// Writes the CSV rendering to `path`.
  Status write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gfi
