// Fixed-width SIMD abstraction for the warp-execution fast paths.
//
// The execution core's full-warp loops (src/sassim/exec_vec.h) operate on
// contiguous 32-lane register rows (WarpState::row). This header gives them
// a kWidth-lane vector type with exactly two implementations:
//
//  - scalar: plain arrays + loops, always compiled, always correct. The
//    semantics reference: every other backend must match it bit-for-bit.
//  - avx2: <immintrin.h> intrinsics, compiled only when the GFI_SIMD CMake
//    option selects it (and the compiler agrees via __AVX2__).
//
// The selected backend is aliased as simd::u32xN / simd::f32xN; the scalar
// backend stays reachable as simd::scalar::* so tests can assert per-op
// agreement inside a single binary.
//
// Bit-identity contract: campaign journals must not depend on the backend.
// Integer ops are exact and IEEE-754 basic ops (+, *, fused fma, i32->f32
// conversion, ordered/unordered compares) are exactly rounded, so vector
// and scalar execution agree bit-for-bit by construction. The two places
// where x86 vector semantics diverge from scalar C++ are handled inside
// the abstraction: float min/max implement gfi::fmin_det/fmax_det
// (common/bitutil.h) — std::fmin's NaN-discarding contract with its
// unspecified ±0/NaN tie-breaks pinned to "first operand", because raw
// _mm256_min_ps/_mm256_max_ps (and the minps sequences auto-vectorizers
// emit for std::fmin) take the SECOND operand on ties — and shift counts
// are masked to the low five bits inside shl/shr/sar, matching the
// executor's `n & 31` idiom (AVX2 variable shifts would otherwise zero
// the lane at counts >= 32). One caveat is NaN *results* of +/*/fma:
// x86 propagates src1's payload and compilers may commute the operands,
// so raw payloads are not stable even between two compilations of the
// same scalar source — the executor therefore canonicalizes every
// FADD/FMUL/FFMA result through canon_nan() (gfi::canon_nan, bitutil.h),
// as the modeled GPUs themselves do.
#pragma once

#include <cmath>
#include <cstring>

#include "common/bitutil.h"
#include "common/types.h"

#if defined(GFI_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define GFI_SIMD_ACTIVE_AVX2 1
#endif

namespace gfi::simd {

/// Lanes per vector. Identical in every backend so loop shapes (and
/// therefore trap ordering and partial-progress behavior) never vary.
inline constexpr u32 kWidth = 8;

// ---------------------------------------------------------------------------
// Scalar backend: the semantics reference.
// ---------------------------------------------------------------------------

namespace scalar {

struct u32xN {
  u32 v[kWidth];

  static u32xN load(const u32* p) {
    u32xN r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  static u32xN splat(u32 x) {
    u32xN r;
    for (u32 l = 0; l < kWidth; ++l) r.v[l] = x;
    return r;
  }
  void store(u32* p) const { std::memcpy(p, v, sizeof(v)); }
  [[nodiscard]] u32 lane(u32 i) const { return v[i]; }
};

inline u32xN operator+(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] += b.v[l];
  return a;
}
inline u32xN operator-(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] -= b.v[l];
  return a;
}
inline u32xN operator*(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] *= b.v[l];
  return a;
}
inline u32xN operator&(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] &= b.v[l];
  return a;
}
inline u32xN operator|(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] |= b.v[l];
  return a;
}
inline u32xN operator^(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] ^= b.v[l];
  return a;
}
inline u32xN operator~(u32xN a) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = ~a.v[l];
  return a;
}

/// Shifts take per-lane counts; only the low five bits are consulted,
/// mirroring the executor's `count & 31`.
inline u32xN shl(u32xN a, u32xN n) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] <<= (n.v[l] & 31u);
  return a;
}
inline u32xN shr(u32xN a, u32xN n) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] >>= (n.v[l] & 31u);
  return a;
}
inline u32xN sar(u32xN a, u32xN n) {
  for (u32 l = 0; l < kWidth; ++l) {
    a.v[l] = static_cast<u32>(static_cast<i32>(a.v[l]) >> (n.v[l] & 31u));
  }
  return a;
}

inline u32xN min_u(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
  return a;
}
inline u32xN max_u(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = a.v[l] < b.v[l] ? b.v[l] : a.v[l];
  return a;
}
inline u32xN min_s(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) {
    a.v[l] = static_cast<i32>(a.v[l]) < static_cast<i32>(b.v[l]) ? a.v[l]
                                                                 : b.v[l];
  }
  return a;
}
inline u32xN max_s(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) {
    a.v[l] = static_cast<i32>(a.v[l]) < static_cast<i32>(b.v[l]) ? b.v[l]
                                                                 : a.v[l];
  }
  return a;
}

/// Per-lane all-ones/all-zero mask; `select` keeps a where set, b where
/// clear. The building block for Sel and the float NaN fixups.
inline u32xN ceq(u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = a.v[l] == b.v[l] ? ~0u : 0u;
  return a;
}
inline u32xN select(u32xN m, u32xN a, u32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = (a.v[l] & m.v[l]) | (b.v[l] & ~m.v[l]);
  return a;
}

// Compare-to-lanemask: bit l of the result is the lane-l comparison. These
// feed ISETP and the guard machinery, which think in lane bitmasks.
inline u32 meq(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] == b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mne(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] != b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mlt_u(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] < b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mle_u(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] <= b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mgt_u(u32xN a, u32xN b) { return mlt_u(b, a); }
inline u32 mge_u(u32xN a, u32xN b) { return mle_u(b, a); }
inline u32 mlt_s(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) {
    m |= (static_cast<i32>(a.v[l]) < static_cast<i32>(b.v[l]) ? 1u : 0u) << l;
  }
  return m;
}
inline u32 mle_s(u32xN a, u32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) {
    m |= (static_cast<i32>(a.v[l]) <= static_cast<i32>(b.v[l]) ? 1u : 0u) << l;
  }
  return m;
}
inline u32 mgt_s(u32xN a, u32xN b) { return mlt_s(b, a); }
inline u32 mge_s(u32xN a, u32xN b) { return mle_s(b, a); }

struct f32xN {
  f32 v[kWidth];

  /// Rows hold raw bit patterns; load/store reinterpret, never convert.
  static f32xN load(const u32* bits) {
    f32xN r;
    std::memcpy(r.v, bits, sizeof(r.v));
    return r;
  }
  static f32xN splat_bits(u32 bits) {
    f32xN r;
    for (u32 l = 0; l < kWidth; ++l) r.v[l] = bits_f32(bits);
    return r;
  }
  void store(u32* bits) const { std::memcpy(bits, v, sizeof(v)); }
  [[nodiscard]] u32 lane_bits(u32 i) const { return f32_bits(v[i]); }
};

inline f32xN operator+(f32xN a, f32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] += b.v[l];
  return a;
}
inline f32xN operator*(f32xN a, f32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] *= b.v[l];
  return a;
}
inline f32xN fma(f32xN a, f32xN b, f32xN c) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = std::fmaf(a.v[l], b.v[l], c.v[l]);
  return a;
}
/// gfi::fmin_det/fmax_det semantics (bitutil.h: NaN-discarding, ties and
/// two-NaN cases take the first operand) in every backend; see the header
/// comment for why this is never a raw x86 min_ps/max_ps.
inline f32xN fmin_det(f32xN a, f32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = gfi::fmin_det(a.v[l], b.v[l]);
  return a;
}
inline f32xN fmax_det(f32xN a, f32xN b) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = gfi::fmax_det(a.v[l], b.v[l]);
  return a;
}
/// Replaces NaN lanes with the canonical quiet NaN (gfi::canon_nan); the
/// executor applies this to every FADD/FMUL/FFMA result.
inline f32xN canon_nan(f32xN a) {
  for (u32 l = 0; l < kWidth; ++l) a.v[l] = gfi::canon_nan(a.v[l]);
  return a;
}
inline f32xN cvt_i32(u32xN a) {
  f32xN r;
  for (u32 l = 0; l < kWidth; ++l) {
    r.v[l] = static_cast<f32>(static_cast<i32>(a.v[l]));
  }
  return r;
}

inline u32 meq(f32xN a, f32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] == b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mne(f32xN a, f32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] != b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mlt(f32xN a, f32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] < b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mle(f32xN a, f32xN b) {
  u32 m = 0;
  for (u32 l = 0; l < kWidth; ++l) m |= (a.v[l] <= b.v[l] ? 1u : 0u) << l;
  return m;
}
inline u32 mgt(f32xN a, f32xN b) { return mlt(b, a); }
inline u32 mge(f32xN a, f32xN b) { return mle(b, a); }

/// Bit `bit` of each of 32 consecutive bytes, packed into a u32 lanemask
/// (byte i -> bit i). The predicate-file primitive behind guard_mask_fast.
inline u32 testbit_mask32(const u8* bytes, u32 bit) {
  u32 raw = 0;
  for (u32 q = 0; q < 4; ++q) {
    u64 chunk;
    std::memcpy(&chunk, bytes + q * 8, 8);
    // Low bit of each byte -> one mask bit per lane, carry-free.
    const u64 bits = (chunk >> bit) & 0x0101010101010101ull;
    raw |= static_cast<u32>((bits * 0x0102040810204080ull) >> 56) << (q * 8);
  }
  return raw;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 backend.
// ---------------------------------------------------------------------------

#ifdef GFI_SIMD_ACTIVE_AVX2

namespace avx2 {

struct u32xN {
  __m256i raw;

  static u32xN load(const u32* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static u32xN splat(u32 x) {
    return {_mm256_set1_epi32(static_cast<int>(x))};
  }
  void store(u32* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), raw);
  }
  [[nodiscard]] u32 lane(u32 i) const {
    u32 tmp[kWidth];
    store(tmp);
    return tmp[i];
  }
};

inline u32xN operator+(u32xN a, u32xN b) {
  return {_mm256_add_epi32(a.raw, b.raw)};
}
inline u32xN operator-(u32xN a, u32xN b) {
  return {_mm256_sub_epi32(a.raw, b.raw)};
}
inline u32xN operator*(u32xN a, u32xN b) {
  return {_mm256_mullo_epi32(a.raw, b.raw)};
}
inline u32xN operator&(u32xN a, u32xN b) {
  return {_mm256_and_si256(a.raw, b.raw)};
}
inline u32xN operator|(u32xN a, u32xN b) {
  return {_mm256_or_si256(a.raw, b.raw)};
}
inline u32xN operator^(u32xN a, u32xN b) {
  return {_mm256_xor_si256(a.raw, b.raw)};
}
inline u32xN operator~(u32xN a) {
  return {_mm256_xor_si256(a.raw, _mm256_set1_epi32(-1))};
}

inline u32xN shl(u32xN a, u32xN n) {
  const __m256i c = _mm256_and_si256(n.raw, _mm256_set1_epi32(31));
  return {_mm256_sllv_epi32(a.raw, c)};
}
inline u32xN shr(u32xN a, u32xN n) {
  const __m256i c = _mm256_and_si256(n.raw, _mm256_set1_epi32(31));
  return {_mm256_srlv_epi32(a.raw, c)};
}
inline u32xN sar(u32xN a, u32xN n) {
  const __m256i c = _mm256_and_si256(n.raw, _mm256_set1_epi32(31));
  return {_mm256_srav_epi32(a.raw, c)};
}

inline u32xN min_u(u32xN a, u32xN b) {
  return {_mm256_min_epu32(a.raw, b.raw)};
}
inline u32xN max_u(u32xN a, u32xN b) {
  return {_mm256_max_epu32(a.raw, b.raw)};
}
inline u32xN min_s(u32xN a, u32xN b) {
  return {_mm256_min_epi32(a.raw, b.raw)};
}
inline u32xN max_s(u32xN a, u32xN b) {
  return {_mm256_max_epi32(a.raw, b.raw)};
}

inline u32xN ceq(u32xN a, u32xN b) {
  return {_mm256_cmpeq_epi32(a.raw, b.raw)};
}
inline u32xN select(u32xN m, u32xN a, u32xN b) {
  return {_mm256_blendv_epi8(b.raw, a.raw, m.raw)};
}

inline u32 movemask(__m256i m) {
  return static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}
inline u32 meq(u32xN a, u32xN b) {
  return movemask(_mm256_cmpeq_epi32(a.raw, b.raw));
}
inline u32 mne(u32xN a, u32xN b) {
  return meq(a, b) ^ ((1u << kWidth) - 1u);
}
inline u32 mgt_s(u32xN a, u32xN b) {
  return movemask(_mm256_cmpgt_epi32(a.raw, b.raw));
}
inline u32 mlt_s(u32xN a, u32xN b) { return mgt_s(b, a); }
inline u32 mle_s(u32xN a, u32xN b) {
  return mgt_s(a, b) ^ ((1u << kWidth) - 1u);
}
inline u32 mge_s(u32xN a, u32xN b) { return mle_s(b, a); }
/// Unsigned compares: bias both operands by 0x80000000 and compare signed.
inline u32 mgt_u(u32xN a, u32xN b) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  return movemask(_mm256_cmpgt_epi32(_mm256_xor_si256(a.raw, bias),
                                     _mm256_xor_si256(b.raw, bias)));
}
inline u32 mlt_u(u32xN a, u32xN b) { return mgt_u(b, a); }
inline u32 mle_u(u32xN a, u32xN b) {
  return mgt_u(a, b) ^ ((1u << kWidth) - 1u);
}
inline u32 mge_u(u32xN a, u32xN b) { return mle_u(b, a); }

struct f32xN {
  __m256 raw;

  static f32xN load(const u32* bits) {
    return {_mm256_loadu_ps(reinterpret_cast<const float*>(bits))};
  }
  static f32xN splat_bits(u32 bits) {
    return {_mm256_set1_ps(bits_f32(bits))};
  }
  void store(u32* bits) const {
    _mm256_storeu_ps(reinterpret_cast<float*>(bits), raw);
  }
  [[nodiscard]] u32 lane_bits(u32 i) const {
    u32 tmp[kWidth];
    store(tmp);
    return tmp[i];
  }
};

inline f32xN operator+(f32xN a, f32xN b) {
  return {_mm256_add_ps(a.raw, b.raw)};
}
inline f32xN operator*(f32xN a, f32xN b) {
  return {_mm256_mul_ps(a.raw, b.raw)};
}
inline f32xN fma(f32xN a, f32xN b, f32xN c) {
#ifdef __FMA__
  return {_mm256_fmadd_ps(a.raw, b.raw, c.raw)};
#else
  // Correctly-rounded fused multiply-add either way; the intrinsic is just
  // the fast spelling when the target has FMA3.
  f32 av[kWidth], bv[kWidth], cv[kWidth];
  _mm256_storeu_ps(av, a.raw);
  _mm256_storeu_ps(bv, b.raw);
  _mm256_storeu_ps(cv, c.raw);
  for (u32 l = 0; l < kWidth; ++l) av[l] = std::fmaf(av[l], bv[l], cv[l]);
  return {_mm256_loadu_ps(av)};
#endif
}
/// gfi::fmin_det as compares + blend: take b when b < a, or when a is the
/// only NaN; otherwise keep a (ties and two-NaN cases keep the first
/// operand, payloads untouched). A raw min_ps would take the second
/// operand on ties and NaN — the opposite tie-break.
inline f32xN fmin_det(f32xN a, f32xN b) {
  const __m256 a_nan = _mm256_cmp_ps(a.raw, a.raw, _CMP_UNORD_Q);
  const __m256 b_num = _mm256_cmp_ps(b.raw, b.raw, _CMP_ORD_Q);
  const __m256 take_b = _mm256_or_ps(_mm256_cmp_ps(b.raw, a.raw, _CMP_LT_OQ),
                                     _mm256_and_ps(a_nan, b_num));
  return {_mm256_blendv_ps(a.raw, b.raw, take_b)};
}
inline f32xN fmax_det(f32xN a, f32xN b) {
  const __m256 a_nan = _mm256_cmp_ps(a.raw, a.raw, _CMP_UNORD_Q);
  const __m256 b_num = _mm256_cmp_ps(b.raw, b.raw, _CMP_ORD_Q);
  const __m256 take_b = _mm256_or_ps(_mm256_cmp_ps(b.raw, a.raw, _CMP_GT_OQ),
                                     _mm256_and_ps(a_nan, b_num));
  return {_mm256_blendv_ps(a.raw, b.raw, take_b)};
}
inline f32xN canon_nan(f32xN a) {
  const __m256 is_nan = _mm256_cmp_ps(a.raw, a.raw, _CMP_UNORD_Q);
  const __m256 canon = _mm256_castsi256_ps(_mm256_set1_epi32(
      static_cast<i32>(kCanonNanBitsF32)));
  return {_mm256_blendv_ps(a.raw, canon, is_nan)};
}
inline f32xN cvt_i32(u32xN a) { return {_mm256_cvtepi32_ps(a.raw)}; }

inline u32 movemask(__m256 m) {
  return static_cast<u32>(_mm256_movemask_ps(m));
}
inline u32 meq(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_EQ_OQ));
}
inline u32 mne(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_NEQ_UQ));
}
inline u32 mlt(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_LT_OQ));
}
inline u32 mle(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_LE_OQ));
}
inline u32 mgt(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_GT_OQ));
}
inline u32 mge(f32xN a, f32xN b) {
  return movemask(_mm256_cmp_ps(a.raw, b.raw, _CMP_GE_OQ));
}

inline u32 testbit_mask32(const u8* bytes, u32 bit) {
  const __m256i chunk =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes));
  const __m256i sel = _mm256_set1_epi8(static_cast<char>(1u << bit));
  const __m256i hit = _mm256_cmpeq_epi8(_mm256_and_si256(chunk, sel), sel);
  return static_cast<u32>(_mm256_movemask_epi8(hit));
}

}  // namespace avx2

namespace active = avx2;

#else

namespace active = scalar;

#endif  // GFI_SIMD_ACTIVE_AVX2

using u32xN = active::u32xN;
using f32xN = active::f32xN;
using active::testbit_mask32;

/// Name of the compiled backend, for --version / status / bench artifacts.
/// GFI_SIMD_BACKEND_NAME is injected by CMake ("avx2" or "native"); a build
/// whose compiler did not actually deliver __AVX2__ reports "off" no matter
/// what was requested, because that is the code path that will run.
constexpr const char* backend() {
#ifdef GFI_SIMD_ACTIVE_AVX2
#ifdef GFI_SIMD_BACKEND_NAME
  return GFI_SIMD_BACKEND_NAME;
#else
  return "avx2";
#endif
#else
  return "off";
#endif
}

}  // namespace gfi::simd
