// Core scalar and geometry types shared by every gpufi module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gfi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// CUDA-style 3-component extent used for grid and block dimensions.
struct Dim3 {
  u32 x = 1;
  u32 y = 1;
  u32 z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(u32 x_, u32 y_ = 1, u32 z_ = 1) : x(x_), y(y_), z(z_) {}

  /// Total number of elements spanned by this extent.
  [[nodiscard]] constexpr u64 count() const {
    return static_cast<u64>(x) * y * z;
  }

  friend constexpr bool operator==(const Dim3&, const Dim3&) = default;
};

/// Renders "(x, y, z)" for logs and error messages.
inline std::string to_string(const Dim3& d) {
  return "(" + std::to_string(d.x) + ", " + std::to_string(d.y) + ", " +
         std::to_string(d.z) + ")";
}

}  // namespace gfi
