// Deterministic, splittable PRNG used everywhere randomness is needed.
//
// Fault-injection campaigns must be exactly reproducible: run i of a campaign
// derives its stream from (campaign_seed, i) via SplitMix64 so any single
// injection can be replayed in isolation. The core generator is xoshiro256**,
// which is fast and has 256 bits of state.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace gfi {

/// SplitMix64 step; used for seeding and for hashing (seed, index) pairs.
constexpr u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Hashes (seed, stream_id) into the seed of an independent stream. This
  /// is the seeding contract resumable/sharded campaigns rely on: stream i
  /// depends only on (seed, i), never on which thread, shard, or process
  /// draws it, so any injection can be replayed or re-partitioned bit-exactly.
  static constexpr u64 stream_seed(u64 seed, u64 stream_id) {
    u64 mix = seed;
    (void)splitmix64(mix);
    return mix ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  }

  /// Deterministically derives an independent stream for (seed, stream_id).
  static Rng for_stream(u64 seed, u64 stream_id) {
    return Rng(stream_seed(seed, stream_id));
  }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  u64 operator()() { return next(); }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) {
    // Debiased multiply-shift (Lemire). Good enough for campaign sampling.
    while (true) {
      const u64 x = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const u64 low = static_cast<u64>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<u64>(m >> 64);
      }
    }
  }

  /// Uniform u32.
  u32 next_u32() { return static_cast<u32>(next() >> 32); }

  /// Uniform double in [0, 1).
  f64 next_double() { return static_cast<f64>(next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  f32 next_float(f32 lo, f32 hi) {
    return lo + static_cast<f32>(next_double()) * (hi - lo);
  }

  /// Bernoulli draw with probability p.
  bool next_bool(f64 p = 0.5) { return next_double() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

}  // namespace gfi
