// Statistics used by fault-injection campaigns: running moments, binomial
// confidence intervals, and the SASSIFI-style sample-size planner.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace gfi::stats {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(f64 x);

  /// Folds another accumulator in (Chan et al. parallel combination), as if
  /// every sample of `other` had been add()ed here. Lets each campaign shard
  /// keep its own accumulator and combine at merge time.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] f64 mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] f64 variance() const;
  [[nodiscard]] f64 stddev() const;
  [[nodiscard]] f64 min() const { return min_; }
  [[nodiscard]] f64 max() const { return max_; }

 private:
  std::size_t count_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi] around a proportion.
struct Interval {
  f64 lo = 0.0;
  f64 hi = 0.0;
  [[nodiscard]] f64 half_width() const { return (hi - lo) / 2.0; }
};

/// z-score for a two-sided confidence level (supported: 0.90, 0.95, 0.99).
f64 z_for_confidence(f64 confidence);

/// Normal-approximation (Wald) CI for successes/trials.
Interval wald_interval(std::size_t successes, std::size_t trials,
                       f64 confidence = 0.95);

/// Wilson score CI — well-behaved at p near 0 or 1, which fault-injection
/// rates routinely are (e.g. SDC rates below 1%).
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         f64 confidence = 0.95);

/// Sample-size planner from Leveugle et al. (DATE'09), the formula SASSIFI
/// and NVBitFI cite to justify ~1000-2000 injections per campaign:
///   n = N / (1 + e^2 * (N - 1) / (z^2 * p * (1 - p)))
/// `population` is the total number of fault sites, `margin` the desired CI
/// half-width, and `p` the (worst-case 0.5) expected proportion.
std::size_t required_sample_size(u64 population, f64 margin,
                                 f64 confidence = 0.95, f64 p = 0.5);

/// Percentile of a sample (linear interpolation); sorts a copy.
f64 percentile(std::vector<f64> values, f64 pct);

}  // namespace gfi::stats
