// Statistics used by fault-injection campaigns: running moments, binomial
// confidence intervals, the SASSIFI-style sample-size planner, and the
// adaptive-campaign primitives (sequential stopping rule, stratified
// allocation, post-stratified pooling).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace gfi::stats {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(f64 x);

  /// Folds another accumulator in (Chan et al. parallel combination), as if
  /// every sample of `other` had been add()ed here. Lets each campaign shard
  /// keep its own accumulator and combine at merge time.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] f64 mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] f64 variance() const;
  [[nodiscard]] f64 stddev() const;
  [[nodiscard]] f64 min() const { return min_; }
  [[nodiscard]] f64 max() const { return max_; }

 private:
  std::size_t count_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// A two-sided confidence interval [lo, hi] around a proportion.
struct Interval {
  f64 lo = 0.0;
  f64 hi = 0.0;
  [[nodiscard]] f64 half_width() const { return (hi - lo) / 2.0; }
};

/// z-score for a two-sided confidence level. The canonical campaign levels
/// (0.90, 0.95, 0.99) return the same four-decimal constants every journal
/// and CSV has always used; any other confidence in (0, 1) is answered
/// exactly via the inverse normal CDF (so 0.80 gives 1.2816 instead of
/// silently being coerced to the 95% z-score). Confidence outside (0, 1) is
/// rejected with a quiet NaN, which poisons any interval computed from it
/// rather than answering a different question.
f64 z_for_confidence(f64 confidence);

/// Normal-approximation (Wald) CI for successes/trials. `successes` is
/// clamped to `trials` so an impossible count cannot produce a NaN interval.
Interval wald_interval(std::size_t successes, std::size_t trials,
                       f64 confidence = 0.95);

/// Wilson score CI — well-behaved at p near 0 or 1, which fault-injection
/// rates routinely are (e.g. SDC rates below 1%). `successes` is clamped to
/// `trials`.
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         f64 confidence = 0.95);

/// The planner never believes a proportion of exactly 0 or 1: p is clamped
/// into [kPlannerEps, 1 - kPlannerEps] before entering the Leveugle formula
/// (whose denominator divides by p(1-p)).
inline constexpr f64 kPlannerEps = 1e-3;

/// Sample-size planner from Leveugle et al. (DATE'09), the formula SASSIFI
/// and NVBitFI cite to justify ~1000-2000 injections per campaign:
///   n = N / (1 + e^2 * (N - 1) / (z^2 * p * (1 - p)))
/// `population` is the total number of fault sites, `margin` the desired CI
/// half-width, and `p` the (worst-case 0.5) expected proportion. Returns at
/// least 1 for a non-empty population.
std::size_t required_sample_size(u64 population, f64 margin,
                                 f64 confidence = 0.95, f64 p = 0.5);

/// Percentile of a sample (linear interpolation); sorts a copy. `pct` is
/// clamped to [0, 100].
f64 percentile(std::vector<f64> values, f64 pct);

// ------------------------------------------------- adaptive campaigns ---

/// Sequential early-stopping rule for an outcome rate: satisfied once the
/// Wilson CI around successes/trials is no wider than `target_half_width`
/// on each side. `min_samples` is a floor below which the rule never fires,
/// so a lucky tiny-n interval (e.g. 0/50 -> already narrow) cannot trigger
/// a spurious stop before the estimate has had a chance to move.
struct StoppingRule {
  f64 target_half_width = 0.0;  ///< <= 0 disables the rule
  f64 confidence = 0.95;
  std::size_t min_samples = 100;

  [[nodiscard]] bool enabled() const { return target_half_width > 0.0; }
  [[nodiscard]] bool satisfied(std::size_t successes,
                               std::size_t trials) const;
  bool operator==(const StoppingRule&) const = default;
};

/// Largest-remainder apportionment: splits `total` into one integer share
/// per weight, shares summing exactly to `total`, proportional to the
/// weights. Deterministic — remainder ties break toward the lowest index.
/// Non-positive weights get a zero quota; if every weight is non-positive
/// the total is spread round-robin from index 0.
std::vector<u64> apportion(const std::vector<f64>& weights, u64 total);

/// Neyman allocation weights W_h * s_h for minimizing the variance of a
/// stratified proportion estimate: s_h = sqrt(p~(1-p~)) with the Laplace
/// smoothed p~ = (successes+1)/(trials+2), so an unobserved or one-sided
/// stratum keeps a non-zero spread (0.5 when nothing has been sampled yet)
/// instead of starving forever. Feed the result to apportion().
std::vector<f64> neyman_weights(const std::vector<f64>& stratum_weights,
                                const std::vector<u64>& successes,
                                const std::vector<u64>& trials);

/// One stratum's contribution to a post-stratified pooled estimate.
struct StratumCount {
  f64 weight = 0.0;  ///< population share of the stratum (need not sum to 1)
  u64 successes = 0;
  u64 trials = 0;
};

/// Post-stratified proportion: sum over observed strata of W'_h * p_h, with
/// the weights renormalized over the strata that have at least one trial.
f64 poststratified_rate(const std::vector<StratumCount>& strata);

/// Normal-approximation CI around poststratified_rate with stratum variance
/// sum W'^2_h * p~_h(1-p~_h) / n_h (Laplace-smoothed p~ so a degenerate
/// all-or-nothing stratum still contributes spread). Clamped into [0, 1];
/// {0, 1} when no stratum has trials.
Interval poststratified_interval(const std::vector<StratumCount>& strata,
                                 f64 confidence = 0.95);

}  // namespace gfi::stats
