// Failpoints: engine-level fault injection for the engine itself.
//
// The simulator injects faults into modeled GPUs; failpoints inject faults
// into the *campaign machinery* — a worker killed mid-shard, a torn journal
// write, ENOSPC on append, a persist failure in the golden cache — so the
// supervisor's recovery paths can be exercised deterministically in tests
// and in the CI chaos job instead of waiting for real disks to fill up.
//
// Activation is explicit: the `GFI_FAILPOINTS` environment variable (or
// fp::set_spec in tests) installs a spec; with no spec every site costs one
// relaxed atomic load. A spec is a `;`-separated list of clauses:
//
//   <site>=<action>[:<arg>][@<trigger>=<n>]
//
//   actions   err          site reports a synthetic IO failure
//             kill[:code]  process dies via _Exit (default code 137), no
//                          destructors — the moral equivalent of SIGKILL
//             torn         site performs a partial write, then dies
//             stall:<ms>   site sleeps <ms>, then proceeds normally
//             off          clause disabled (keep it in the spec for notes)
//   triggers  hit=<n>      fires exactly once, on the n-th evaluation
//                          (1-based) of this clause in this process
//             every=<n>    fires on every n-th evaluation
//             key=<k>      fires whenever the call site's key equals k
//                          (e.g. the global injection index)
//             (none)       fires on every evaluation
//
// Examples:
//   GFI_FAILPOINTS='campaign.injection=kill@hit=25'     # die at the 25th
//   GFI_FAILPOINTS='inject.execute=kill@key=133'        # poison injection
//   GFI_FAILPOINTS='journal.append=err@every=50;heartbeat.write=err'
//
// Determinism: triggers are counters and key matches, never wall-clock or
// randomness, so a single-threaded worker replays the identical failure
// schedule on every attempt — which is exactly what the quarantine and
// bit-identity tests need. (With multiple worker threads the interleaving
// of `hit` counts is scheduling-dependent; key= triggers stay exact.)
//
// kKill and kStall are executed inside hit() so most call sites need no
// handling; kErr and kTorn are returned for the site to act on (a torn
// write has to happen at the site that owns the file).
#pragma once

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace gfi::fp {

enum class Action : u8 {
  kNone = 0,  ///< proceed normally
  kErr,       ///< report a synthetic failure
  kKill,      ///< executed inside hit(): std::_Exit, no destructors
  kTorn,      ///< call site: write a partial record, then die
  kStall,     ///< executed inside hit(): sleep, then proceed
};

/// Result of evaluating a site. `arg` carries the action's argument (stall
/// milliseconds, kill exit code, torn fraction is fixed at 1/2).
struct Hit {
  Action action = Action::kNone;
  u64 arg = 0;
  explicit operator bool() const { return action != Action::kNone; }
};

/// Key value meaning "this site has no coordinate"; never matches key=.
inline constexpr u64 kAnyKey = ~0ULL;

/// True when a spec with at least one live clause is installed. One relaxed
/// atomic load — cheap enough for per-injection sites.
bool enabled();

/// Evaluates site `name`. Executes kKill (process exit, code = arg) and
/// kStall (sleep arg ms) internally; returns kErr/kTorn for the call site.
/// `key` is the site's stable coordinate (e.g. global injection index) for
/// key= triggers.
Hit hit(const char* name, u64 key = kAnyKey);

/// Installs a spec, replacing the current one (and any env spec); clause
/// counters reset. An empty string disables all failpoints. A malformed
/// spec leaves the current one installed and reports what was wrong.
Status set_spec(const std::string& spec);

/// The currently installed spec string ("" when disabled).
std::string spec();

/// Process exit code used by kill clauses with no explicit code. Chosen to
/// look like SIGKILL (128+9) so supervisors treat failpoint deaths exactly
/// like real ones.
inline constexpr int kKillExitCode = 137;

}  // namespace gfi::fp
