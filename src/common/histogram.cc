#include "common/histogram.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gfi {

Histogram::Histogram(f64 lo, f64 hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(f64 value, f64 weight) {
  const f64 span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / span *
                                         static_cast<f64>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

f64 Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<f64>(bin) / static_cast<f64>(counts_.size());
}

f64 Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::to_ascii(std::size_t width) const {
  const f64 max_count = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3g, %9.3g)", bin_lo(b), bin_hi(b));
    std::size_t bar = 0;
    if (max_count > 0) {
      bar = static_cast<std::size_t>(counts_[b] / max_count *
                                     static_cast<f64>(width));
    }
    out << label << " " << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace gfi
