#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace gfi {

Histogram::Histogram(f64 lo, f64 hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(f64 value, f64 weight) {
  // NaN has no bin: casting it to an integer is UB, and silently counting it
  // anywhere would skew the distribution. It lands in a drop counter the
  // caller can surface instead.
  if (std::isnan(value)) {
    dropped_ += weight;
    return;
  }
  const f64 span = hi_ - lo_;
  // Clamp in the f64 domain BEFORE the integer cast: a far-out-of-range
  // value (or the +-inf that lo_ == hi_ produces via the zero-span divide)
  // would overflow ptrdiff_t in the cast, which is UB.
  f64 pos = 0.0;
  if (span > 0.0) {
    pos = (value - lo_) / span * static_cast<f64>(counts_.size());
    pos = std::clamp(pos, 0.0, static_cast<f64>(counts_.size() - 1));
  }
  counts_[static_cast<std::size_t>(pos)] += weight;
  total_ += weight;
}

f64 Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<f64>(bin) / static_cast<f64>(counts_.size());
}

f64 Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::to_ascii(std::size_t width) const {
  const f64 max_count = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.3g, %9.3g)", bin_lo(b), bin_hi(b));
    std::size_t bar = 0;
    if (max_count > 0) {
      bar = static_cast<std::size_t>(counts_[b] / max_count *
                                     static_cast<f64>(width));
    }
    out << label << " " << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace gfi
