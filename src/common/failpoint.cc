#include "common/failpoint.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace gfi::fp {
namespace {

enum class Trigger : u8 {
  kAlways = 0,  ///< fires on every evaluation
  kHit,         ///< fires exactly once, on the n-th evaluation (1-based)
  kEvery,       ///< fires on every n-th evaluation
  kKey,         ///< fires whenever the site key equals the value
};

struct Clause {
  std::string site;
  Action action = Action::kNone;
  u64 arg = 0;
  Trigger trigger = Trigger::kAlways;
  u64 value = 0;
  // Evaluations of this clause so far; only meaningful for hit=/every=.
  // unique_ptr keeps Clause movable while the counter stays addressable.
  std::unique_ptr<std::atomic<u64>> count = std::make_unique<std::atomic<u64>>(0);
};

struct Registry {
  std::mutex mu;
  std::vector<Clause> clauses;  // guarded by mu for mutation; stable between set_spec calls
  std::string spec;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path gate: true iff at least one non-off clause is installed.
std::atomic<bool> g_enabled{false};

Status parse_u64_strict(const std::string& text, u64* out) {
  if (text.empty()) return Status(StatusCode::kInvalidArgument, "empty number");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status(StatusCode::kInvalidArgument, "bad number '" + text + "'");
  }
  *out = static_cast<u64>(v);
  return Status::ok();
}

Status parse_clause(const std::string& text, Clause* out) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status(StatusCode::kInvalidArgument,
                  "failpoint clause '" + text + "' is not <site>=<action>");
  }
  out->site = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);

  // Peel the trigger suffix: @hit=N | @every=N | @key=K.
  const auto at = rest.find('@');
  if (at != std::string::npos) {
    const std::string trig = rest.substr(at + 1);
    rest.resize(at);
    const auto teq = trig.find('=');
    if (teq == std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    "failpoint trigger '" + trig + "' is not <kind>=<n>");
    }
    const std::string kind = trig.substr(0, teq);
    u64 value = 0;
    if (Status s = parse_u64_strict(trig.substr(teq + 1), &value); !s.is_ok()) {
      return s;
    }
    if (kind == "hit") {
      out->trigger = Trigger::kHit;
    } else if (kind == "every") {
      out->trigger = Trigger::kEvery;
    } else if (kind == "key") {
      out->trigger = Trigger::kKey;
    } else {
      return Status(StatusCode::kInvalidArgument,
                    "unknown failpoint trigger '" + kind + "'");
    }
    if (out->trigger != Trigger::kKey && value == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "failpoint trigger '" + kind + "' needs n >= 1");
    }
    out->value = value;
  }

  // Action with optional :arg.
  std::string arg_text;
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    arg_text = rest.substr(colon + 1);
    rest.resize(colon);
  }
  if (rest == "off") {
    out->action = Action::kNone;
  } else if (rest == "err") {
    out->action = Action::kErr;
  } else if (rest == "kill") {
    out->action = Action::kKill;
    out->arg = static_cast<u64>(kKillExitCode);
  } else if (rest == "torn") {
    out->action = Action::kTorn;
  } else if (rest == "stall") {
    out->action = Action::kStall;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  "unknown failpoint action '" + rest + "'");
  }
  if (!arg_text.empty()) {
    if (out->action != Action::kKill && out->action != Action::kStall) {
      return Status(StatusCode::kInvalidArgument,
                    "failpoint action '" + rest + "' takes no argument");
    }
    if (Status s = parse_u64_strict(arg_text, &out->arg); !s.is_ok()) return s;
  } else if (out->action == Action::kStall) {
    return Status(StatusCode::kInvalidArgument,
                  "failpoint action 'stall' needs :<ms>");
  }
  return Status::ok();
}

Status parse_spec(const std::string& spec, std::vector<Clause>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    auto semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause_text = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause_text.empty()) continue;  // tolerate trailing/duplicate ';'
    Clause clause;
    if (Status s = parse_clause(clause_text, &clause); !s.is_ok()) return s;
    if (clause.action != Action::kNone) out->push_back(std::move(clause));
  }
  return Status::ok();
}

void load_env_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("GFI_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    if (Status s = set_spec(env); !s.is_ok()) {
      // A typo'd chaos spec silently doing nothing would make a chaos run
      // look like a clean pass; die loudly instead.
      GFI_LOG(kError) << "GFI_FAILPOINTS: " << s.message();
      std::_Exit(2);
    }
  });
}

}  // namespace

bool enabled() {
  load_env_once();
  return g_enabled.load(std::memory_order_relaxed);
}

Hit hit(const char* name, u64 key) {
  if (!enabled()) return {};
  Registry& r = registry();
  Hit result;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (Clause& clause : r.clauses) {
      if (clause.site != name) continue;
      bool fire = false;
      switch (clause.trigger) {
        case Trigger::kAlways:
          fire = true;
          break;
        case Trigger::kHit:
          fire = clause.count->fetch_add(1, std::memory_order_relaxed) + 1 ==
                 clause.value;
          break;
        case Trigger::kEvery:
          fire = (clause.count->fetch_add(1, std::memory_order_relaxed) + 1) %
                     clause.value ==
                 0;
          break;
        case Trigger::kKey:
          fire = key != kAnyKey && key == clause.value;
          break;
      }
      if (fire) {
        result = Hit{clause.action, clause.arg};
        break;  // first matching clause wins
      }
    }
  }
  if (result.action == Action::kKill) {
    GFI_LOG(kWarn) << "failpoint " << name << ": kill (exit "
                   << result.arg << ")";
    std::_Exit(static_cast<int>(result.arg));
  }
  if (result.action == Action::kStall) {
    GFI_LOG(kWarn) << "failpoint " << name << ": stall " << result.arg << "ms";
    std::this_thread::sleep_for(std::chrono::milliseconds(result.arg));
    return {};  // stall then proceed normally
  }
  return result;
}

Status set_spec(const std::string& spec) {
  std::vector<Clause> clauses;
  if (Status s = parse_spec(spec, &clauses); !s.is_ok()) return s;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.clauses = std::move(clauses);
  r.spec = r.clauses.empty() ? std::string() : spec;
  g_enabled.store(!r.clauses.empty(), std::memory_order_relaxed);
  return Status::ok();
}

std::string spec() {
  load_env_once();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.spec;
}

}  // namespace gfi::fp
