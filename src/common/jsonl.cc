#include "common/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace gfi::jsonl {

void append_key(std::string& out, const char* key) {
  // The buffer normally starts as "{"; guard the empty case so a misuse can
  // never index out.back() of an empty string (UB).
  if (!out.empty() && out.back() != '{') out += ',';
  out += '"';
  out += key;
  out += "\":";
}

void append_u64(std::string& out, const char* key, u64 value) {
  append_key(out, key);
  out += std::to_string(value);
}

void append_f64(std::string& out, const char* key, f64 value) {
  append_key(out, key);
  if (std::isnan(value)) {
    // %.17g would print `nan`, which is not JSON and breaks every consumer
    // (including our own resume parse). Null round-trips as NaN.
    out += "null";
    return;
  }
  if (std::isinf(value)) {
    // Infinities are legitimate record values (e.g. relative error against
    // a zero golden element), so they must survive a journal round-trip.
    // `1e999` is a grammatically valid JSON number that strtod overflows
    // back to ±HUGE_VAL, unlike the non-JSON `inf` token %.17g prints.
    out += value > 0 ? "1e999" : "-1e999";
    return;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_str(std::string& out, const char* key, const std::string& value) {
  append_key(out, key);
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_u64_array(std::string& out, const char* key,
                      const std::vector<u64>& values) {
  append_key(out, key);
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

namespace {

bool skip_ws(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos < s.size();
}

bool parse_quoted(const std::string& s, std::size_t& pos, std::string* out) {
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\') {
      if (++pos >= s.size()) return false;
    }
    *out += s[pos++];
  }
  if (pos >= s.size()) return false;
  ++pos;  // closing quote
  return true;
}

}  // namespace

bool parse_fields(const std::string& line, Fields* out) {
  std::size_t pos = 0;
  if (!skip_ws(line, pos) || line[pos] != '{') return false;
  ++pos;
  if (!skip_ws(line, pos)) return false;
  if (line[pos] == '}') return true;  // empty object
  while (true) {
    std::string key;
    if (!skip_ws(line, pos) || !parse_quoted(line, pos, &key)) return false;
    if (!skip_ws(line, pos) || line[pos] != ':') return false;
    ++pos;
    if (!skip_ws(line, pos)) return false;
    if (line[pos] == '"') {
      std::string value;
      if (!parse_quoted(line, pos, &value)) return false;
      out->scalars[key] = value;
    } else if (line[pos] == '[') {
      ++pos;
      std::vector<u64> values;
      if (!skip_ws(line, pos)) return false;
      while (line[pos] != ']') {
        char* end = nullptr;
        values.push_back(std::strtoull(line.c_str() + pos, &end, 10));
        if (end == line.c_str() + pos) return false;
        pos = static_cast<std::size_t>(end - line.c_str());
        if (!skip_ws(line, pos)) return false;
        if (line[pos] == ',') {
          ++pos;
          if (!skip_ws(line, pos)) return false;
        }
      }
      ++pos;  // ']'
      out->arrays[key] = std::move(values);
    } else {
      const std::size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}') ++pos;
      if (pos >= line.size()) return false;
      std::size_t end = pos;
      while (end > start &&
             std::isspace(static_cast<unsigned char>(line[end - 1]))) {
        --end;
      }
      out->scalars[key] = line.substr(start, end - start);
    }
    if (!skip_ws(line, pos)) return false;
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] == '}') return true;
    return false;
  }
}

std::optional<u64> get_u64(const Fields& fields, const char* key) {
  auto it = fields.scalars.find(key);
  if (it == fields.scalars.end()) return std::nullopt;
  char* end = nullptr;
  const u64 value = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return std::nullopt;
  return value;
}

std::optional<f64> get_f64(const Fields& fields, const char* key) {
  auto it = fields.scalars.find(key);
  if (it == fields.scalars.end()) return std::nullopt;
  if (it->second == "null") return std::numeric_limits<f64>::quiet_NaN();
  char* end = nullptr;
  const f64 value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return std::nullopt;
  return value;
}

std::optional<std::string> get_str(const Fields& fields, const char* key) {
  auto it = fields.scalars.find(key);
  if (it == fields.scalars.end()) return std::nullopt;
  return it->second;
}

}  // namespace gfi::jsonl
