// Fixed-bin histogram with ASCII bar rendering, used for figure-style
// benches (bit-position sensitivity, SDC severity distributions).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace gfi {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped to edge bins.
  Histogram(f64 lo, f64 hi, std::size_t bins);

  /// Adds a sample. NaN values are never binned (they go to dropped());
  /// out-of-range and non-finite values clamp to the edge bins; a degenerate
  /// range (lo == hi) puts every sample in bin 0.
  void add(f64 value, f64 weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] f64 bin_lo(std::size_t bin) const;
  [[nodiscard]] f64 bin_hi(std::size_t bin) const;
  [[nodiscard]] f64 count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] f64 total() const { return total_; }
  /// Weight of NaN samples rejected by add().
  [[nodiscard]] f64 dropped() const { return dropped_; }

  /// ASCII bar chart, one line per bin, bars scaled to `width` characters.
  [[nodiscard]] std::string to_ascii(std::size_t width = 50) const;

 private:
  f64 lo_;
  f64 hi_;
  std::vector<f64> counts_;
  f64 total_ = 0.0;
  f64 dropped_ = 0.0;
};

}  // namespace gfi
