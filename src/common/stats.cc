#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace gfi::stats {

void RunningStats::add(f64 x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const f64 delta = x - mean_;
  mean_ += delta / static_cast<f64>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const f64 na = static_cast<f64>(count_);
  const f64 nb = static_cast<f64>(other.count_);
  const f64 delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

f64 RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<f64>(count_ - 1);
}

f64 RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation, relative
// error < 1.15e-9 over (0, 1)). Exact table constants for the canonical
// campaign levels are handled by the caller; this covers everything else.
f64 probit(f64 q) {
  static constexpr f64 a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr f64 b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static constexpr f64 c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr f64 d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  constexpr f64 p_low = 0.02425;
  if (q < p_low) {
    const f64 r = std::sqrt(-2.0 * std::log(q));
    return (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
            c[5]) /
           ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
  }
  if (q <= 1.0 - p_low) {
    const f64 r = q - 0.5;
    const f64 s = r * r;
    return (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s +
            a[5]) *
           r /
           (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s +
            1.0);
  }
  const f64 r = std::sqrt(-2.0 * std::log(1.0 - q));
  return -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r +
           c[5]) /
         ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0);
}

}  // namespace

f64 z_for_confidence(f64 confidence) {
  // Canonical campaign levels keep the historical four-decimal constants so
  // every previously published interval (journals, CSVs) stays bit-exact.
  constexpr f64 kTol = 1e-9;
  if (std::fabs(confidence - 0.99) < kTol) return 2.5758;
  if (std::fabs(confidence - 0.95) < kTol) return 1.9600;
  if (std::fabs(confidence - 0.90) < kTol) return 1.6449;
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    // An impossible confidence level used to be silently coerced to 1.96;
    // now it poisons every downstream interval instead.
    return std::numeric_limits<f64>::quiet_NaN();
  }
  // Two-sided: z = Phi^-1((1 + confidence) / 2).
  return probit(0.5 * (1.0 + confidence));
}

Interval wald_interval(std::size_t successes, std::size_t trials,
                       f64 confidence) {
  if (trials == 0) return {0.0, 1.0};
  successes = std::min(successes, trials);
  const f64 n = static_cast<f64>(trials);
  const f64 p = static_cast<f64>(successes) / n;
  const f64 z = z_for_confidence(confidence);
  const f64 half = z * std::sqrt(p * (1.0 - p) / n);
  return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         f64 confidence) {
  if (trials == 0) return {0.0, 1.0};
  successes = std::min(successes, trials);
  const f64 n = static_cast<f64>(trials);
  const f64 p = static_cast<f64>(successes) / n;
  const f64 z = z_for_confidence(confidence);
  const f64 z2 = z * z;
  const f64 denom = 1.0 + z2 / n;
  const f64 center = (p + z2 / (2.0 * n)) / denom;
  const f64 half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::size_t required_sample_size(u64 population, f64 margin, f64 confidence,
                                 f64 p) {
  if (population == 0) return 0;
  // p = 0 or 1 makes z^2 p (1-p) zero, the denominator below infinite, and
  // the answer a nonsensical "0 samples needed"; the planner never believes
  // a rate is exactly degenerate.
  p = std::clamp(p, kPlannerEps, 1.0 - kPlannerEps);
  const f64 big_n = static_cast<f64>(population);
  const f64 z = z_for_confidence(confidence);
  const f64 numer = big_n;
  const f64 denom = 1.0 + margin * margin * (big_n - 1.0) / (z * z * p * (1.0 - p));
  const f64 n = numer / denom;
  return static_cast<std::size_t>(std::max(1.0, std::ceil(n)));
}

f64 percentile(std::vector<f64> values, f64 pct) {
  if (values.empty()) return std::numeric_limits<f64>::quiet_NaN();
  // pct outside [0, 100] would push `rank` past size-1 (values[hi] reads
  // past the end) or below 0 (the floor cast wraps); clamp to the sample.
  pct = std::clamp(pct, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const f64 rank = pct / 100.0 * static_cast<f64>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const f64 frac = rank - static_cast<f64>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// ------------------------------------------------- adaptive campaigns ---

bool StoppingRule::satisfied(std::size_t successes,
                             std::size_t trials) const {
  if (!enabled()) return false;
  if (trials < min_samples) return false;
  return wilson_interval(successes, trials, confidence).half_width() <=
         target_half_width;
}

std::vector<u64> apportion(const std::vector<f64>& weights, u64 total) {
  std::vector<u64> shares(weights.size(), 0);
  if (weights.empty() || total == 0) return shares;
  f64 sum = 0.0;
  for (const f64 w : weights) {
    if (w > 0.0 && std::isfinite(w)) sum += w;
  }
  if (sum <= 0.0) {
    // Degenerate input: nothing to be proportional to, spread round-robin.
    for (u64 i = 0; i < total; ++i) ++shares[i % shares.size()];
    return shares;
  }
  // Floor quotas first, then hand the leftover units to the largest
  // fractional remainders (ties toward the lowest index — stable sort on
  // a descending-remainder key keeps the order deterministic).
  u64 assigned = 0;
  std::vector<f64> remainder(weights.size(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const f64 w = (weights[i] > 0.0 && std::isfinite(weights[i]))
                      ? weights[i]
                      : 0.0;
    const f64 quota = static_cast<f64>(total) * w / sum;
    shares[i] = static_cast<u64>(std::floor(quota));
    remainder[i] = quota - std::floor(quota);
    assigned += shares[i];
  }
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  for (std::size_t k = 0; assigned < total; ++k) {
    ++shares[order[k % order.size()]];
    ++assigned;
  }
  return shares;
}

std::vector<f64> neyman_weights(const std::vector<f64>& stratum_weights,
                                const std::vector<u64>& successes,
                                const std::vector<u64>& trials) {
  std::vector<f64> out(stratum_weights.size(), 0.0);
  for (std::size_t i = 0; i < stratum_weights.size(); ++i) {
    if (!(stratum_weights[i] > 0.0)) continue;
    const u64 x = i < successes.size() ? successes[i] : 0;
    const u64 n = i < trials.size() ? trials[i] : 0;
    const f64 p = (static_cast<f64>(std::min(x, n)) + 1.0) /
                  (static_cast<f64>(n) + 2.0);
    out[i] = stratum_weights[i] * std::sqrt(p * (1.0 - p));
  }
  return out;
}

f64 poststratified_rate(const std::vector<StratumCount>& strata) {
  f64 weight_sum = 0.0;
  f64 acc = 0.0;
  for (const StratumCount& s : strata) {
    if (s.trials == 0 || !(s.weight > 0.0)) continue;
    weight_sum += s.weight;
    acc += s.weight * static_cast<f64>(std::min(s.successes, s.trials)) /
           static_cast<f64>(s.trials);
  }
  if (weight_sum <= 0.0) return 0.0;
  return acc / weight_sum;
}

Interval poststratified_interval(const std::vector<StratumCount>& strata,
                                 f64 confidence) {
  f64 weight_sum = 0.0;
  for (const StratumCount& s : strata) {
    if (s.trials == 0 || !(s.weight > 0.0)) continue;
    weight_sum += s.weight;
  }
  if (weight_sum <= 0.0) return {0.0, 1.0};
  const f64 rate = poststratified_rate(strata);
  f64 var = 0.0;
  for (const StratumCount& s : strata) {
    if (s.trials == 0 || !(s.weight > 0.0)) continue;
    const f64 w = s.weight / weight_sum;
    const f64 n = static_cast<f64>(s.trials);
    const f64 p = (static_cast<f64>(std::min(s.successes, s.trials)) + 1.0) /
                  (n + 2.0);
    var += w * w * p * (1.0 - p) / n;
  }
  const f64 half = z_for_confidence(confidence) * std::sqrt(var);
  return {std::max(0.0, rate - half), std::min(1.0, rate + half)};
}

}  // namespace gfi::stats
