#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gfi::stats {

void RunningStats::add(f64 x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const f64 delta = x - mean_;
  mean_ += delta / static_cast<f64>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const f64 na = static_cast<f64>(count_);
  const f64 nb = static_cast<f64>(other.count_);
  const f64 delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

f64 RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<f64>(count_ - 1);
}

f64 RunningStats::stddev() const { return std::sqrt(variance()); }

f64 z_for_confidence(f64 confidence) {
  if (confidence >= 0.989) return 2.5758;
  if (confidence >= 0.949) return 1.9600;
  if (confidence >= 0.899) return 1.6449;
  return 1.9600;  // default to 95%
}

Interval wald_interval(std::size_t successes, std::size_t trials,
                       f64 confidence) {
  if (trials == 0) return {0.0, 1.0};
  const f64 n = static_cast<f64>(trials);
  const f64 p = static_cast<f64>(successes) / n;
  const f64 z = z_for_confidence(confidence);
  const f64 half = z * std::sqrt(p * (1.0 - p) / n);
  return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

Interval wilson_interval(std::size_t successes, std::size_t trials,
                         f64 confidence) {
  if (trials == 0) return {0.0, 1.0};
  const f64 n = static_cast<f64>(trials);
  const f64 p = static_cast<f64>(successes) / n;
  const f64 z = z_for_confidence(confidence);
  const f64 z2 = z * z;
  const f64 denom = 1.0 + z2 / n;
  const f64 center = (p + z2 / (2.0 * n)) / denom;
  const f64 half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

std::size_t required_sample_size(u64 population, f64 margin, f64 confidence,
                                 f64 p) {
  if (population == 0) return 0;
  const f64 big_n = static_cast<f64>(population);
  const f64 z = z_for_confidence(confidence);
  const f64 numer = big_n;
  const f64 denom = 1.0 + margin * margin * (big_n - 1.0) / (z * z * p * (1.0 - p));
  const f64 n = numer / denom;
  return static_cast<std::size_t>(std::ceil(n));
}

f64 percentile(std::vector<f64> values, f64 pct) {
  if (values.empty()) return std::numeric_limits<f64>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const f64 rank = pct / 100.0 * static_cast<f64>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const f64 frac = rank - static_cast<f64>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace gfi::stats
