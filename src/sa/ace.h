// ACE-style injection-site pruning (SASSIFI's "dead destination" class).
//
// A value-group injection site whose entire strike footprint is dead at the
// strike point is provably Masked: the injector flips bits the program never
// reads again, so the launch's architectural trace from that point on is
// identical to the fault-free run. The campaign can skip the simulation and
// credit the record analytically, keeping outcome tables bit-identical to an
// unpruned run on the same seeds.
//
// The classification is static (per pc); the PruneMap adds the dynamic side:
// which (group, occurrence) pairs — the coordinates the injector samples —
// land on a prunable pc, recorded by replaying the fault-free launch once
// with a SiteMapHook.
#pragma once

#include <array>
#include <vector>

#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/instrument.h"
#include "sassim/program.h"

namespace gfi::sa {

/// Static classification of one pc as an IOV/PRED injection destination.
enum class SiteClass : u8 {
  kLive,  ///< strike may be read downstream — must be simulated
  kDead,  ///< strike footprint fully dead — provably Masked
  kNoop,  ///< injector has nothing to corrupt (e.g. RZ-dst atomic)
};

/// Groups whose sites the value-injection modes (IOV destination-value and
/// PRED predicate-flip) can target: everything except Control and Store.
/// Cross-checked against fi::mode_targets_group in tests.
[[nodiscard]] inline bool is_value_site_group(sim::InstrGroup group) {
  return group != sim::InstrGroup::kControl &&
         group != sim::InstrGroup::kStore;
}

/// Per-pc site classes for a program, from liveness over the CFG.
class StaticSiteAnalysis {
 public:
  static StaticSiteAnalysis analyze(const sim::Program& program);

  [[nodiscard]] SiteClass site_class(u32 pc) const { return classes_[pc]; }
  [[nodiscard]] std::size_t size() const { return classes_.size(); }
  /// Static pcs classified kDead among value-group instructions.
  [[nodiscard]] u32 num_dead_pcs() const { return num_dead_pcs_; }

 private:
  std::vector<SiteClass> classes_;
  u32 num_dead_pcs_ = 0;
};

/// One prunable dynamic site, addressed the way the injector samples:
/// the `occurrence`-th dynamic instruction of `group`.
struct PruneEntry {
  u64 occurrence = 0;  ///< per-group dynamic index (injector coordinates)
  u64 dyn_index = 0;   ///< global dynamic warp-instruction counter
  u32 pc = 0;
  u32 exec_mask = 0;   ///< lanes that executed (0 = fully guarded off)
  sim::Opcode op = sim::Opcode::kNop;
  SiteClass cls = SiteClass::kLive;
};

/// Dynamic map of prunable sites for one (workload, arch) program, plus the
/// fault-free check outcome needed to credit dead sites analytically. The
/// golden check is against the CPU reference, so a dead strike reproduces
/// exactly the golden comparison — not necessarily a bitwise match.
struct PruneMap {
  StaticSiteAnalysis analysis;
  /// Per-group prunable entries, sorted by occurrence.
  std::array<std::vector<PruneEntry>, sim::kInstrGroupCount> entries{};
  /// Per-group total dynamic occurrences seen in the fault-free run.
  std::array<u64, sim::kInstrGroupCount> occurrences{};
  /// Fault-free check outcome (vs CPU reference) of the mapped launch.
  bool golden_bitwise_equal = true;
  f64 golden_max_rel_err = 0.0;

  /// The prunable entry at (group, occurrence), or nullptr when that site
  /// must be simulated.
  [[nodiscard]] const PruneEntry* find(sim::InstrGroup group,
                                       u64 occurrence) const;
  /// Total prunable sites across groups.
  [[nodiscard]] u64 num_prunable() const;
};

/// Instrumentation hook that records, during one fault-free launch, every
/// value-group dynamic site whose pc is prunable. Counts occurrences in
/// on_after_instr with the exact discipline of the injector's eligibility
/// counter, so `PruneEntry::occurrence` aligns with sampled sites.
class SiteMapHook : public sim::InstrumentHook {
 public:
  explicit SiteMapHook(PruneMap& map) : map_(&map) {}

  void on_launch_begin(const sim::Program& program) override {
    code_ = program.code().data();
  }
  void on_after_instr(sim::InstrContext& ctx) override;

 private:
  PruneMap* map_;
  const sim::Instr* code_ = nullptr;
};

}  // namespace gfi::sa
