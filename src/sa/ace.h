// ACE-style injection-site pruning (SASSIFI's "dead destination" class),
// at register and bit granularity.
//
// A value-group injection site whose entire strike footprint is dead at the
// strike point is provably Masked: the injector flips bits the program never
// reads again, so the launch's architectural trace from that point on is
// identical to the fault-free run. Bit-liveness (sa/bitlive.h) extends the
// same argument to individual bits: a site whose footprint is only
// partially dead (kPartialDead) carries a live-bit mask, and a sampled
// single/double flip landing exclusively on dead bits is Masked too. The
// campaign can skip those simulations and credit the records analytically,
// keeping outcome tables bit-identical to an unpruned run on the same
// seeds.
//
// The classification is static (per pc); the PruneMap adds the dynamic side:
// which (group, occurrence) pairs — the coordinates the injector samples —
// land on a prunable pc, recorded by replaying the fault-free launch once
// with a SiteMapHook.
#pragma once

#include <array>
#include <vector>

#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/instrument.h"
#include "sassim/program.h"

namespace gfi::sa {

/// Static classification of one pc as an IOV/PRED injection destination.
enum class SiteClass : u8 {
  kLive,         ///< strike may be read downstream — must be simulated
  kDead,         ///< strike footprint fully dead — provably Masked
  kNoop,         ///< injector has nothing to corrupt (e.g. RZ-dst atomic)
  kPartialDead,  ///< some strike bits dead (bitlive.h): a single/double
                 ///< flip landing only on dead bits is provably Masked;
                 ///< anything touching a live bit must be simulated
};

/// Groups whose sites the value-injection modes (IOV destination-value and
/// PRED predicate-flip) can target: everything except Control and Store.
/// Cross-checked against fi::mode_targets_group in tests.
[[nodiscard]] inline bool is_value_site_group(sim::InstrGroup group) {
  return group != sim::InstrGroup::kControl &&
         group != sim::InstrGroup::kStore;
}

/// Per-pc site classes for a program, from register- and bit-level liveness
/// over the CFG. Register-writing sites additionally carry a live-bit mask
/// per strike-footprint register so the campaign can classify individual
/// sampled (site, bit) coordinates.
class StaticSiteAnalysis {
 public:
  /// Strike footprints span at most HMMA's 4-register D fragment.
  static constexpr u16 kMaxStrikeSpan = 4;

  static StaticSiteAnalysis analyze(const sim::Program& program);

  [[nodiscard]] SiteClass site_class(u32 pc) const { return classes_[pc]; }
  [[nodiscard]] std::size_t size() const { return classes_.size(); }
  /// Static pcs classified kDead among value-group instructions.
  [[nodiscard]] u32 num_dead_pcs() const { return num_dead_pcs_; }
  /// Static pcs classified kPartialDead among value-group instructions.
  [[nodiscard]] u32 num_partial_pcs() const { return num_partial_pcs_; }

  /// Registers in the strike footprint of `pc` (0 for non-reg-strike pcs).
  [[nodiscard]] u16 strike_span(u32 pc) const { return strike_span_[pc]; }
  /// Live bits of footprint register `s` (offset from the dst base) at
  /// `pc`. Bits NOT set are provably dead: flipping them after `pc`
  /// executes cannot change the launch's architectural trace.
  [[nodiscard]] u32 strike_live_mask(u32 pc, u16 s) const {
    return strike_live_[pc * kMaxStrikeSpan + s];
  }
  /// True when footprint bit `bit` (0 .. strike_span*32) of `pc` is
  /// provably dead — the (site, bit) coordinate a single-bit flip strikes.
  [[nodiscard]] bool strike_bit_dead(u32 pc, u32 bit) const {
    return ((strike_live_mask(pc, static_cast<u16>(bit / 32)) >>
             (bit % 32)) & 1u) == 0;
  }
  /// Dead bits in the whole footprint of `pc` (0 for pred writers/kNoop).
  [[nodiscard]] u32 num_dead_bits(u32 pc) const;

 private:
  std::vector<SiteClass> classes_;
  std::vector<u16> strike_span_;
  std::vector<u32> strike_live_;  ///< [pc * kMaxStrikeSpan + s]
  u32 num_dead_pcs_ = 0;
  u32 num_partial_pcs_ = 0;
};

/// One prunable (or bit-prunable) dynamic site, addressed the way the
/// injector samples: the `occurrence`-th dynamic instruction of `group`.
/// kPartialDead entries are recorded at every dynamic occurrence; whether a
/// given sampled flip can actually be credited is decided per injection
/// against the pc's strike_live_mask.
struct PruneEntry {
  u64 occurrence = 0;  ///< per-group dynamic index (injector coordinates)
  u64 dyn_index = 0;   ///< global dynamic warp-instruction counter
  u32 pc = 0;
  u32 exec_mask = 0;   ///< lanes that executed (0 = fully guarded off)
  sim::Opcode op = sim::Opcode::kNop;
  SiteClass cls = SiteClass::kLive;
};

/// Dynamic map of prunable sites for one (workload, arch) program, plus the
/// fault-free check outcome needed to credit dead sites analytically. The
/// golden check is against the CPU reference, so a dead strike reproduces
/// exactly the golden comparison — not necessarily a bitwise match.
struct PruneMap {
  StaticSiteAnalysis analysis;
  /// Per-group prunable entries, sorted by occurrence.
  std::array<std::vector<PruneEntry>, sim::kInstrGroupCount> entries{};
  /// Per-group total dynamic occurrences seen in the fault-free run.
  std::array<u64, sim::kInstrGroupCount> occurrences{};
  /// Fault-free check outcome (vs CPU reference) of the mapped launch.
  bool golden_bitwise_equal = true;
  f64 golden_max_rel_err = 0.0;

  /// The prunable entry at (group, occurrence), or nullptr when that site
  /// must be simulated.
  [[nodiscard]] const PruneEntry* find(sim::InstrGroup group,
                                       u64 occurrence) const;
  /// Total prunable sites across groups.
  [[nodiscard]] u64 num_prunable() const;
};

/// Instrumentation hook that records, during one fault-free launch, every
/// value-group dynamic site whose pc is prunable. Counts occurrences in
/// on_after_instr with the exact discipline of the injector's eligibility
/// counter, so `PruneEntry::occurrence` aligns with sampled sites.
class SiteMapHook : public sim::InstrumentHook {
 public:
  explicit SiteMapHook(PruneMap& map) : map_(&map) {}

  void on_launch_begin(const sim::Program& program) override {
    code_ = program.code().data();
  }
  void on_after_instr(sim::InstrContext& ctx) override;

 private:
  PruneMap* map_;
  const sim::Instr* code_ = nullptr;
};

}  // namespace gfi::sa
