// Backward bit-liveness: which *bits* of each register may still influence
// an architecturally visible effect (memory, control flow, cross-lane
// traffic) after an instruction completes.
//
// The lattice is a 32-bit live mask per (pc, register) plus one live bit per
// predicate; join is bitwise OR. Transfer functions are demand-driven: the
// bits an instruction demands from its sources derive from the live-out
// masks of its destination (LOP with a known immediate kills masked-off
// source bits, SHF translates masks by the executor's masked shift amount,
// IADD/IMUL carry chains smear demand downward, MOV/SEL pass through), so a
// value consumed only by dead computation is itself dead — a strict
// refinement of register-level liveness. Where a transfer cannot do better
// it punts to "all source bits live" (IMAD factors, FP arithmetic,
// converts, cross-lane readers); memory addresses and store data are always
// fully demanded because a flipped address can trap, which is visible even
// when the loaded value is dead.
//
// Soundness contract (what ace.cc's dead-bit pruning relies on): a bit NOT
// in reg_live_out_mask(pc, r) can be flipped after pc executes without
// changing the launch's architectural trace. Query results are additionally
// intersected with register-level Liveness, so the bit analysis can never
// claim live state that PR 3's pruning already proved dead.
#pragma once

#include <vector>

#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/program.h"

namespace gfi::sa {

/// All bits at or below the highest set bit of `mask`: the source demand of
/// a carry chain whose destination has `mask` live (dst bit i depends on
/// source bits [0, i]).
[[nodiscard]] constexpr u32 smear_down(u32 mask) {
  mask |= mask >> 1;
  mask |= mask >> 2;
  mask |= mask >> 4;
  mask |= mask >> 8;
  mask |= mask >> 16;
  return mask;
}

/// All bits at or above the lowest set bit of `mask`: the forward face of
/// the carry argument (taint in source bit i can reach destination bits
/// [i, 31] of an add/multiply chain). Used by the lint bit-taint pass.
[[nodiscard]] constexpr u32 smear_up(u32 mask) {
  mask |= mask << 1;
  mask |= mask << 2;
  mask |= mask << 4;
  mask |= mask << 8;
  mask |= mask << 16;
  return mask;
}

class BitLiveness {
 public:
  /// `reg_live` must be Liveness::compute over the same program and CFG; it
  /// seeds the refinement guarantee (results are intersected with it).
  static BitLiveness compute(const sim::Program& program, const Cfg& cfg,
                             const Liveness& reg_live);

  /// Live bits of register `r` after the instruction at `pc` completes.
  /// RZ and out-of-range registers read as 0 (nothing to keep alive).
  [[nodiscard]] u32 reg_live_out_mask(u32 pc, u16 r) const {
    if (r == sim::kRegZ || r >= num_regs_) return 0;
    return live_out_regs_[pc * num_regs_ + r];
  }
  /// Live bit of predicate `p` after `pc` (PT is never live — not writable).
  [[nodiscard]] bool pred_live_out(u32 pc, u8 p) const {
    return p < sim::kPredT && ((live_out_preds_[pc] >> p) & 1u);
  }

  /// Bits of source register `r` the instruction at `pc` demands, given the
  /// recorded live-out state: the forward face of the same transfer
  /// functions. 0 when `r` is not a source of `pc` (or is demanded dead).
  [[nodiscard]] u32 src_demand_mask(u32 pc, u16 r) const;

  [[nodiscard]] u32 num_regs() const { return num_regs_; }

 private:
  const sim::DecodedProgram* dec_ = nullptr;
  u32 num_regs_ = 0;
  std::vector<u32> live_out_regs_;  ///< pc-major [pc * num_regs_ + r]
  std::vector<u8> live_out_preds_;  ///< per-pc predicate live bits
};

}  // namespace gfi::sa
