#include "sa/lint.h"

#include <algorithm>
#include <sstream>

#include "sa/ace.h"
#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/defuse.h"

namespace gfi::sa {

using sim::DefUse;
using sim::Instr;
using sim::Opcode;

namespace {

void add(LintReport& report, LintCheck check, Severity severity, u32 pc,
         std::string message) {
  report.findings.push_back(LintFinding{check, severity, pc, std::move(message)});
}

bool is_atomic(Opcode op) {
  return op == Opcode::kAtomG || op == Opcode::kAtomS;
}

/// Constant value of `reg` at entry of `pc`, when every reaching definition
/// is an unguarded 32-bit `MOV reg, imm` and the zero-init pseudo-def does
/// not reach. Appends each possible value to `values`; returns false when
/// the register is not provably constant.
bool const_values(const sim::Program& program, const ReachingDefs& reaching,
                  u32 pc, u16 reg, std::vector<u32>& values) {
  if (reaching.reg_may_be_uninit(pc, reg)) return false;
  const std::vector<u32> defs = reaching.reaching_defs(pc, reg);
  if (defs.empty()) return false;
  for (u32 def_pc : defs) {
    const Instr& def = program.at(def_pc);
    if (def.op != Opcode::kMov || !def.src[0].is_imm() ||
        def.dtype == sim::DType::kU64 || def.dtype == sim::DType::kF64 ||
        !def.dst.is_reg() || def.dst.index != reg) {
      return false;
    }
    values.push_back(static_cast<u32>(def.src[0].imm));
  }
  return true;
}

void check_shared_bounds(const sim::Program& program, const Cfg& cfg,
                         const ReachingDefs& reaching, LintReport& report) {
  for (u32 pc = 0; pc < program.size(); ++pc) {
    if (!cfg.pc_reachable(pc)) continue;
    const Instr& instr = program.at(pc);
    if (instr.op != Opcode::kLds && instr.op != Opcode::kSts &&
        instr.op != Opcode::kAtomS) {
      continue;
    }
    const u32 width =
        instr.op == Opcode::kAtomS ? 4u : static_cast<u32>(instr.mem_width);
    u64 offset = 0;
    if (instr.op != Opcode::kAtomS && instr.src[1].is_imm()) {
      offset = instr.src[1].imm;
    }
    std::vector<u32> bases;
    if (instr.src[0].is_imm()) {
      bases.push_back(static_cast<u32>(instr.src[0].imm));
    } else if (instr.src[0].is_reg()) {
      if (instr.src[0].index == sim::kRegZ) {
        bases.push_back(0);
      } else if (!const_values(program, reaching, pc, instr.src[0].index,
                               bases)) {
        continue;  // address not provably constant
      }
    } else {
      continue;
    }
    for (u32 base : bases) {
      const u64 end = static_cast<u64>(base) + offset + width;
      if (end > program.shared_bytes()) {
        std::ostringstream msg;
        msg << sim::opcode_name(instr.op) << " accesses shared ["
            << (base + offset) << ", " << end << ") beyond declared "
            << program.shared_bytes() << " bytes";
        add(report, LintCheck::kSharedOutOfBounds, Severity::kError, pc,
            msg.str());
        break;
      }
    }
  }
}

}  // namespace

LintReport lint(const sim::Program& program) {
  LintReport report;
  report.program = program.name();
  const u32 n = static_cast<u32>(program.size());
  if (n == 0) return report;

  const sim::DecodedProgram& dec = program.decoded();
  const Cfg cfg = Cfg::build(program);
  const Liveness live = Liveness::compute(program, cfg);
  const ReachingDefs reaching = ReachingDefs::compute(program, cfg);
  const SsyDepth depth = SsyDepth::compute(program);

  // Unreachable blocks.
  for (const BasicBlock& block : cfg.blocks()) {
    if (!block.reachable) {
      add(report, LintCheck::kUnreachableCode, Severity::kWarning, block.first,
          "block unreachable from kernel entry");
    }
  }

  // SSY/SYNC structure.
  for (u32 pc : depth.underflow_pcs) {
    add(report, LintCheck::kSyncUnderflow, Severity::kError, pc,
        "SYNC reachable with an empty SSY stack");
  }
  for (u32 pc : depth.mismatch_pcs) {
    add(report, LintCheck::kSsySyncImbalance, Severity::kWarning, pc,
        "paths join here with different SSY stack depths");
  }
  for (u32 pc : depth.exit_unbalanced_pcs) {
    add(report, LintCheck::kSsySyncImbalance, Severity::kWarning, pc,
        "unconditional EXIT inside an open SSY region");
  }

  for (u32 pc = 0; pc < n; ++pc) {
    if (!cfg.pc_reachable(pc)) continue;
    const Instr& instr = program.at(pc);
    const DefUse& du = dec.def_use(pc);

    // Reads of possibly never-defined registers / predicates. Registers are
    // zero-initialised at launch, so this is a warning, not an error.
    for (u16 r : du.src_regs) {
      if (reaching.reg_may_be_uninit(pc, r)) {
        std::ostringstream msg;
        msg << "R" << r << " may be read before any definition";
        add(report, LintCheck::kUninitRegRead, Severity::kWarning, pc,
            msg.str());
      }
    }
    for (u8 p = 0; p < sim::kPredT; ++p) {
      if (((du.src_preds >> p) & 1u) && reaching.pred_may_be_uninit(pc, p)) {
        std::ostringstream msg;
        msg << "P" << static_cast<int>(p)
            << " may be read before any definition";
        add(report, LintCheck::kUninitPredRead, Severity::kWarning, pc,
            msg.str());
      }
    }

    // Discarded writes. Atomics with an RZ destination are the idiomatic
    // "don't need the old value" form and are exempt.
    if (instr.dst.is_reg() && instr.dst.index == sim::kRegZ &&
        !instr.writes_pred() && !instr.is_control() && !instr.is_store() &&
        !is_atomic(instr.op) && instr.op != Opcode::kNop) {
      std::ostringstream msg;
      msg << sim::opcode_name(instr.op) << " writes RZ; result is discarded";
      add(report, LintCheck::kWriteToRZ, Severity::kWarning, pc, msg.str());
    }
    if (instr.writes_pred() && instr.dst.is_pred() &&
        instr.dst.index >= sim::kPredT) {
      add(report, LintCheck::kWriteToPT, Severity::kError, pc,
          "PT is not writable; the predicate write is dropped");
    }

    // Barrier under divergence: a guard can mask lanes off the barrier, and
    // inside an SSY region only the taken-path lanes arrive — both hang the
    // CTA on real hardware.
    if (instr.op == Opcode::kBar) {
      if (dec.guarded(pc)) {
        add(report, LintCheck::kDivergentBarrier, Severity::kWarning, pc,
            "BAR under a guard predicate: masked lanes never arrive");
      } else if (depth.at[pc] > 0) {
        std::ostringstream msg;
        msg << "BAR inside an open SSY region (depth " << depth.at[pc]
            << "): divergent lanes may never arrive";
        add(report, LintCheck::kDivergentBarrier, Severity::kWarning, pc,
            msg.str());
      }
    }

    // Dead values: side-effect-free result never read on any path. These
    // are exactly the sites the ACE pruning pass skips.
    if (instr.writes_reg() && !instr.is_memory()) {
      bool all_dead = !du.dst_regs.empty();
      for (u16 r : du.dst_regs) {
        if (live.reg_live_out(pc, r)) {
          all_dead = false;
          break;
        }
      }
      if (all_dead) {
        std::ostringstream msg;
        msg << "result of " << sim::opcode_name(instr.op)
            << " is never read (statically dead)";
        add(report, LintCheck::kDeadValue, Severity::kInfo, pc, msg.str());
      }
    }
    if (instr.writes_pred() && instr.dst.is_pred() &&
        instr.dst.index < sim::kPredT &&
        !live.pred_live_out(pc, static_cast<u8>(instr.dst.index))) {
      std::ostringstream msg;
      msg << "P" << static_cast<int>(instr.dst.index)
          << " set by " << sim::opcode_name(instr.op)
          << " is never read (statically dead)";
      add(report, LintCheck::kDeadValue, Severity::kInfo, pc, msg.str());
    }
  }

  check_shared_bounds(program, cfg, reaching, report);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return static_cast<int>(a.check) <
                            static_cast<int>(b.check);
                   });
  return report;
}

int LintReport::count(Severity severity) const {
  int total = 0;
  for (const LintFinding& finding : findings) {
    if (finding.severity == severity) ++total;
  }
  return total;
}

int LintReport::count(LintCheck check) const {
  int total = 0;
  for (const LintFinding& finding : findings) {
    if (finding.check == check) ++total;
  }
  return total;
}

const char* check_name(LintCheck check) {
  switch (check) {
    case LintCheck::kUninitRegRead:     return "uninit-reg-read";
    case LintCheck::kUninitPredRead:    return "uninit-pred-read";
    case LintCheck::kWriteToRZ:         return "write-to-rz";
    case LintCheck::kWriteToPT:         return "write-to-pt";
    case LintCheck::kSyncUnderflow:     return "sync-underflow";
    case LintCheck::kSsySyncImbalance:  return "ssy-sync-imbalance";
    case LintCheck::kDivergentBarrier:  return "divergent-barrier";
    case LintCheck::kSharedOutOfBounds: return "shared-out-of-bounds";
    case LintCheck::kUnreachableCode:   return "unreachable-code";
    case LintCheck::kDeadValue:         return "dead-value";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:    return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError:   return "error";
  }
  return "unknown";
}

namespace {

void json_escape(std::ostream& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

}  // namespace

std::string to_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\"program\": \"";
  json_escape(out, report.program);
  out << "\", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& f = report.findings[i];
    if (i > 0) out << ", ";
    out << "{\"pc\": " << f.pc << ", \"check\": \"" << check_name(f.check)
        << "\", \"severity\": \"" << severity_name(f.severity)
        << "\", \"message\": \"";
    json_escape(out, f.message);
    out << "\"}";
  }
  out << "], \"errors\": " << report.count(Severity::kError)
      << ", \"warnings\": " << report.count(Severity::kWarning)
      << ", \"infos\": " << report.count(Severity::kInfo) << "}";
  return out.str();
}

}  // namespace gfi::sa
