#include "sa/lint.h"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "sa/ace.h"
#include "sa/bitlive.h"
#include "sa/cfg.h"
#include "sa/dataflow.h"
#include "sassim/defuse.h"

namespace gfi::sa {

using sim::DefUse;
using sim::Instr;
using sim::Opcode;

namespace {

constexpr u32 kAllBits = 0xffffffffu;

void add(LintReport& report, LintCheck check, Severity severity, u32 pc,
         std::string message) {
  report.findings.push_back(LintFinding{check, severity, pc, std::move(message)});
}

bool is_atomic(Opcode op) {
  return op == Opcode::kAtomG || op == Opcode::kAtomS;
}

/// Constant value of `reg` at entry of `pc`, when every reaching definition
/// is an unguarded 32-bit `MOV reg, imm` and the zero-init pseudo-def does
/// not reach. Appends each possible value to `values`; returns false when
/// the register is not provably constant.
bool const_values(const sim::Program& program, const ReachingDefs& reaching,
                  u32 pc, u16 reg, std::vector<u32>& values) {
  if (reaching.reg_may_be_uninit(pc, reg)) return false;
  const std::vector<u32> defs = reaching.reaching_defs(pc, reg);
  if (defs.empty()) return false;
  for (u32 def_pc : defs) {
    const Instr& def = program.at(def_pc);
    if (def.op != Opcode::kMov || !def.src[0].is_imm() ||
        def.dtype == sim::DType::kU64 || def.dtype == sim::DType::kF64 ||
        !def.dst.is_reg() || def.dst.index != reg) {
      return false;
    }
    values.push_back(static_cast<u32>(def.src[0].imm));
  }
  return true;
}

void check_shared_bounds(const sim::Program& program, const Cfg& cfg,
                         const ReachingDefs& reaching, LintReport& report) {
  for (u32 pc = 0; pc < program.size(); ++pc) {
    if (!cfg.pc_reachable(pc)) continue;
    const Instr& instr = program.at(pc);
    if (instr.op != Opcode::kLds && instr.op != Opcode::kSts &&
        instr.op != Opcode::kAtomS) {
      continue;
    }
    const u32 width =
        instr.op == Opcode::kAtomS ? 4u : static_cast<u32>(instr.mem_width);
    u64 offset = 0;
    if (instr.op != Opcode::kAtomS && instr.src[1].is_imm()) {
      offset = instr.src[1].imm;
    }
    std::vector<u32> bases;
    if (instr.src[0].is_imm()) {
      bases.push_back(static_cast<u32>(instr.src[0].imm));
    } else if (instr.src[0].is_reg()) {
      if (instr.src[0].index == sim::kRegZ) {
        bases.push_back(0);
      } else if (!const_values(program, reaching, pc, instr.src[0].index,
                               bases)) {
        continue;  // address not provably constant
      }
    } else {
      continue;
    }
    for (u32 base : bases) {
      const u64 end = static_cast<u64>(base) + offset + width;
      if (end > program.shared_bytes()) {
        std::ostringstream msg;
        msg << sim::opcode_name(instr.op) << " accesses shared ["
            << (base + offset) << ", " << end << ") beyond declared "
            << program.shared_bytes() << " bytes";
        add(report, LintCheck::kSharedOutOfBounds, Severity::kError, pc,
            msg.str());
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Partially-uninitialised reads: forward bit-taint. A register bit is
// tainted when its value can still be the launch state no instruction ever
// wrote; defs clear taint, but a def *derived from* a tainted source keeps
// the taint alive at bit granularity (the forward face of bitlive.h's
// backward transfers). A read whose demanded bits intersect the taint — on a
// register ReachingDefs considers fully defined, so kUninitRegRead stays
// silent — publishes partially-uninitialised data.
// ---------------------------------------------------------------------------

/// Forward per-instruction taint transfer, keyed by sim::bit_semantics.
class TaintTransfer {
 public:
  TaintTransfer(const sim::DecodedProgram& dec, u32 num_regs)
      : dec_(&dec), num_regs_(num_regs) {}

  void apply(u32 pc, std::vector<u32>& taint) const {
    const sim::DecodedInstr& d = dec_->at(pc);
    const DefUse& du = dec_->def_use(pc);
    if (du.dst_regs.empty()) return;

    const bool wide = d.wide;
    auto src_taint = [&](const sim::DecodedOperand& o, u16 s) -> u32 {
      if (o.kind != sim::OperandKind::kReg || o.index == sim::kRegZ) return 0;
      const u32 r = static_cast<u32>(o.index) + s;
      return r < num_regs_ ? taint[r] : 0;
    };
    auto any_src_taint = [&]() -> u32 {
      u32 acc = 0;
      for (u16 r : du.src_regs) {
        if (r < num_regs_) acc |= taint[r];
      }
      return acc;
    };

    u32 nt[4] = {0, 0, 0, 0};  // new taint per dst register offset
    switch (sim::bit_semantics(d.op)) {
      case sim::BitSemantics::kNone:
      case sim::BitSemantics::kMemory:
        break;  // S2R/LDC/load/atomic results are system- or memory-defined
      case sim::BitSemantics::kCompare:
        break;  // predicate destinations are not taint-tracked

      case sim::BitSemantics::kPassThrough:
        for (u16 s = 0; s < (wide ? 2 : 1); ++s) {
          nt[s] = src_taint(d.src[0], s);
          if (d.op == Opcode::kSel) nt[s] |= src_taint(d.src[1], s);
        }
        break;

      case sim::BitSemantics::kBitwise: {
        const auto kind = static_cast<sim::LopKind>(d.sub);
        for (u16 s = 0; s < (wide ? 2 : 1); ++s) {
          const sim::DecodedOperand& a = d.src[0];
          const sim::DecodedOperand& b = d.src[1];
          auto imm_half = [&](const sim::DecodedOperand& o) {
            return static_cast<u32>(o.imm >> (32 * s));
          };
          u32 t = src_taint(a, s) | src_taint(b, s);
          if (kind == sim::LopKind::kAnd) {
            // AND with 0 pins the bit to a defined value.
            if (b.is_imm()) t &= imm_half(b);
            if (a.is_imm()) t &= imm_half(a);
          } else if (kind == sim::LopKind::kOr) {
            // OR with 1 pins likewise.
            if (b.is_imm()) t &= ~imm_half(b);
            if (a.is_imm()) t &= ~imm_half(a);
          }
          nt[s] = t;
        }
        break;
      }

      case sim::BitSemantics::kShift: {
        const u32 width = wide ? 64 : 32;
        const u64 st =
            static_cast<u64>(src_taint(d.src[0], 0)) |
            (wide ? static_cast<u64>(src_taint(d.src[0], 1)) << 32 : 0);
        const sim::DecodedOperand& amount = d.src[1];
        u64 out = 0;
        if (amount.is_imm()) {
          const u32 k = static_cast<u32>(amount.imm) & (width - 1);
          switch (static_cast<sim::ShiftKind>(d.sub)) {
            case sim::ShiftKind::kLeft:
              out = st << k;  // shifted-in zeros are defined
              break;
            case sim::ShiftKind::kRightLogical:
              out = st >> k;
              break;
            case sim::ShiftKind::kRightArith:
              out = st >> k;
              if (k > 0 && ((st >> (width - 1)) & 1)) {
                out |= ((1ull << k) - 1) << (width - k);  // replicated sign
              }
              break;
          }
        } else {
          out = (st | src_taint(amount, 0)) ? ~0ull : 0;
        }
        if (width == 32) out &= 0xffffffffull;
        nt[0] = static_cast<u32>(out);
        nt[1] = static_cast<u32>(out >> 32);
        break;
      }

      case sim::BitSemantics::kCarry: {
        if (wide || d.dtype == sim::DType::kU64) {
          const u32 any = any_src_taint() ? kAllBits : 0;
          nt[0] = nt[1] = any;
        } else {
          // Carries move taint upward only: source bit i reaches dst [i, 31].
          nt[0] = smear_up(any_src_taint());
        }
        break;
      }

      case sim::BitSemantics::kAllOrNothing:
      case sim::BitSemantics::kCrossLane: {
        const u32 any = any_src_taint() ? kAllBits : 0;
        nt[0] = nt[1] = nt[2] = nt[3] = any;
        break;
      }
    }

    for (u16 r : du.dst_regs) {
      if (r >= num_regs_) continue;
      const u32 s = static_cast<u32>(r) - d.dst_index;
      const u32 v = s < 4 ? nt[s] : 0;
      taint[r] = d.guarded ? (taint[r] | v) : v;  // a guard cannot kill
    }
  }

 private:
  const sim::DecodedProgram* dec_;
  u32 num_regs_;
};

void check_partial_uninit(const sim::Program& program, const Cfg& cfg,
                          const Liveness& live, const ReachingDefs& reaching,
                          LintReport& report) {
  const u32 num_regs = program.num_regs();
  if (num_regs == 0 || cfg.empty()) return;
  const sim::DecodedProgram& dec = program.decoded();
  const BitLiveness bits = BitLiveness::compute(program, cfg, live);
  const TaintTransfer transfer(dec, num_regs);
  const auto& blocks = cfg.blocks();
  const u32 nblocks = static_cast<u32>(blocks.size());

  // Forward fixpoint, join = OR. The entry starts fully tainted (launch
  // state: no instruction has written anything yet); unreachable blocks are
  // never propagated into and report nothing.
  std::vector<std::vector<u32>> block_in(nblocks,
                                         std::vector<u32>(num_regs, 0));
  block_in[0].assign(num_regs, kAllBits);
  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = 0; b < nblocks; ++b) {
      if (!blocks[b].reachable) continue;
      std::vector<u32> state = block_in[b];
      for (u32 pc = blocks[b].first; pc <= blocks[b].last; ++pc) {
        transfer.apply(pc, state);
      }
      for (u32 succ : blocks[b].succs) {
        for (u32 i = 0; i < num_regs; ++i) {
          const u32 next = block_in[succ][i] | state[i];
          if (next != block_in[succ][i]) {
            block_in[succ][i] = next;
            changed = true;
          }
        }
      }
    }
  }

  for (u32 b = 0; b < nblocks; ++b) {
    if (!blocks[b].reachable) continue;
    std::vector<u32> state = block_in[b];
    for (u32 pc = blocks[b].first; pc <= blocks[b].last; ++pc) {
      const DefUse& du = dec.def_use(pc);
      for (u16 r : du.src_regs) {
        if (r >= num_regs) continue;
        // Whole-register uninit reads are kUninitRegRead's finding; this
        // check owns the reads ReachingDefs considers fully defined.
        if (reaching.reg_may_be_uninit(pc, r)) continue;
        const u32 flagged = state[r] & bits.src_demand_mask(pc, r);
        if (flagged != 0) {
          std::ostringstream msg;
          msg << "R" << r << " bits 0x" << std::hex << flagged << std::dec
              << " consumed here trace back to launch state no instruction"
                 " wrote (partially-uninitialised value)";
          add(report, LintCheck::kPartialUninitRead, Severity::kWarning, pc,
              msg.str());
        }
      }
      transfer.apply(pc, state);
    }
  }
}

}  // namespace

LintReport lint(const sim::Program& program) {
  LintReport report;
  report.program = program.name();
  const u32 n = static_cast<u32>(program.size());
  if (n == 0) return report;

  const sim::DecodedProgram& dec = program.decoded();
  const Cfg cfg = Cfg::build(program);
  const Liveness live = Liveness::compute(program, cfg);
  const ReachingDefs reaching = ReachingDefs::compute(program, cfg);
  const SsyDepth depth = SsyDepth::compute(program);

  // Unreachable blocks.
  for (const BasicBlock& block : cfg.blocks()) {
    if (!block.reachable) {
      add(report, LintCheck::kUnreachableCode, Severity::kWarning, block.first,
          "block unreachable from kernel entry");
    }
  }

  // SSY/SYNC structure.
  for (u32 pc : depth.underflow_pcs) {
    add(report, LintCheck::kSyncUnderflow, Severity::kError, pc,
        "SYNC reachable with an empty SSY stack");
  }
  for (u32 pc : depth.mismatch_pcs) {
    add(report, LintCheck::kSsySyncImbalance, Severity::kWarning, pc,
        "paths join here with different SSY stack depths");
  }
  for (u32 pc : depth.exit_unbalanced_pcs) {
    add(report, LintCheck::kSsySyncImbalance, Severity::kWarning, pc,
        "unconditional EXIT inside an open SSY region");
  }

  for (u32 pc = 0; pc < n; ++pc) {
    if (!cfg.pc_reachable(pc)) continue;
    const Instr& instr = program.at(pc);
    const DefUse& du = dec.def_use(pc);

    // Reads of possibly never-defined registers / predicates. Registers are
    // zero-initialised at launch, so this is a warning, not an error.
    for (u16 r : du.src_regs) {
      if (reaching.reg_may_be_uninit(pc, r)) {
        std::ostringstream msg;
        msg << "R" << r << " may be read before any definition";
        add(report, LintCheck::kUninitRegRead, Severity::kWarning, pc,
            msg.str());
      }
    }
    for (u8 p = 0; p < sim::kPredT; ++p) {
      if (((du.src_preds >> p) & 1u) && reaching.pred_may_be_uninit(pc, p)) {
        std::ostringstream msg;
        msg << "P" << static_cast<int>(p)
            << " may be read before any definition";
        add(report, LintCheck::kUninitPredRead, Severity::kWarning, pc,
            msg.str());
      }
    }

    // Discarded writes. Atomics with an RZ destination are the idiomatic
    // "don't need the old value" form and are exempt.
    if (instr.dst.is_reg() && instr.dst.index == sim::kRegZ &&
        !instr.writes_pred() && !instr.is_control() && !instr.is_store() &&
        !is_atomic(instr.op) && instr.op != Opcode::kNop) {
      std::ostringstream msg;
      msg << sim::opcode_name(instr.op) << " writes RZ; result is discarded";
      add(report, LintCheck::kWriteToRZ, Severity::kWarning, pc, msg.str());
    }
    if (instr.writes_pred() && instr.dst.is_pred() &&
        instr.dst.index >= sim::kPredT) {
      add(report, LintCheck::kWriteToPT, Severity::kError, pc,
          "PT is not writable; the predicate write is dropped");
    }

    // Barrier under divergence: a guard can mask lanes off the barrier, and
    // inside an SSY region only the taken-path lanes arrive — both hang the
    // CTA on real hardware.
    if (instr.op == Opcode::kBar) {
      if (dec.guarded(pc)) {
        add(report, LintCheck::kDivergentBarrier, Severity::kWarning, pc,
            "BAR under a guard predicate: masked lanes never arrive");
      } else if (depth.at[pc] > 0) {
        std::ostringstream msg;
        msg << "BAR inside an open SSY region (depth " << depth.at[pc]
            << "): divergent lanes may never arrive";
        add(report, LintCheck::kDivergentBarrier, Severity::kWarning, pc,
            msg.str());
      }
    }

    // Dead values: side-effect-free result never read on any path. These
    // are exactly the sites the ACE pruning pass skips.
    if (instr.writes_reg() && !instr.is_memory()) {
      bool all_dead = !du.dst_regs.empty();
      for (u16 r : du.dst_regs) {
        if (live.reg_live_out(pc, r)) {
          all_dead = false;
          break;
        }
      }
      if (all_dead) {
        std::ostringstream msg;
        msg << "result of " << sim::opcode_name(instr.op)
            << " is never read (statically dead)";
        add(report, LintCheck::kDeadValue, Severity::kInfo, pc, msg.str());
      }
    }
    if (instr.writes_pred() && instr.dst.is_pred() &&
        instr.dst.index < sim::kPredT &&
        !live.pred_live_out(pc, static_cast<u8>(instr.dst.index))) {
      std::ostringstream msg;
      msg << "P" << static_cast<int>(instr.dst.index)
          << " set by " << sim::opcode_name(instr.op)
          << " is never read (statically dead)";
      add(report, LintCheck::kDeadValue, Severity::kInfo, pc, msg.str());
    }
  }

  check_shared_bounds(program, cfg, reaching, report);
  check_partial_uninit(program, cfg, live, reaching, report);

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return static_cast<int>(a.check) <
                            static_cast<int>(b.check);
                   });
  return report;
}

int LintReport::count(Severity severity) const {
  int total = 0;
  for (const LintFinding& finding : findings) {
    if (finding.severity == severity) ++total;
  }
  return total;
}

int LintReport::count(LintCheck check) const {
  int total = 0;
  for (const LintFinding& finding : findings) {
    if (finding.check == check) ++total;
  }
  return total;
}

const char* check_name(LintCheck check) {
  switch (check) {
    case LintCheck::kUninitRegRead:     return "uninit-reg-read";
    case LintCheck::kUninitPredRead:    return "uninit-pred-read";
    case LintCheck::kWriteToRZ:         return "write-to-rz";
    case LintCheck::kWriteToPT:         return "write-to-pt";
    case LintCheck::kSyncUnderflow:     return "sync-underflow";
    case LintCheck::kSsySyncImbalance:  return "ssy-sync-imbalance";
    case LintCheck::kDivergentBarrier:  return "divergent-barrier";
    case LintCheck::kSharedOutOfBounds: return "shared-out-of-bounds";
    case LintCheck::kUnreachableCode:   return "unreachable-code";
    case LintCheck::kDeadValue:         return "dead-value";
    case LintCheck::kPartialUninitRead: return "partial-uninit-read";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:    return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError:   return "error";
  }
  return "unknown";
}

namespace {

void json_escape(std::ostream& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

}  // namespace

std::string to_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\"program\": \"";
  json_escape(out, report.program);
  out << "\", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& f = report.findings[i];
    if (i > 0) out << ", ";
    out << "{\"pc\": " << f.pc << ", \"check\": \"" << check_name(f.check)
        << "\", \"severity\": \"" << severity_name(f.severity)
        << "\", \"message\": \"";
    json_escape(out, f.message);
    out << "\"}";
  }
  out << "], \"errors\": " << report.count(Severity::kError)
      << ", \"warnings\": " << report.count(Severity::kWarning)
      << ", \"infos\": " << report.count(Severity::kInfo) << "}";
  return out.str();
}

namespace {

constexpr LintCheck kAllChecks[] = {
    LintCheck::kUninitRegRead,     LintCheck::kUninitPredRead,
    LintCheck::kWriteToRZ,         LintCheck::kWriteToPT,
    LintCheck::kSyncUnderflow,     LintCheck::kSsySyncImbalance,
    LintCheck::kDivergentBarrier,  LintCheck::kSharedOutOfBounds,
    LintCheck::kUnreachableCode,   LintCheck::kDeadValue,
    LintCheck::kPartialUninitRead,
};

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kInfo:    return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError:   return "error";
  }
  return "none";
}

}  // namespace

std::string to_sarif(const std::vector<LintReport>& reports) {
  std::ostringstream out;
  out << "{\"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\", "
         "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
         "{\"name\": \"gpufi-lint\", \"rules\": [";
  for (std::size_t i = 0; i < std::size(kAllChecks); ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": \"" << check_name(kAllChecks[i])
        << "\", \"shortDescription\": {\"text\": \""
        << check_name(kAllChecks[i]) << "\"}}";
  }
  out << "]}}, \"results\": [";
  bool first = true;
  for (const LintReport& report : reports) {
    for (const LintFinding& f : report.findings) {
      if (!first) out << ", ";
      first = false;
      std::size_t rule_index = 0;
      for (std::size_t i = 0; i < std::size(kAllChecks); ++i) {
        if (kAllChecks[i] == f.check) rule_index = i;
      }
      out << "{\"ruleId\": \"" << check_name(f.check)
          << "\", \"ruleIndex\": " << rule_index << ", \"level\": \""
          << sarif_level(f.severity) << "\", \"message\": {\"text\": \"";
      json_escape(out, f.message);
      // The "file" is the kernel; pc maps to a 1-based virtual line so code
      // scanning UIs have a stable anchor per instruction.
      out << "\"}, \"locations\": [{\"physicalLocation\": "
             "{\"artifactLocation\": {\"uri\": \"";
      json_escape(out, report.program);
      out << ".sass\"}, \"region\": {\"startLine\": " << (f.pc + 1)
          << "}}}]}";
    }
  }
  out << "]}]}";
  return out.str();
}

}  // namespace gfi::sa
