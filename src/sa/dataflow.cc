#include "sa/dataflow.h"

#include <algorithm>

namespace gfi::sa {

using sim::DecodedProgram;
using sim::DefUse;

namespace {

/// Packed variable index of predicate `p` in a space of `num_regs` regs.
u32 pred_var(u32 num_regs, u8 p) { return num_regs + p; }

}  // namespace

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

Liveness Liveness::compute(const sim::Program& program, const Cfg& cfg) {
  Liveness live;
  live.num_regs_ = program.num_regs();
  const DecodedProgram& dec = program.decoded();
  const u32 n = static_cast<u32>(dec.size());
  live.live_out_.assign(n, BitSet());
  if (cfg.empty()) return live;

  const u32 nvars = live.num_regs_ + (sim::kNumPredicates - 1);
  const auto& blocks = cfg.blocks();
  const u32 nblocks = static_cast<u32>(blocks.size());

  // Per-block upward-exposed uses and unguarded kills.
  std::vector<BitSet> use(nblocks, BitSet(nvars));
  std::vector<BitSet> def(nblocks, BitSet(nvars));
  for (u32 b = 0; b < nblocks; ++b) {
    BitSet killed(nvars);
    for (u32 pc = blocks[b].first; pc <= blocks[b].last; ++pc) {
      const DefUse& du = dec.def_use(pc);
      for (u16 r : du.src_regs) {
        if (r < live.num_regs_ && !killed.test(r)) use[b].set(r);
      }
      for (u8 p = 0; p < sim::kPredT; ++p) {
        if ((du.src_preds >> p) & 1u) {
          const u32 v = pred_var(live.num_regs_, p);
          if (!killed.test(v)) use[b].set(v);
        }
      }
      if (!dec.guarded(pc)) {
        for (u16 r : du.dst_regs) {
          if (r < live.num_regs_) {
            killed.set(r);
            def[b].set(r);
          }
        }
        for (u8 p = 0; p < sim::kPredT; ++p) {
          if ((du.dst_preds >> p) & 1u) {
            const u32 v = pred_var(live.num_regs_, p);
            killed.set(v);
            def[b].set(v);
          }
        }
      }
    }
  }

  // Backward fixpoint at block granularity.
  std::vector<BitSet> block_in(nblocks, BitSet(nvars));
  std::vector<BitSet> block_out(nblocks, BitSet(nvars));
  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 i = nblocks; i-- > 0;) {
      for (u32 succ : blocks[i].succs) block_out[i].merge(block_in[succ]);
      BitSet in = block_out[i];
      in.subtract(def[i]);
      in.merge(use[i]);
      if (block_in[i].merge(in)) changed = true;
    }
  }

  // In-block backward walk to per-instruction live-out.
  for (u32 b = 0; b < nblocks; ++b) {
    BitSet current = block_out[b];
    for (u32 pc = blocks[b].last;; --pc) {
      live.live_out_[pc] = current;
      const DefUse& du = dec.def_use(pc);
      if (!dec.guarded(pc)) {
        for (u16 r : du.dst_regs) {
          if (r < live.num_regs_) current.reset(r);
        }
        for (u8 p = 0; p < sim::kPredT; ++p) {
          if ((du.dst_preds >> p) & 1u) {
            current.reset(pred_var(live.num_regs_, p));
          }
        }
      }
      for (u16 r : du.src_regs) {
        if (r < live.num_regs_) current.set(r);
      }
      for (u8 p = 0; p < sim::kPredT; ++p) {
        if ((du.src_preds >> p) & 1u) current.set(pred_var(live.num_regs_, p));
      }
      if (pc == blocks[b].first) break;
    }
  }
  return live;
}

// ---------------------------------------------------------------------------
// ReachingDefs
// ---------------------------------------------------------------------------

ReachingDefs ReachingDefs::compute(const sim::Program& program,
                                   const Cfg& cfg) {
  ReachingDefs rd;
  rd.dec_ = &program.decoded();
  rd.cfg_ = &cfg;
  rd.num_regs_ = program.num_regs();
  rd.num_vars_ = rd.num_regs_ + (sim::kNumPredicates - 1);
  const u32 n = static_cast<u32>(rd.dec_->size());
  rd.def_ids_at_.assign(n, {});
  rd.defs_of_var_.assign(rd.num_vars_, {});
  rd.pseudo_def_of_var_.assign(rd.num_vars_, 0);
  if (cfg.empty()) return rd;

  // Pseudo definitions model the zero-initialised launch state.
  for (u32 v = 0; v < rd.num_vars_; ++v) {
    rd.pseudo_def_of_var_[v] = static_cast<u32>(rd.defs_.size());
    rd.defs_of_var_[v].push_back(rd.pseudo_def_of_var_[v]);
    rd.defs_.push_back(Def{0, v, true});
  }
  for (u32 pc = 0; pc < n; ++pc) {
    const DefUse& du = rd.dec_->def_use(pc);
    for (u16 r : du.dst_regs) {
      if (r >= rd.num_regs_) continue;
      const u32 id = static_cast<u32>(rd.defs_.size());
      rd.defs_.push_back(Def{pc, r, false});
      rd.defs_of_var_[r].push_back(id);
      rd.def_ids_at_[pc].push_back(id);
    }
    for (u8 p = 0; p < sim::kPredT; ++p) {
      if (!((du.dst_preds >> p) & 1u)) continue;
      const u32 v = pred_var(rd.num_regs_, p);
      const u32 id = static_cast<u32>(rd.defs_.size());
      rd.defs_.push_back(Def{pc, v, false});
      rd.defs_of_var_[v].push_back(id);
      rd.def_ids_at_[pc].push_back(id);
    }
  }

  // Forward fixpoint at block granularity.
  const auto& blocks = cfg.blocks();
  const u32 nblocks = static_cast<u32>(blocks.size());
  const u32 ndefs = static_cast<u32>(rd.defs_.size());
  rd.block_in_.assign(nblocks, BitSet(ndefs));
  for (u32 v = 0; v < rd.num_vars_; ++v) {
    rd.block_in_[0].set(rd.pseudo_def_of_var_[v]);
  }
  std::vector<u32> worklist{0};
  while (!worklist.empty()) {
    const u32 b = worklist.back();
    worklist.pop_back();
    BitSet out = rd.block_in_[b];
    for (u32 pc = blocks[b].first; pc <= blocks[b].last; ++pc) {
      rd.apply(out, pc);
    }
    for (u32 succ : blocks[b].succs) {
      if (rd.block_in_[succ].merge(out)) worklist.push_back(succ);
    }
  }
  return rd;
}

void ReachingDefs::apply(BitSet& state, u32 pc) const {
  const bool guarded = dec_->guarded(pc);
  for (u32 id : def_ids_at_[pc]) {
    if (!guarded) {
      for (u32 other : defs_of_var_[defs_[id].var]) state.reset(other);
    }
    state.set(id);
  }
}

BitSet ReachingDefs::state_at(u32 pc) const {
  const auto& block = cfg_->blocks()[cfg_->block_of(pc)];
  BitSet state = block_in_[cfg_->block_of(pc)];
  for (u32 q = block.first; q < pc; ++q) apply(state, q);
  return state;
}

bool ReachingDefs::reg_may_be_uninit(u32 pc, u16 r) const {
  if (r == sim::kRegZ || r >= num_regs_) return false;
  return state_at(pc).test(pseudo_def_of_var_[r]);
}

bool ReachingDefs::pred_may_be_uninit(u32 pc, u8 p) const {
  if (p >= sim::kPredT) return false;
  return state_at(pc).test(pseudo_def_of_var_[pred_var(num_regs_, p)]);
}

std::vector<u32> ReachingDefs::reaching_defs(u32 pc, u16 r) const {
  std::vector<u32> pcs;
  if (r == sim::kRegZ || r >= num_regs_) return pcs;
  const BitSet state = state_at(pc);
  for (u32 id : defs_of_var_[r]) {
    if (!defs_[id].pseudo && state.test(id)) pcs.push_back(defs_[id].pc);
  }
  std::sort(pcs.begin(), pcs.end());
  return pcs;
}

std::vector<u32> ReachingDefs::reaching_pred_defs(u32 pc, u8 p) const {
  std::vector<u32> pcs;
  if (p >= sim::kPredT) return pcs;
  const BitSet state = state_at(pc);
  for (u32 id : defs_of_var_[pred_var(num_regs_, p)]) {
    if (!defs_[id].pseudo && state.test(id)) pcs.push_back(defs_[id].pc);
  }
  std::sort(pcs.begin(), pcs.end());
  return pcs;
}

// ---------------------------------------------------------------------------
// DefUseChains
// ---------------------------------------------------------------------------

DefUseChains DefUseChains::compute(const sim::Program& program, const Cfg& cfg,
                                   const ReachingDefs& reaching) {
  DefUseChains chains;
  const DecodedProgram& dec = program.decoded();
  const u32 n = static_cast<u32>(dec.size());
  chains.uses.assign(n, {});
  if (cfg.empty()) return chains;

  for (u32 pc = 0; pc < n; ++pc) {
    if (!cfg.pc_reachable(pc)) continue;
    const DefUse& du = dec.def_use(pc);
    for (u16 r : du.src_regs) {
      for (u32 def_pc : reaching.reaching_defs(pc, r)) {
        chains.uses[def_pc].push_back(pc);
      }
    }
    for (u8 p = 0; p < sim::kPredT; ++p) {
      if (!((du.src_preds >> p) & 1u)) continue;
      for (u32 def_pc : reaching.reaching_pred_defs(pc, p)) {
        chains.uses[def_pc].push_back(pc);
      }
    }
  }
  for (auto& list : chains.uses) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return chains;
}

}  // namespace gfi::sa
