#include "sa/cfg.h"

#include <algorithm>

namespace gfi::sa {

using sim::Instr;
using sim::Opcode;

std::vector<u32> instr_succs(const Instr& instr, u32 pc, u32 size) {
  std::vector<u32> succs;
  const bool has_fall = pc + 1 < size;
  const bool unconditional =
      instr.guard_pred == sim::kPredT && !instr.guard_negated;
  const bool never = instr.guard_pred == sim::kPredT && instr.guard_negated;

  switch (instr.op) {
    case Opcode::kBra:
      if (unconditional) {
        succs.push_back(static_cast<u32>(instr.target));
      } else if (never) {
        if (has_fall) succs.push_back(pc + 1);
      } else {
        if (has_fall) succs.push_back(pc + 1);
        succs.push_back(static_cast<u32>(instr.target));
      }
      break;
    case Opcode::kExit:
      if (!unconditional && has_fall) succs.push_back(pc + 1);
      break;
    default:
      if (has_fall) succs.push_back(pc + 1);
      break;
  }
  return succs;
}

Cfg Cfg::build(const sim::Program& program) {
  Cfg cfg;
  const auto& code = program.code();
  const u32 n = static_cast<u32>(code.size());
  if (n == 0) return cfg;

  // Mark leaders.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& instr = code[pc];
    if ((instr.op == Opcode::kBra || instr.op == Opcode::kSsy) &&
        instr.target >= 0 && static_cast<u32>(instr.target) < n) {
      leader[static_cast<u32>(instr.target)] = true;
    }
    if (instr.is_control() && pc + 1 < n) leader[pc + 1] = true;
  }

  // Carve blocks.
  cfg.block_of_.assign(n, 0);
  for (u32 pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      BasicBlock block;
      block.first = pc;
      cfg.blocks_.push_back(block);
    }
    const u32 id = static_cast<u32>(cfg.blocks_.size()) - 1;
    cfg.block_of_[pc] = id;
    cfg.blocks_[id].last = pc;
  }

  // Wire edges from each block's terminator.
  for (u32 id = 0; id < cfg.blocks_.size(); ++id) {
    BasicBlock& block = cfg.blocks_[id];
    for (u32 succ_pc : instr_succs(code[block.last], block.last, n)) {
      const u32 succ_id = cfg.block_of_[succ_pc];
      if (std::find(block.succs.begin(), block.succs.end(), succ_id) ==
          block.succs.end()) {
        block.succs.push_back(succ_id);
      }
    }
  }
  for (u32 id = 0; id < cfg.blocks_.size(); ++id) {
    for (u32 succ : cfg.blocks_[id].succs) {
      cfg.blocks_[succ].preds.push_back(id);
    }
  }

  // Reachability from the entry block.
  std::vector<u32> stack{0};
  cfg.blocks_[0].reachable = true;
  while (!stack.empty()) {
    const u32 id = stack.back();
    stack.pop_back();
    for (u32 succ : cfg.blocks_[id].succs) {
      if (!cfg.blocks_[succ].reachable) {
        cfg.blocks_[succ].reachable = true;
        stack.push_back(succ);
      }
    }
  }
  return cfg;
}

SsyDepth SsyDepth::compute(const sim::Program& program) {
  SsyDepth result;
  const auto& code = program.code();
  const u32 n = static_cast<u32>(code.size());
  result.at.assign(n, -1);
  if (n == 0) return result;

  std::vector<bool> mismatch_seen(n, false);
  std::vector<u32> worklist{0};
  result.at[0] = 0;
  while (!worklist.empty()) {
    const u32 pc = worklist.back();
    worklist.pop_back();
    const Instr& instr = code[pc];
    int depth = result.at[pc];

    if (instr.op == Opcode::kSsy) {
      ++depth;
    } else if (instr.op == Opcode::kSync) {
      if (depth == 0) {
        result.underflow_pcs.push_back(pc);
      } else {
        --depth;
      }
    } else if (instr.op == Opcode::kExit && instr.guard_pred == sim::kPredT &&
               !instr.guard_negated && result.at[pc] > 0) {
      result.exit_unbalanced_pcs.push_back(pc);
    }

    for (u32 succ : instr_succs(instr, pc, n)) {
      if (result.at[succ] == -1) {
        result.at[succ] = depth;
        worklist.push_back(succ);
      } else if (result.at[succ] != depth && !mismatch_seen[succ]) {
        mismatch_seen[succ] = true;
        result.mismatch_pcs.push_back(succ);
      }
    }
  }
  std::sort(result.underflow_pcs.begin(), result.underflow_pcs.end());
  std::sort(result.mismatch_pcs.begin(), result.mismatch_pcs.end());
  std::sort(result.exit_unbalanced_pcs.begin(),
            result.exit_unbalanced_pcs.end());
  return result;
}

}  // namespace gfi::sa
