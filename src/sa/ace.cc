#include "sa/ace.h"

#include <algorithm>
#include <bit>

#include "sa/bitlive.h"

namespace gfi::sa {

using sim::DefUse;
using sim::Instr;
using sim::Opcode;

StaticSiteAnalysis StaticSiteAnalysis::analyze(const sim::Program& program) {
  StaticSiteAnalysis result;
  const auto& code = program.code();
  const sim::DecodedProgram& dec = program.decoded();
  const u32 n = static_cast<u32>(code.size());
  result.classes_.assign(n, SiteClass::kLive);
  result.strike_span_.assign(n, 0);
  result.strike_live_.assign(static_cast<std::size_t>(n) * kMaxStrikeSpan, 0);
  if (n == 0) return result;

  const Cfg cfg = Cfg::build(program);
  const Liveness live = Liveness::compute(program, cfg);
  const BitLiveness bits = BitLiveness::compute(program, cfg, live);

  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& instr = code[pc];
    if (!is_value_site_group(dec.group(pc))) continue;

    SiteClass cls = SiteClass::kLive;
    if (instr.writes_pred()) {
      if (instr.dst.is_pred() && instr.dst.index < sim::kPredT) {
        // Bit-level predicate liveness refines the register-level result:
        // a predicate consumed only by dead computation is dead too.
        cls = bits.pred_live_out(pc, static_cast<u8>(instr.dst.index))
                  ? SiteClass::kLive
                  : SiteClass::kDead;
      } else {
        cls = SiteClass::kNoop;  // PT destination: set_pred drops the write
      }
    } else if (instr.op == Opcode::kHmma && instr.dst.is_reg() &&
               instr.dst.index == sim::kRegZ) {
      cls = SiteClass::kLive;  // never prune a degenerate RZ-fragment MMA
    } else if ((instr.writes_reg() || instr.op == Opcode::kHmma) &&
               instr.dst.is_reg()) {
      // strike_iov corrupts the full dst_reg_span() footprint; classify
      // each footprint register's bits via bit-liveness. Out-of-range
      // registers are unanalyzable and stay fully live.
      const u16 span = instr.dst_reg_span();
      result.strike_span_[pc] = span;
      bool any_live = false;
      bool any_dead = false;
      for (u16 s = 0; s < span; ++s) {
        const u16 r = static_cast<u16>(instr.dst.index + s);
        const u32 mask = r >= program.num_regs()
                             ? 0xffffffffu
                             : bits.reg_live_out_mask(pc, r);
        result.strike_live_[pc * kMaxStrikeSpan + s] = mask;
        any_live = any_live || mask != 0;
        any_dead = any_dead || mask != 0xffffffffu;
      }
      cls = !any_live ? SiteClass::kDead
                      : (any_dead ? SiteClass::kPartialDead : SiteClass::kLive);
    } else {
      // Nothing for the injector to corrupt: RZ-destination ALU/atomic/
      // load discards, ballot into RZ.
      cls = SiteClass::kNoop;
    }
    result.classes_[pc] = cls;
    if (cls == SiteClass::kDead) ++result.num_dead_pcs_;
    if (cls == SiteClass::kPartialDead) ++result.num_partial_pcs_;
  }
  return result;
}

u32 StaticSiteAnalysis::num_dead_bits(u32 pc) const {
  u32 dead = 0;
  for (u16 s = 0; s < strike_span_[pc]; ++s) {
    dead += static_cast<u32>(
        std::popcount(~strike_live_[pc * kMaxStrikeSpan + s]));
  }
  return dead;
}

const PruneEntry* PruneMap::find(sim::InstrGroup group, u64 occurrence) const {
  const auto& list = entries[static_cast<int>(group)];
  const auto it = std::lower_bound(
      list.begin(), list.end(), occurrence,
      [](const PruneEntry& e, u64 occ) { return e.occurrence < occ; });
  if (it == list.end() || it->occurrence != occurrence) return nullptr;
  return &*it;
}

u64 PruneMap::num_prunable() const {
  u64 total = 0;
  for (const auto& list : entries) total += list.size();
  return total;
}

void SiteMapHook::on_after_instr(sim::InstrContext& ctx) {
  const u32 pc = static_cast<u32>(ctx.instr - code_);
  const int group = static_cast<int>(ctx.group);
  const u64 occurrence = map_->occurrences[group]++;
  if (!is_value_site_group(ctx.group)) return;

  const SiteClass cls = map_->analysis.site_class(pc);
  if (cls == SiteClass::kLive && ctx.exec_mask != 0) return;
  PruneEntry entry;
  entry.occurrence = occurrence;
  entry.dyn_index = ctx.dyn_index;
  entry.pc = pc;
  entry.exec_mask = ctx.exec_mask;
  entry.op = ctx.instr->op;
  entry.cls = cls;
  map_->entries[group].push_back(entry);
}

}  // namespace gfi::sa
