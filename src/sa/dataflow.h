// Classic bitvector dataflow over the CFG: backward liveness for registers
// and predicates, forward reaching definitions, and def-use chains derived
// from them.
//
// Soundness for fault-injection pruning hinges on one asymmetry: *every*
// read (any guard, any lane) generates a use, but only *unguarded* writes
// kill. A guarded write leaves masked lanes' registers untouched, so it
// cannot end a value's live range. Cross-lane readers (SHFL/VOTE/HMMA) only
// consume values from lanes that execute the instruction, which the CFG
// path of that lane covers, so no extra edges are needed.
//
// sa/bitlive.h refines the register-level answer to bit granularity
// (32-bit live masks per register, intersected with Liveness below so it
// is a strict refinement); this file stays the whole-register truth that
// seeds and bounds it.
#pragma once

#include <vector>

#include "sa/cfg.h"
#include "sassim/decoded.h"
#include "sassim/defuse.h"
#include "sassim/program.h"

namespace gfi::sa {

/// Dense bitset sized at construction. Variables are packed as
/// [0, num_regs) general registers followed by 7 writable predicates.
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(u32 nbits) : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  void set(u32 bit) { words_[bit >> 6] |= 1ull << (bit & 63); }
  void reset(u32 bit) { words_[bit >> 6] &= ~(1ull << (bit & 63)); }
  [[nodiscard]] bool test(u32 bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }
  /// this |= other; returns true when any bit changed.
  bool merge(const BitSet& other) {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const u64 next = words_[w] | other.words_[w];
      changed = changed || next != words_[w];
      words_[w] = next;
    }
    return changed;
  }
  /// this &= ~other.
  void subtract(const BitSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= ~other.words_[w];
    }
  }
  bool operator==(const BitSet& other) const {
    return words_ == other.words_;
  }
  [[nodiscard]] u32 size() const { return nbits_; }

 private:
  u32 nbits_ = 0;
  std::vector<u64> words_;
};

/// Backward liveness over registers and predicates. `live_out(pc)` is the
/// set of variables whose value may still be read on some path after the
/// instruction at `pc` completes — exactly the set an injector strike at
/// `pc`'s destination must intersect to possibly matter.
class Liveness {
 public:
  static Liveness compute(const sim::Program& program, const Cfg& cfg);

  [[nodiscard]] const BitSet& live_out(u32 pc) const { return live_out_[pc]; }
  [[nodiscard]] bool reg_live_out(u32 pc, u16 r) const {
    return r != sim::kRegZ && r < num_regs_ && live_out_[pc].test(r);
  }
  [[nodiscard]] bool pred_live_out(u32 pc, u8 p) const {
    return p < sim::kPredT && live_out_[pc].test(num_regs_ + p);
  }

 private:
  u32 num_regs_ = 0;
  std::vector<BitSet> live_out_;  ///< per pc
};

/// Forward reaching definitions. Each (pc, variable) write is a definition;
/// a pseudo-definition per variable models the launch-time zero-initialised
/// state and reaches wherever a path from entry avoids every real write.
class ReachingDefs {
 public:
  static ReachingDefs compute(const sim::Program& program, const Cfg& cfg);

  /// True when the zero-init pseudo-definition of register `r` can reach
  /// the entry of `pc` — i.e. some path reads it never-defined.
  [[nodiscard]] bool reg_may_be_uninit(u32 pc, u16 r) const;
  [[nodiscard]] bool pred_may_be_uninit(u32 pc, u8 p) const;

  /// pcs of real definitions of register `r` that may reach the entry of
  /// `pc`. Does not include the pseudo-definition (query it separately).
  [[nodiscard]] std::vector<u32> reaching_defs(u32 pc, u16 r) const;
  [[nodiscard]] std::vector<u32> reaching_pred_defs(u32 pc, u8 p) const;

 private:
  struct Def {
    u32 pc = 0;    ///< defining instruction (unused for pseudo defs)
    u32 var = 0;   ///< packed variable index
    bool pseudo = false;
  };

  /// Reaching-in set at the entry of `pc`, reconstructed by walking the
  /// owning block from its dataflow in-state.
  [[nodiscard]] BitSet state_at(u32 pc) const;
  void apply(BitSet& state, u32 pc) const;

  const sim::DecodedProgram* dec_ = nullptr;
  const Cfg* cfg_ = nullptr;
  u32 num_regs_ = 0;
  u32 num_vars_ = 0;
  std::vector<Def> defs_;
  std::vector<std::vector<u32>> defs_of_var_;  ///< def ids per variable
  std::vector<u32> pseudo_def_of_var_;         ///< def id of each pseudo def
  std::vector<std::vector<u32>> def_ids_at_;   ///< real def ids per pc
  std::vector<BitSet> block_in_;
};

/// Def-use chains: for every real definition, the pcs that may read it.
struct DefUseChains {
  /// uses[def_pc] lists reader pcs (sorted, deduplicated). Indexed by pc;
  /// instructions that define nothing have empty lists.
  std::vector<std::vector<u32>> uses;

  static DefUseChains compute(const sim::Program& program, const Cfg& cfg,
                              const ReachingDefs& reaching);
};

}  // namespace gfi::sa
