// Kernel verifier: static checks over a linked program, each finding tied
// to an instruction index with a severity and a one-line message.
#pragma once

#include <string>
#include <vector>

#include "sassim/program.h"

namespace gfi::sa {

enum class Severity : u8 { kInfo, kWarning, kError };

enum class LintCheck : u8 {
  kUninitRegRead,     ///< register may be read before any definition
  kUninitPredRead,    ///< predicate may be read before any definition
  kWriteToRZ,         ///< non-atomic write to RZ is always discarded
  kWriteToPT,         ///< PT is not writable; the write is dropped
  kSyncUnderflow,     ///< kSync reachable with an empty SSY stack
  kSsySyncImbalance,  ///< inconsistent SSY depth at a join / unbalanced exit
  kDivergentBarrier,  ///< kBar under a guard or inside an SSY region
  kSharedOutOfBounds, ///< constant shared address beyond shared_bytes
  kUnreachableCode,   ///< block unreachable from the entry
  kDeadValue,         ///< side-effect-free result never read (prunable)
  kPartialUninitRead, ///< consumed bits trace back to a never-written value
                      ///< through a partially-defining chain (bit taint)
};

struct LintFinding {
  LintCheck check = LintCheck::kUninitRegRead;
  Severity severity = Severity::kWarning;
  u32 pc = 0;
  std::string message;
};

struct LintReport {
  std::string program;  ///< program name the findings refer to
  std::vector<LintFinding> findings;

  [[nodiscard]] int count(Severity severity) const;
  [[nodiscard]] int count(LintCheck check) const;
  [[nodiscard]] bool has_errors() const {
    return count(Severity::kError) > 0;
  }
};

/// Runs every check over `program` (assumed linked: branch targets
/// resolved). Findings are sorted by pc, then check.
LintReport lint(const sim::Program& program);

const char* check_name(LintCheck check);
const char* severity_name(Severity severity);

/// Machine-readable serialisation for `gpufi lint --json`:
/// {"program": ..., "findings": [{"pc", "check", "severity", "message"}],
///  "errors": N, "warnings": N, "infos": N}
std::string to_json(const LintReport& report);

/// SARIF 2.1.0 serialisation for `gpufi lint --sarif=<file>`: one run with
/// every LintCheck as a reportingDescriptor rule and one result per finding,
/// located at virtual line pc+1 of an artifact named after the program. The
/// format is what GitHub code scanning ingests.
std::string to_sarif(const std::vector<LintReport>& reports);

}  // namespace gfi::sa
