// Control-flow graph over a linked sim::Program.
//
// Blocks are maximal straight-line instruction runs; edges follow the
// simulator's per-lane semantics. Every dynamic path a single lane can take
// through a kernel is a path in this graph (divergence only restricts which
// lanes follow which edge), so any property proven over all CFG paths holds
// for every lane of every launch.
#pragma once

#include <vector>

#include "sassim/program.h"

namespace gfi::sa {

/// Static successors of the instruction at `pc` in a program of `size`
/// instructions, per-lane view:
///  - kBra unconditional (@PT)      -> {target}
///  - kBra @!PT (never taken)       -> {fall}
///  - kBra guarded                  -> {fall, target}
///  - kExit unconditional           -> {}
///  - kExit guarded                 -> {fall}
///  - everything else (incl. kSsy, kSync, kBar) -> {fall}
/// kSsy's `target` is not an edge: it names the reconvergence SYNC, which
/// lanes reach by executing the instructions in between.
std::vector<u32> instr_succs(const sim::Instr& instr, u32 pc, u32 size);

struct BasicBlock {
  u32 first = 0;            ///< pc of the first instruction
  u32 last = 0;             ///< pc of the last instruction (inclusive)
  std::vector<u32> succs;   ///< successor block ids
  std::vector<u32> preds;   ///< predecessor block ids
  bool reachable = false;   ///< reachable from the entry block
};

class Cfg {
 public:
  /// Builds the CFG. Leaders: pc 0, every kBra/kSsy target, and every
  /// fall-through of a control instruction. An empty program yields an
  /// empty CFG.
  static Cfg build(const sim::Program& program);

  [[nodiscard]] const std::vector<BasicBlock>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] u32 block_of(u32 pc) const { return block_of_[pc]; }
  [[nodiscard]] std::size_t num_instrs() const { return block_of_.size(); }
  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] bool pc_reachable(u32 pc) const {
    return blocks_[block_of_[pc]].reachable;
  }

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_;  ///< pc -> owning block id
};

/// SSY/SYNC stack depth at the entry of each reachable instruction, from a
/// forward propagation that counts kSsy as push and kSync as pop. Sound
/// because every per-lane path is a CFG path; well-formed kernels have a
/// single consistent depth at every join.
struct SsyDepth {
  std::vector<int> at;                  ///< entry depth per pc; -1 unreachable
  std::vector<u32> underflow_pcs;       ///< kSync executed at depth 0
  std::vector<u32> mismatch_pcs;        ///< join reached with differing depths
  std::vector<u32> exit_unbalanced_pcs; ///< unconditional kExit at depth > 0

  static SsyDepth compute(const sim::Program& program);
};

}  // namespace gfi::sa
