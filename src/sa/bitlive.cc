#include "sa/bitlive.h"

namespace gfi::sa {
namespace {

using sim::DecodedInstr;
using sim::DecodedOperand;
using sim::DefUse;
using sim::DType;
using sim::LopKind;
using sim::Opcode;
using sim::OperandKind;
using sim::ShiftKind;

constexpr u32 kAll = 0xffffffffu;

/// Mask state at one program point: live bits per register, one live bit
/// per writable predicate.
struct MaskState {
  std::vector<u32> regs;
  u8 preds = 0;

  explicit MaskState(u32 num_regs) : regs(num_regs, 0) {}

  bool merge(const MaskState& other) {
    bool changed = false;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      const u32 next = regs[i] | other.regs[i];
      changed = changed || next != regs[i];
      regs[i] = next;
    }
    const u8 next_preds = static_cast<u8>(preds | other.preds);
    changed = changed || next_preds != preds;
    preds = next_preds;
    return changed;
  }
};

/// Source demands of one instruction: at most the distinct registers a
/// RegList can hold, deduplicated by OR-ing masks, plus demanded predicates.
struct Demands {
  u16 regs[sim::RegList::kCapacity];
  u32 masks[sim::RegList::kCapacity];
  int count = 0;
  u8 preds = 0;

  void add(u16 r, u32 mask) {
    if (r == sim::kRegZ || mask == 0) return;
    for (int i = 0; i < count; ++i) {
      if (regs[i] == r) {
        masks[i] |= mask;
        return;
      }
    }
    if (count < sim::RegList::kCapacity) {
      regs[count] = r;
      masks[count] = mask;
      ++count;
    }
  }
  /// Operand read through read_operand: register (span 1 or 2, per-half
  /// masks) or predicate (demanded when any mask bit is set).
  void add_operand(const DecodedOperand& operand, u32 mask_lo, u32 mask_hi,
                   bool pair) {
    if (operand.kind == OperandKind::kReg) {
      add(operand.index, mask_lo);
      if (pair) add(static_cast<u16>(operand.index + 1), mask_hi);
    } else if (operand.kind == OperandKind::kPred &&
               operand.index != sim::kPredT && (mask_lo | mask_hi) != 0) {
      preds |= static_cast<u8>(1u << operand.index);
    }
  }
};

/// The backward per-instruction transfer: given the live-out MaskState,
/// computes source demands (the "gen" side, derived from destination
/// live-out masks), kills unguarded destinations, and produces live-in.
class Transfer {
 public:
  Transfer(const sim::DecodedProgram& dec, u32 num_regs)
      : dec_(&dec), num_regs_(num_regs) {}

  /// state: live-out on entry, live-in on return. When `demand_out` is
  /// given, each source register's demand mask is OR-ed into it.
  void apply(u32 pc, MaskState& state, std::vector<u32>* demand_out) const {
    const DecodedInstr& d = dec_->at(pc);
    const DefUse& du = dec_->def_use(pc);
    Demands dem;
    collect_demands(d, du, state, dem);

    if (!d.guarded) {
      for (u16 r : du.dst_regs) {
        if (r < num_regs_) state.regs[r] = 0;
      }
      state.preds &= static_cast<u8>(~du.dst_preds);
    }
    for (int i = 0; i < dem.count; ++i) {
      if (dem.regs[i] >= num_regs_) continue;
      state.regs[dem.regs[i]] |= dem.masks[i];
      if (demand_out) (*demand_out)[dem.regs[i]] |= dem.masks[i];
    }
    if (d.guard_pred != sim::kPredT) {
      dem.preds |= static_cast<u8>(1u << d.guard_pred);
    }
    state.preds |= dem.preds;
  }

 private:
  /// Live-out mask of register `r` as a demand source: RZ is nothing,
  /// out-of-range registers are unanalyzable and assumed fully live.
  [[nodiscard]] u32 out_mask(const MaskState& state, u16 r) const {
    if (r == sim::kRegZ) return 0;
    if (r >= num_regs_) return kAll;
    return state.regs[r];
  }

  // One case per opcode, no default: a new opcode fails -Wswitch here and
  // the completeness-guard test audits sim::bit_semantics alongside.
  void collect_demands(const DecodedInstr& d, const DefUse& du,
                       const MaskState& state, Demands& dem) const {
    const bool wide = d.wide;
    const bool dst_reg = d.dst_kind == OperandKind::kReg;
    auto dst_mask = [&](u16 s) -> u32 {
      return dst_reg ? out_mask(state, static_cast<u16>(d.dst_index + s)) : 0;
    };

    switch (d.op) {
      case Opcode::kNop:
      case Opcode::kExit:
      case Opcode::kBra:
      case Opcode::kSsy:
      case Opcode::kSync:
      case Opcode::kBar:
      case Opcode::kS2r:
      case Opcode::kLdc:
        break;  // no data sources (the guard is handled generically)

      case Opcode::kMov:
        dem.add_operand(d.src[0], dst_mask(0), dst_mask(1), wide);
        break;

      case Opcode::kSel: {
        const u32 lo = dst_mask(0);
        const u32 hi = wide ? dst_mask(1) : 0;
        dem.add_operand(d.src[0], lo, hi, wide);
        dem.add_operand(d.src[1], lo, hi, wide);
        // Selector (predicate or register): consulted iff any dst bit lives.
        dem.add_operand(d.src[2], (lo | hi) ? kAll : 0, 0, false);
        break;
      }

      case Opcode::kIAdd:
      case Opcode::kIMul: {
        // Carry chains propagate upward only: dst bit i depends on source
        // bits [0, i]; any live hi-word bit pulls in the whole lo word
        // through the carry (or partial products).
        if (wide) {
          const u32 hi = dst_mask(1);
          const u32 lo_dem = smear_down(dst_mask(0)) | (hi ? kAll : 0);
          const u32 hi_dem = smear_down(hi);
          dem.add_operand(d.src[0], lo_dem, hi_dem, true);
          dem.add_operand(d.src[1], lo_dem, hi_dem, true);
        } else {
          const u32 sdem = smear_down(dst_mask(0));
          dem.add_operand(d.src[0], sdem, 0, false);
          dem.add_operand(d.src[1], sdem, 0, false);
        }
        break;
      }

      case Opcode::kIMad: {
        // Factors punt to full demand (products mix bits); the accumulator
        // is an addend and carries like IADD.
        if (d.dtype == DType::kU64) {  // IMAD.WIDE: 32x32 factors + 64 acc
          const u32 hi = dst_mask(1);
          const u32 any = dst_mask(0) | hi;
          dem.add_operand(d.src[0], any ? kAll : 0, 0, false);
          dem.add_operand(d.src[1], any ? kAll : 0, 0, false);
          dem.add_operand(d.src[2], smear_down(dst_mask(0)) | (hi ? kAll : 0),
                          smear_down(hi), true);
        } else {
          const u32 dl = dst_mask(0);
          dem.add_operand(d.src[0], dl ? kAll : 0, 0, false);
          dem.add_operand(d.src[1], dl ? kAll : 0, 0, false);
          dem.add_operand(d.src[2], smear_down(dl), 0, false);
        }
        break;
      }

      case Opcode::kIMnmx: {
        const u32 any = dst_mask(0) | (wide ? dst_mask(1) : 0);
        dem.add_operand(d.src[0], any ? kAll : 0, any ? kAll : 0, wide);
        dem.add_operand(d.src[1], any ? kAll : 0, any ? kAll : 0, wide);
        break;
      }

      case Opcode::kISetp:
      case Opcode::kFSetp: {
        // The compare consumes every bit at or below the highest compared
        // bit — the full operand width — but only if the predicate lives.
        const u32 sdem = (state.preds & du.dst_preds) ? kAll : 0;
        dem.add_operand(d.src[0], sdem, sdem, wide);
        dem.add_operand(d.src[1], sdem, sdem, wide);
        break;
      }

      case Opcode::kLop: {
        const auto kind = static_cast<LopKind>(d.sub);
        for (u16 s = 0; s < (wide ? 2 : 1); ++s) {
          const u32 dl = dst_mask(s);
          const DecodedOperand& a = d.src[0];
          const DecodedOperand& b = d.src[1];
          auto imm_half = [&](const DecodedOperand& o) {
            return static_cast<u32>(o.imm >> (32 * s));
          };
          u32 dem_a = dl;
          u32 dem_b = dl;
          if (kind == LopKind::kAnd) {
            // AND with 0 pins the dst bit: the other source bit is dead.
            if (b.is_imm()) dem_a = dl & imm_half(b);
            if (a.is_imm()) dem_b = dl & imm_half(a);
          } else if (kind == LopKind::kOr) {
            // OR with 1 pins the dst bit likewise.
            if (b.is_imm()) dem_a = dl & ~imm_half(b);
            if (a.is_imm()) dem_b = dl & ~imm_half(a);
          }  // XOR/NOT: every consulted source bit feeds its dst bit
          if (a.kind == OperandKind::kReg) {
            dem.add(static_cast<u16>(a.index + s), dem_a);
          }
          if (b.kind == OperandKind::kReg) {
            dem.add(static_cast<u16>(b.index + s), dem_b);
          }
        }
        break;
      }

      case Opcode::kShf: {
        const u32 width = wide ? 64 : 32;
        const u64 dmask =
            static_cast<u64>(dst_mask(0)) |
            (wide ? static_cast<u64>(dst_mask(1)) << 32 : 0);
        const DecodedOperand& amount = d.src[1];
        if (amount.is_imm()) {
          // The executor masks the amount (& 31, or & 63 wide): a shift by
          // 32 wraps to 0, it does not zero the value.
          const u32 k = static_cast<u32>(amount.imm) & (width - 1);
          u64 sdem = 0;
          switch (static_cast<ShiftKind>(d.sub)) {
            case ShiftKind::kLeft:
              sdem = dmask >> k;
              break;
            case ShiftKind::kRightLogical:
              sdem = dmask << k;
              break;
            case ShiftKind::kRightArith:
              sdem = dmask << k;
              // dst bits shifted in from the top replicate the sign bit.
              if (k > 0 && (dmask >> (width - k)) != 0) {
                sdem |= 1ull << (width - 1);
              }
              break;
          }
          if (width == 32) sdem &= 0xffffffffull;
          dem.add_operand(d.src[0], static_cast<u32>(sdem),
                          static_cast<u32>(sdem >> 32), wide);
        } else {
          // Variable amount: punt on the data; the amount register is only
          // consulted in its low log2(width) bits (the executor masks it).
          const u32 any = dmask ? kAll : 0;
          dem.add_operand(d.src[0], any, any, wide);
          dem.add_operand(amount, dmask ? width - 1 : 0, 0, false);
        }
        break;
      }

      case Opcode::kPopc: {
        const u32 any = dst_mask(0) | (wide ? dst_mask(1) : 0);
        dem.add_operand(d.src[0], any ? kAll : 0, any ? kAll : 0, wide);
        break;
      }

      case Opcode::kFAdd:
      case Opcode::kFMul:
      case Opcode::kFMnmx: {
        const u32 sdem = (dst_mask(0) | (wide ? dst_mask(1) : 0)) ? kAll : 0;
        dem.add_operand(d.src[0], sdem, sdem, wide);
        dem.add_operand(d.src[1], sdem, sdem, wide);
        break;
      }

      case Opcode::kFFma: {
        const u32 sdem = (dst_mask(0) | (wide ? dst_mask(1) : 0)) ? kAll : 0;
        dem.add_operand(d.src[0], sdem, sdem, wide);
        dem.add_operand(d.src[1], sdem, sdem, wide);
        dem.add_operand(d.src[2], sdem, sdem, wide);
        break;
      }

      case Opcode::kMufu: {
        dem.add_operand(d.src[0], dst_mask(0) ? kAll : 0, 0, false);
        break;
      }

      case Opcode::kF2I: {
        // dtype names the source float type; the dst is a single register.
        const u32 sdem = dst_mask(0) ? kAll : 0;
        dem.add_operand(d.src[0], sdem, sdem, wide);
        break;
      }

      case Opcode::kI2F: {
        const u32 sdem = (dst_mask(0) | (wide ? dst_mask(1) : 0)) ? kAll : 0;
        dem.add_operand(d.src[0], sdem, 0, false);
        break;
      }

      case Opcode::kF2F: {
        if (d.dtype == DType::kF64) {  // widen: F32 source, pair dst
          const u32 sdem = (dst_mask(0) | dst_mask(1)) ? kAll : 0;
          dem.add_operand(d.src[0], sdem, 0, false);
        } else {  // narrow: F64 source pair, single dst
          const u32 sdem = dst_mask(0) ? kAll : 0;
          dem.add_operand(d.src[0], sdem, sdem, true);
        }
        break;
      }

      // Memory addresses are always fully demanded, regardless of dst
      // liveness: a flipped address can trap (misaligned/OOB), which is
      // architecturally visible even when the transferred value is dead.
      case Opcode::kLdg:
        dem.add_operand(d.src[0], kAll, kAll, true);
        break;
      case Opcode::kLds:
        dem.add_operand(d.src[0], kAll, 0, false);
        break;

      case Opcode::kStg:
      case Opcode::kSts: {
        dem.add_operand(d.src[0], kAll, kAll, d.op == Opcode::kStg);
        // Store data: the executor copies only mem_width bytes, so narrow
        // stores consume only the low bits of the data register.
        if (d.src[2].kind == OperandKind::kReg) {
          if (d.mem_width == 8) {
            dem.add(d.src[2].index, kAll);
            dem.add(static_cast<u16>(d.src[2].index + 1), kAll);
          } else {
            const u32 m =
                d.mem_width >= 4 ? kAll : (1u << (8 * d.mem_width)) - 1;
            dem.add(d.src[2].index, m);
          }
        }
        break;
      }

      case Opcode::kAtomG:
      case Opcode::kAtomS: {
        // Atomics mutate memory whatever happens to the old-value dst.
        dem.add_operand(d.src[0], kAll, kAll, d.op == Opcode::kAtomG);
        dem.add_operand(d.src[1], kAll, kAll, wide);
        if (static_cast<sim::AtomKind>(d.sub) == sim::AtomKind::kCas) {
          dem.add_operand(d.src[2], kAll, kAll, wide);
        }
        break;
      }

      // Cross-lane readers: other lanes consume this lane's value, so punt
      // to full demand unconditionally.
      case Opcode::kShfl:
        if (d.src[0].kind == OperandKind::kReg) dem.add(d.src[0].index, kAll);
        dem.add_operand(d.src[1], kAll, 0, false);
        break;
      case Opcode::kVote:
        dem.add_operand(d.src[0], kAll, 0, false);
        break;
      case Opcode::kHmma: {
        const u16 spans[3] = {4, 2, 4};  // A, B, C fragments
        for (int s = 0; s < 3; ++s) {
          if (d.src[s].kind != OperandKind::kReg) continue;
          for (u16 i = 0; i < spans[s]; ++i) {
            dem.add(static_cast<u16>(d.src[s].index + i), kAll);
          }
        }
        break;
      }
    }
  }

  const sim::DecodedProgram* dec_;
  u32 num_regs_;
};

}  // namespace

BitLiveness BitLiveness::compute(const sim::Program& program, const Cfg& cfg,
                                 const Liveness& reg_live) {
  BitLiveness bl;
  bl.dec_ = &program.decoded();
  bl.num_regs_ = program.num_regs();
  const u32 n = static_cast<u32>(bl.dec_->size());
  bl.live_out_regs_.assign(static_cast<std::size_t>(n) * bl.num_regs_, 0);
  bl.live_out_preds_.assign(n, 0);
  if (cfg.empty()) return bl;

  const auto& blocks = cfg.blocks();
  const u32 nblocks = static_cast<u32>(blocks.size());
  const Transfer transfer(*bl.dec_, bl.num_regs_);

  // Backward fixpoint at block granularity. The transfer is not gen/kill
  // (source demand depends on the destination's live-out masks), so each
  // iteration re-walks the block; masks grow monotonically, so this
  // terminates.
  std::vector<MaskState> block_in(nblocks, MaskState(bl.num_regs_));
  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = nblocks; b-- > 0;) {
      MaskState out(bl.num_regs_);
      for (u32 succ : blocks[b].succs) out.merge(block_in[succ]);
      for (u32 pc = blocks[b].last;; --pc) {
        transfer.apply(pc, out, nullptr);
        if (pc == blocks[b].first) break;
      }
      if (block_in[b].merge(out)) changed = true;
    }
  }

  // In-block backward walk to per-pc live-out, intersected with the
  // register-level result: both over-approximate the truly-live set, so
  // their intersection does too — and can only be tighter than either.
  for (u32 b = 0; b < nblocks; ++b) {
    MaskState current(bl.num_regs_);
    for (u32 succ : blocks[b].succs) current.merge(block_in[succ]);
    for (u32 pc = blocks[b].last;; --pc) {
      u32* row = bl.live_out_regs_.data() +
                 static_cast<std::size_t>(pc) * bl.num_regs_;
      for (u16 r = 0; r < bl.num_regs_; ++r) {
        row[r] = reg_live.reg_live_out(pc, r) ? current.regs[r] : 0;
      }
      u8 preds = current.preds;
      for (u8 p = 0; p < sim::kPredT; ++p) {
        if (!reg_live.pred_live_out(pc, p)) preds &= static_cast<u8>(~(1u << p));
      }
      bl.live_out_preds_[pc] = preds;
      transfer.apply(pc, current, nullptr);
      if (pc == blocks[b].first) break;
    }
  }
  return bl;
}

u32 BitLiveness::src_demand_mask(u32 pc, u16 r) const {
  if (r == sim::kRegZ || r >= num_regs_ || !dec_) return 0;
  MaskState state(num_regs_);
  const u32* row =
      live_out_regs_.data() + static_cast<std::size_t>(pc) * num_regs_;
  for (u16 i = 0; i < num_regs_; ++i) state.regs[i] = row[i];
  state.preds = live_out_preds_[pc];
  std::vector<u32> demand(num_regs_, 0);
  Transfer(*dec_, num_regs_).apply(pc, state, &demand);
  return demand[r];
}

}  // namespace gfi::sa
