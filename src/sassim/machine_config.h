// Architecture parameters of a simulated GPU. Instances for A100 and H100
// live in src/arch; the simulator core is config-driven and knows nothing
// about specific products.
#pragma once

#include <array>
#include <string>

#include "common/types.h"
#include "ecc/protection.h"
#include "sassim/isa.h"

namespace gfi::sim {

/// Per-opcode issue latency in cycles (timing model only; functional
/// behaviour never depends on these).
struct LatencyTable {
  std::array<u8, kOpcodeCount> cycles{};

  constexpr u8 of(Opcode op) const { return cycles[static_cast<int>(op)]; }
  constexpr void set(Opcode op, u8 latency) {
    cycles[static_cast<int>(op)] = latency;
  }
};

/// Fills a LatencyTable with sensible per-class defaults, then lets the
/// arch preset override individual entries.
LatencyTable default_latencies();

/// Static description of one GPU model.
struct MachineConfig {
  std::string name = "toy";

  // --- compute resources ------------------------------------------------
  u32 num_sms = 2;             ///< streaming multiprocessors
  u32 max_warps_per_sm = 64;   ///< resident warp slots per SM
  u32 max_ctas_per_sm = 32;    ///< resident CTA slots per SM
  u32 regfile_words_per_sm = 65536;  ///< 32-bit registers per SM (256 KiB)
  u32 shared_bytes_per_sm = 65536;   ///< shared memory per SM
  u32 issue_width = 4;         ///< warp instructions issued per SM per cycle

  // --- memory system ----------------------------------------------------
  u64 global_mem_bytes = 1ULL << 30;  ///< device arena ceiling
  u32 l2_bytes = 4u << 20;            ///< modeled L2 capacity (exposure only)
  u32 mem_latency_cycles = 40;        ///< LDG/STG latency used by timing model
  u32 shared_latency_cycles = 8;

  // --- clocks (timing model reporting) -----------------------------------
  f64 sm_clock_ghz = 1.0;

  // --- resilience -------------------------------------------------------
  ecc::EccMode dram_ecc = ecc::EccMode::kSecded;  ///< DRAM/L2 protection
  ecc::EccMode rf_ecc = ecc::EccMode::kSecded;    ///< register-file protection
  bool tensor_core_tf32 = true;  ///< HMMA rounds inputs to TF32

  // --- timing -----------------------------------------------------------
  LatencyTable latencies = default_latencies();

  /// Maximum CTAs of a given footprint resident per SM (occupancy limit).
  [[nodiscard]] u32 ctas_per_sm(u32 threads_per_cta, u16 regs_per_thread,
                                u32 shared_bytes_per_cta) const;
};

}  // namespace gfi::sim
