// NVBit-style dynamic instrumentation interface.
//
// Hooks observe and may mutate architectural state around every dynamic
// warp instruction — the same power NVBitFI's injector has on real GPUs.
// The fault injector, the opcode profiler, and tracing tools are all just
// InstrumentHook implementations.
#pragma once

#include <span>

#include "common/types.h"
#include "sassim/isa.h"
#include "sassim/trap.h"
#include "sassim/warp.h"

namespace gfi::sim {

class Program;

/// Context handed to hooks for one dynamic warp instruction.
struct InstrContext {
  const Instr* instr = nullptr;
  InstrGroup group = InstrGroup::kControl;
  u64 dyn_index = 0;   ///< global dynamic warp-instruction counter
  u32 cta = 0;         ///< linear CTA id
  u32 warp = 0;        ///< warp index within the CTA
  u32 exec_mask = 0;   ///< lanes that will execute (active & guard)
  WarpState* warp_state = nullptr;  ///< mutable architectural state

  /// A hook may request a synchronous trap (e.g. modeling an RF ECC
  /// double-bit detection); the executor aborts the launch with it.
  TrapKind requested_trap = TrapKind::kNone;
};

/// Callback interface invoked by the simulator around every instruction.
class InstrumentHook {
 public:
  virtual ~InstrumentHook() = default;

  /// Called once when a launch starts / finishes.
  virtual void on_launch_begin(const Program& /*program*/) {}
  virtual void on_launch_end() {}

  /// Called before the instruction executes. May mutate sources (RF /
  /// predicate injection) or request a trap.
  virtual void on_before_instr(InstrContext& /*ctx*/) {}

  /// Called after the instruction executed and wrote its destination.
  /// May mutate the destination (IOV injection).
  virtual void on_after_instr(InstrContext& /*ctx*/) {}

  /// Store-address transform (IOA injection). Returns the address actually
  /// used for lane `lane` of a store.
  virtual u64 transform_store_address(u64 addr, const InstrContext& /*ctx*/,
                                      u32 /*lane*/) {
    return addr;
  }

  /// True once this hook no longer needs to observe or mutate anything for
  /// the rest of the launch. When every attached hook reports done, the
  /// engine downgrades mid-launch from the instrumented to the clean
  /// execution path (NVBitFI's detach-after-strike optimisation); the
  /// remaining callbacks — including on_launch_end — are still delivered.
  /// Hooks that observe the whole launch (profiler, tracer) keep the
  /// default.
  [[nodiscard]] virtual bool done_observing() const { return false; }
};

/// RAII pairing of on_launch_begin / on_launch_end around a launch: every
/// exit path (completion, trap, watchdog, barrier deadlock) delivers the
/// end callback exactly once.
class LaunchScope {
 public:
  LaunchScope(std::span<InstrumentHook* const> hooks, const Program& program)
      : hooks_(hooks) {
    for (InstrumentHook* hook : hooks_) hook->on_launch_begin(program);
  }
  ~LaunchScope() {
    for (InstrumentHook* hook : hooks_) hook->on_launch_end();
  }
  LaunchScope(const LaunchScope&) = delete;
  LaunchScope& operator=(const LaunchScope&) = delete;

 private:
  std::span<InstrumentHook* const> hooks_;
};

}  // namespace gfi::sim
