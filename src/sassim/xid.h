// Mapping from simulator traps to the NVIDIA XID event codes an operator
// would see in dmesg on a real A100/H100 node. Connects the injection
// outcomes to the fleet-monitoring vocabulary GPU-resilience studies report
// (XID 13/31 illegal address, XID 48 DBE, XID 8/109 hangs/timeouts).
#pragma once

#include <string>

#include "sassim/trap.h"

namespace gfi::sim {

/// XID event code for a trap; 0 when no XID would be logged.
int xid_for_trap(TrapKind kind);

/// Short operator-facing description of the XID.
const char* xid_description(int xid);

/// Renders a dmesg-style line for a trap, e.g.
/// "NVRM: Xid (PCI:0000:07:00): 48, pid=..., Double Bit ECC Error ...".
std::string xid_log_line(const Trap& trap);

}  // namespace gfi::sim
