#include "sassim/profiler.h"

namespace gfi::sim {

void Profile::merge(const Profile& other) {
  for (std::size_t i = 0; i < warp_instrs_by_opcode.size(); ++i) {
    warp_instrs_by_opcode[i] += other.warp_instrs_by_opcode[i];
  }
  for (std::size_t i = 0; i < warp_instrs_by_group.size(); ++i) {
    warp_instrs_by_group[i] += other.warp_instrs_by_group[i];
    thread_instrs_by_group[i] += other.thread_instrs_by_group[i];
  }
  total_warp_instrs += other.total_warp_instrs;
  total_thread_instrs += other.total_thread_instrs;
}

}  // namespace gfi::sim
