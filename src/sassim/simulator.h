// The SIMT execution engine: schedules CTAs over SMs, executes warps
// instruction-by-instruction with full divergence/barrier/atomic semantics,
// drives instrumentation hooks, and reports timing and traps.
//
// A launch is strictly deterministic: CTAs are assigned to SMs in linear
// order, SMs issue in fixed order within a global cycle loop, and lanes of
// a memory/atomic instruction access memory in lane order. Determinism is
// what makes single-fault injection campaigns exactly replayable.
#pragma once

#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ecc/protection.h"
#include "sassim/instrument.h"
#include "sassim/machine_config.h"
#include "sassim/memory.h"
#include "sassim/program.h"
#include "sassim/trap.h"
#include "sassim/warp.h"

namespace gfi::sim {

struct Profile;

/// Execution tier the engine runs a launch on. Hooked launches always need
/// the instrumented template; the tier choice governs what hook-free
/// execution (including the post-downgrade remainder of a hooked launch)
/// runs on. All tiers are bit-identical in every architecturally observable
/// way — results, traps, cycles, dynamic-instruction counts, journals —
/// differing only in speed.
enum class EngineTier : u8 {
  kAuto,          ///< fastest correct tier: threaded when hook-free
  kInstrumented,  ///< always the instrumented template (no downgrade)
  kClean,         ///< templated clean path for hook-free execution
  kThreaded,      ///< lowered computed-goto/switch interpreter (default)
};

/// Tier name for metrics/CLI ("auto" never appears in results: kAuto
/// resolves to a concrete tier at launch).
[[nodiscard]] constexpr const char* engine_tier_name(EngineTier tier) {
  switch (tier) {
    case EngineTier::kAuto: return "auto";
    case EngineTier::kInstrumented: return "instrumented";
    case EngineTier::kClean: return "clean";
    case EngineTier::kThreaded: return "threaded";
  }
  return "auto";
}

/// Per-launch options.
struct LaunchOptions {
  /// Abort with kWatchdogTimeout after this many dynamic warp instructions.
  /// 0 selects the default (256M).
  u64 watchdog_instrs = 0;
  /// Instrumentation hooks, invoked in order around every instruction.
  /// A launch with no hooks runs on the clean (uninstrumented) execution
  /// path; any hook selects the instrumented path.
  std::vector<InstrumentHook*> hooks;
  /// When set, the engine accumulates a dynamic-instruction Profile here
  /// natively — no ProfilerHook needed, so a profile-only launch still
  /// takes the clean path. Counts match ProfilerHook's exactly.
  Profile* profile = nullptr;
  /// Dispatch-tier selection (replaces the old bool force_instrumented).
  /// kAuto picks the fastest correct tier per launch: threaded when
  /// hook-free, instrumented while hooks observe, threaded again after a
  /// mid-launch downgrade. kInstrumented pins the exact pre-refactor inner
  /// loop (context construction, double guard-mask computation, hook walks)
  /// and never downgrades — benchmark/equivalence baseline. kClean and
  /// kThreaded pin the hook-free side to one implementation for debugging
  /// and tier-equivalence testing.
  EngineTier engine = EngineTier::kAuto;
};

/// Outcome of one kernel launch.
struct LaunchResult {
  Trap trap;  ///< fired() when the launch aborted (DUE/hang)
  u64 dyn_warp_instrs = 0;    ///< dynamic warp instructions executed
  u64 dyn_thread_instrs = 0;  ///< sum of active lanes over those
  u64 cycles = 0;             ///< timing-model cycles
  ecc::EccCounters ecc;       ///< ECC events observed during the launch
  /// Concrete tier the launch finished on (never kAuto); after a mid-launch
  /// downgrade this is the tier the remainder ran on.
  EngineTier tier_used = EngineTier::kClean;
  /// True when an instrumented launch downgraded mid-run because every hook
  /// finished observing.
  bool downgraded = false;

  [[nodiscard]] bool ok() const { return !trap.fired(); }
  /// Wall-model execution time given the arch's SM clock.
  [[nodiscard]] f64 time_us(const MachineConfig& config) const {
    return static_cast<f64>(cycles) / (config.sm_clock_ghz * 1e3);
  }
};

class Simulator {
 public:
  Simulator(const MachineConfig& config, GlobalMemory& memory)
      : config_(config), memory_(memory) {}

  /// Runs `program` over `grid` x `block` threads. `params` are the 64-bit
  /// kernel parameters readable via LDC. Returns launch statistics; traps
  /// are reported in the result, launch-setup errors in the Status.
  Result<LaunchResult> launch(const Program& program, Dim3 grid, Dim3 block,
                              std::span<const u64> params,
                              const LaunchOptions& options = {});

 private:
  struct Cta;
  struct Engine;

  const MachineConfig& config_;
  GlobalMemory& memory_;
};

}  // namespace gfi::sim
