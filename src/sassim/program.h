// A linked, validated kernel: the unit the simulator launches.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sassim/decoded.h"
#include "sassim/isa.h"

namespace gfi::sim {

/// An immutable instruction sequence plus the static resources it needs.
/// Built by KernelBuilder (which resolves labels and validates), then shared
/// read-only across any number of launches — including concurrent launches
/// on different host threads during injection campaigns.
class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code, u16 num_regs,
          u32 shared_bytes, u32 num_params)
      : name_(std::move(name)),
        code_(std::move(code)),
        num_regs_(num_regs),
        shared_bytes_(shared_bytes),
        num_params_(num_params) {}
  ~Program();

  // The decode cache is per-object (it holds a mutex), so copies and moves
  // transfer only the program itself; the destination re-decodes lazily on
  // first use.
  Program(const Program& other);
  Program& operator=(const Program& other);
  Program(Program&& other) noexcept;
  Program& operator=(Program&& other) noexcept;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Instr>& code() const { return code_; }
  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] const Instr& at(std::size_t pc) const { return code_[pc]; }

  /// Highest GPR index used + 1 (occupancy input; RZ excluded).
  [[nodiscard]] u16 num_regs() const { return num_regs_; }
  /// Static shared memory required per CTA.
  [[nodiscard]] u32 shared_bytes() const { return shared_bytes_; }
  /// Number of 64-bit kernel parameters expected at launch.
  [[nodiscard]] u32 num_params() const { return num_params_; }

  /// The predecoded form of this program: dense per-pc instruction records
  /// plus def/use footprints (see decoded.h). Built lazily on first call,
  /// then cached; safe to call concurrently from any number of launch
  /// threads — they all share one immutable DecodedProgram.
  [[nodiscard]] const DecodedProgram& decoded() const;

  /// Full SASS-like disassembly listing.
  [[nodiscard]] std::string disassemble() const;

  /// Static sanity checks: targets in range, register/predicate indices
  /// valid, operand arity consistent with opcode, SSY targets point at SYNC.
  [[nodiscard]] Status validate() const;

 private:
  std::string name_;
  std::vector<Instr> code_;
  u16 num_regs_ = 0;
  u32 shared_bytes_ = 0;
  u32 num_params_ = 0;

  // Lazy decode cache: double-checked via the atomic pointer so the hot
  // path (already decoded) is one acquire load. Mutating this Program (via
  // assignment) while other threads decode it is a race on code_ itself, so
  // the reset in the assignment operators needs no extra synchronisation.
  mutable std::mutex decode_mu_;
  mutable std::atomic<const DecodedProgram*> decoded_ptr_{nullptr};
  mutable std::unique_ptr<const DecodedProgram> decoded_;
};

}  // namespace gfi::sim
