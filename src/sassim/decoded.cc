#include "sassim/decoded.h"

namespace gfi::sim {
namespace {

/// True when `d` is decode-proven eligible for the exec_vec full-warp row
/// kernels: the static half of the clean dispatcher's `vec_srcs &&
/// exec::vec_alu(...)` check, mirroring vec_alu's per-op early-outs. The
/// runtime half (full active mask) stays in the threaded handlers.
Handler lower_alu(const DecodedInstr& d) {
  if (!d.vec_srcs) return Handler::kGeneric;
  switch (d.op) {
    case Opcode::kMov:   return d.wide ? Handler::kGeneric : Handler::kMov;
    case Opcode::kSel:   return d.wide ? Handler::kGeneric : Handler::kSel;
    case Opcode::kIAdd:  return d.wide ? Handler::kGeneric : Handler::kIAdd;
    case Opcode::kIMul:  return d.wide ? Handler::kGeneric : Handler::kIMul;
    case Opcode::kIMad:
      if (d.dtype == DType::kU64) return Handler::kIMadWide;
      return d.wide ? Handler::kGeneric : Handler::kIMad32;
    case Opcode::kIMnmx: return d.wide ? Handler::kGeneric : Handler::kIMnmx;
    case Opcode::kISetp:
      return !d.wide && (d.dtype == DType::kS32 || d.dtype == DType::kU32)
                 ? Handler::kISetp
                 : Handler::kGeneric;
    case Opcode::kLop:   return d.wide ? Handler::kGeneric : Handler::kLop;
    case Opcode::kShf:   return d.wide ? Handler::kGeneric : Handler::kShf;
    case Opcode::kPopc:  return d.wide ? Handler::kGeneric : Handler::kPopc;
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMnmx:
      return d.dtype == DType::kF32 ? Handler::kFArith : Handler::kGeneric;
    case Opcode::kFFma:
      return d.dtype == DType::kF32 ? Handler::kFFma : Handler::kGeneric;
    case Opcode::kFSetp:
      return d.dtype == DType::kF32 ? Handler::kFSetp : Handler::kGeneric;
    case Opcode::kI2F:
      return d.dtype != DType::kF64 ? Handler::kI2F : Handler::kGeneric;
    default:             return Handler::kGeneric;
  }
}

/// Static eligibility for the row-wise memory kernels: width-4 accesses
/// with a live register base and a live register destination/data operand.
/// These mirror the gate the clean dispatcher applies before exec::ldg_row
/// and friends; the runtime mask/fault checks remain in the handlers.
bool row_mem_eligible(const DecodedInstr& d) {
  if (d.mem_width != 4) return false;
  if (d.src[0].kind != OperandKind::kReg || d.src[0].index == kRegZ)
    return false;
  const bool store = d.op == Opcode::kStg || d.op == Opcode::kSts;
  if (store)
    return d.src[2].kind == OperandKind::kReg && d.src[2].index != kRegZ;
  return d.dst_kind == OperandKind::kReg && d.dst_index != kRegZ;
}

Handler lower_one(const DecodedInstr& d) {
  switch (d.op) {
    case Opcode::kExit: return Handler::kExit;
    case Opcode::kBra:  return Handler::kBra;
    case Opcode::kSync: return Handler::kSync;
    case Opcode::kBar:  return Handler::kBar;
    case Opcode::kLdg:
      return row_mem_eligible(d) ? Handler::kLdgRow : Handler::kGeneric;
    case Opcode::kStg:
      return row_mem_eligible(d) ? Handler::kStgRow : Handler::kGeneric;
    case Opcode::kLds:
      return row_mem_eligible(d) ? Handler::kLdsRow : Handler::kGeneric;
    case Opcode::kSts:
      return row_mem_eligible(d) ? Handler::kStsRow : Handler::kGeneric;
    default:            return lower_alu(d);
  }
}

/// Fusion pairing over adjacent pcs. A head keeps its own scheduler slot —
/// fusion changes neither cycle accounting nor dynamic-instruction counts —
/// but precomputes the tail's work into the warp's stash, which the tail
/// consumes iff control flow actually fell through from the head. Every
/// tail handler degrades to its unfused behavior when the stash is invalid,
/// so branching into a tail (or resuming there after an instrumented-tier
/// downgrade) is always correct.
void fuse_pairs(std::vector<DecodedInstr>& instrs) {
  for (std::size_t pc = 0; pc + 1 < instrs.size(); ++pc) {
    DecodedInstr& head = instrs[pc];
    DecodedInstr& tail = instrs[pc + 1];

    // ISETP + @P BRA: the ISETP's full-warp lane mask doubles as the BRA's
    // guard, saving the tail's predicate-row scan. Requires an unguarded
    // vector ISETP writing a real predicate that is exactly the BRA guard.
    if (head.handler == Handler::kISetp && !head.guarded &&
        head.dst_index < kPredT && tail.handler == Handler::kBra &&
        tail.guarded && tail.guard_pred == head.dst_index) {
      head.handler = Handler::kCmpBraHead;
      tail.handler = Handler::kBraFusedTail;
      ++pc;  // a tail never doubles as the next pair's head
      continue;
    }

    // IMAD.WIDE + LDG/STG on the freshly computed address pair: the head's
    // per-lane product loop also proves 4-byte alignment and min/max global
    // bounds for the tail, which then runs a check-free row copy. Both must
    // be unguarded so the head's full mask carries over to the tail.
    if (head.handler == Handler::kIMadWide && !head.guarded &&
        head.dst_kind == OperandKind::kReg && head.dst_index != kRegZ &&
        (tail.handler == Handler::kLdgRow ||
         tail.handler == Handler::kStgRow) &&
        !tail.guarded && tail.src[0].index == head.dst_index) {
      head.handler = tail.handler == Handler::kLdgRow
                         ? Handler::kAddrLdgHead
                         : Handler::kAddrStgHead;
      tail.handler = tail.handler == Handler::kLdgRow
                         ? Handler::kLdgFusedTail
                         : Handler::kStgFusedTail;
      ++pc;
      continue;
    }

    // FFMA chains: two adjacent unguarded f32 vector FFMAs issue both row
    // kernels from the head's slot; the tail reduces to a stash check.
    if (head.handler == Handler::kFFma && !head.guarded &&
        tail.handler == Handler::kFFma && !tail.guarded) {
      head.handler = Handler::kFFmaChainHead;
      tail.handler = Handler::kFFmaChainTail;
      ++pc;
      continue;
    }
  }
}

}  // namespace

DecodedProgram::DecodedProgram(std::span<const Instr> code) {
  instrs_.reserve(code.size());
  defuse_.reserve(code.size());
  for (const Instr& instr : code) {
    DecodedInstr d;
    for (int i = 0; i < 3; ++i) {
      d.src[i].imm = instr.src[i].imm;
      d.src[i].kind = instr.src[i].kind;
      d.src[i].index = instr.src[i].index;
      d.src[i].negated = instr.src[i].negated;
    }
    // Unlinked targets (-1) only occur on non-control instructions, which
    // never read the field; clamp so the value is always a valid u32.
    d.target = instr.target >= 0 ? static_cast<u32>(instr.target) : 0;
    d.op = instr.op;
    d.dtype = instr.dtype;
    d.sub = instr.sub;
    d.mem_width = instr.mem_width;
    d.group = instr_group(instr);
    d.guard_pred = instr.guard_pred;
    d.guard_negated = instr.guard_negated;
    d.guarded = is_guarded(instr);
    d.wide = instr.dtype == DType::kU64 || instr.dtype == DType::kF64;
    d.vec_srcs = d.src[0].kind != OperandKind::kPred &&
                 d.src[1].kind != OperandKind::kPred &&
                 d.src[2].kind != OperandKind::kPred;
    d.dst_kind = instr.dst.kind;
    d.dst_index = instr.dst.index;
    instrs_.push_back(d);
    defuse_.push_back(sim::def_use(instr));
  }
  // Lowering for the threaded tier: direct handler ids first (purely local
  // per-instruction facts), then fusion, which looks one pc ahead and so
  // needs the whole stream decoded.
  for (DecodedInstr& d : instrs_) d.handler = lower_one(d);
  fuse_pairs(instrs_);
}

}  // namespace gfi::sim
