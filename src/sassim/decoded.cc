#include "sassim/decoded.h"

namespace gfi::sim {

DecodedProgram::DecodedProgram(std::span<const Instr> code) {
  instrs_.reserve(code.size());
  defuse_.reserve(code.size());
  for (const Instr& instr : code) {
    DecodedInstr d;
    for (int i = 0; i < 3; ++i) {
      d.src[i].imm = instr.src[i].imm;
      d.src[i].kind = instr.src[i].kind;
      d.src[i].index = instr.src[i].index;
      d.src[i].negated = instr.src[i].negated;
    }
    // Unlinked targets (-1) only occur on non-control instructions, which
    // never read the field; clamp so the value is always a valid u32.
    d.target = instr.target >= 0 ? static_cast<u32>(instr.target) : 0;
    d.op = instr.op;
    d.dtype = instr.dtype;
    d.sub = instr.sub;
    d.mem_width = instr.mem_width;
    d.group = instr_group(instr);
    d.guard_pred = instr.guard_pred;
    d.guard_negated = instr.guard_negated;
    d.guarded = is_guarded(instr);
    d.wide = instr.dtype == DType::kU64 || instr.dtype == DType::kF64;
    d.vec_srcs = d.src[0].kind != OperandKind::kPred &&
                 d.src[1].kind != OperandKind::kPred &&
                 d.src[2].kind != OperandKind::kPred;
    d.dst_kind = instr.dst.kind;
    d.dst_index = instr.dst.index;
    instrs_.push_back(d);
    defuse_.push_back(sim::def_use(instr));
  }
}

}  // namespace gfi::sim
