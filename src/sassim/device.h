// CUDA-runtime-like device facade: allocation, host<->device copies, and
// kernel launches against one simulated GPU.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sassim/machine_config.h"
#include "sassim/memory.h"
#include "sassim/simulator.h"

namespace gfi::sim {

/// One simulated GPU. Cheap to construct; fault-injection campaigns build a
/// fresh Device per injection run so corrupted state never leaks across runs.
class Device {
 public:
  explicit Device(MachineConfig config)
      : config_(std::move(config)),
        memory_(config_.global_mem_bytes, config_.dram_ecc) {}

  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] GlobalMemory& memory() { return memory_; }

  /// Allocates `count` elements of T; returns the device address.
  template <typename T>
  Result<u64> malloc_n(u64 count) {
    return memory_.allocate(count * sizeof(T));
  }

  /// Typed host -> device copy. Returns a Status (a trap here indicates an
  /// internal error; h2d writes cannot fault in a healthy device).
  template <typename T>
  Status to_device(u64 dst, std::span<const T> host) {
    const TrapKind trap =
        memory_.copy_to_device(dst, host.data(), host.size_bytes());
    if (trap != TrapKind::kNone) {
      return Status::internal(std::string("h2d trap: ") + trap_kind_name(trap));
    }
    return Status::ok();
  }

  /// Typed device -> host copy with ECC read semantics: a pending
  /// double-bit error in the source range surfaces as a trap.
  template <typename T>
  [[nodiscard]] TrapKind to_host(std::span<T> host, u64 src) {
    return memory_.copy_to_host(host.data(), src, host.size_bytes());
  }

  /// Checkpoint of the device's mutable state (global memory, allocation
  /// table, pending upsets, ECC counters). The config is immutable, so a
  /// snapshot + restore round-trip yields a device indistinguishable from
  /// the one at snapshot time; kernels relaunched after restore() replay
  /// bit-identically.
  [[nodiscard]] GlobalMemory::Snapshot snapshot() const {
    return memory_.snapshot();
  }

  void restore(const GlobalMemory::Snapshot& snap) { memory_.restore(snap); }

  /// Launches a kernel.
  Result<LaunchResult> launch(const Program& program, Dim3 grid, Dim3 block,
                              std::span<const u64> params,
                              const LaunchOptions& options = {}) {
    Simulator simulator(config_, memory_);
    return simulator.launch(program, grid, block, params, options);
  }

 private:
  MachineConfig config_;
  GlobalMemory memory_;
};

}  // namespace gfi::sim
