// Simulated device global memory: bump allocator + ECC fault-map semantics.
//
// Injected upsets are recorded per 32-bit word in a fault map rather than
// stored in the backing bytes, so ECC behaviour stays observable-equivalent
// (see ecc/protection.h): with SECDED on, a 1-bit fault is corrected and
// counted on every read, a >=2-bit fault traps; with ECC off, reads return
// the corrupted bits. Overwriting a whole faulted word clears the fault
// (transient-upset model — new data is re-encoded correctly).
#pragma once

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ecc/protection.h"
#include "sassim/trap.h"

namespace gfi::sim {

class GlobalMemory {
 public:
  /// First valid device address; accesses below it trap (NULL-page guard).
  static constexpr u64 kBaseAddress = 0x10000;

  GlobalMemory(u64 capacity_bytes, ecc::EccMode mode);

  /// Bump-allocates `bytes` with the given alignment (power of two).
  [[nodiscard]] Result<u64> allocate(u64 bytes, u64 align = 256);

  /// Releases every allocation and all injected faults.
  void reset();

  [[nodiscard]] u64 bytes_allocated() const { return brk_ - kBaseAddress; }
  [[nodiscard]] u64 capacity() const { return capacity_; }
  [[nodiscard]] ecc::EccMode ecc_mode() const { return mode_; }
  void set_ecc_mode(ecc::EccMode mode) { mode_ = mode; }

  /// Reads `n` bytes with full trap/ECC semantics. On a trap the output
  /// buffer contents are unspecified. Inlined fast path for the (dominant)
  /// fault-free case; ECC classification lives in read_faulty().
  [[nodiscard]] TrapKind read(u64 addr, void* out, u32 n) {
    if (!in_bounds(addr, n)) return TrapKind::kIllegalGlobalAddress;
    std::memcpy(out, backing(addr), n);
    if (faults_.empty()) [[likely]] return TrapKind::kNone;
    return read_faulty(addr, out, n);
  }

  /// Writes `n` bytes; clears faults on fully overwritten words.
  [[nodiscard]] TrapKind write(u64 addr, const void* src, u32 n) {
    if (!in_bounds(addr, n)) return TrapKind::kIllegalGlobalAddress;
    std::memcpy(backing(addr), src, n);
    if (!faults_.empty()) clear_overwritten_faults(addr, n);
    return TrapKind::kNone;
  }

  /// 32-bit accesses for the executor's hoisted full-warp paths: bounds
  /// check only, no per-word fault-map lookup. Callers must hold
  /// fault_free() so ECC classification / fault clearing cannot be missed.
  [[nodiscard]] bool read_u32_nofault(u64 addr, u32* out) const {
    if (!in_bounds(addr, 4)) return false;
    std::memcpy(out, data_.data() + (addr - kBaseAddress), 4);
    return true;
  }
  [[nodiscard]] bool write_u32_nofault(u64 addr, u32 value) {
    if (!in_bounds(addr, 4)) return false;
    std::memcpy(backing(addr), &value, 4);
    return true;
  }

  /// Batched variant of the *_nofault bounds check for the full-warp row
  /// paths: the arena is a single contiguous extent [kBaseAddress, brk),
  /// so checking the row's min and max word addresses covers every lane.
  [[nodiscard]] bool row_u32_in_bounds(u64 lo, u64 hi) const {
    return lo <= hi && in_bounds(lo, 4) && in_bounds(hi, 4);
  }
  /// Unchecked 32-bit accessors for row paths that already hold
  /// row_u32_in_bounds() on a covering range and fault_free() (writes
  /// bypass fault clearing, which is vacuous on an empty fault map).
  [[nodiscard]] u32 read_u32_raw(u64 addr) const {
    u32 v;
    std::memcpy(&v, data_.data() + (addr - kBaseAddress), 4);
    return v;
  }
  void write_u32_raw(u64 addr, u32 value) {
    std::memcpy(backing(addr), &value, 4);
  }

  /// Host-side copies. d2h goes through the ECC read path on purpose: a
  /// pending DBE in an output buffer surfaces when results are copied back,
  /// just as cudaMemcpy returns an ECC error on real hardware.
  [[nodiscard]] TrapKind copy_to_device(u64 dst, const void* src, u64 n);
  [[nodiscard]] TrapKind copy_to_host(void* dst, u64 src, u64 n);
  [[nodiscard]] TrapKind fill(u64 dst, u8 value, u64 n);

  /// Records an upset: XORs `flip_mask` into the fault mask of the 32-bit
  /// word containing byte address `addr`.
  void inject_fault(u64 addr, u32 flip_mask);

  /// Full mutable state of the arena: allocation table (brk), backing bytes,
  /// pending upsets, and ECC counters. Restoring a snapshot makes a relaunch
  /// bit-identical to the original run (recover/retry.h builds on this).
  struct Snapshot {
    u64 brk = kBaseAddress;
    std::vector<u8> data;
    std::unordered_map<u64, u32> faults;
    ecc::EccCounters counters;
  };

  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{brk_, data_, faults_, counters_};
  }

  void restore(const Snapshot& snap) {
    brk_ = snap.brk;
    data_ = snap.data;
    faults_ = snap.faults;
    counters_ = snap.counters;
  }

  [[nodiscard]] std::size_t fault_count() const { return faults_.size(); }
  /// True while no upsets are pending — the executor's hoisted load fast
  /// path requires it so ECC classification can never be skipped.
  [[nodiscard]] bool fault_free() const { return faults_.empty(); }
  [[nodiscard]] const ecc::EccCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Range check without side effects (used by the address validator).
  [[nodiscard]] bool in_bounds(u64 addr, u64 n) const {
    return addr >= kBaseAddress && n <= brk_ && addr <= brk_ - n;
  }

 private:
  [[nodiscard]] u8* backing(u64 addr) {
    return data_.data() + (addr - kBaseAddress);
  }

  /// Out-of-line tail of read(): ECC classification of the pending upsets
  /// the access overlaps. Called only when faults_ is non-empty; the bytes
  /// are already copied into `out`.
  [[nodiscard]] TrapKind read_faulty(u64 addr, void* out, u32 n);
  /// Out-of-line tail of write(): erase faults on fully overwritten words.
  void clear_overwritten_faults(u64 addr, u32 n);

  u64 capacity_;
  ecc::EccMode mode_;
  u64 brk_ = kBaseAddress;
  std::vector<u8> data_;  ///< backing store for [kBaseAddress, brk_)
  std::unordered_map<u64, u32> faults_;  ///< word index -> flipped-bit mask
  ecc::EccCounters counters_;
};

}  // namespace gfi::sim
