#include "sassim/program.h"

#include <span>
#include <sstream>

#include "sassim/decoded.h"

namespace gfi::sim {

Program::~Program() = default;

Program::Program(const Program& other)
    : name_(other.name_),
      code_(other.code_),
      num_regs_(other.num_regs_),
      shared_bytes_(other.shared_bytes_),
      num_params_(other.num_params_) {}

Program& Program::operator=(const Program& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  code_ = other.code_;
  num_regs_ = other.num_regs_;
  shared_bytes_ = other.shared_bytes_;
  num_params_ = other.num_params_;
  decoded_ptr_.store(nullptr, std::memory_order_relaxed);
  decoded_.reset();
  return *this;
}

Program::Program(Program&& other) noexcept
    : name_(std::move(other.name_)),
      code_(std::move(other.code_)),
      num_regs_(other.num_regs_),
      shared_bytes_(other.shared_bytes_),
      num_params_(other.num_params_) {}

Program& Program::operator=(Program&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  code_ = std::move(other.code_);
  num_regs_ = other.num_regs_;
  shared_bytes_ = other.shared_bytes_;
  num_params_ = other.num_params_;
  decoded_ptr_.store(nullptr, std::memory_order_relaxed);
  decoded_.reset();
  return *this;
}

const DecodedProgram& Program::decoded() const {
  if (const DecodedProgram* cached =
          decoded_ptr_.load(std::memory_order_acquire)) {
    return *cached;
  }
  std::lock_guard<std::mutex> lock(decode_mu_);
  if (!decoded_) {
    decoded_ = std::make_unique<const DecodedProgram>(
        std::span<const Instr>(code_));
    decoded_ptr_.store(decoded_.get(), std::memory_order_release);
  }
  return *decoded_;
}

std::string Program::disassemble() const {
  std::ostringstream out;
  out << ".kernel " << name_ << "  regs=" << num_regs_
      << " shared=" << shared_bytes_ << "B params=" << num_params_ << "\n";
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    out << "  /*" << pc << "*/ " << to_string(code_[pc]) << "\n";
  }
  return out.str();
}

Status Program::validate() const {
  if (code_.empty()) {
    return Status::invalid_argument("program '" + name_ + "' is empty");
  }
  auto err = [this](std::size_t pc, const std::string& what) {
    return Status::invalid_argument("program '" + name_ + "' pc=" +
                                    std::to_string(pc) + ": " + what);
  };

  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& instr = code_[pc];

    // Control-flow targets must be resolved and in range.
    if (instr.op == Opcode::kBra || instr.op == Opcode::kSsy) {
      if (!instr.label.empty()) return err(pc, "unresolved label " + instr.label);
      if (instr.target < 0 ||
          static_cast<std::size_t>(instr.target) >= code_.size()) {
        return err(pc, "branch target out of range");
      }
      if (instr.op == Opcode::kSsy &&
          code_[static_cast<std::size_t>(instr.target)].op != Opcode::kSync) {
        return err(pc, "SSY target is not a SYNC");
      }
    }

    // Register indices must fit the declared register budget.
    auto check_reg = [&](const Operand& operand, u16 span) -> Status {
      if (!operand.is_reg() || operand.index == kRegZ) return Status::ok();
      if (operand.index + span > num_regs_) {
        return err(pc, "register R" + std::to_string(operand.index) +
                           " exceeds declared budget of " +
                           std::to_string(num_regs_));
      }
      return Status::ok();
    };
    const u16 wide = (instr.dtype == DType::kU64 || instr.dtype == DType::kF64)
                         ? 2
                         : 1;
    if (instr.writes_reg()) {
      if (Status s = check_reg(instr.dst, instr.dst_reg_span()); !s.is_ok())
        return s;
    }
    for (const auto& src : instr.src) {
      if (Status s = check_reg(src, wide); !s.is_ok()) return s;
    }

    // Predicate indices.
    if (instr.guard_pred >= kNumPredicates) return err(pc, "bad guard predicate");
    if (instr.writes_pred()) {
      if (!instr.dst.is_pred() || instr.dst.index >= kNumPredicates) {
        return err(pc, "predicate-writing op needs a predicate destination");
      }
      if (instr.dst.index == kPredT) return err(pc, "cannot write PT");
    }

    // Memory width sanity.
    if (instr.is_memory()) {
      const u8 w = instr.mem_width;
      if (w != 1 && w != 2 && w != 4 && w != 8) {
        return err(pc, "unsupported memory width " + std::to_string(w));
      }
    }
  }

  // Last reachable instruction should be able to end the kernel; we require
  // at least one EXIT somewhere.
  bool has_exit = false;
  for (const auto& instr : code_) {
    if (instr.op == Opcode::kExit) has_exit = true;
  }
  if (!has_exit) return Status::invalid_argument("program '" + name_ + "' has no EXIT");
  return Status::ok();
}

}  // namespace gfi::sim
