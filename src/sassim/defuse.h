// Static def/use introspection over single instructions.
//
// `def_use` mirrors simulator.cc's executor operand-by-operand: which
// registers/predicates an instruction reads, which it writes, and — as a
// separate set — which registers the IOV fault injector would corrupt at
// that instruction (injector.cc strikes the full `dst_reg_span()` footprint,
// which can exceed the exact written set, e.g. F2I.F64 writes one register
// but spans two). The static-analysis library (src/sa) builds its CFG and
// dataflow passes on top of these footprints, so any divergence from the
// executor here silently breaks liveness and dead-site pruning; keep the
// two in lockstep.
#pragma once

#include "sassim/isa.h"

namespace gfi::sim {

/// Small fixed-capacity set of register indices. Worst case is HMMA's
/// 4+2+4 source fragment registers. RZ is never stored: it reads as zero
/// and discards writes, so it is neither a use nor a def.
struct RegList {
  static constexpr int kCapacity = 12;
  u16 regs[kCapacity] = {};
  int count = 0;

  void add(u16 r) {
    if (r == kRegZ) return;
    for (int i = 0; i < count; ++i) {
      if (regs[i] == r) return;
    }
    if (count < kCapacity) regs[count++] = r;
  }
  void add_span(u16 base, u16 span) {
    for (u16 s = 0; s < span; ++s) add(static_cast<u16>(base + s));
  }
  [[nodiscard]] bool contains(u16 r) const {
    for (int i = 0; i < count; ++i) {
      if (regs[i] == r) return true;
    }
    return false;
  }
  [[nodiscard]] const u16* begin() const { return regs; }
  [[nodiscard]] const u16* end() const { return regs + count; }
  [[nodiscard]] bool empty() const { return count == 0; }
};

/// Exact architectural footprint of one static instruction.
struct DefUse {
  RegList src_regs;     ///< registers the executor reads
  RegList dst_regs;     ///< registers the executor writes
  /// Registers the IOV injector corrupts after this instruction executes
  /// (injector.cc strike_iov): [dst, dst + dst_reg_span()). Empty for
  /// predicate writers, stores, control flow, and RZ destinations.
  RegList strike_regs;
  u8 src_preds = 0;     ///< bitmask of predicates read (guard included)
  u8 dst_preds = 0;     ///< bitmask of predicates written (PT writes drop)
};

/// Computes the def/use footprint of `instr`, mirroring the executor.
[[nodiscard]] DefUse def_use(const Instr& instr);

/// How an instruction's consumed source bits relate to its produced
/// destination bits — the coarse routing the bit-liveness transfer
/// functions (sa/bitlive.h) dispatch on. Every opcode is enumerated
/// explicitly (no silent default); a completeness-guard test cross-checks
/// this table against the opcode inventory so a new opcode cannot land
/// without declaring its bit behaviour.
enum class BitSemantics : u8 {
  kNone,         ///< no data sources (control, NOP, BAR, S2R, LDC)
  kPassThrough,  ///< dst bit i consumes exactly src bit i (MOV, SEL)
  kBitwise,      ///< LOP: per-bit; known immediates kill masked-off bits
  kShift,        ///< SHF: demand translated by the (masked) shift amount
  kCarry,        ///< IADD/IMUL/IMAD chains: dst bit i consumes bits [0, i]
  kCompare,      ///< ISETP/FSETP: the predicate consumes every compared bit
  kAllOrNothing, ///< any live dst bit demands all source bits (IMNMX, FP
                 ///< arithmetic, converts, MUFU, POPC)
  kMemory,       ///< loads/stores/atomics: addresses fully demanded always
                 ///< (a flipped address can trap); store data demanded to
                 ///< the access width
  kCrossLane,    ///< SHFL/VOTE/HMMA: conservative full demand, always
};

/// The bit-semantics class of `op`. Exhaustive over the opcode inventory.
[[nodiscard]] BitSemantics bit_semantics(Opcode op);

/// True when the instruction can be predicated off for some lanes — its
/// writes must not count as liveness kills (a masked lane's register
/// survives the instruction untouched).
[[nodiscard]] inline bool is_guarded(const Instr& instr) {
  return instr.guard_pred != kPredT || instr.guard_negated;
}

}  // namespace gfi::sim
