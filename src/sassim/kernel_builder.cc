#include "sassim/kernel_builder.h"

#include <algorithm>

namespace gfi::sim {

KernelBuilder::Label KernelBuilder::new_label() {
  label_pos_.push_back(-1);
  return static_cast<Label>(label_pos_.size() - 1);
}

void KernelBuilder::bind(Label label) {
  label_pos_[label] = static_cast<i64>(code_.size());
}

void KernelBuilder::note_reg(const Operand& operand, u16 span) {
  if (!operand.is_reg() || operand.index == kRegZ) return;
  num_regs_ = std::max<u16>(num_regs_, static_cast<u16>(operand.index + span));
}

void KernelBuilder::note_dst(const Instr& instr) {
  if (instr.writes_reg() || instr.op == Opcode::kHmma) {
    note_reg(instr.dst, instr.dst_reg_span());
  }
}

std::size_t KernelBuilder::emit(Instr instr) {
  const u16 wide =
      (instr.dtype == DType::kU64 || instr.dtype == DType::kF64) ? 2 : 1;
  note_dst(instr);
  // HMMA fragments span several registers per lane.
  if (instr.op == Opcode::kHmma) {
    note_reg(instr.src[0], 4);
    note_reg(instr.src[1], 2);
    note_reg(instr.src[2], 4);
  } else {
    for (const auto& src : instr.src) note_reg(src, wide);
  }
  code_.push_back(std::move(instr));
  return code_.size() - 1;
}

void KernelBuilder::guard_last(u8 pred, bool negated) {
  code_.back().guard_pred = pred;
  code_.back().guard_negated = negated;
}

std::size_t KernelBuilder::emit_op(Opcode op, DType dtype, u8 sub, Operand dst,
                                   Operand a, Operand b, Operand c) {
  Instr instr;
  instr.op = op;
  instr.dtype = dtype;
  instr.sub = sub;
  instr.dst = dst;
  instr.src[0] = a;
  instr.src[1] = b;
  instr.src[2] = c;
  return emit(std::move(instr));
}

// --- control flow ------------------------------------------------------------

void KernelBuilder::nop() { emit_op(Opcode::kNop, DType::kU32, 0, {}, {}); }

void KernelBuilder::exit_() {
  emit_op(Opcode::kExit, DType::kU32, 0, {}, {});
}

void KernelBuilder::exit_if(u8 pred, bool negated) {
  exit_();
  guard_last(pred, negated);
}

void KernelBuilder::bar() { emit_op(Opcode::kBar, DType::kU32, 0, {}, {}); }

void KernelBuilder::bra(Label target, u8 guard, bool negated) {
  const std::size_t idx = emit_op(Opcode::kBra, DType::kU32, 0, {}, {});
  code_[idx].guard_pred = guard;
  code_[idx].guard_negated = negated;
  fixups_.emplace_back(idx, target);
}

void KernelBuilder::ssy(Label reconv) {
  const std::size_t idx = emit_op(Opcode::kSsy, DType::kU32, 0, {}, {});
  fixups_.emplace_back(idx, reconv);
}

void KernelBuilder::sync_() { emit_op(Opcode::kSync, DType::kU32, 0, {}, {}); }

void KernelBuilder::if_then(u8 pred, bool negated,
                            const std::function<void()>& then_body) {
  const Label l_sync = new_label();
  ssy(l_sync);
  bra(l_sync, pred, !negated);  // lanes failing the condition skip the body
  then_body();
  bind(l_sync);
  sync_();
}

void KernelBuilder::if_then_else(u8 pred, bool negated,
                                 const std::function<void()>& then_body,
                                 const std::function<void()>& else_body) {
  const Label l_else = new_label();
  const Label l_sync = new_label();
  ssy(l_sync);
  bra(l_else, pred, !negated);  // false lanes take the else path
  then_body();
  bra(l_sync);
  bind(l_else);
  else_body();
  bind(l_sync);
  sync_();
}

void KernelBuilder::uniform_loop(u16 counter, Operand bound, u8 scratch_pred,
                                 const std::function<void()>& body) {
  const Label l_top = new_label();
  bind(l_top);
  body();
  iadd_u32(counter, Operand::reg(counter), Operand::imm_u(1));
  isetp(CmpOp::kLt, scratch_pred, Operand::reg(counter), bound, DType::kU32);
  bra(l_top, scratch_pred);
}

// --- moves -------------------------------------------------------------------

void KernelBuilder::mov_u32(u16 dst, Operand a) {
  emit_op(Opcode::kMov, DType::kU32, 0, Operand::reg(dst), a);
}

void KernelBuilder::mov_f32(u16 dst, f32 value) {
  emit_op(Opcode::kMov, DType::kF32, 0, Operand::reg(dst),
          Operand::imm_f32(value));
}

void KernelBuilder::mov_u64(u16 dst, u64 value) {
  emit_op(Opcode::kMov, DType::kU64, 0, Operand::reg(dst),
          Operand::imm_u(value));
}

void KernelBuilder::sel(u16 dst, Operand a, Operand b, u8 pred, bool negated) {
  emit_op(Opcode::kSel, DType::kU32, 0, Operand::reg(dst), a, b,
          Operand::pred(pred, negated));
}

void KernelBuilder::s2r(u16 dst, SpecialReg sr) {
  emit_op(Opcode::kS2r, DType::kU32, static_cast<u8>(sr), Operand::reg(dst),
          {});
}

void KernelBuilder::ldc_u32(u16 dst, u32 param_index) {
  num_params_ = std::max(num_params_, param_index + 1);
  emit_op(Opcode::kLdc, DType::kU32, 0, Operand::reg(dst),
          Operand::imm_u(param_index));
}

void KernelBuilder::ldc_u64(u16 dst, u32 param_index) {
  num_params_ = std::max(num_params_, param_index + 1);
  emit_op(Opcode::kLdc, DType::kU64, 0, Operand::reg(dst),
          Operand::imm_u(param_index));
}

// --- integer ------------------------------------------------------------------

void KernelBuilder::iadd_u32(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kIAdd, DType::kU32, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::iadd_u64(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kIAdd, DType::kU64, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::imul_u32(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kIMul, DType::kU32, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::imad_u32(u16 dst, Operand a, Operand b, Operand c) {
  emit_op(Opcode::kIMad, DType::kU32, 0, Operand::reg(dst), a, b, c);
}

void KernelBuilder::imad_wide(u16 dst, Operand a, Operand b, Operand c) {
  emit_op(Opcode::kIMad, DType::kU64, 0, Operand::reg(dst), a, b, c);
}

void KernelBuilder::imnmx_s32(u16 dst, Operand a, Operand b, MinMax mm) {
  emit_op(Opcode::kIMnmx, DType::kS32, static_cast<u8>(mm), Operand::reg(dst),
          a, b);
}

void KernelBuilder::imnmx_u32(u16 dst, Operand a, Operand b, MinMax mm) {
  emit_op(Opcode::kIMnmx, DType::kU32, static_cast<u8>(mm), Operand::reg(dst),
          a, b);
}

void KernelBuilder::isetp(CmpOp cmp, u8 dst_pred, Operand a, Operand b,
                          DType dtype) {
  emit_op(Opcode::kISetp, dtype, static_cast<u8>(cmp), Operand::pred(dst_pred),
          a, b);
}

void KernelBuilder::lop(LopKind kind, u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kLop, DType::kU32, static_cast<u8>(kind), Operand::reg(dst),
          a, b);
}

void KernelBuilder::shf(ShiftKind kind, u16 dst, Operand a, Operand amount,
                        DType dtype) {
  emit_op(Opcode::kShf, dtype, static_cast<u8>(kind), Operand::reg(dst), a,
          amount);
}

void KernelBuilder::popc(u16 dst, Operand a) {
  emit_op(Opcode::kPopc, DType::kU32, 0, Operand::reg(dst), a);
}

// --- floating point ----------------------------------------------------------

void KernelBuilder::fadd_f32(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kFAdd, DType::kF32, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::fmul_f32(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kFMul, DType::kF32, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::ffma_f32(u16 dst, Operand a, Operand b, Operand c) {
  emit_op(Opcode::kFFma, DType::kF32, 0, Operand::reg(dst), a, b, c);
}

void KernelBuilder::fmnmx_f32(u16 dst, Operand a, Operand b, MinMax mm) {
  emit_op(Opcode::kFMnmx, DType::kF32, static_cast<u8>(mm), Operand::reg(dst),
          a, b);
}

void KernelBuilder::fadd_f64(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kFAdd, DType::kF64, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::fmul_f64(u16 dst, Operand a, Operand b) {
  emit_op(Opcode::kFMul, DType::kF64, 0, Operand::reg(dst), a, b);
}

void KernelBuilder::ffma_f64(u16 dst, Operand a, Operand b, Operand c) {
  emit_op(Opcode::kFFma, DType::kF64, 0, Operand::reg(dst), a, b, c);
}

void KernelBuilder::fsetp(CmpOp cmp, u8 dst_pred, Operand a, Operand b,
                          DType dtype) {
  emit_op(Opcode::kFSetp, dtype, static_cast<u8>(cmp), Operand::pred(dst_pred),
          a, b);
}

void KernelBuilder::mufu(MufuKind kind, u16 dst, Operand a) {
  emit_op(Opcode::kMufu, DType::kF32, static_cast<u8>(kind), Operand::reg(dst),
          a);
}

void KernelBuilder::f2i(u16 dst, Operand a, DType src_type) {
  emit_op(Opcode::kF2I, src_type, 0, Operand::reg(dst), a);
}

void KernelBuilder::i2f(u16 dst, Operand a, DType dst_type) {
  emit_op(Opcode::kI2F, dst_type, 0, Operand::reg(dst), a);
}

void KernelBuilder::f2f_widen(u16 dst, Operand a) {
  emit_op(Opcode::kF2F, DType::kF64, 0, Operand::reg(dst), a);
}

void KernelBuilder::f2f_narrow(u16 dst, Operand a) {
  emit_op(Opcode::kF2F, DType::kF32, 0, Operand::reg(dst), a);
}

// --- memory ----------------------------------------------------------------

void KernelBuilder::ldg(u16 dst, u16 addr_reg, u64 offset, u8 width) {
  Instr instr;
  instr.op = Opcode::kLdg;
  instr.dtype = width == 8 ? DType::kU64 : DType::kU32;
  instr.dst = Operand::reg(dst);
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = Operand::imm_u(offset);
  instr.mem_width = width;
  note_reg(Operand::reg(addr_reg), 2);  // address registers are 64-bit pairs
  emit(std::move(instr));
}

void KernelBuilder::stg(u16 addr_reg, u16 src, u64 offset, u8 width) {
  Instr instr;
  instr.op = Opcode::kStg;
  instr.dtype = width == 8 ? DType::kU64 : DType::kU32;
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = Operand::imm_u(offset);
  instr.src[2] = Operand::reg(src);
  instr.mem_width = width;
  note_reg(Operand::reg(addr_reg), 2);
  note_reg(Operand::reg(src), width == 8 ? 2 : 1);
  emit(std::move(instr));
}

void KernelBuilder::lds(u16 dst, u16 addr_reg, u64 offset, u8 width) {
  Instr instr;
  instr.op = Opcode::kLds;
  instr.dtype = width == 8 ? DType::kU64 : DType::kU32;
  instr.dst = Operand::reg(dst);
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = Operand::imm_u(offset);
  instr.mem_width = width;
  emit(std::move(instr));
}

void KernelBuilder::sts(u16 addr_reg, u16 src, u64 offset, u8 width) {
  Instr instr;
  instr.op = Opcode::kSts;
  instr.dtype = width == 8 ? DType::kU64 : DType::kU32;
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = Operand::imm_u(offset);
  instr.src[2] = Operand::reg(src);
  instr.mem_width = width;
  note_reg(Operand::reg(src), width == 8 ? 2 : 1);
  emit(std::move(instr));
}

void KernelBuilder::atomg(AtomKind kind, u16 dst, u16 addr_reg, Operand a,
                          Operand b, DType dtype) {
  Instr instr;
  instr.op = Opcode::kAtomG;
  instr.dtype = dtype;
  instr.sub = static_cast<u8>(kind);
  instr.dst = dst == kRegZ ? Operand::reg(kRegZ) : Operand::reg(dst);
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = a;
  instr.src[2] = b;
  instr.mem_width = 4;
  note_reg(Operand::reg(addr_reg), 2);
  emit(std::move(instr));
}

void KernelBuilder::atoms(AtomKind kind, u16 dst, u16 addr_reg, Operand a,
                          Operand b, DType dtype) {
  Instr instr;
  instr.op = Opcode::kAtomS;
  instr.dtype = dtype;
  instr.sub = static_cast<u8>(kind);
  instr.dst = dst == kRegZ ? Operand::reg(kRegZ) : Operand::reg(dst);
  instr.src[0] = Operand::reg(addr_reg);
  instr.src[1] = a;
  instr.src[2] = b;
  instr.mem_width = 4;
  emit(std::move(instr));
}

// --- warp level -----------------------------------------------------------

void KernelBuilder::shfl(ShflKind kind, u16 dst, u16 src, Operand lane) {
  emit_op(Opcode::kShfl, DType::kU32, static_cast<u8>(kind), Operand::reg(dst),
          Operand::reg(src), lane);
}

void KernelBuilder::vote(VoteKind kind, Operand dst, u8 src_pred,
                         bool negated) {
  emit_op(Opcode::kVote, DType::kU32, static_cast<u8>(kind), dst,
          Operand::pred(src_pred, negated));
}

void KernelBuilder::hmma(u16 d_base, u16 a_base, u16 b_base, u16 c_base) {
  emit_op(Opcode::kHmma, DType::kF32, 0, Operand::reg(d_base),
          Operand::reg(a_base), Operand::reg(b_base), Operand::reg(c_base));
}

// --- finalize ------------------------------------------------------------------

Result<Program> KernelBuilder::build() {
  for (const auto& [instr_index, label] : fixups_) {
    const i64 pos = label_pos_[label];
    if (pos < 0) {
      return Status::invalid_argument("kernel '" + name_ + "': label " +
                                      std::to_string(label) + " never bound");
    }
    code_[instr_index].target = static_cast<i32>(pos);
  }
  Program program(name_, std::move(code_), num_regs_, shared_bytes_,
                  num_params_);
  if (Status status = program.validate(); !status.is_ok()) return status;
  return program;
}

}  // namespace gfi::sim
