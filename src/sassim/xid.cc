#include "sassim/xid.h"

#include <sstream>

namespace gfi::sim {

int xid_for_trap(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone:
      return 0;
    case TrapKind::kIllegalGlobalAddress:
    case TrapKind::kIllegalSharedAddress:
      return 31;  // GPU memory page fault (MMU error)
    case TrapKind::kMisalignedAddress:
      return 13;  // Graphics Engine Exception (misaligned address class)
    case TrapKind::kEccDoubleBit:
      return 48;  // Double Bit ECC Error
    case TrapKind::kWatchdogTimeout:
      return 8;  // GPU stopped processing / timeout
    case TrapKind::kIllegalInstruction:
      return 13;  // Graphics Engine Exception
    case TrapKind::kBarrierDivergence:
      return 109;  // Context-switch / preemption timeout class
  }
  return 0;
}

const char* xid_description(int xid) {
  switch (xid) {
    case 8:
      return "GPU stopped processing (timeout)";
    case 13:
      return "Graphics Engine Exception";
    case 31:
      return "GPU memory page fault (MMU error)";
    case 48:
      return "Double Bit ECC Error";
    case 109:
      return "Context preemption timeout";
    default:
      return "no XID";
  }
}

std::string xid_log_line(const Trap& trap) {
  if (!trap.fired()) return "";
  const int xid = xid_for_trap(trap.kind);
  std::ostringstream out;
  out << "NVRM: Xid (PCI:0000:07:00): " << xid << ", "
      << xid_description(xid) << " — " << trap.to_string();
  return out.str();
}

}  // namespace gfi::sim
