// Dynamic-instruction profiler: the "profiling pass" of a two-phase
// NVBitFI-style campaign. Counts dynamic warp and thread instructions per
// opcode and per instruction group; the fault-site sampler draws from these
// counts.
#pragma once

#include <array>
#include <bit>

#include "common/types.h"
#include "sassim/instrument.h"

namespace gfi::sim {

/// Per-kernel dynamic instruction profile.
struct Profile {
  std::array<u64, kOpcodeCount> warp_instrs_by_opcode{};
  std::array<u64, kInstrGroupCount> warp_instrs_by_group{};
  std::array<u64, kInstrGroupCount> thread_instrs_by_group{};
  u64 total_warp_instrs = 0;
  u64 total_thread_instrs = 0;

  [[nodiscard]] u64 group_warp_count(InstrGroup group) const {
    return warp_instrs_by_group[static_cast<int>(group)];
  }
  [[nodiscard]] u64 group_thread_count(InstrGroup group) const {
    return thread_instrs_by_group[static_cast<int>(group)];
  }

  void merge(const Profile& other);
};

/// Hook that accumulates a Profile during a launch.
class ProfilerHook final : public InstrumentHook {
 public:
  void on_before_instr(InstrContext& ctx) override {
    ++profile_.warp_instrs_by_opcode[static_cast<int>(ctx.instr->op)];
    ++profile_.warp_instrs_by_group[static_cast<int>(ctx.group)];
    profile_.thread_instrs_by_group[static_cast<int>(ctx.group)] +=
        static_cast<u64>(std::popcount(ctx.exec_mask));
    ++profile_.total_warp_instrs;
    profile_.total_thread_instrs +=
        static_cast<u64>(std::popcount(ctx.exec_mask));
  }

  [[nodiscard]] const Profile& profile() const { return profile_; }
  void reset() { profile_ = {}; }

 private:
  Profile profile_;
};

}  // namespace gfi::sim
