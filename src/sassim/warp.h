// Per-warp architectural state: PC, lane masks, SIMT reconvergence stack,
// registers and predicates for 32 lanes.
#pragma once

#include <cassert>
#include <cstring>
#include <vector>

#include "common/bitutil.h"
#include "common/simd.h"
#include "common/types.h"
#include "sassim/isa.h"

namespace gfi::sim {

/// Divergence-stack entry. kSsy entries restore the pre-divergence mask at
/// the reconvergence point; kDiv entries hold the taken-path lanes waiting
/// to execute.
struct StackEntry {
  enum class Kind : u8 { kSsy, kDiv };
  u32 mask = 0;
  u32 pc = 0;
  Kind kind = Kind::kSsy;
};

class WarpState {
 public:
  WarpState(u32 warp_in_cta, u32 num_regs, u32 initial_mask)
      : warp_in_cta_(warp_in_cta),
        num_regs_(num_regs),
        active_(initial_mask),
        regs_(static_cast<std::size_t>(num_regs) * kWarpSize, 0) {}

  // --- identity ---------------------------------------------------------
  [[nodiscard]] u32 warp_in_cta() const { return warp_in_cta_; }
  [[nodiscard]] u32 num_regs() const { return num_regs_; }

  // --- control state ------------------------------------------------------
  u32 pc = 0;
  u64 ready_cycle = 0;      ///< timing model: earliest next issue
  bool at_barrier = false;

  // --- superinstruction stash (threaded tier only) ------------------------
  /// A fusion head stashes precomputed tail data here after executing in
  /// its own scheduler slot: fuse_pc names the tail pc the stash is valid
  /// for (always the head's pc + 1) and fuse_mask carries the payload (the
  /// taken-lane mask for a fused BRA; unused otherwise — stash presence
  /// itself encodes "head proved the tail's checks"). A tail consumes the
  /// stash only when fuse_pc matches its own pc, so branching into a tail
  /// from elsewhere — or resuming on it after an instrumented-tier
  /// downgrade — safely falls back to the unfused handler. Nothing else on
  /// the warp can run between a head's slot and its tail's slot, so a
  /// matching stash is never stale. Purely an interpreter latch: not
  /// architectural state, never snapshotted or observed by hooks.
  static constexpr u32 kFuseInvalid = ~u32{0};
  u32 fuse_pc = kFuseInvalid;
  u32 fuse_mask = 0;

  [[nodiscard]] u32 active() const { return active_; }
  [[nodiscard]] u32 exited() const { return exited_; }
  [[nodiscard]] bool done() const { return active_ == 0 && stack_.empty(); }
  [[nodiscard]] bool fully_exited() const {
    return done() || (active_ == 0 && pending_stack_mask() == 0);
  }

  void set_active(u32 mask) { active_ = mask; }

  /// Lanes that would execute an instruction guarded by @P (or @!P when
  /// `negated`): active lanes whose guard predicate evaluates true. Both
  /// execution paths compute exec masks through this one definition.
  [[nodiscard]] u32 guard_mask(u8 p, bool negated) const {
    u32 mask = 0;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      if (!((active_ >> lane) & 1u)) continue;
      if (pred(lane, p) != negated) mask |= 1u << lane;
    }
    return mask;
  }

  /// Bit-identical to guard_mask(), evaluated bit-parallel over the packed
  /// predicate bytes instead of lane by lane (simd::testbit_mask32: one
  /// byte-compare + movemask under AVX2, the multiply trick in the scalar
  /// backend). The clean execution path's per-instruction guard evaluation;
  /// the instrumented path keeps the per-lane walk above, whose cost is
  /// part of the preserved pre-refactor inner loop it stands in for.
  [[nodiscard]] u32 guard_mask_fast(u8 p, bool negated) const {
    if (p == kPredT) return negated ? 0u : active_;
    u32 raw = simd::testbit_mask32(preds_, p);
    if (negated) raw = ~raw;
    return raw & active_;
  }

  std::vector<StackEntry>& stack() { return stack_; }
  [[nodiscard]] const std::vector<StackEntry>& stack() const { return stack_; }

  /// Retires `lanes` permanently: removes them from the active mask and
  /// from every stack entry, then pops emptied contexts so execution can
  /// continue on any pending divergent path.
  void retire_lanes(u32 lanes);

  // --- registers ----------------------------------------------------------
  [[nodiscard]] u32 reg(u32 lane, u16 r) const {
    if (r == kRegZ) return 0;
    return regs_[index_of(lane, r)];
  }
  void set_reg(u32 lane, u16 r, u32 value) {
    if (r == kRegZ) return;
    regs_[index_of(lane, r)] = value;
  }
  /// Warp-wide register row: the 32 per-lane values of register `r` laid
  /// out contiguously ([reg][lane] storage). The executor's full-warp
  /// vector ALU path iterates rows directly; `r` must be a real register
  /// (callers handle RZ themselves).
  [[nodiscard]] const u32* row(u16 r) const { return &regs_[index_of(0, r)]; }
  [[nodiscard]] u32* row(u16 r) { return &regs_[index_of(0, r)]; }
  [[nodiscard]] u64 reg64(u32 lane, u16 r) const {
    // RZ as a pair base reads (RZ, RZ): the upper half must not alias
    // register kRegZ + 1, which is out of the register file entirely.
    if (r == kRegZ) return 0;
    return make64(reg(lane, r), reg(lane, static_cast<u16>(r + 1)));
  }
  void set_reg64(u32 lane, u16 r, u64 value) {
    if (r == kRegZ) return;
    set_reg(lane, r, lo32(value));
    set_reg(lane, static_cast<u16>(r + 1), hi32(value));
  }

  // --- predicates -----------------------------------------------------------
  [[nodiscard]] bool pred(u32 lane, u8 p) const {
    if (p == kPredT) return true;
    return (preds_[lane] >> p) & 1u;
  }
  void set_pred(u32 lane, u8 p, bool value) {
    if (p == kPredT) return;
    if (value) {
      preds_[lane] = static_cast<u8>(preds_[lane] | (1u << p));
    } else {
      preds_[lane] = static_cast<u8>(preds_[lane] & ~(1u << p));
    }
  }
  /// Sets predicate `p` of all 32 lanes at once from a lane bitmask, as the
  /// vector ISETP/FSETP paths produce one. Identical to 32 set_pred calls
  /// (writes to PT are dropped); every lane is written, matching a
  /// full-warp compare under the generic loop.
  void set_pred_row(u8 p, u32 lanemask) {
    if (p == kPredT) return;
    const u8 bit = static_cast<u8>(1u << p);
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
      const u8 set = ((lanemask >> lane) & 1u) != 0 ? bit : u8{0};
      preds_[lane] = static_cast<u8>((preds_[lane] & ~bit) | set);
    }
  }

  /// Raw predicate byte of a lane (fault-injection access).
  [[nodiscard]] u8 pred_bits(u32 lane) const { return preds_[lane]; }
  void set_pred_bits(u32 lane, u8 bits) { preds_[lane] = bits; }

 private:
  [[nodiscard]] std::size_t index_of(u32 lane, u16 r) const {
    assert(lane < kWarpSize && r < num_regs_);
    return static_cast<std::size_t>(r) * kWarpSize + lane;
  }
  [[nodiscard]] u32 pending_stack_mask() const {
    u32 mask = 0;
    for (const auto& entry : stack_) mask |= entry.mask;
    return mask;
  }

  u32 warp_in_cta_;
  u32 num_regs_;
  u32 active_;
  u32 exited_ = 0;
  std::vector<StackEntry> stack_;
  std::vector<u32> regs_;  ///< [reg][lane] layout
  u8 preds_[kWarpSize] = {};
};

}  // namespace gfi::sim
