#include "sassim/trap.h"

#include <sstream>

namespace gfi::sim {

const char* trap_kind_name(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kIllegalGlobalAddress: return "illegal-global-address";
    case TrapKind::kMisalignedAddress: return "misaligned-address";
    case TrapKind::kIllegalSharedAddress: return "illegal-shared-address";
    case TrapKind::kEccDoubleBit: return "ecc-double-bit";
    case TrapKind::kWatchdogTimeout: return "watchdog-timeout";
    case TrapKind::kIllegalInstruction: return "illegal-instruction";
    case TrapKind::kBarrierDivergence: return "barrier-divergence";
  }
  return "?";
}

std::string Trap::to_string() const {
  if (!fired()) return "no trap";
  std::ostringstream out;
  out << trap_kind_name(kind) << " at pc=" << pc << " cta=" << cta
      << " warp=" << warp;
  if (kind == TrapKind::kIllegalGlobalAddress ||
      kind == TrapKind::kMisalignedAddress ||
      kind == TrapKind::kIllegalSharedAddress ||
      kind == TrapKind::kEccDoubleBit) {
    out << " addr=0x" << std::hex << address;
  }
  return out.str();
}

}  // namespace gfi::sim
