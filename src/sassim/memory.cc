#include "sassim/memory.h"

#include <cstring>

namespace gfi::sim {

GlobalMemory::GlobalMemory(u64 capacity_bytes, ecc::EccMode mode)
    : capacity_(capacity_bytes), mode_(mode) {}

Result<u64> GlobalMemory::allocate(u64 bytes, u64 align) {
  if (bytes == 0) return Status::invalid_argument("zero-byte allocation");
  if (align == 0 || (align & (align - 1)) != 0) {
    return Status::invalid_argument("alignment must be a power of two");
  }
  const u64 addr = (brk_ + align - 1) & ~(align - 1);
  if (addr - kBaseAddress + bytes > capacity_) {
    return Status::out_of_range("device arena exhausted: requested " +
                                std::to_string(bytes) + " bytes");
  }
  brk_ = addr + bytes;
  if (data_.size() < brk_ - kBaseAddress) data_.resize(brk_ - kBaseAddress, 0);
  return addr;
}

void GlobalMemory::reset() {
  brk_ = kBaseAddress;
  data_.clear();
  faults_.clear();
  counters_ = {};
}

TrapKind GlobalMemory::read_faulty(u64 addr, void* out, u32 n) {
  // Visit every 32-bit word the access overlaps.
  const u64 first_word = addr / 4;
  const u64 last_word = (addr + n - 1) / 4;
  for (u64 word = first_word; word <= last_word; ++word) {
    auto it = faults_.find(word);
    if (it == faults_.end()) continue;
    switch (ecc::classify_read(mode_, it->second)) {
      case ecc::ReadEffect::kClean:
        break;
      case ecc::ReadEffect::kCorrected:
        // Correct-on-read; the cell itself stays corrupted (no scrubbing),
        // so repeated reads keep counting, as volatile SBE counters do.
        ++counters_.corrected_sbe;
        break;
      case ecc::ReadEffect::kDoubleBitTrap:
        ++counters_.detected_dbe;
        return TrapKind::kEccDoubleBit;
      case ecc::ReadEffect::kRawCorrupted: {
        ++counters_.silent_corrupted;
        // XOR the flipped bits into the returned bytes that overlap.
        const u64 word_base = word * 4;
        for (u32 byte = 0; byte < 4; ++byte) {
          const u64 byte_addr = word_base + byte;
          if (byte_addr < addr || byte_addr >= addr + n) continue;
          const u32 mask = (it->second >> (byte * 8)) & 0xffu;
          static_cast<u8*>(out)[byte_addr - addr] ^= static_cast<u8>(mask);
        }
        break;
      }
    }
  }
  return TrapKind::kNone;
}

void GlobalMemory::clear_overwritten_faults(u64 addr, u32 n) {
  // A write that covers a whole word re-encodes it, clearing the upset.
  u64 word = (addr + 3) / 4;                // first fully covered word
  const u64 end_word = (addr + n) / 4;      // one past last fully covered
  for (; word < end_word; ++word) faults_.erase(word);
}

TrapKind GlobalMemory::copy_to_device(u64 dst, const void* src, u64 n) {
  const u8* bytes = static_cast<const u8*>(src);
  while (n > 0) {
    const u32 chunk = static_cast<u32>(std::min<u64>(n, 1u << 20));
    if (TrapKind trap = write(dst, bytes, chunk); trap != TrapKind::kNone) {
      return trap;
    }
    dst += chunk;
    bytes += chunk;
    n -= chunk;
  }
  return TrapKind::kNone;
}

TrapKind GlobalMemory::copy_to_host(void* dst, u64 src, u64 n) {
  u8* bytes = static_cast<u8*>(dst);
  while (n > 0) {
    const u32 chunk = static_cast<u32>(std::min<u64>(n, 1u << 20));
    if (TrapKind trap = read(src, bytes, chunk); trap != TrapKind::kNone) {
      return trap;
    }
    src += chunk;
    bytes += chunk;
    n -= chunk;
  }
  return TrapKind::kNone;
}

TrapKind GlobalMemory::fill(u64 dst, u8 value, u64 n) {
  std::vector<u8> chunk(std::min<u64>(n, 1u << 16), value);
  while (n > 0) {
    const u32 step = static_cast<u32>(std::min<u64>(n, chunk.size()));
    if (TrapKind trap = write(dst, chunk.data(), step); trap != TrapKind::kNone) {
      return trap;
    }
    dst += step;
    n -= step;
  }
  return TrapKind::kNone;
}

void GlobalMemory::inject_fault(u64 addr, u32 flip_mask) {
  if (flip_mask == 0) return;
  u32& mask = faults_[addr / 4];
  mask ^= flip_mask;
  if (mask == 0) faults_.erase(addr / 4);
}

}  // namespace gfi::sim
