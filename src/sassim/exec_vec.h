// Full-warp vector fast paths of the execution core, over common/simd.h.
//
// Extracted from the engine's dispatch loop (simulator.cc) so the row
// kernels are directly testable and so the SIMD backend swap stays local
// to this file. Every function here runs only on the shapes the caller has
// proven safe — all 32 lanes executing, register/immediate operands only
// (DecodedInstr::vec_srcs), no pending memory faults for the global-memory
// paths — and every lane's arithmetic is expression-identical to the
// generic per-lane switch in Engine::dispatch, so scalar and SIMD builds
// produce bit-identical campaign journals (CI diffs them).
//
// Trap discipline: a fast path either (a) proves no trap can fire before
// touching any state and then runs branch-free, bailing to the generic
// loop (kNotApplicable) when it cannot prove it — the generic loop then
// reproduces the exact lane-order trap and partial progress — or (b)
// performs checks lane-by-lane in the generic loop's order (global-memory
// segment lookups), reporting the first failure with identical partial
// progress.
#pragma once

#include <bit>
#include <cstring>

#include "common/bitutil.h"
#include "common/simd.h"
#include "sassim/decoded.h"
#include "sassim/memory.h"
#include "sassim/warp.h"

namespace gfi::sim::exec {

inline constexpr u32 kRowChunks = kWarpSize / simd::kWidth;

namespace detail {

/// Integer compare over one 8-lane chunk, producing a lane bitmask; the
/// (CmpOp, signedness) dispatch mirrors int_compare() in the engine.
inline u32 isetp_mask(CmpOp cmp, bool is_signed, simd::u32xN a,
                      simd::u32xN b) {
  if (is_signed) {
    switch (cmp) {
      case CmpOp::kLt: return mlt_s(a, b);
      case CmpOp::kLe: return mle_s(a, b);
      case CmpOp::kGt: return mgt_s(a, b);
      case CmpOp::kGe: return mge_s(a, b);
      case CmpOp::kEq: return meq(a, b);
      case CmpOp::kNe: return mne(a, b);
    }
    return 0;
  }
  switch (cmp) {
    case CmpOp::kLt: return mlt_u(a, b);
    case CmpOp::kLe: return mle_u(a, b);
    case CmpOp::kGt: return mgt_u(a, b);
    case CmpOp::kGe: return mge_u(a, b);
    case CmpOp::kEq: return meq(a, b);
    case CmpOp::kNe: return mne(a, b);
  }
  return 0;
}

/// Float compare over one chunk; same result as fp_compare() per lane
/// (ordered quiet <, <=, >, >=, ==; unordered !=).
inline u32 fsetp_mask(CmpOp cmp, simd::f32xN a, simd::f32xN b) {
  switch (cmp) {
    case CmpOp::kLt: return mlt(a, b);
    case CmpOp::kLe: return mle(a, b);
    case CmpOp::kGt: return mgt(a, b);
    case CmpOp::kGe: return mge(a, b);
    case CmpOp::kEq: return meq(a, b);
    case CmpOp::kNe: return mne(a, b);
  }
  return 0;
}

/// Source chunk q of operand `o`: one contiguous row load or a broadcast
/// immediate (RZ and kNone read as 0, matching read_operand).
inline simd::u32xN vchunk(WarpState& warp, const DecodedOperand& o, u32 q) {
  if (o.kind == OperandKind::kReg && o.index != kRegZ) {
    return simd::u32xN::load(warp.row(o.index) + q * simd::kWidth);
  }
  return simd::u32xN::splat(o.kind == OperandKind::kImm ? lo32(o.imm) : 0u);
}

inline simd::f32xN fchunk(WarpState& warp, const DecodedOperand& o, u32 q) {
  if (o.kind == OperandKind::kReg && o.index != kRegZ) {
    return simd::f32xN::load(warp.row(o.index) + q * simd::kWidth);
  }
  return simd::f32xN::splat_bits(o.kind == OperandKind::kImm ? lo32(o.imm)
                                                             : 0u);
}

/// Writes to RZ are dropped: they land in the caller's sink row instead.
inline u32* dst_row(WarpState& warp, const DecodedInstr& instr, u32* sink) {
  return instr.dst_index != kRegZ ? warp.row(instr.dst_index) : sink;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Register/immediate ALU row kernels
// ---------------------------------------------------------------------------
//
// One kernel per decode-proven op shape, each running all 32 lanes with the
// per-lane operand-kind switches hoisted out of the lane loop and the flat
// 32-element loops lowered onto simd::u32xN / simd::f32xN chunks. Callers
// guarantee the matching Handler's preconditions: every lane executes, no
// source is a predicate (instr.vec_srcs), and the dtype/width restriction
// vec_alu() re-checks below. vec_alu() is the opcode-switch front end used
// by the templated clean path; the threaded tier (exec_threaded.h) jumps
// straight to the kernel its lowering pass proved applicable.

inline void vec_mov(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    detail::vchunk(warp, instr.src[0], q).store(dst + q * simd::kWidth);
  }
}

inline void vec_sel(WarpState& warp, const DecodedInstr& instr) {
  using simd::u32xN;
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  const DecodedOperand& oc = instr.src[2];
  if (oc.kind == OperandKind::kReg && oc.index != kRegZ) {
    for (u32 q = 0; q < kRowChunks; ++q) {
      // take a where c != 0, b where c == 0
      const u32xN zero_mask =
          ceq(detail::vchunk(warp, oc, q), u32xN::splat(0));
      select(zero_mask, detail::vchunk(warp, instr.src[1], q),
             detail::vchunk(warp, instr.src[0], q))
          .store(dst + q * simd::kWidth);
    }
    return;
  }
  // Constant selector: the generic path tests the full 64-bit immediate,
  // so do the same once and copy the chosen source.
  const int chosen = (oc.kind == OperandKind::kImm && oc.imm != 0) ? 0 : 1;
  for (u32 q = 0; q < kRowChunks; ++q) {
    detail::vchunk(warp, instr.src[chosen], q).store(dst + q * simd::kWidth);
  }
}

inline void vec_iadd(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    (detail::vchunk(warp, instr.src[0], q) +
     detail::vchunk(warp, instr.src[1], q))
        .store(dst + q * simd::kWidth);
  }
}

inline void vec_imul(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    (detail::vchunk(warp, instr.src[0], q) *
     detail::vchunk(warp, instr.src[1], q))
        .store(dst + q * simd::kWidth);
  }
}

inline void vec_imad32(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    (detail::vchunk(warp, instr.src[0], q) *
         detail::vchunk(warp, instr.src[1], q) +
     detail::vchunk(warp, instr.src[2], q))
        .store(dst + q * simd::kWidth);
  }
}

/// Per-lane address statistics an IMAD.WIDE fusion head collects while it
/// runs, proving the whole row safe for a check-free fused LDG/STG tail.
struct AddrProbe {
  u64 off = 0;        ///< tail's immediate byte offset, added per lane
  bool aligned = true;
  u64 lo = ~u64{0};   ///< min lane address (including off)
  u64 hi = 0;         ///< max lane address (including off)
};

/// IMAD.WIDE: 32x32 product into a 64-bit accumulator, spread over a
/// register-pair row each for C and D. Stays a scalar row loop: the
/// widening/interleaved u64 dance costs more in AVX2 shuffles than the
/// multiply saves, and exactness is free either way. When `probe` is given
/// (fusion head, dst proven non-RZ) the loop also tracks the tail's
/// address alignment and min/max bounds.
inline void vec_imad_wide(WarpState& warp, const DecodedInstr& instr,
                          AddrProbe* probe = nullptr) {
  const DecodedOperand& oa = instr.src[0];
  const DecodedOperand& ob = instr.src[1];
  u32 scratch_a[kWarpSize];
  u32 scratch_b[kWarpSize];
  auto row_or_splat = [&](const DecodedOperand& o, u32* scratch) {
    if (o.kind == OperandKind::kReg && o.index != kRegZ) {
      return static_cast<const u32*>(warp.row(o.index));
    }
    const u32 v = o.kind == OperandKind::kImm ? lo32(o.imm) : 0u;
    for (u32 l = 0; l < kWarpSize; ++l) scratch[l] = v;
    return static_cast<const u32*>(scratch);
  };
  const u32* a = row_or_splat(oa, scratch_a);
  const u32* b = row_or_splat(ob, scratch_b);
  const DecodedOperand& oc = instr.src[2];
  u32 clo_s[kWarpSize];
  u32 chi_s[kWarpSize];
  const u32* clo;
  const u32* chi;
  if (oc.kind == OperandKind::kReg && oc.index != kRegZ) {
    clo = warp.row(oc.index);
    chi = warp.row(static_cast<u16>(oc.index + 1));
  } else {
    const u64 v = oc.kind == OperandKind::kImm ? oc.imm : 0;
    for (u32 l = 0; l < kWarpSize; ++l) {
      clo_s[l] = lo32(v);
      chi_s[l] = hi32(v);
    }
    clo = clo_s;
    chi = chi_s;
  }
  if (instr.dst_index == kRegZ) return;
  u32* dlo = warp.row(instr.dst_index);
  u32* dhi = warp.row(static_cast<u16>(instr.dst_index + 1));
  u64 misaligned = 0;
  u64 lo = ~u64{0};
  u64 hi = 0;
  for (u32 l = 0; l < kWarpSize; ++l) {
    const u64 r = static_cast<u64>(a[l]) * b[l] + make64(clo[l], chi[l]);
    dlo[l] = lo32(r);
    dhi[l] = hi32(r);
    if (probe) {
      const u64 addr = r + probe->off;
      misaligned |= addr & 3;
      lo = addr < lo ? addr : lo;
      hi = addr > hi ? addr : hi;
    }
  }
  if (probe) {
    probe->aligned = misaligned == 0;
    probe->lo = lo;
    probe->hi = hi;
  }
}

inline void vec_imnmx(WarpState& warp, const DecodedInstr& instr) {
  using simd::u32xN;
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  const bool want_min = instr.sub == static_cast<u8>(MinMax::kMin);
  const bool is_signed = instr.dtype == DType::kS32;
  for (u32 q = 0; q < kRowChunks; ++q) {
    const u32xN a = detail::vchunk(warp, instr.src[0], q);
    const u32xN b = detail::vchunk(warp, instr.src[1], q);
    u32xN r = a;
    if (is_signed) {
      r = want_min ? min_s(a, b) : max_s(a, b);
    } else {
      r = want_min ? min_u(a, b) : max_u(a, b);
    }
    r.store(dst + q * simd::kWidth);
  }
}

/// Writes the full predicate row and returns the lane mask — the return
/// value is what lets an ISETP+BRA fusion head reuse the compare result as
/// the branch guard without re-scanning the predicate row.
inline u32 vec_isetp(WarpState& warp, const DecodedInstr& instr) {
  const auto cmp = static_cast<CmpOp>(instr.sub);
  const bool is_signed = instr.dtype == DType::kS32;
  u32 lanes = 0;
  for (u32 q = 0; q < kRowChunks; ++q) {
    lanes |= detail::isetp_mask(cmp, is_signed,
                                detail::vchunk(warp, instr.src[0], q),
                                detail::vchunk(warp, instr.src[1], q))
             << (q * simd::kWidth);
  }
  warp.set_pred_row(static_cast<u8>(instr.dst_index), lanes);
  return lanes;
}

inline void vec_lop(WarpState& warp, const DecodedInstr& instr) {
  using simd::u32xN;
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    const u32xN a = detail::vchunk(warp, instr.src[0], q);
    u32xN r = a;
    switch (static_cast<LopKind>(instr.sub)) {
      case LopKind::kAnd: r = a & detail::vchunk(warp, instr.src[1], q); break;
      case LopKind::kOr: r = a | detail::vchunk(warp, instr.src[1], q); break;
      case LopKind::kXor: r = a ^ detail::vchunk(warp, instr.src[1], q); break;
      case LopKind::kNot: r = ~a; break;
    }
    r.store(dst + q * simd::kWidth);
  }
}

inline void vec_shf(WarpState& warp, const DecodedInstr& instr) {
  using simd::u32xN;
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    const u32xN a = detail::vchunk(warp, instr.src[0], q);
    const u32xN n = detail::vchunk(warp, instr.src[1], q);
    u32xN r = a;
    switch (static_cast<ShiftKind>(instr.sub)) {
      case ShiftKind::kLeft: r = shl(a, n); break;
      case ShiftKind::kRightLogical: r = shr(a, n); break;
      case ShiftKind::kRightArith: r = sar(a, n); break;
    }
    r.store(dst + q * simd::kWidth);
  }
}

inline void vec_popc(WarpState& warp, const DecodedInstr& instr) {
  // No packed 32-bit popcount in AVX2; the scalar loop is already one
  // popcnt per lane.
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  u32 scratch[kWarpSize];
  const DecodedOperand& oa = instr.src[0];
  const u32* a;
  if (oa.kind == OperandKind::kReg && oa.index != kRegZ) {
    a = warp.row(oa.index);
  } else {
    const u32 v = oa.kind == OperandKind::kImm ? lo32(oa.imm) : 0u;
    for (u32 l = 0; l < kWarpSize; ++l) scratch[l] = v;
    a = scratch;
  }
  for (u32 l = 0; l < kWarpSize; ++l) {
    dst[l] = static_cast<u32>(std::popcount(a[l]));
  }
}

/// f32 FADD / FMUL / FMNMX (selected by instr.op).
inline void vec_farith(WarpState& warp, const DecodedInstr& instr) {
  using simd::f32xN;
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  const bool want_min = instr.sub == static_cast<u8>(MinMax::kMin);
  for (u32 q = 0; q < kRowChunks; ++q) {
    const f32xN a = detail::fchunk(warp, instr.src[0], q);
    const f32xN b = detail::fchunk(warp, instr.src[1], q);
    f32xN r = a;
    // canon_nan on +/* results mirrors the generic loop (bitutil.h:
    // NaN payloads are otherwise compilation-dependent); FMNMX's
    // fmin_det/fmax_det pass operand bits through unchanged.
    if (instr.op == Opcode::kFAdd) {
      r = canon_nan(a + b);
    } else if (instr.op == Opcode::kFMul) {
      r = canon_nan(a * b);
    } else {
      r = want_min ? fmin_det(a, b) : fmax_det(a, b);
    }
    r.store(dst + q * simd::kWidth);
  }
}

inline void vec_ffma(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    canon_nan(fma(detail::fchunk(warp, instr.src[0], q),
                  detail::fchunk(warp, instr.src[1], q),
                  detail::fchunk(warp, instr.src[2], q)))
        .store(dst + q * simd::kWidth);
  }
}

inline void vec_fsetp(WarpState& warp, const DecodedInstr& instr) {
  const auto cmp = static_cast<CmpOp>(instr.sub);
  u32 lanes = 0;
  for (u32 q = 0; q < kRowChunks; ++q) {
    lanes |= detail::fsetp_mask(cmp, detail::fchunk(warp, instr.src[0], q),
                                detail::fchunk(warp, instr.src[1], q))
             << (q * simd::kWidth);
  }
  warp.set_pred_row(static_cast<u8>(instr.dst_index), lanes);
}

inline void vec_i2f(WarpState& warp, const DecodedInstr& instr) {
  u32 sink[kWarpSize];
  u32* const dst = detail::dst_row(warp, instr, sink);
  for (u32 q = 0; q < kRowChunks; ++q) {
    cvt_i32(detail::vchunk(warp, instr.src[0], q))
        .store(dst + q * simd::kWidth);
  }
}

/// Opcode-switch front end over the row kernels for the templated clean
/// path. Caller guarantees every lane executes and no source is a predicate
/// (instr.vec_srcs). Returns false for shapes the kernels do not cover
/// (caller falls through to the generic loop). The dtype/width early-outs
/// here are exactly what DecodedProgram's lowering pass proves statically
/// when it assigns a per-op Handler.
inline bool vec_alu(WarpState& warp, const DecodedInstr& instr) {
  switch (instr.op) {
    case Opcode::kMov:
      if (instr.wide) return false;
      vec_mov(warp, instr);
      return true;
    case Opcode::kSel:
      if (instr.wide) return false;
      vec_sel(warp, instr);
      return true;
    case Opcode::kIAdd:
      if (instr.wide) return false;
      vec_iadd(warp, instr);
      return true;
    case Opcode::kIMul:
      if (instr.wide) return false;
      vec_imul(warp, instr);
      return true;
    case Opcode::kIMad:
      if (instr.dtype == DType::kU64) {
        vec_imad_wide(warp, instr);
        return true;
      }
      if (instr.wide) return false;
      vec_imad32(warp, instr);
      return true;
    case Opcode::kIMnmx:
      if (instr.wide) return false;
      vec_imnmx(warp, instr);
      return true;
    case Opcode::kISetp:
      // int_compare treats every dtype except kS32 as an unsigned compare
      // of the zero-extended u32 row, so kU32 covers them; restrict to the
      // two dtypes the decoder emits to keep that equivalence airtight.
      if (instr.wide ||
          (instr.dtype != DType::kS32 && instr.dtype != DType::kU32)) {
        return false;
      }
      vec_isetp(warp, instr);
      return true;
    case Opcode::kLop:
      if (instr.wide) return false;
      vec_lop(warp, instr);
      return true;
    case Opcode::kShf:
      if (instr.wide) return false;
      vec_shf(warp, instr);
      return true;
    case Opcode::kPopc:
      if (instr.wide) return false;
      vec_popc(warp, instr);
      return true;
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMnmx:
      if (instr.dtype != DType::kF32) return false;
      vec_farith(warp, instr);
      return true;
    case Opcode::kFFma:
      if (instr.dtype != DType::kF32) return false;
      vec_ffma(warp, instr);
      return true;
    case Opcode::kFSetp:
      if (instr.dtype != DType::kF32) return false;
      vec_fsetp(warp, instr);
      return true;
    case Opcode::kI2F:
      if (instr.dtype == DType::kF64) return false;
      vec_i2f(warp, instr);
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Width-4 full-warp memory row paths
// ---------------------------------------------------------------------------

/// How a row memory fast path ended. Every current row path proves all its
/// preconditions before touching any state, so kTrap is no longer produced;
/// it stays for callers that still handle the historical mid-row case.
enum class RowMem : u8 {
  kNotApplicable,  ///< nothing touched; caller runs the generic lane loop
  kDone,           ///< all 32 lanes serviced
  kTrap,           ///< trap fired mid-row (partial progress, generic order)
};

struct RowMemResult {
  RowMem state = RowMem::kNotApplicable;
  TrapKind trap = TrapKind::kNone;
  u64 addr = 0;
};

namespace detail {

/// True when every (base_row[l] + off) is 4-byte aligned, batched over the
/// row. Alignment mod 4 depends only on the low 32 address bits, so the
/// 64-bit carry is irrelevant.
inline bool row_aligned4(const u32* base_row, u64 off) {
  using simd::u32xN;
  const u32xN off_lo = u32xN::splat(lo32(off));
  const u32xN three = u32xN::splat(3u);
  u32xN acc = u32xN::splat(0u);
  for (u32 q = 0; q < kRowChunks; ++q) {
    acc = acc | ((u32xN::load(base_row + q * simd::kWidth) + off_lo) & three);
  }
  return mne(acc, u32xN::splat(0u)) == 0;
}

/// Largest base value in a row (for batched shared-memory bounds checks).
inline u32 row_max(const u32* base_row) {
  using simd::u32xN;
  u32xN acc = u32xN::load(base_row);
  for (u32 q = 1; q < kRowChunks; ++q) {
    acc = max_u(acc, u32xN::load(base_row + q * simd::kWidth));
  }
  u32 tmp[simd::kWidth];
  acc.store(tmp);
  u32 m = tmp[0];
  for (u32 l = 1; l < simd::kWidth; ++l) m = m < tmp[l] ? tmp[l] : m;
  return m;
}

}  // namespace detail

/// Full-warp 32-bit global load: register-pair base plus immediate offset,
/// destination written row-wise. Caller guarantees exec == full mask,
/// width 4, a real register base and destination, and mem.fault_free().
/// Alignment and bounds are proven for the whole row up front — the arena
/// is one contiguous extent, so checking the row's min/max addresses covers
/// every lane — and the serviced row then runs with no per-lane checks. A
/// row that cannot be proven safe bails untouched; the generic lane loop
/// reproduces the exact trap lane order and partial progress.
inline RowMemResult ldg_row(WarpState& warp, const DecodedInstr& instr,
                            const GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(alo, off)) return {};
  u64 addrs[kWarpSize];
  u64 lo = ~u64{0};
  u64 hi = 0;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u64 addr = make64(alo[lane], ahi[lane]) + off;
    addrs[lane] = addr;
    lo = addr < lo ? addr : lo;
    hi = addr > hi ? addr : hi;
  }
  if (!mem.row_u32_in_bounds(lo, hi)) return {};
  u32* d = warp.row(instr.dst_index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    d[lane] = mem.read_u32_raw(addrs[lane]);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Matching full-warp 32-bit global store (value row src[2]).
inline RowMemResult stg_row(WarpState& warp, const DecodedInstr& instr,
                            GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(alo, off)) return {};
  u64 addrs[kWarpSize];
  u64 lo = ~u64{0};
  u64 hi = 0;
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u64 addr = make64(alo[lane], ahi[lane]) + off;
    addrs[lane] = addr;
    lo = addr < lo ? addr : lo;
    hi = addr > hi ? addr : hi;
  }
  if (!mem.row_u32_in_bounds(lo, hi)) return {};
  const u32* v = warp.row(instr.src[2].index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    mem.write_u32_raw(addrs[lane], v[lane]);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Check-free fused-tail variants: an IMAD.WIDE fusion head just proved
/// 4-byte alignment and min/max bounds for this exact address row (via
/// AddrProbe) under fault_free(), and nothing can run on the warp between
/// the head's slot and this one, so the row is serviced with no validation
/// at all. The fault map cannot repopulate mid-launch on the hook-free
/// path (injections land pre-launch or through hooks).
inline void ldg_row_fused(WarpState& warp, const DecodedInstr& instr,
                          const GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  u32* d = warp.row(instr.dst_index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    d[lane] = mem.read_u32_raw(make64(alo[lane], ahi[lane]) + off);
  }
}

inline void stg_row_fused(WarpState& warp, const DecodedInstr& instr,
                          GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  const u32* v = warp.row(instr.src[2].index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    mem.write_u32_raw(make64(alo[lane], ahi[lane]) + off, v[lane]);
  }
}

/// Full-warp 32-bit shared load. Alignment and bounds are both provable up
/// front (shared memory is one flat extent), so the serviced row runs with
/// no per-lane checks at all; any potential trap bails to the generic loop.
inline RowMemResult lds_row(WarpState& warp, const DecodedInstr& instr,
                            const u8* shared, std::size_t shared_size) {
  const u32* a = warp.row(instr.src[0].index);
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(a, off)) return {};
  const u64 max_addr = static_cast<u64>(detail::row_max(a)) + off;
  if (max_addr + 4 > shared_size) return {};
  u32* d = warp.row(instr.dst_index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    std::memcpy(&d[lane], shared + a[lane] + off, 4);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Matching full-warp 32-bit shared store (value row src[2]).
inline RowMemResult sts_row(WarpState& warp, const DecodedInstr& instr,
                            u8* shared, std::size_t shared_size) {
  const u32* a = warp.row(instr.src[0].index);
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(a, off)) return {};
  const u64 max_addr = static_cast<u64>(detail::row_max(a)) + off;
  if (max_addr + 4 > shared_size) return {};
  const u32* v = warp.row(instr.src[2].index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    std::memcpy(shared + a[lane] + off, &v[lane], 4);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

}  // namespace gfi::sim::exec
