// Full-warp vector fast paths of the execution core, over common/simd.h.
//
// Extracted from the engine's dispatch loop (simulator.cc) so the row
// kernels are directly testable and so the SIMD backend swap stays local
// to this file. Every function here runs only on the shapes the caller has
// proven safe — all 32 lanes executing, register/immediate operands only
// (DecodedInstr::vec_srcs), no pending memory faults for the global-memory
// paths — and every lane's arithmetic is expression-identical to the
// generic per-lane switch in Engine::dispatch, so scalar and SIMD builds
// produce bit-identical campaign journals (CI diffs them).
//
// Trap discipline: a fast path either (a) proves no trap can fire before
// touching any state and then runs branch-free, bailing to the generic
// loop (kNotApplicable) when it cannot prove it — the generic loop then
// reproduces the exact lane-order trap and partial progress — or (b)
// performs checks lane-by-lane in the generic loop's order (global-memory
// segment lookups), reporting the first failure with identical partial
// progress.
#pragma once

#include <bit>
#include <cstring>

#include "common/bitutil.h"
#include "common/simd.h"
#include "sassim/decoded.h"
#include "sassim/memory.h"
#include "sassim/warp.h"

namespace gfi::sim::exec {

inline constexpr u32 kRowChunks = kWarpSize / simd::kWidth;

namespace detail {

/// Integer compare over one 8-lane chunk, producing a lane bitmask; the
/// (CmpOp, signedness) dispatch mirrors int_compare() in the engine.
inline u32 isetp_mask(CmpOp cmp, bool is_signed, simd::u32xN a,
                      simd::u32xN b) {
  if (is_signed) {
    switch (cmp) {
      case CmpOp::kLt: return mlt_s(a, b);
      case CmpOp::kLe: return mle_s(a, b);
      case CmpOp::kGt: return mgt_s(a, b);
      case CmpOp::kGe: return mge_s(a, b);
      case CmpOp::kEq: return meq(a, b);
      case CmpOp::kNe: return mne(a, b);
    }
    return 0;
  }
  switch (cmp) {
    case CmpOp::kLt: return mlt_u(a, b);
    case CmpOp::kLe: return mle_u(a, b);
    case CmpOp::kGt: return mgt_u(a, b);
    case CmpOp::kGe: return mge_u(a, b);
    case CmpOp::kEq: return meq(a, b);
    case CmpOp::kNe: return mne(a, b);
  }
  return 0;
}

/// Float compare over one chunk; same result as fp_compare() per lane
/// (ordered quiet <, <=, >, >=, ==; unordered !=).
inline u32 fsetp_mask(CmpOp cmp, simd::f32xN a, simd::f32xN b) {
  switch (cmp) {
    case CmpOp::kLt: return mlt(a, b);
    case CmpOp::kLe: return mle(a, b);
    case CmpOp::kGt: return mgt(a, b);
    case CmpOp::kGe: return mge(a, b);
    case CmpOp::kEq: return meq(a, b);
    case CmpOp::kNe: return mne(a, b);
  }
  return 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Register/immediate ALU
// ---------------------------------------------------------------------------

/// Register->register ALU execution with the per-lane operand-kind switches
/// hoisted out of the lane loop and the flat 32-element loops lowered onto
/// simd::u32xN / simd::f32xN chunks. Caller guarantees every lane executes
/// and no source is a predicate (instr.vec_srcs). Returns false for shapes
/// it does not cover (caller falls through to the generic loop).
inline bool vec_alu(WarpState& warp, const DecodedInstr& instr) {
  using simd::f32xN;
  using simd::u32xN;

  // Source chunk q of operand i: one contiguous row load or a broadcast
  // immediate (RZ and kNone read as 0, matching read_operand).
  auto vsrc = [&](int i, u32 q) -> u32xN {
    const DecodedOperand& o = instr.src[i];
    if (o.kind == OperandKind::kReg && o.index != kRegZ) {
      return u32xN::load(warp.row(o.index) + q * simd::kWidth);
    }
    return u32xN::splat(o.kind == OperandKind::kImm ? lo32(o.imm) : 0u);
  };
  auto fsrc = [&](int i, u32 q) -> f32xN {
    const DecodedOperand& o = instr.src[i];
    if (o.kind == OperandKind::kReg && o.index != kRegZ) {
      return f32xN::load(warp.row(o.index) + q * simd::kWidth);
    }
    return f32xN::splat_bits(o.kind == OperandKind::kImm ? lo32(o.imm) : 0u);
  };
  // Writes to RZ are dropped: they land in a sink row instead.
  u32 sink[kWarpSize];
  u32* const dst =
      instr.dst_index != kRegZ ? warp.row(instr.dst_index) : sink;
  auto dchunk = [&](u32 q) { return dst + q * simd::kWidth; };

  switch (instr.op) {
    case Opcode::kMov: {
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) vsrc(0, q).store(dchunk(q));
      return true;
    }

    case Opcode::kSel: {
      if (instr.wide) return false;
      const DecodedOperand& oc = instr.src[2];
      if (oc.kind == OperandKind::kReg && oc.index != kRegZ) {
        for (u32 q = 0; q < kRowChunks; ++q) {
          // take a where c != 0, b where c == 0
          const u32xN zero_mask = ceq(vsrc(2, q), u32xN::splat(0));
          select(zero_mask, vsrc(1, q), vsrc(0, q)).store(dchunk(q));
        }
      } else {
        // Constant selector: the generic path tests the full 64-bit
        // immediate, so do the same once and copy the chosen source.
        const int chosen = (oc.kind == OperandKind::kImm && oc.imm != 0) ? 0 : 1;
        for (u32 q = 0; q < kRowChunks; ++q) vsrc(chosen, q).store(dchunk(q));
      }
      return true;
    }

    case Opcode::kIAdd: {
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        (vsrc(0, q) + vsrc(1, q)).store(dchunk(q));
      }
      return true;
    }

    case Opcode::kIMul: {
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        (vsrc(0, q) * vsrc(1, q)).store(dchunk(q));
      }
      return true;
    }

    case Opcode::kIMad: {
      if (instr.dtype == DType::kU64) {
        // IMAD.WIDE: 32x32 product into a 64-bit accumulator, spread over
        // a register-pair row each for C and D. Stays a scalar row loop:
        // the widening/interleaved u64 dance costs more in AVX2 shuffles
        // than the multiply saves, and exactness is free either way.
        const DecodedOperand& oa = instr.src[0];
        const DecodedOperand& ob = instr.src[1];
        u32 scratch_a[kWarpSize];
        u32 scratch_b[kWarpSize];
        auto row_or_splat = [&](const DecodedOperand& o, u32* scratch) {
          if (o.kind == OperandKind::kReg && o.index != kRegZ) {
            return static_cast<const u32*>(warp.row(o.index));
          }
          const u32 v = o.kind == OperandKind::kImm ? lo32(o.imm) : 0u;
          for (u32 l = 0; l < kWarpSize; ++l) scratch[l] = v;
          return static_cast<const u32*>(scratch);
        };
        const u32* a = row_or_splat(oa, scratch_a);
        const u32* b = row_or_splat(ob, scratch_b);
        const DecodedOperand& oc = instr.src[2];
        u32 clo_s[kWarpSize];
        u32 chi_s[kWarpSize];
        const u32* clo;
        const u32* chi;
        if (oc.kind == OperandKind::kReg && oc.index != kRegZ) {
          clo = warp.row(oc.index);
          chi = warp.row(static_cast<u16>(oc.index + 1));
        } else {
          const u64 v = oc.kind == OperandKind::kImm ? oc.imm : 0;
          for (u32 l = 0; l < kWarpSize; ++l) {
            clo_s[l] = lo32(v);
            chi_s[l] = hi32(v);
          }
          clo = clo_s;
          chi = chi_s;
        }
        if (instr.dst_index == kRegZ) return true;
        u32* dlo = warp.row(instr.dst_index);
        u32* dhi = warp.row(static_cast<u16>(instr.dst_index + 1));
        for (u32 l = 0; l < kWarpSize; ++l) {
          const u64 r = static_cast<u64>(a[l]) * b[l] + make64(clo[l], chi[l]);
          dlo[l] = lo32(r);
          dhi[l] = hi32(r);
        }
        return true;
      }
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        (vsrc(0, q) * vsrc(1, q) + vsrc(2, q)).store(dchunk(q));
      }
      return true;
    }

    case Opcode::kIMnmx: {
      if (instr.wide) return false;
      const bool want_min = instr.sub == static_cast<u8>(MinMax::kMin);
      const bool is_signed = instr.dtype == DType::kS32;
      for (u32 q = 0; q < kRowChunks; ++q) {
        const u32xN a = vsrc(0, q);
        const u32xN b = vsrc(1, q);
        u32xN r = a;
        if (is_signed) {
          r = want_min ? min_s(a, b) : max_s(a, b);
        } else {
          r = want_min ? min_u(a, b) : max_u(a, b);
        }
        r.store(dchunk(q));
      }
      return true;
    }

    case Opcode::kISetp: {
      if (instr.wide) return false;
      // int_compare treats every dtype except kS32 as an unsigned compare
      // of the zero-extended u32 row, so kU32 covers them; restrict to the
      // two dtypes the decoder emits to keep that equivalence airtight.
      if (instr.dtype != DType::kS32 && instr.dtype != DType::kU32) {
        return false;
      }
      const auto cmp = static_cast<CmpOp>(instr.sub);
      const bool is_signed = instr.dtype == DType::kS32;
      u32 lanes = 0;
      for (u32 q = 0; q < kRowChunks; ++q) {
        lanes |= detail::isetp_mask(cmp, is_signed, vsrc(0, q), vsrc(1, q))
                 << (q * simd::kWidth);
      }
      warp.set_pred_row(static_cast<u8>(instr.dst_index), lanes);
      return true;
    }

    case Opcode::kLop: {
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        const u32xN a = vsrc(0, q);
        u32xN r = a;
        switch (static_cast<LopKind>(instr.sub)) {
          case LopKind::kAnd: r = a & vsrc(1, q); break;
          case LopKind::kOr: r = a | vsrc(1, q); break;
          case LopKind::kXor: r = a ^ vsrc(1, q); break;
          case LopKind::kNot: r = ~a; break;
        }
        r.store(dchunk(q));
      }
      return true;
    }

    case Opcode::kShf: {
      if (instr.wide) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        const u32xN a = vsrc(0, q);
        const u32xN n = vsrc(1, q);
        u32xN r = a;
        switch (static_cast<ShiftKind>(instr.sub)) {
          case ShiftKind::kLeft: r = shl(a, n); break;
          case ShiftKind::kRightLogical: r = shr(a, n); break;
          case ShiftKind::kRightArith: r = sar(a, n); break;
        }
        r.store(dchunk(q));
      }
      return true;
    }

    case Opcode::kPopc: {
      if (instr.wide) return false;
      // No packed 32-bit popcount in AVX2; the scalar loop is already one
      // popcnt per lane.
      u32 scratch[kWarpSize];
      const DecodedOperand& oa = instr.src[0];
      const u32* a;
      if (oa.kind == OperandKind::kReg && oa.index != kRegZ) {
        a = warp.row(oa.index);
      } else {
        const u32 v = oa.kind == OperandKind::kImm ? lo32(oa.imm) : 0u;
        for (u32 l = 0; l < kWarpSize; ++l) scratch[l] = v;
        a = scratch;
      }
      for (u32 l = 0; l < kWarpSize; ++l) {
        dst[l] = static_cast<u32>(std::popcount(a[l]));
      }
      return true;
    }

    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMnmx: {
      if (instr.dtype != DType::kF32) return false;
      const bool want_min = instr.sub == static_cast<u8>(MinMax::kMin);
      for (u32 q = 0; q < kRowChunks; ++q) {
        const f32xN a = fsrc(0, q);
        const f32xN b = fsrc(1, q);
        f32xN r = a;
        // canon_nan on +/* results mirrors the generic loop (bitutil.h:
        // NaN payloads are otherwise compilation-dependent); FMNMX's
        // fmin_det/fmax_det pass operand bits through unchanged.
        if (instr.op == Opcode::kFAdd) {
          r = canon_nan(a + b);
        } else if (instr.op == Opcode::kFMul) {
          r = canon_nan(a * b);
        } else {
          r = want_min ? fmin_det(a, b) : fmax_det(a, b);
        }
        r.store(dchunk(q));
      }
      return true;
    }

    case Opcode::kFFma: {
      if (instr.dtype != DType::kF32) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        canon_nan(fma(fsrc(0, q), fsrc(1, q), fsrc(2, q))).store(dchunk(q));
      }
      return true;
    }

    case Opcode::kFSetp: {
      if (instr.dtype != DType::kF32) return false;
      const auto cmp = static_cast<CmpOp>(instr.sub);
      u32 lanes = 0;
      for (u32 q = 0; q < kRowChunks; ++q) {
        lanes |= detail::fsetp_mask(cmp, fsrc(0, q), fsrc(1, q))
                 << (q * simd::kWidth);
      }
      warp.set_pred_row(static_cast<u8>(instr.dst_index), lanes);
      return true;
    }

    case Opcode::kI2F: {
      if (instr.dtype == DType::kF64) return false;
      for (u32 q = 0; q < kRowChunks; ++q) {
        cvt_i32(vsrc(0, q)).store(dchunk(q));
      }
      return true;
    }

    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Width-4 full-warp memory row paths
// ---------------------------------------------------------------------------

/// How a row memory fast path ended.
enum class RowMem : u8 {
  kNotApplicable,  ///< nothing touched; caller runs the generic lane loop
  kDone,           ///< all 32 lanes serviced
  kTrap,           ///< trap fired mid-row (partial progress, generic order)
};

struct RowMemResult {
  RowMem state = RowMem::kNotApplicable;
  TrapKind trap = TrapKind::kNone;
  u64 addr = 0;
};

namespace detail {

/// True when every (base_row[l] + off) is 4-byte aligned, batched over the
/// row. Alignment mod 4 depends only on the low 32 address bits, so the
/// 64-bit carry is irrelevant.
inline bool row_aligned4(const u32* base_row, u64 off) {
  using simd::u32xN;
  const u32xN off_lo = u32xN::splat(lo32(off));
  const u32xN three = u32xN::splat(3u);
  u32xN acc = u32xN::splat(0u);
  for (u32 q = 0; q < kRowChunks; ++q) {
    acc = acc | ((u32xN::load(base_row + q * simd::kWidth) + off_lo) & three);
  }
  return mne(acc, u32xN::splat(0u)) == 0;
}

/// Largest base value in a row (for batched shared-memory bounds checks).
inline u32 row_max(const u32* base_row) {
  using simd::u32xN;
  u32xN acc = u32xN::load(base_row);
  for (u32 q = 1; q < kRowChunks; ++q) {
    acc = max_u(acc, u32xN::load(base_row + q * simd::kWidth));
  }
  u32 tmp[simd::kWidth];
  acc.store(tmp);
  u32 m = tmp[0];
  for (u32 l = 1; l < simd::kWidth; ++l) m = m < tmp[l] ? tmp[l] : m;
  return m;
}

}  // namespace detail

/// Full-warp 32-bit global load: register-pair base plus immediate offset,
/// destination written row-wise. Caller guarantees exec == full mask,
/// width 4, a real register base and destination, and mem.fault_free().
/// Alignment is proven for the whole row up front (else the generic loop
/// reproduces the exact trap); segment lookups keep the generic loop's
/// lane order so an illegal address traps with identical partial progress.
inline RowMemResult ldg_row(WarpState& warp, const DecodedInstr& instr,
                            const GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(alo, off)) return {};
  u32* d = warp.row(instr.dst_index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u64 addr = make64(alo[lane], ahi[lane]) + off;
    if (!mem.read_u32_nofault(addr, &d[lane])) {
      return {RowMem::kTrap, TrapKind::kIllegalGlobalAddress, addr};
    }
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Matching full-warp 32-bit global store (value row src[2]).
inline RowMemResult stg_row(WarpState& warp, const DecodedInstr& instr,
                            GlobalMemory& mem) {
  const u32* alo = warp.row(instr.src[0].index);
  const u32* ahi = warp.row(static_cast<u16>(instr.src[0].index + 1));
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(alo, off)) return {};
  const u32* v = warp.row(instr.src[2].index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    const u64 addr = make64(alo[lane], ahi[lane]) + off;
    if (!mem.write_u32_nofault(addr, v[lane])) {
      return {RowMem::kTrap, TrapKind::kIllegalGlobalAddress, addr};
    }
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Full-warp 32-bit shared load. Alignment and bounds are both provable up
/// front (shared memory is one flat extent), so the serviced row runs with
/// no per-lane checks at all; any potential trap bails to the generic loop.
inline RowMemResult lds_row(WarpState& warp, const DecodedInstr& instr,
                            const u8* shared, std::size_t shared_size) {
  const u32* a = warp.row(instr.src[0].index);
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(a, off)) return {};
  const u64 max_addr = static_cast<u64>(detail::row_max(a)) + off;
  if (max_addr + 4 > shared_size) return {};
  u32* d = warp.row(instr.dst_index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    std::memcpy(&d[lane], shared + a[lane] + off, 4);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

/// Matching full-warp 32-bit shared store (value row src[2]).
inline RowMemResult sts_row(WarpState& warp, const DecodedInstr& instr,
                            u8* shared, std::size_t shared_size) {
  const u32* a = warp.row(instr.src[0].index);
  const u64 off = instr.src[1].is_imm() ? instr.src[1].imm : 0;
  if (!detail::row_aligned4(a, off)) return {};
  const u64 max_addr = static_cast<u64>(detail::row_max(a)) + off;
  if (max_addr + 4 > shared_size) return {};
  const u32* v = warp.row(instr.src[2].index);
  for (u32 lane = 0; lane < kWarpSize; ++lane) {
    std::memcpy(shared + a[lane] + off, &v[lane], 4);
  }
  return {RowMem::kDone, TrapKind::kNone, 0};
}

}  // namespace gfi::sim::exec
