#include "sassim/isa.h"
#include <cstdio>

#include <sstream>

#include "common/bitutil.h"

namespace gfi::sim {

Operand Operand::imm_f32(f32 v) { return imm_u(f32_bits(v)); }
Operand Operand::imm_f64(f64 v) { return imm_u(f64_bits(v)); }

bool Instr::writes_reg() const {
  if (writes_pred()) return false;
  switch (op) {
    case Opcode::kNop:
    case Opcode::kExit:
    case Opcode::kBra:
    case Opcode::kSsy:
    case Opcode::kSync:
    case Opcode::kBar:
    case Opcode::kStg:
    case Opcode::kSts:
      return false;
    default:
      return dst.is_reg() && dst.index != kRegZ;
  }
}

u16 Instr::dst_reg_span() const {
  if (op == Opcode::kHmma) return 4;  // D fragment: 4 registers per lane
  if (op == Opcode::kLdg || op == Opcode::kLds) return mem_width == 8 ? 2 : 1;
  if (dtype == DType::kU64 || dtype == DType::kF64) return 2;
  return 1;
}

InstrGroup instr_group(const Instr& instr) {
  switch (instr.op) {
    case Opcode::kNop:
    case Opcode::kExit:
    case Opcode::kBra:
    case Opcode::kSsy:
    case Opcode::kSync:
    case Opcode::kBar:
      return InstrGroup::kControl;
    case Opcode::kMov:
    case Opcode::kSel:
    case Opcode::kS2r:
    case Opcode::kLdc:
    case Opcode::kIAdd:
    case Opcode::kIMul:
    case Opcode::kIMnmx:
    case Opcode::kLop:
    case Opcode::kShf:
    case Opcode::kPopc:
      return InstrGroup::kInt;
    case Opcode::kIMad:
      return InstrGroup::kIntMad;
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMnmx:
    case Opcode::kMufu:
    case Opcode::kF2I:
    case Opcode::kI2F:
    case Opcode::kF2F:
      return instr.dtype == DType::kF64 ? InstrGroup::kFp64 : InstrGroup::kFp32;
    case Opcode::kFFma:
      return instr.dtype == DType::kF64 ? InstrGroup::kFp64
                                        : InstrGroup::kFp32Fma;
    case Opcode::kISetp:
    case Opcode::kFSetp:
      return InstrGroup::kSetp;
    case Opcode::kLdg:
    case Opcode::kLds:
      return InstrGroup::kLoad;
    case Opcode::kStg:
    case Opcode::kSts:
      return InstrGroup::kStore;
    case Opcode::kAtomG:
    case Opcode::kAtomS:
      return InstrGroup::kAtomic;
    case Opcode::kShfl:
    case Opcode::kVote:
      return InstrGroup::kWarpComm;
    case Opcode::kHmma:
      return InstrGroup::kMma;
  }
  return InstrGroup::kControl;
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kExit: return "EXIT";
    case Opcode::kBra: return "BRA";
    case Opcode::kSsy: return "SSY";
    case Opcode::kSync: return "SYNC";
    case Opcode::kBar: return "BAR";
    case Opcode::kMov: return "MOV";
    case Opcode::kSel: return "SEL";
    case Opcode::kS2r: return "S2R";
    case Opcode::kLdc: return "LDC";
    case Opcode::kIAdd: return "IADD";
    case Opcode::kIMul: return "IMUL";
    case Opcode::kIMad: return "IMAD";
    case Opcode::kIMnmx: return "IMNMX";
    case Opcode::kISetp: return "ISETP";
    case Opcode::kLop: return "LOP";
    case Opcode::kShf: return "SHF";
    case Opcode::kPopc: return "POPC";
    case Opcode::kFAdd: return "FADD";
    case Opcode::kFMul: return "FMUL";
    case Opcode::kFFma: return "FFMA";
    case Opcode::kFMnmx: return "FMNMX";
    case Opcode::kFSetp: return "FSETP";
    case Opcode::kMufu: return "MUFU";
    case Opcode::kF2I: return "F2I";
    case Opcode::kI2F: return "I2F";
    case Opcode::kF2F: return "F2F";
    case Opcode::kLdg: return "LDG";
    case Opcode::kStg: return "STG";
    case Opcode::kLds: return "LDS";
    case Opcode::kSts: return "STS";
    case Opcode::kAtomG: return "ATOMG";
    case Opcode::kAtomS: return "ATOMS";
    case Opcode::kShfl: return "SHFL";
    case Opcode::kVote: return "VOTE";
    case Opcode::kHmma: return "HMMA";
  }
  return "???";
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kU32: return "U32";
    case DType::kS32: return "S32";
    case DType::kU64: return "U64";
    case DType::kF32: return "F32";
    case DType::kF64: return "F64";
  }
  return "???";
}

const char* group_name(InstrGroup group) {
  switch (group) {
    case InstrGroup::kInt: return "INT";
    case InstrGroup::kIntMad: return "IMAD";
    case InstrGroup::kFp32: return "FP32";
    case InstrGroup::kFp32Fma: return "FP32-FMA";
    case InstrGroup::kFp64: return "FP64";
    case InstrGroup::kSetp: return "SETP";
    case InstrGroup::kLoad: return "LOAD";
    case InstrGroup::kStore: return "STORE";
    case InstrGroup::kAtomic: return "ATOMIC";
    case InstrGroup::kWarpComm: return "WARP-COMM";
    case InstrGroup::kMma: return "MMA";
    case InstrGroup::kControl: return "CTRL";
  }
  return "???";
}

namespace {

std::string operand_to_string(const Operand& operand) {
  switch (operand.kind) {
    case OperandKind::kNone:
      return "";
    case OperandKind::kReg:
      return operand.index == kRegZ ? "RZ" : "R" + std::to_string(operand.index);
    case OperandKind::kImm: {
      char buffer[24];
      std::snprintf(buffer, sizeof(buffer), "0x%llx",
                    static_cast<unsigned long long>(operand.imm));
      return buffer;
    }
    case OperandKind::kPred:
      return std::string(operand.negated ? "!P" : "P") +
             (operand.index == kPredT ? "T" : std::to_string(operand.index));
  }
  return "?";
}

}  // namespace

std::string to_string(const Instr& instr) {
  std::ostringstream out;
  if (instr.guard_pred != kPredT || instr.guard_negated) {
    out << "@" << (instr.guard_negated ? "!" : "") << "P"
        << static_cast<int>(instr.guard_pred) << " ";
  }
  out << opcode_name(instr.op) << "." << dtype_name(instr.dtype);
  bool first = true;
  auto append = [&](const std::string& text) {
    if (text.empty()) return;
    out << (first ? " " : ", ") << text;
    first = false;
  };
  append(operand_to_string(instr.dst));
  for (const auto& src : instr.src) append(operand_to_string(src));
  if (instr.target >= 0) append("-> " + std::to_string(instr.target));
  else if (!instr.label.empty()) append("-> " + instr.label);
  return out.str();
}

}  // namespace gfi::sim
